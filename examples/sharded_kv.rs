// The sharded epoch engine: one logical oblivious KV store served by four
// shards. Every epoch's operations are routed to their shards
// *obliviously* (each shard's sub-batch padded to the same public class),
// all shards commit in parallel on the fork-join pool, and results flow
// back to submission order through one more oblivious sort — so the host
// sees a trace that depends only on (batch class, shard count, capacity
// history), never on which shard any key lives on.
//
// ```sh
// cargo run --release --example sharded_kv
// ```

use dob::prelude::*;

fn mixed_epoch(n: usize, universe: u64, salt: u64) -> Vec<Op> {
    (0..n as u64)
        .map(|i| {
            let key = i.wrapping_mul(salt.wrapping_mul(2654435761) | 1) % universe;
            match i % 4 {
                0 => Op::Put { key, val: key * 2 },
                1 | 2 => Op::Get { key },
                _ => Op::Delete { key },
            }
        })
        .collect()
}

fn main() {
    let n = dob::env_size("DOB_SHARDED_N", 512);
    let pool = Pool::with_default_threads();
    let scratch = ScratchPool::new();

    let mut cfg = ShardConfig::with_shards(4);
    // Scaled provisioning: each shard's sub-batch is padded to half the
    // batch class instead of all of it — cheaper routing, with a public
    // fallback on pathologically skewed epochs.
    cfg.route_slack = 2;
    let mut store = ShardedStore::new(cfg);

    // Bulk load: keys land on shards by the public hash `shard_of`.
    let load: Vec<Op> = (0..n as u64)
        .map(|i| Op::Put {
            key: i,
            val: 1000 + i,
        })
        .collect();
    pool.run(|c| store.execute_epoch(c, &scratch, &load))
        .expect("in-memory epoch cannot fail");
    let spread: Vec<usize> = (0..4)
        .map(|s| (0..n as u64).filter(|&k| shard_of(k, 4) == s).count())
        .collect();
    println!(
        "loaded {n} keys over {} shards (capacity {} total, per-shard loads {spread:?})",
        store.shard_count(),
        store.capacity(),
    );

    // Mixed epochs: gets, updates and deletes over all shards, with the
    // epoch builder (the store stays readable while an epoch is open).
    let mut epoch = store.epoch();
    let t_get = epoch.submit(Op::Get { key: 7 });
    epoch.submit(Op::Put { key: 7, val: 7777 });
    let t_reread = epoch.submit(Op::Get { key: 7 });
    let t_agg = epoch.submit(Op::Aggregate);
    println!(
        "pre-commit snapshot: {} records (readable mid-epoch)",
        store.stats().count
    );
    let res = pool
        .run(|c| epoch.commit(c, &scratch, &mut store))
        .expect("in-memory epoch cannot fail");
    assert_eq!(res[t_get].value(), Some(1007));
    assert_eq!(res[t_reread].value(), Some(7777), "read-your-epoch-write");
    if let OpResult::Stats(stats) = res[t_agg] {
        println!(
            "aggregate (pre-epoch global snapshot): {} records, sum {}",
            stats.count, stats.sum
        );
        assert_eq!(stats.count, n as u64);
    }

    // What does the host see? Fix the shapes (epoch sizes, shard count),
    // swap the entire workload — keys, values, op mix — and compare the
    // full adversary traces, routing and all: bit-identical.
    let trace_of = |salt: u64| {
        let (_, rep) = measure(CacheConfig::default(), TraceMode::Hash, |c| {
            let sp = ScratchPool::new();
            let mut s = ShardedStore::new(ShardConfig::with_shards(4));
            s.execute_epoch(c, &sp, &mixed_epoch(96, 4 * n as u64, salt))
                .unwrap();
            s.execute_epoch(c, &sp, &mixed_epoch(24, 4 * n as u64, salt ^ 0xA5))
                .unwrap();
        });
        (rep.trace_hash, rep.trace_len)
    };
    let a = trace_of(1);
    let b = trace_of(0xDEADBEEF);
    println!("\nhost-visible trace: {} events (hash {:#x})", a.1, a.0);
    println!("other workload:     {} events (hash {:#x})", b.1, b.0);
    assert_eq!(a, b, "sharded routing must not leak the workload");
    println!("traces identical: the host learns batch sizes and shard count, nothing else");
}
