// Pipelined async epochs: the double-buffered front end over the epoch
// engine. Client batches are submitted while the previous epoch's merge
// runs as a detached fork-join task; while a `Put` is still mid-merge, a
// `read_now` consult answers through the in-flight epoch's *padded* op
// log — strict read-your-writes with a shape-only trace. `try_commit`
// coalesces batches while the engine is busy (group commit), which is
// where the steady-state throughput win over synchronous commits comes
// from.
//
// ```sh
// cargo run --release --example pipelined_epochs
// ```

use dob::prelude::*;
use std::time::Instant;

fn client_batch(n: usize, round: u64, universe: u64) -> Vec<Op> {
    (0..n as u64)
        .map(|i| {
            let key = (i * 17 + round * 29 + 1) % universe;
            match i % 3 {
                0 | 1 => Op::Put {
                    key,
                    val: round * 1_000 + i,
                },
                _ => Op::Get { key },
            }
        })
        .collect()
}

fn main() {
    let n = dob::env_size("DOB_PIPELINE_N", 256);
    let rounds = dob::env_size("DOB_PIPELINE_ROUNDS", 12) as u64;
    let universe = 509u64;
    let pool = Pool::with_default_threads();

    // --- Synchronous reference: one blocking commit per client batch.
    let scratch = ScratchPool::new();
    let mut sync = Store::new(StoreConfig::default());
    let t0 = Instant::now();
    for round in 0..rounds {
        let ops = client_batch(n, round, universe);
        let _ = pool
            .run(|c| sync.execute_epoch(c, &scratch, &ops))
            .expect("in-memory epoch cannot fail");
    }
    let sync_wall = t0.elapsed();

    // --- Pipelined: submissions never wait for a merge; batches coalesce
    // while the engine is busy.
    let mut p = PipelinedStore::new(Store::new(StoreConfig::default())).with_open_limit(4 * n);
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for round in 0..rounds {
        for op in client_batch(n, round, universe) {
            p.submit(op);
        }
        if round == 0 {
            // Mid-stream read-your-writes: this round's writes are visible
            // even though no commit for them has been joined yet. (The
            // consult costs a merge-sized replay, so a throughput-minded
            // client probes sparingly — here once, to show it works.)
            let probe = (round * 29 + 1) % universe; // this round's i = 0 put
            let seen = p.read_now(&pool, &[probe]);
            assert_eq!(seen[0], Some(round * 1_000), "read_now missed an open put");
        }
        if let Some(h) = p.try_commit(&pool) {
            handles.push(h);
        }
    }
    p.drain(&pool);
    let pipe_wall = t0.elapsed();
    for h in &handles {
        let _ = p.wait(h).expect("in-memory epoch cannot fail"); // redeemable in any order
    }

    let (started, retired) = p.epoch_counts();
    assert_eq!(started, retired);
    let inner = p.into_inner(&pool);
    assert_eq!(inner.stats(), sync.stats(), "pipelined state diverged");

    println!("pipelined epochs — {rounds} client batches of {n} ops");
    println!("  synchronous : {sync_wall:>10.2?}  ({rounds} merges)");
    println!("  pipelined   : {pipe_wall:>10.2?}  ({retired} merges after group commit)");
    let speedup = sync_wall.as_secs_f64() / pipe_wall.as_secs_f64().max(1e-9);
    println!("  speedup     : {speedup:.2}x");
}
