// An oblivious key-value store: `dob-store`'s batched epoch engine with
// the tree-ORAM point-lookup path (§4.2) enabled for small batches.
//
// Clients submit Get/Put/Delete/Aggregate ops into epochs; the path each
// epoch takes — full §F merge against the resident table, or per-op ORAM
// walks — is selected by the *public* padded batch size alone.
//
// ```sh
// cargo run --release --example oram_kv
// ```

use dob::prelude::*;

fn main() {
    let c = SeqCtx::new();
    let space = dob::env_size("DOB_ORAM_SPACE", 4096);
    let scratch = ScratchPool::new();
    let mut cfg = StoreConfig::with_oram(space);
    cfg.oram_threshold = 64;
    let mut store = Store::new(cfg);

    // Bulk load: a big batch takes the merge path. Keys may collide for
    // small DOB_ORAM_SPACE values — last writer wins, like any KV map.
    let load_keys: Vec<u64> = (0..128u64).map(|i| (i * 61) % space as u64).collect();
    let distinct: std::collections::HashSet<u64> = load_keys.iter().copied().collect();
    let mut epoch = store.epoch();
    for (i, &key) in load_keys.iter().enumerate() {
        epoch.submit(Op::Put {
            key,
            val: 1000 + i as u64,
        });
    }
    let n = epoch.len();
    epoch
        .commit(&c, &scratch, &mut store)
        .expect("in-memory epoch cannot fail");
    assert_eq!(store.last_path(), Some(EpochPath::Merge));
    println!(
        "loaded {n} puts ({} distinct keys) in one merge epoch (capacity {})",
        distinct.len(),
        store.capacity()
    );

    // Point lookups: small batches walk the ORAM instead of merging.
    let (k1, k2, k3) = (61 % space as u64, 122 % space as u64, 183 % space as u64);
    let reqs = vec![
        Op::Get { key: k1 },
        Op::Get { key: k2 },
        Op::Get { key: k1 }, // duplicate read
        Op::Put { key: k3, val: 9999 },
        Op::Get { key: k3 },
    ];
    let res = store
        .execute_epoch(&c, &scratch, &reqs)
        .expect("in-memory epoch cannot fail");
    assert_eq!(store.last_path(), Some(EpochPath::Oram));
    println!(
        "oram-path batch read back: {:?}",
        res.iter().map(|r| r.value()).collect::<Vec<_>>()
    );
    assert_eq!(res[0].value(), res[2].value(), "duplicate reads agree");
    assert_eq!(res[4].value(), Some(9999), "read-your-own-epoch-write");

    // Aggregates observe the analytics snapshot of the last merge.
    let res = store
        .execute_epoch(&c, &scratch, &[Op::Aggregate])
        .expect("in-memory epoch cannot fail");
    if let OpResult::Stats(stats) = res[0] {
        println!(
            "analytics snapshot: {} records, value sum {}",
            stats.count, stats.sum
        );
        assert_eq!(stats.count, distinct.len() as u64);
    }

    // What does the host see? Fix the workload *shape*, swap the stored
    // values, and compare the full traces: identical.
    let trace = |scale: u64| {
        let (_, rep) = measure(CacheConfig::default(), TraceMode::Hash, |c| {
            let sp = ScratchPool::new();
            let mut cfg = StoreConfig::with_oram(space);
            cfg.oram_threshold = 64;
            let mut s = Store::new(cfg);
            let load: Vec<Op> = (0..96u64)
                .map(|i| Op::Put {
                    key: (i * 97) % space as u64,
                    val: scale * i,
                })
                .collect();
            s.execute_epoch(c, &sp, &load).unwrap();
            let gets: Vec<Op> = (0..8u64)
                .map(|i| Op::Get {
                    key: (i * 97) % space as u64,
                })
                .collect();
            s.execute_epoch(c, &sp, &gets).unwrap();
        });
        (rep.trace_hash, rep.trace_len)
    };
    let a = trace(1);
    let b = trace(1_000_000);
    println!("host trace, values x1 vs x1e6: identical = {}", a == b);
    assert_eq!(a, b);
}
