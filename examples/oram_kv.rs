// An oblivious key-value store: the Theorem 4.2 substrate (recursive tree
// ORAM with batched access) used directly as a privacy-preserving KV map.
//
// ```sh
// cargo run --release --example oram_kv
// ```

use dob::prelude::*;
use pram::TreeLayout;

fn main() {
    let c = SeqCtx::new();
    let space = dob::env_size("DOB_ORAM_SPACE", 4096);
    let cfg = OramConfig {
        layout: TreeLayout::Veb,
        ..OramConfig::default()
    };
    let mut store = Opram::new(space, cfg, obliv_core::Engine::BitonicRec, 0xD1CE);

    // Load a batch of writes (one simulated PRAM write step).
    let writes: Vec<(u64, Option<u64>)> = (0..64u64)
        .map(|i| (i * 61 % space as u64, Some(1000 + i)))
        .collect();
    store.access_batch(&c, &writes);
    println!("wrote {} keys in one oblivious batch", writes.len());

    // Mixed read/write batch with duplicate addresses (conflict-resolved
    // obliviously, first request wins).
    let reqs: Vec<(u64, Option<u64>)> = vec![
        (61, None),
        (122, None),
        (61, None), // duplicate read
        (183, Some(9999)),
    ];
    let vals = store.access_batch(&c, &reqs);
    println!("batch read back: {vals:?}");
    assert_eq!(vals[0], vals[2], "duplicate reads agree");

    // Stash health (the monitored Circuit-OPRAM simplification).
    println!("peak stash occupancy: {} slots", store.max_stash());

    // The access pattern hides *which* keys are touched: run a fixed
    // workload against two different value sets and compare host traces.
    let trace = |scale: u64| {
        let (_, rep) = measure(CacheConfig::default(), TraceMode::Hash, |c| {
            let mut o = Opram::new(space, cfg, obliv_core::Engine::BitonicRec, 5);
            for i in 0..32u64 {
                o.access(c, (i * 97) % space as u64, Some(scale * i));
            }
        });
        (rep.trace_hash, rep.trace_len)
    };
    let a = trace(1);
    let b = trace(1_000_000);
    println!("host trace, values x1 vs x1e6: identical = {}", a == b);
    assert_eq!(a, b);
}
