// Private analytics on an untrusted cloud — the paper's §1 scenario.
//
// A client outsources encrypted salary records to a multicore enclave.
// The enclave computes order statistics and per-department totals; the
// host (adversary) sees only memory addresses. Every step below is
// data-oblivious, so two entirely different datasets generate identical
// address traces.
//
// ```sh
// cargo run --release --example private_analytics
// ```

use dob::prelude::*;
use metrics::Tracked;
use obliv_core::scan::{seg_sum_right_in, Schedule, Seg};

#[derive(Clone, Copy, Debug, Default)]
struct Employee {
    #[allow(dead_code)] // part of the record schema; analytics key off dept/salary
    id: u64,
    dept: u64,
    salary: u64,
}

fn analytics<C: Ctx>(c: &C, scratch: &ScratchPool, staff: &[Employee]) -> (u64, Vec<(u64, u64)>) {
    let n = staff.len();
    // Obliviously sort by (dept, salary) — one pipeline, composite keys.
    let mut recs: Vec<(u64, Employee)> = staff
        .iter()
        .map(|e| ((e.dept << 32) | e.salary, *e))
        .collect();
    oblivious_sort(c, scratch, &mut recs, OSortParams::practical(n), 0xC0FFEE);

    // Median salary = element at rank n/2 of a salary-sorted copy.
    let mut by_salary: Vec<(u64, Employee)> = staff.iter().map(|e| (e.salary, *e)).collect();
    oblivious_sort(
        c,
        scratch,
        &mut by_salary,
        OSortParams::practical(n),
        0xBEEF,
    );
    let median = by_salary[n / 2].1.salary;

    // Per-department totals with one oblivious aggregation (§F): mark each
    // department's last record, suffix-sum within departments.
    let mut segs: Vec<Seg<u64>> = (0..n)
        .map(|i| {
            let last = i + 1 == n || recs[i + 1].1.dept != recs[i].1.dept;
            Seg::new(last, recs[i].1.salary)
        })
        .collect();
    let mut t = Tracked::new(c, &mut segs);
    seg_sum_right_in(c, scratch, &mut t, Schedule::Tree);
    // The first record of each department now sees the department total.
    let totals: Vec<(u64, u64)> = (0..n)
        .filter(|&i| i == 0 || recs[i - 1].1.dept != recs[i].1.dept)
        .map(|i| (recs[i].1.dept, segs[i].v))
        .collect();
    (median, totals)
}

fn main() {
    let n = dob::env_size("DOB_ANALYTICS_N", 4096);
    let staff: Vec<Employee> = (0..n as u64)
        .map(|i| Employee {
            id: i,
            dept: (i.wrapping_mul(2654435761) >> 7) % 8,
            salary: 40_000 + (i.wrapping_mul(0x9E3779B9) >> 11) % 100_000,
        })
        .collect();

    let pool = Pool::with_default_threads();
    let scratch = ScratchPool::new();
    let (median, totals) = pool.run(|c| analytics(c, &scratch, &staff));
    println!("median salary: {median}");
    println!("department totals:");
    for (dept, total) in &totals {
        println!("  dept {dept}: {total}");
    }

    // What does the host see? Run the same pipeline on a totally different
    // company and compare the adversary traces.
    let other: Vec<Employee> = (0..n as u64)
        .map(|i| Employee {
            id: i,
            dept: i % 8,
            salary: 90_000 + i,
        })
        .collect();
    let trace_of = |staff: Vec<Employee>| {
        let (_, rep) = measure(CacheConfig::default(), TraceMode::Hash, |c| {
            analytics(c, &ScratchPool::new(), &staff);
        });
        (rep.trace_hash, rep.trace_len)
    };
    let ta = trace_of(staff);
    let tb = trace_of(other);
    println!("\nhost-visible trace: {} events (hash {:#x})", ta.1, ta.0);
    println!("other dataset:      {} events (hash {:#x})", tb.1, tb.0);
    // The ORP/network phases are trace-*identical* across inputs (see
    // `obliv_check` and the test suite). The post-permutation comparison
    // phase is oblivious in the *distributional* sense of Definition 1:
    // with clustered keys (8 departments) the region-load profile differs
    // per input, so individual traces differ while their distribution over
    // the hidden permutation is simulatable — the paper's §C.4/§5.1
    // composition argument. The trace LENGTH is input-independent:
    assert_eq!(ta.1, tb.1, "trace length must not leak the dataset");
    println!(
        "lengths identical: {} (contents simulatable, not equal)",
        ta.1 == tb.1
    );
}
