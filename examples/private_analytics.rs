// Private analytics on an untrusted cloud — the paper's §1 scenario, now
// served by `dob-store`: many clients' queries arrive as epochs of
// Get/Put/Delete/Aggregate ops whose keys, values, kinds and hit rates
// are all hidden from the host; only padded batch sizes leak.
//
// ```sh
// cargo run --release --example private_analytics
// ```

use dob::prelude::*;

/// One day of traffic against the salary store: an ingest epoch, a batch
/// of point queries with updates mixed in, and an analytics epoch.
fn run_day<C: Ctx>(
    c: &C,
    scratch: &ScratchPool,
    store: &mut Store,
    salaries: &[(u64, u64)],
) -> (Vec<Option<u64>>, StoreStats) {
    // Ingest: one oblivious merge epoch loads the whole payroll.
    let mut ingest = store.epoch();
    for &(id, salary) in salaries {
        ingest.submit(Op::Put {
            key: id,
            val: salary,
        });
    }
    ingest
        .commit(c, scratch, store)
        .expect("in-memory epoch cannot fail");

    // Mixed query epoch: lookups, a raise, a departure.
    let mut queries = store.epoch();
    let lookups: Vec<usize> = (0..8)
        .map(|i| {
            queries.submit(Op::Get {
                key: salaries[(i * 7) % salaries.len()].0,
            })
        })
        .collect();
    queries.submit(Op::Put {
        key: salaries[0].0,
        val: salaries[0].1 + 5_000,
    });
    queries.submit(Op::Delete {
        key: salaries[salaries.len() - 1].0,
    });
    let res = queries
        .commit(c, scratch, store)
        .expect("in-memory epoch cannot fail");
    let looked_up: Vec<Option<u64>> = lookups.iter().map(|&t| res[t].value()).collect();

    // Analytics epoch: the aggregate reads the snapshot of the last merge.
    let res = store
        .execute_epoch(c, scratch, &[Op::Aggregate])
        .expect("in-memory epoch cannot fail");
    let stats = match res[0] {
        OpResult::Stats(s) => s,
        _ => unreachable!(),
    };
    (looked_up, stats)
}

fn payroll(n: usize, dept_mix: u64, scale: u64) -> Vec<(u64, u64)> {
    (0..n as u64)
        .map(|i| {
            (
                i.wrapping_mul(dept_mix) % (2 * n as u64),
                40_000 + (i.wrapping_mul(scale) >> 11) % 100_000,
            )
        })
        .collect()
}

fn main() {
    let n = dob::env_size("DOB_ANALYTICS_N", 2048);
    let staff = payroll(n, 2654435761, 0x9E3779B9);

    let pool = Pool::with_default_threads();
    let scratch = ScratchPool::new();
    let mut store = Store::new(StoreConfig::default());
    let (looked_up, stats) = pool.run(|c| run_day(c, &scratch, &mut store, &staff));

    println!("spot lookups: {looked_up:?}");
    println!(
        "analytics: {} employees on payroll, total salary {}, mean {}",
        stats.count,
        stats.sum,
        stats.sum / stats.count.max(1)
    );
    assert!(
        looked_up.iter().all(|v| v.is_some()),
        "ingested ids resolve"
    );

    // What does the host see? Run the identical epoch *shapes* over a
    // completely different company — ids, salaries, churn all changed —
    // and compare adversary traces: bit-identical.
    let trace_of = |staff: Vec<(u64, u64)>| {
        let (_, rep) = measure(CacheConfig::default(), TraceMode::Hash, |c| {
            let mut s = Store::new(StoreConfig::default());
            run_day(c, &ScratchPool::new(), &mut s, &staff);
        });
        (rep.trace_hash, rep.trace_len)
    };
    let ta = trace_of(staff);
    let tb = trace_of(payroll(n, 97, 31));
    println!("\nhost-visible trace: {} events (hash {:#x})", ta.1, ta.0);
    println!("other company:      {} events (hash {:#x})", tb.1, tb.0);
    assert_eq!(ta, tb, "the day's trace must not depend on the dataset");
    println!("traces identical: the host learns batch sizes, nothing else");
}
