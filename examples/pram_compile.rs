// Compiling a CRCW PRAM program to a data-oblivious binary fork-join
// program (Theorem 4.1): run a concurrent-write histogram both ways and
// compare results and leakage.
//
// ```sh
// cargo run --release --example pram_compile
// ```

use dob::prelude::*;
use pram::HistogramProgram;

fn main() {
    let p = dob::env_size("DOB_PRAM_P", 128);
    let secret_values: Vec<u64> = (0..p as u64)
        .map(|i| i.wrapping_mul(2654435761) % 8)
        .collect();
    let prog = HistogramProgram::new(p, 8);

    let pool = Pool::with_default_threads();
    let scratch = ScratchPool::new();

    // Direct CRCW execution: fast, but every write address = a secret value.
    let direct = pool.run(|c| run_direct(c, &prog, &secret_values));

    // Oblivious simulation: each PRAM step becomes O(1) oblivious sorts and
    // send-receives; host addresses depend only on (p, s, steps).
    let obliv = pool.run(|c| {
        run_oblivious_sb(
            c,
            &scratch,
            &prog,
            &secret_values,
            obliv_core::Engine::BitonicRec,
        )
    });
    assert_eq!(direct, obliv);
    println!("direct and oblivious executions agree; histogram buckets (lowest writer pid):");
    println!("  {:?}", &obliv[p..p + 8]);

    // Quantify the simulation overhead in the cost model.
    let direct_rep = measure(CacheConfig::default(), TraceMode::Off, |c| {
        run_direct(c, &prog, &secret_values);
    })
    .1;
    let obliv_rep = measure(CacheConfig::default(), TraceMode::Off, |c| {
        run_oblivious_sb(
            c,
            &ScratchPool::new(),
            &prog,
            &secret_values,
            obliv_core::Engine::BitonicRec,
        );
    })
    .1;
    println!("\nper-program cost (p = s = {p}, 1 CRCW step):");
    println!("  direct:    {direct_rep}");
    println!("  oblivious: {obliv_rep}");
    println!(
        "  overhead:  {:.1}x work — the price of hiding the access pattern (Thm 4.1)",
        obliv_rep.work as f64 / direct_rep.work.max(1) as f64
    );

    // And the leakage difference, on a program whose *read* addresses are
    // data-dependent (pointer jumping over a secret linked list): the
    // direct executor's trace reveals the list, the simulation's does not.
    let jump = pram::PointerJumpProgram::new(16);
    let list_a: Vec<u64> = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 15];
    let list_b: Vec<u64> = vec![15, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14];
    let t = |vals: &Vec<u64>, oblivious: bool| {
        let (_, rep) = measure(CacheConfig::default(), TraceMode::Hash, |c| {
            if oblivious {
                run_oblivious_sb(
                    c,
                    &ScratchPool::new(),
                    &jump,
                    vals,
                    obliv_core::Engine::BitonicRec,
                );
            } else {
                run_direct(c, &jump, vals);
            }
        });
        (rep.trace_hash, rep.trace_len)
    };
    let direct_leaks = t(&list_a, false) != t(&list_b, false);
    let obliv_hides = t(&list_a, true) == t(&list_b, true);
    println!("\ndirect traces differ across secret lists? {direct_leaks} (leakage)");
    println!("oblivious traces identical?                {obliv_hides}");
    assert!(direct_leaks && obliv_hides);
}
