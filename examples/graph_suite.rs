// The §5 application suite on one random graph/tree family: oblivious
// connected components, minimum spanning forest, list ranking, rooted-tree
// statistics, and tree contraction.
//
// ```sh
// cargo run --release --example graph_suite
// ```

use dob::prelude::*;
use graphs::{
    kruskal_msf_weight, random_expr_tree, random_graph, random_list, random_tree,
    random_weighted_graph,
};
use obliv_core::Engine;

fn main() {
    let pool = Pool::with_default_threads();
    let scratch = ScratchPool::new();

    // Connected components on a sparse random graph.
    let n = dob::env_size("DOB_GRAPH_N", 512);
    let edges = random_graph(n, n + n / 2, 42);
    let labels = pool.run(|c| connected_components(c, &scratch, n, &edges, Engine::BitonicRec));
    let comps: std::collections::HashSet<u64> = labels.iter().copied().collect();
    println!(
        "CC: {} vertices, {} edges -> {} components",
        n,
        edges.len(),
        comps.len()
    );

    // Minimum spanning forest on a weighted graph.
    let wedges = random_weighted_graph(n, 3 * n, 7);
    let result = pool.run(|c| msf(c, &scratch, n, &wedges, Engine::BitonicRec));
    let oracle = kruskal_msf_weight(n, &wedges);
    println!(
        "MSF: total weight {} (Kruskal oracle {}), {} forest edges",
        result.total_weight,
        oracle,
        result.in_forest.iter().filter(|&&b| b).count()
    );
    assert_eq!(result.total_weight, oracle);

    // List ranking.
    let ln = dob::env_size("DOB_GRAPH_LIST_N", 2048);
    let (succ, _) = random_list(ln, 3);
    let ranks = pool.run(|c| list_rank_oblivious_unit(c, &scratch, &succ, 5));
    println!(
        "LR: {ln}-node list ranked; head has rank {}",
        ranks.iter().max().unwrap()
    );

    // Rooted-tree statistics via Euler tour.
    let tn = dob::env_size("DOB_GRAPH_TREE_N", 256);
    let tree = random_tree(tn, 9);
    let stats = pool.run(|c| rooted_tree_stats(c, &scratch, tn, &tree, 0, Engine::BitonicRec, 4));
    println!(
        "ET-tree: {} nodes, height {} (max depth), root subtree size {}",
        tn,
        stats.depth.iter().max().unwrap(),
        stats.subtree[0]
    );

    // Tree contraction: evaluate a random arithmetic expression.
    let leaves = dob::env_size("DOB_GRAPH_EXPR_LEAVES", 128);
    let expr = random_expr_tree(leaves, 11);
    let value = pool.run(|c| contract_eval(c, &scratch, &expr, Engine::BitonicRec, 13));
    println!(
        "TC: expression over {leaves} leaves evaluates to {value} (oracle {})",
        expr.eval()
    );
    assert_eq!(value, expr.eval());
}
