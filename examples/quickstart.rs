// Quickstart: obliviously sort data on the work-stealing pool, then watch
// the cost model and the adversary's view.
//
// ```sh
// cargo run --release --example quickstart
// ```

use dob::prelude::*;

fn main() {
    // 1. Real parallel execution: sort 100k records obliviously.
    let n = dob::env_size("DOB_QUICKSTART_N", 100_000);
    let pool = Pool::with_default_threads();
    // One scratch arena for the whole process: every kernel below leases
    // its working buffers from it instead of allocating.
    let scratch = ScratchPool::new();
    let mut data: Vec<u64> = (0..n as u64)
        .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) >> 16)
        .collect();

    let t0 = std::time::Instant::now();
    let outcome =
        pool.run(|c| oblivious_sort_u64(c, &scratch, &mut data, OSortParams::practical(n), 42));
    println!(
        "obliviously sorted {n} records in {:?} on {} threads (orp attempts {}, sort attempts {})",
        t0.elapsed(),
        pool.num_threads(),
        outcome.orp_attempts,
        outcome.sort_attempts,
    );
    assert!(data.windows(2).all(|w| w[0] <= w[1]));

    // 2. The cost model: work, span, cache misses of the same computation.
    let m = dob::env_size("DOB_QUICKSTART_M", 4096);
    let (_, report) = measure(CacheConfig::default(), TraceMode::Hash, |c| {
        let mut v: Vec<u64> = (0..m as u64).rev().collect();
        oblivious_sort_u64(c, &scratch, &mut v, OSortParams::practical(m), 42);
    });
    println!("\ncost model at n = {m}: {report}");
    println!("parallelism (W/T∞): {:.0}x", report.parallelism());

    // 3. The security claim, concretely: two different inputs, same coins,
    //    identical adversary traces. Exact per-coin trace equality holds in
    //    the regime where the final sorter is the fixed bitonic network
    //    (n ≤ 2048); above that, REC-SORT's post-ORP phase is oblivious in
    //    the *distributional* sense of Definition 1 (§C.4 composition — see
    //    the private_analytics example for that regime).
    let k = m.min(2000);
    let run = |input: Vec<u64>| {
        let (_, rep) = measure(CacheConfig::default(), TraceMode::Hash, |c| {
            let mut v = input.clone();
            oblivious_sort_u64(c, &scratch, &mut v, OSortParams::practical(k), 7);
        });
        (rep.trace_hash, rep.trace_len)
    };
    let a = run((0..k as u64).collect());
    let b = run((0..k as u64).rev().collect());
    assert_eq!(a, b);
    println!(
        "\nadversary trace for ascending vs descending input (n = {k}): identical ({} events)",
        a.1
    );
}
