//! # dob — Data Oblivious Algorithms for Multicores
//!
//! Facade crate for the reproduction of Ramachandran & Shi,
//! *Data Oblivious Algorithms for Multicores* (SPAA 2021). Re-exports the
//! workspace's public API; see the README for the architecture and
//! DESIGN.md for the paper-to-module map.
//!
//! ```
//! use dob::prelude::*;
//!
//! let pool = Pool::new(2);
//! let scratch = ScratchPool::new();
//! let mut data: Vec<u64> = (0..2000).rev().collect();
//! pool.run(|c| oblivious_sort_u64(c, &scratch, &mut data, OSortParams::practical(2000), 42));
//! assert!(data.windows(2).all(|w| w[0] <= w[1]));
//! ```

pub use fj;
pub use graphs;
pub use metrics;
pub use obliv_core;
pub use pram;
pub use sortnet;
pub use store;

/// Read a workload size from the environment, falling back to `default`
/// when the variable is unset or unparseable. The examples use this (and
/// `tests/examples_smoke.rs` relies on it) to shrink their workloads via
/// `DOB_*` knobs.
pub fn env_size(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// The commonly used names, one `use` away.
pub mod prelude {
    pub use fj::{par_for, Ctx, Deferred, Pool, SeqCtx};
    pub use graphs::{
        connected_components, contract_eval, list_rank_oblivious_unit, msf, rooted_tree_stats,
    };
    pub use metrics::{
        measure, CacheConfig, CostReport, MeterCtx, ScratchGuard, ScratchPool, TraceMode, Tracked,
    };
    pub use obliv_core::{
        oblivious_sort, oblivious_sort_u64, orp, send_receive, Engine, Item, OSortParams,
        OrbaParams,
    };
    pub use pram::{run_direct, run_oblivious_sb, Opram, OramConfig};
    pub use sortnet::{sort_slice_rec, Network};
    pub use store::{
        shard_of, Durability, Epoch, EpochHandle, EpochPath, EpochTarget, Health, Op, OpResult,
        PipelineTarget, PipelinedStore, RetryPolicy, ShardConfig, ShardedStore, ShrinkPolicy,
        Store, StoreConfig, StoreError, StoreStats, Ticket,
    };
}
