//! Batched recursive tree ORAM — the large-space simulation substrate of
//! Theorem 4.2.
//!
//! Structural skeleton of Chan–Chung–Shi's Circuit OPRAM \[CCS17\] as the
//! paper uses it (see DESIGN.md §4 for the documented simplifications):
//!
//! * a binary **bucket tree** per recursion level, stored in a
//!   [`TreeLayout`] (vEB by default — §4.2's cache modification);
//! * **recursion levels of position maps** with χ = 2 compression: map
//!   level k packs the leaves of two level-(k−1) addresses per entry, down
//!   to a constant-size top map that is scanned in full (fixed pattern);
//! * **fixed-capacity stash** with deterministic reverse-lexicographic
//!   eviction of two paths per access (overflow is monitored, not proven);
//! * **batched accesses**: conflict resolution by oblivious sort, one tree
//!   walk per distinct address, results broadcast back with oblivious
//!   send-receive — the fetch/route structure of \[CCS17\]'s per-step
//!   simulation.
//!
//! Path choices are fresh uniform leaves independent of the address
//! sequence (the classic tree-ORAM argument); bucket and stash scans are
//! fixed-size, so the trace for a fixed `(s, #accesses, seed)` depends on
//! the *coins*, not on the stored values.

use crate::veb::{tree_nodes, TreeLayout};
use fj::Ctx;
use metrics::{ScratchPool, Tracked};
use obliv_core::scan::Schedule;
use obliv_core::slot::composite_key;
use obliv_core::{send_receive_u64, Engine, TagCell};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One storage slot in a bucket, the stash, or a gathered path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OramSlot {
    pub full: bool,
    pub addr: u64,
    pub leaf: u64,
    pub val: u64,
}

/// Tuning for the tree ORAM.
#[derive(Clone, Copy, Debug)]
pub struct OramConfig {
    /// Slots per bucket (classic Path-ORAM uses 4-5).
    pub bucket: usize,
    /// Stash capacity (fixed; scans always cover all of it).
    pub stash: usize,
    /// Tree layout — `Veb` is the §4.2 cache-efficient choice.
    pub layout: TreeLayout,
}

impl Default for OramConfig {
    fn default() -> Self {
        OramConfig {
            bucket: 5,
            stash: 96,
            layout: TreeLayout::Veb,
        }
    }
}

/// A single-level bucket tree with a fixed stash.
pub struct TreeOram {
    height: usize,
    bucket: usize,
    layout: TreeLayout,
    store: Vec<OramSlot>,
    stash: Vec<OramSlot>,
    evict_ctr: u64,
    /// Peak stash occupancy observed (monitoring, §4.2 simplification).
    pub max_stash: usize,
    /// Reusable eviction scratch (private, untraced memory): gathered
    /// path∪stash slots, placement marks, and the staged bucket layout.
    /// Field-held so steady-state accesses perform no heap allocation.
    evict_pool: Vec<OramSlot>,
    evict_used: Vec<bool>,
    evict_layout: Vec<OramSlot>,
}

impl TreeOram {
    /// A tree with at least `capacity` leaves-worth of room.
    pub fn new(capacity: usize, cfg: OramConfig) -> Self {
        // Leaves ≈ capacity/bucket, height = log2(leaves) + 1; min height 1.
        let leaves = (capacity.div_ceil(cfg.bucket)).next_power_of_two().max(1);
        let height = leaves.trailing_zeros() as usize + 1;
        TreeOram {
            height,
            bucket: cfg.bucket,
            layout: cfg.layout,
            store: vec![OramSlot::default(); tree_nodes(height) * cfg.bucket],
            stash: vec![OramSlot::default(); cfg.stash],
            evict_ctr: 0,
            max_stash: 0,
            evict_pool: Vec::new(),
            evict_used: Vec::new(),
            evict_layout: Vec::new(),
        }
    }

    /// Number of leaves (valid leaf labels are `0..leaves`).
    pub fn leaves(&self) -> u64 {
        1u64 << (self.height - 1)
    }

    #[allow(dead_code)]
    fn bucket_base(&self, depth: usize, idx: usize) -> usize {
        self.layout.pos(self.height, depth, idx) * self.bucket
    }

    /// Read-and-remove `addr` along the path to `leaf`, then reinsert it
    /// with `new_leaf` and value `new_val(old)`; returns the old value
    /// (0 if absent). All scans are fixed-size.
    pub fn access<C: Ctx>(
        &mut self,
        c: &C,
        addr: u64,
        leaf: u64,
        new_leaf: u64,
        new_val: impl FnOnce(Option<u64>) -> u64,
    ) -> Option<u64> {
        let height = self.height;
        let bucket = self.bucket;
        let mut found: Option<u64> = None;

        // Scan the path buckets (read + conditional blind, fixed pattern).
        {
            let mut st = Tracked::new(c, &mut self.store);
            for d in 0..height {
                let idx = (leaf >> (height - 1 - d)) as usize;
                let base = self.layout.pos(height, d, idx) * bucket;
                for k in 0..bucket {
                    let mut sl = st.get(c, base + k);
                    let hit = sl.full && sl.addr == addr;
                    if hit {
                        found = Some(sl.val);
                    }
                    sl.full &= !hit;
                    st.set(c, base + k, sl); // unconditional write-back
                }
            }
        }
        // Scan the whole stash.
        {
            let mut st = Tracked::new(c, &mut self.stash);
            for k in 0..st.len() {
                let mut sl = st.get(c, k);
                let hit = sl.full && sl.addr == addr;
                if hit {
                    found = Some(sl.val);
                }
                sl.full &= !hit;
                st.set(c, k, sl);
            }
        }

        // Reinsert into the stash with the fresh leaf.
        let fresh = OramSlot {
            full: true,
            addr,
            leaf: new_leaf,
            val: new_val(found),
        };
        self.stash_insert(c, fresh);

        // Deterministic reverse-lexicographic eviction of two paths.
        for _ in 0..2 {
            let path = reverse_bits(self.evict_ctr, (height - 1) as u32) % self.leaves();
            self.evict_ctr += 1;
            self.evict_path(c, path);
        }
        let occupied = self.stash.iter().filter(|s| s.full).count();
        self.max_stash = self.max_stash.max(occupied);
        found
    }

    fn stash_insert<C: Ctx>(&mut self, c: &C, slot: OramSlot) {
        let mut st = Tracked::new(c, &mut self.stash);
        let mut placed = false;
        for k in 0..st.len() {
            let cur = st.get(c, k);
            let take = !placed && !cur.full;
            // Unconditional write keeps the pattern fixed.
            st.set(c, k, if take { slot } else { cur });
            placed |= take;
        }
        assert!(placed, "ORAM stash overflow (capacity {})", st.len());
    }

    /// Greedy write-back along the path to `leaf`: gather path ∪ stash,
    /// then refill buckets deepest-first with elements whose leaf shares
    /// the required prefix; leftovers return to the stash.
    ///
    /// The host-visible pattern is fixed for a given `(height, bucket,
    /// stash, leaf)`: the gather reads every path/stash slot, the
    /// placement is computed in untraced private memory, and the
    /// write-back unconditionally rewrites every path bucket slot and
    /// every stash slot — how many slots carry real elements never shows.
    fn evict_path<C: Ctx>(&mut self, c: &C, leaf: u64) {
        let height = self.height;
        let bucket = self.bucket;
        // Reusable scratch (taken out so `self`'s tracked slices can be
        // borrowed alongside); no allocation once warm.
        let mut pool = std::mem::take(&mut self.evict_pool);
        let mut used = std::mem::take(&mut self.evict_used);
        let mut layout = std::mem::take(&mut self.evict_layout);
        pool.clear();

        {
            let st = Tracked::new(c, &mut self.store);
            for d in 0..height {
                let idx = (leaf >> (height - 1 - d)) as usize;
                let base = self.layout.pos(height, d, idx) * bucket;
                for k in 0..bucket {
                    pool.push(st.get(c, base + k));
                }
            }
        }
        {
            let st = Tracked::new(c, &mut self.stash);
            for k in 0..st.len() {
                pool.push(st.get(c, k));
            }
        }

        // Deepest-first placement, staged in private memory.
        used.clear();
        used.resize(pool.len(), false);
        layout.clear();
        layout.resize(height * bucket, OramSlot::default());
        for d in (0..height).rev() {
            let mut filled = 0;
            for (i, sl) in pool.iter().enumerate() {
                if filled == bucket {
                    break;
                }
                if used[i] || !sl.full {
                    continue;
                }
                // Slot may live at depth d iff its leaf shares the top
                // d+1-bit prefix with the eviction path.
                let shift = height - 1 - d;
                if (sl.leaf >> shift) == (leaf >> shift) {
                    layout[d * bucket + filled] = *sl;
                    used[i] = true;
                    filled += 1;
                }
            }
            c.work(pool.len() as u64);
        }

        // Fixed-pattern write-back: every path bucket slot, then every
        // stash slot, written exactly once.
        {
            let mut st = Tracked::new(c, &mut self.store);
            for d in 0..height {
                let idx = (leaf >> (height - 1 - d)) as usize;
                let base = self.layout.pos(height, d, idx) * bucket;
                for k in 0..bucket {
                    st.set(c, base + k, layout[d * bucket + k]);
                }
            }
        }
        {
            let mut st = Tracked::new(c, &mut self.stash);
            let mut leftovers = pool
                .iter()
                .zip(used.iter())
                .filter(|(sl, &u)| !u && sl.full)
                .map(|(sl, _)| *sl);
            for k in 0..st.len() {
                st.set(c, k, leftovers.next().unwrap_or_default());
            }
            assert!(
                leftovers.next().is_none(),
                "ORAM stash overflow during eviction"
            );
        }

        self.evict_pool = pool;
        self.evict_used = used;
        self.evict_layout = layout;
    }
}

fn reverse_bits(x: u64, bits: u32) -> u64 {
    if bits == 0 {
        return 0;
    }
    x.reverse_bits() >> (64 - bits)
}

// ---------------------------------------------------------------------------
// Recursive OPRAM
// ---------------------------------------------------------------------------

/// Address space at or below this size is kept in a flat, fully scanned
/// top-level position map.
const TOP_THRESHOLD: usize = 64;

/// Recursive position-map ORAM over `s` addresses with batched access.
pub struct Opram {
    s: usize,
    data: TreeOram,
    /// maps[k] stores, at its address `j`, the packed leaves of level-k−1
    /// addresses `2j` and `2j+1` (level 0 = data tree).
    maps: Vec<TreeOram>,
    /// Flat top map: leaf of `maps.last()`'s address `j` (or of the data
    /// tree when there are no maps).
    top: Vec<u64>,
    rng: StdRng,
    engine: Engine,
    /// Private scratch arena: batched accesses reuse sort/routing buffers
    /// across the ORAM's lifetime instead of allocating per batch.
    scratch: ScratchPool,
}

fn pack(lo: u32, hi: u32) -> u64 {
    (lo as u64) | ((hi as u64) << 32)
}

fn unpack(v: u64, bit: u64) -> u32 {
    (v >> (32 * bit)) as u32
}

fn set_half(v: u64, bit: u64, leaf: u32) -> u64 {
    let mask = 0xFFFF_FFFFu64 << (32 * bit);
    (v & !mask) | ((leaf as u64) << (32 * bit))
}

impl Opram {
    pub fn new(s: usize, cfg: OramConfig, engine: Engine, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = TreeOram::new(s.max(1), cfg);
        let mut maps = Vec::new();
        let mut space = s.max(1).div_ceil(2);
        while space > TOP_THRESHOLD {
            maps.push(TreeOram::new(space, cfg));
            space = space.div_ceil(2);
        }
        // The flat top covers the addresses of the deepest structure built.
        let covered: &TreeOram = maps.last().unwrap_or(&data);
        let top_len = if maps.is_empty() { s.max(1) } else { space * 2 };
        let top: Vec<u64> = (0..top_len)
            .map(|_| rng.gen_range(0..covered.leaves()))
            .collect();
        Opram {
            s,
            data,
            maps,
            top,
            rng,
            engine,
            scratch: ScratchPool::new(),
        }
    }

    /// Peak stash occupancy across all levels (monitoring).
    pub fn max_stash(&self) -> usize {
        self.maps
            .iter()
            .map(|t| t.max_stash)
            .chain(std::iter::once(self.data.max_stash))
            .max()
            .unwrap_or(0)
    }

    /// Single oblivious access: returns the previous value of `addr`;
    /// `write` installs a new value.
    pub fn access<C: Ctx>(&mut self, c: &C, addr: u64, write: Option<u64>) -> u64 {
        assert!((addr as usize) < self.s);
        let levels = self.maps.len();

        // Top map: fixed full scan, fetching + remapping the deepest level.
        let top_addr = (addr >> levels) as usize;
        let covered_leaves = self
            .maps
            .last()
            .map(|t| t.leaves())
            .unwrap_or_else(|| self.data.leaves());
        let new_top_leaf = self.rng.gen_range(0..covered_leaves);
        let mut leaf = 0u64;
        {
            let mut t = Tracked::new(c, &mut self.top);
            for j in 0..t.len() {
                let cur = t.get(c, j);
                let hit = j == top_addr;
                if hit {
                    leaf = cur;
                }
                t.set(c, j, if hit { new_top_leaf } else { cur });
            }
        }
        let mut incoming_new_leaf = new_top_leaf;

        // Walk the map levels from coarsest (deepest index) to finest.
        for k in (0..levels).rev() {
            let map_addr = addr >> (k + 1);
            let child_leaves = if k == 0 {
                self.data.leaves()
            } else {
                self.maps[k - 1].leaves()
            };
            let new_child_leaf = self.rng.gen_range(0..child_leaves) as u32;
            let bit = (addr >> k) & 1;
            let mut fetched_child_leaf = 0u32;
            let tree = &mut self.maps[k];
            tree.access(c, map_addr, leaf, incoming_new_leaf, |old| {
                let entry = old.unwrap_or_else(|| pack(0, 0));
                fetched_child_leaf = unpack(entry, bit);
                set_half(entry, bit, new_child_leaf)
            });
            leaf = fetched_child_leaf as u64;
            incoming_new_leaf = new_child_leaf as u64;
        }

        // Data tree.
        let mut old_val = 0u64;
        self.data.access(c, addr, leaf, incoming_new_leaf, |old| {
            old_val = old.unwrap_or(0);
            write.unwrap_or(old_val)
        });
        old_val
    }

    /// Batched access (the per-PRAM-step fetch of \[CCS17\]): conflict
    /// resolution by oblivious sort, one walk per distinct address, results
    /// broadcast with oblivious send-receive. `reqs[j] = (addr, write)`;
    /// returns the pre-step value of each request's address.
    pub fn access_batch<C: Ctx>(&mut self, c: &C, reqs: &[(u64, Option<u64>)]) -> Vec<u64> {
        if reqs.is_empty() {
            return Vec::new();
        }
        // Conflict resolution: sort by (addr, index); head of each run is
        // the representative (priority: earliest request's write wins).
        // Requests ride in packed 32-byte `TagCell`s (the PR-5 fast path):
        // tag = composite (addr ‖ request index) — distinct, so the
        // unstable cell network is safe — and aux = (has-write ‖ value).
        let m = reqs.len().next_power_of_two();
        let winners: Vec<(u64, Option<u64>)> = {
            // Scoped so the scratch lease ends before the mutable tree
            // walks below.
            let mut cells = self.scratch.lease(m, TagCell::filler());
            for (cell, (j, &(a, w))) in cells.iter_mut().zip(reqs.iter().enumerate()) {
                *cell = TagCell::new(
                    composite_key(a, j as u64),
                    ((w.is_some() as u128) << 64) | w.unwrap_or(0) as u128,
                );
            }
            {
                let mut t = Tracked::new(c, &mut cells);
                self.engine.sort_cells(c, &self.scratch, &mut t);
            }
            let mut winners: Vec<(u64, Option<u64>)> = Vec::new();
            for i in 0..m {
                let sl = cells[i];
                c.work(1);
                if sl.is_filler() {
                    continue;
                }
                let a = (sl.tag >> 64) as u64;
                let head =
                    i == 0 || cells[i - 1].is_filler() || (cells[i - 1].tag >> 64) as u64 != a;
                if head {
                    let (w, has_w) = (sl.aux as u64, (sl.aux >> 64) == 1);
                    winners.push((a, has_w.then_some(w)));
                }
            }
            winners
        };

        // Serve distinct addresses (sequential tree walks, as in [CCS17]'s
        // level-sequential fetch phase).
        let mut fetched: Vec<(u64, u64)> = Vec::with_capacity(winners.len());
        for &(a, w) in &winners {
            let v = self.access(c, a, w);
            fetched.push((a, v));
        }

        // Broadcast results to every request via oblivious send-receive.
        let dests: Vec<u64> = reqs.iter().map(|&(a, _)| a).collect();
        send_receive_u64(
            c,
            &self.scratch,
            &fetched,
            &dests,
            self.engine,
            Schedule::Tree,
        )
        .into_iter()
        .map(|o| o.expect("every request address was served"))
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj::SeqCtx;
    use metrics::{measure, CacheConfig, TraceMode};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;

    #[test]
    fn single_tree_roundtrip() {
        let c = SeqCtx::new();
        let mut t = TreeOram::new(64, OramConfig::default());
        let leaves = t.leaves();
        let mut rng = StdRng::seed_from_u64(1);
        let mut pos: HashMap<u64, u64> = HashMap::new();
        for a in 0..32u64 {
            let leaf = rng.gen_range(0..leaves);
            let stored_at = pos.get(&a).copied().unwrap_or(0);
            let _ = t.access(&c, a, stored_at, leaf, |_| a * 10);
            pos.insert(a, leaf);
        }
        for a in 0..32u64 {
            let leaf = rng.gen_range(0..leaves);
            let got = t.access(&c, a, pos[&a], leaf, |old| old.unwrap_or(0));
            pos.insert(a, leaf);
            assert_eq!(got, Some(a * 10), "addr {a}");
        }
    }

    #[test]
    fn opram_matches_hashmap_reference() {
        let c = SeqCtx::new();
        let s = 500usize;
        let mut o = Opram::new(s, OramConfig::default(), Engine::BitonicRec, 42);
        let mut reference: HashMap<u64, u64> = HashMap::new();
        let mut rng = StdRng::seed_from_u64(7);
        for step in 0..400 {
            let addr = rng.gen_range(0..s as u64);
            if rng.gen_bool(0.5) {
                let v = step as u64 * 3 + 1;
                o.access(&c, addr, Some(v));
                reference.insert(addr, v);
            } else {
                let got = o.access(&c, addr, None);
                assert_eq!(
                    got,
                    reference.get(&addr).copied().unwrap_or(0),
                    "addr {addr}"
                );
            }
        }
        assert!(o.max_stash() < 90, "stash peaked at {}", o.max_stash());
    }

    #[test]
    fn batched_access_serves_duplicates_and_priority() {
        let c = SeqCtx::new();
        let mut o = Opram::new(100, OramConfig::default(), Engine::BitonicRec, 3);
        o.access_batch(&c, &[(5, Some(50)), (6, Some(60))]);
        // Duplicate reads of 5; a write to 6 from a later request than a
        // read: the read still sees the pre-step... the first request wins
        // conflict resolution, so the batch observes 6 = 60 and writes 61.
        let got = o.access_batch(&c, &[(5, None), (6, Some(61)), (5, None), (6, None)]);
        assert_eq!(got, vec![50, 60, 50, 60]);
        let after = o.access_batch(&c, &[(6, None)]);
        assert_eq!(after, vec![61]);
    }

    #[test]
    fn trace_independent_of_stored_values() {
        // Same address sequence, different values ⇒ identical traces.
        let addr_seq: Vec<u64> = (0..40).map(|i| (i * 13) % 64).collect();
        let run = |scale: u64| {
            let (_, rep) = measure(CacheConfig::default(), TraceMode::Hash, |c| {
                let mut o = Opram::new(64, OramConfig::default(), Engine::BitonicRec, 9);
                for (i, &a) in addr_seq.iter().enumerate() {
                    let w = (i % 2 == 0).then_some(scale * (i as u64 + 1));
                    o.access(c, a, w);
                }
            });
            (rep.trace_hash, rep.trace_len)
        };
        assert_eq!(run(1), run(1_000_003));
    }

    #[test]
    fn veb_layout_reduces_path_misses() {
        // Same workload, tiny cache: vEB must miss less than level order.
        let workload = |layout: TreeLayout| {
            let (_, rep) = measure(CacheConfig::new(256, 8), TraceMode::Off, |c| {
                let cfg = OramConfig {
                    layout,
                    ..OramConfig::default()
                };
                let mut o = Opram::new(2048, cfg, Engine::BitonicRec, 11);
                for i in 0..64u64 {
                    o.access(c, (i * 37) % 2048, Some(i));
                }
            });
            rep.cache_misses
        };
        let veb = workload(TreeLayout::Veb);
        let lvl = workload(TreeLayout::Level);
        assert!(
            veb < lvl,
            "vEB misses {veb} should undercut level-order {lvl}"
        );
    }
}
