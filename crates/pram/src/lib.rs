//! # pram — CRCW PRAM substrate and its oblivious simulations (§4)
//!
//! * [`model`] — the CRCW PRAM machine (priority write rule) with programs
//!   in read/compute/write normal form;
//! * [`direct`] — insecure executor (correctness oracle, Fact B.1
//!   baseline);
//! * [`obliv_sb`] — Theorem 4.1: oblivious simulation of space-bounded
//!   PRAMs at `O(sort(p+s))` per step, built from oblivious sort +
//!   send-receive + fixed-pattern scans;
//! * [`veb`] — van Emde Boas tree layout (§4.2 cache modification);
//! * [`oram`] — Theorem 4.2 substrate: batched recursive tree ORAM with
//!   position-map recursion, fixed stash, reverse-lexicographic eviction,
//!   and oblivious conflict resolution / result routing;
//! * [`progs`] — demo PRAM programs (max, histogram, pointer jumping).

pub mod direct;
pub mod model;
pub mod obliv_sb;
pub mod oram;
pub mod progs;
pub mod veb;

pub use direct::run_direct;
pub use model::{Program, WriteReq};
pub use obliv_sb::run_oblivious_sb;
pub use oram::{Opram, OramConfig, OramSlot, TreeOram};
pub use progs::{HistogramProgram, MaxProgram, PointerJumpProgram};
pub use veb::{path_blocks, tree_nodes, TreeLayout};
