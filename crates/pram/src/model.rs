//! The CRCW PRAM machine model (§4).
//!
//! A program runs `p` processors against a shared memory of `s` words for a
//! fixed number of steps. Each step decomposes — exactly as the paper's
//! simulation does — into a *read* phase (every processor may request one
//! address), a *local compute* phase, and a *write* phase (every processor
//! may emit one write). Write conflicts resolve by **priority**: the lowest
//! processor id wins (the strongest classic CRCW rule; arbitrary/common are
//! special cases).
//!
//! The step count must be data-independent (programs declare it up front);
//! this is what makes the oblivious simulation's trace a function of
//! `(p, s, steps)` alone.

use obliv_core::Val;

/// A write emitted by a processor during the write phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriteReq {
    pub addr: usize,
    pub val: u64,
}

/// A CRCW PRAM program in read/compute/write normal form.
pub trait Program: Sync {
    /// Per-processor register state.
    type State: Val;

    /// Number of processors `p`.
    fn nprocs(&self) -> usize;

    /// Shared-memory size `s` (in words).
    fn space(&self) -> usize;

    /// Fixed number of PRAM steps (data-independent).
    fn steps(&self) -> usize;

    /// Read phase of step `t`: the address processor `pid` wants, if any.
    fn read_addr(&self, t: usize, pid: usize, state: &Self::State) -> Option<usize>;

    /// Compute phase of step `t`: update local state with the fetched word
    /// and optionally emit a write.
    fn compute(
        &self,
        t: usize,
        pid: usize,
        state: &mut Self::State,
        fetched: Option<u64>,
    ) -> Option<WriteReq>;
}

/// Resolve a batch of optional writes under the priority rule (lowest pid
/// wins) — the reference semantics used by tests and the direct executor.
pub fn resolve_priority(writes: &[Option<WriteReq>], mem: &mut [u64]) {
    // Applying in descending pid order makes the lowest pid land last.
    for w in writes.iter().rev().flatten() {
        mem[w.addr] = w.val;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_rule_lowest_pid_wins() {
        let mut mem = vec![0u64; 4];
        let writes = vec![
            Some(WriteReq { addr: 1, val: 10 }), // pid 0
            Some(WriteReq { addr: 1, val: 20 }), // pid 1
            None,
            Some(WriteReq { addr: 2, val: 30 }), // pid 3
        ];
        resolve_priority(&writes, &mut mem);
        assert_eq!(mem, vec![0, 10, 30, 0]);
    }
}
