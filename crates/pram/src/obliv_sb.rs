//! Oblivious, binary fork-join simulation of space-bounded CRCW PRAMs
//! (Theorem 4.1).
//!
//! Each PRAM step is simulated with oblivious primitives only:
//!
//! 1. **Read step** — all `p` read requests are served from the `s`-word
//!    memory array with one oblivious *send-receive* (every processor
//!    always submits a request; absent reads become dummy keys).
//! 2. **Local compute** — needs no simulation.
//! 3. **Write step** — an oblivious sort by `(address, pid)` plus a
//!    fixed-pattern neighbour scan suppresses duplicate writes under the
//!    CRCW priority rule (§4.1's "O(1) oblivious sorts"); a second
//!    send-receive then updates every memory cell (hit ⇒ new value,
//!    miss ⇒ old value, selected branch-free).
//!
//! Per-step cost is `O(W_sort(p+s))` work, `O(Q_sort(p+s))` cache misses
//! and `O(T_sort(p+s))` span — Theorem 4.1. The host-visible access
//! pattern depends only on `(p, s, steps)`: program addresses only ever
//! travel as *data* (sort keys), never as host addresses.

use crate::model::{Program, WriteReq};
use fj::{grain_for, par_for, Ctx};
use metrics::{ScratchPool, Tracked};
use obliv_core::scan::Schedule;
use obliv_core::slot::composite_key;
use obliv_core::{send_receive_u64, Engine, TagCell};

/// Dummy key: no memory cell has this address (`s < 2⁶⁴`).
const DUMMY: u64 = u64::MAX;

/// Obliviously execute `prog`; returns the final memory contents.
pub fn run_oblivious_sb<C: Ctx, P: Program>(
    c: &C,
    scratch: &ScratchPool,
    prog: &P,
    mem_init: &[u64],
    engine: Engine,
) -> Vec<u64> {
    let p = prog.nprocs();
    let s = prog.space();
    assert!(mem_init.len() <= s);
    let mut mem = vec![0u64; s];
    mem[..mem_init.len()].copy_from_slice(mem_init);

    let mut states = vec![P::State::default(); p];
    let all_addrs: Vec<u64> = (0..s as u64).collect();

    for t in 0..prog.steps() {
        // --- Read step: one send-receive serves the whole batch.
        let mut dests = vec![DUMMY; p];
        {
            let mut d_t = Tracked::new(c, &mut dests);
            let dr = d_t.as_raw();
            let states_ref = &states;
            par_for(c, 0, p, grain_for(c), &|c, pid| {
                let a = prog
                    .read_addr(t, pid, &states_ref[pid])
                    .map_or(DUMMY, |a| a as u64);
                // SAFETY: per-pid slot.
                unsafe { dr.set(c, pid, a) };
            });
        }
        let sources: Vec<(u64, u64)> = snapshot_memory(c, &mut mem);
        let fetched = send_receive_u64(c, scratch, &sources, &dests, engine, Schedule::Tree);

        // --- Local compute.
        let mut writes: Vec<Option<WriteReq>> = vec![None; p];
        {
            let mut w_t = Tracked::new(c, &mut writes);
            let wr = w_t.as_raw();
            let mut st_t = Tracked::new(c, &mut states);
            let sr = st_t.as_raw();
            let fetched_ref = &fetched;
            par_for(c, 0, p, grain_for(c), &|c, pid| unsafe {
                // SAFETY: per-pid slots.
                let mut st = sr.get(c, pid);
                let w = prog.compute(t, pid, &mut st, fetched_ref[pid]);
                sr.set(c, pid, st);
                wr.set(c, pid, w);
            });
        }

        // --- Write step: conflict resolution + memory update.
        let winners = resolve_conflicts(c, scratch, &writes, engine);
        let updates = send_receive_u64(c, scratch, &winners, &all_addrs, engine, Schedule::Tree);
        {
            let mut mem_t = Tracked::new(c, &mut mem);
            let mr = mem_t.as_raw();
            let updates_ref = &updates;
            par_for(c, 0, s, grain_for(c), &|c, i| unsafe {
                // SAFETY: per-cell slot. Unconditional read-modify-write
                // keeps the pattern fixed.
                let old = mr.get(c, i);
                let new = updates_ref[i].unwrap_or(old);
                mr.set(c, i, new);
            });
        }
    }
    mem
}

/// Fixed-pattern snapshot of memory as (address, value) sender pairs.
fn snapshot_memory<C: Ctx>(c: &C, mem: &mut [u64]) -> Vec<(u64, u64)> {
    let mut mem_t = Tracked::new(c, mem);
    let mr = mem_t.as_raw();
    let mut out = vec![(0u64, 0u64); mr.len()];
    {
        let mut o_t = Tracked::new(c, &mut out);
        let or = o_t.as_raw();
        par_for(c, 0, mr.len(), grain_for(c), &|c, i| unsafe {
            // SAFETY: per-cell slots.
            or.set(c, i, (i as u64, mr.get(c, i)));
        });
    }
    out
}

/// CRCW priority conflict resolution: sort the `p` optional writes by
/// `(addr, pid)`, keep the head of every address run, and blind the rest to
/// dummies. Output length is exactly `p` (fixed), with winners carrying
/// distinct addresses.
fn resolve_conflicts<C: Ctx>(
    c: &C,
    scratch: &ScratchPool,
    writes: &[Option<WriteReq>],
    engine: Engine,
) -> Vec<(u64, u64)> {
    let p = writes.len();
    let m = p.next_power_of_two();
    // Write requests ride in packed 32-byte `TagCell`s (the PR-5 fast
    // path): tag = composite (addr ‖ processor id) — distinct, so the
    // unstable cell network is safe — and aux = (addr ‖ value).
    let mut cells = scratch.lease(m, TagCell::filler());
    for (cell, (pid, w)) in cells.iter_mut().zip(writes.iter().enumerate()) {
        let (addr, val) = w.map_or((DUMMY, 0), |w| (w.addr as u64, w.val));
        *cell = TagCell::new(
            composite_key(addr, pid as u64),
            ((addr as u128) << 64) | val as u128,
        );
    }

    let mut t = Tracked::new(c, &mut cells);
    engine.sort_cells(c, scratch, &mut t);
    // Two phases so neighbour reads never observe blinded slots (a fused
    // read-modify pass would let iteration i see i−1 already blinded and
    // mistake a run continuation for a head).
    let winner: Vec<bool> = {
        let tr = t.as_raw();
        metrics::par_collect(c, m, &|c, i| {
            // SAFETY: read-only phase.
            let sl = unsafe { tr.get(c, i) };
            let addr = (sl.tag >> 64) as u64;
            let head = i == 0 || (unsafe { tr.get(c, i - 1) }.tag >> 64) as u64 != addr;
            c.work(1);
            !sl.is_filler() && head && addr != DUMMY
        })
    };
    {
        let tr = t.as_raw();
        let winner_ref = &winner;
        par_for(c, 0, m, grain_for(c), &|c, i| unsafe {
            // SAFETY: per-slot read-modify-write, no neighbour access.
            let mut sl = tr.get(c, i);
            sl.aux = if winner_ref[i] {
                sl.aux
            } else {
                (DUMMY as u128) << 64
            };
            tr.set(c, i, sl);
        });
    }
    let tr = t.as_raw();
    // SAFETY: read-only parallel readout.
    metrics::par_collect(c, p, &|c, i| {
        let sl = unsafe { tr.get(c, i) };
        ((sl.aux >> 64) as u64, sl.aux as u64)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::run_direct;
    use crate::progs::{HistogramProgram, MaxProgram, PointerJumpProgram};
    use fj::{Pool, SeqCtx};
    use metrics::{measure, CacheConfig, TraceMode};

    #[test]
    fn matches_direct_on_max() {
        let c = SeqCtx::new();
        let vals: Vec<u64> = (0..37).map(|i| (i * 2654435761u64) % 1000).collect();
        let prog = MaxProgram::new(vals.len());
        let direct = run_direct(&c, &prog, &vals);
        let obliv = run_oblivious_sb(&c, &ScratchPool::new(), &prog, &vals, Engine::BitonicRec);
        assert_eq!(direct, obliv);
    }

    #[test]
    fn matches_direct_on_histogram_with_conflicts() {
        let c = SeqCtx::new();
        let vals: Vec<u64> = vec![2, 0, 2, 1, 0, 2, 3, 3, 1, 0];
        let prog = HistogramProgram::new(vals.len(), 4);
        let direct = run_direct(&c, &prog, &vals);
        let obliv = run_oblivious_sb(&c, &ScratchPool::new(), &prog, &vals, Engine::BitonicRec);
        assert_eq!(direct, obliv, "priority conflict resolution must match");
    }

    #[test]
    fn long_conflict_runs_pick_the_minimum_pid() {
        // Regression: 128 processors all hammering 8 buckets creates runs
        // of length 16 in conflict resolution; every bucket must end up
        // with the *lowest* participating pid (a fused blind-while-scan
        // pass once let later run members win).
        let c = SeqCtx::new();
        let p = 128;
        let vals: Vec<u64> = (0..p as u64).map(|i| i % 8).collect();
        let prog = HistogramProgram::new(p, 8);
        let obliv = run_oblivious_sb(&c, &ScratchPool::new(), &prog, &vals, Engine::BitonicRec);
        assert_eq!(&obliv[p..p + 8], &[0, 1, 2, 3, 4, 5, 6, 7]);
        let direct = run_direct(&c, &prog, &vals);
        assert_eq!(direct, obliv);
    }

    #[test]
    fn matches_direct_on_pointer_jumping() {
        let c = SeqCtx::new();
        let succ: Vec<u64> = vec![3, 0, 1, 5, 2, 5]; // chain ending at 5
        let prog = PointerJumpProgram::new(succ.len());
        let direct = run_direct(&c, &prog, &succ);
        let obliv = run_oblivious_sb(&c, &ScratchPool::new(), &prog, &succ, Engine::BitonicRec);
        assert_eq!(direct, obliv);
    }

    #[test]
    fn trace_is_input_independent() {
        // Histogram's write addresses depend on the data; the simulation's
        // host trace must not.
        let run = |vals: Vec<u64>| {
            let (_, rep) = measure(CacheConfig::default(), TraceMode::Hash, |c| {
                let prog = HistogramProgram::new(vals.len(), 8);
                run_oblivious_sb(c, &ScratchPool::new(), &prog, &vals, Engine::BitonicRec);
            });
            (rep.trace_hash, rep.trace_len)
        };
        let a = run((0..32).map(|i| i % 8).collect());
        let b = run(vec![5; 32]);
        assert_eq!(
            a, b,
            "oblivious PRAM simulation leaked data-dependent addresses"
        );
    }

    #[test]
    fn parallel_execution_matches() {
        let pool = Pool::new(4);
        let vals: Vec<u64> = (0..64).map(|i| i * 31 % 257).collect();
        let prog = MaxProgram::new(vals.len());
        let sp = ScratchPool::new();
        let seq = run_oblivious_sb(&SeqCtx::new(), &sp, &prog, &vals, Engine::BitonicRec);
        let par = pool.run(|c| run_oblivious_sb(c, &sp, &prog, &vals, Engine::BitonicRec));
        assert_eq!(seq, par);
    }
}
