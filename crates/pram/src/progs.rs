//! Demo CRCW PRAM programs used by tests and the Table 2 benches.

use crate::model::{Program, WriteReq};

/// Parallel maximum by doubling: step `t` has processor `i` read
/// `mem[i + 2^t]` and keep the max at `mem[i]`. After `⌈log₂ p⌉` steps,
/// `mem[0]` holds the maximum. Addresses are data-independent, but the
/// *values* written depend on the data — which is exactly what an oblivious
/// simulation must (and does) hide from the value-dependent write targets
/// of other programs.
pub struct MaxProgram {
    n: usize,
    steps: usize,
}

impl MaxProgram {
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        let steps = (usize::BITS - (n - 1).max(1).leading_zeros()) as usize;
        MaxProgram {
            n,
            steps: steps.max(1),
        }
    }
}

/// State: (my current max, fetched partner value valid).
impl Program for MaxProgram {
    type State = u64;

    fn nprocs(&self) -> usize {
        self.n
    }

    fn space(&self) -> usize {
        self.n
    }

    fn steps(&self) -> usize {
        2 * self.steps
    }

    fn read_addr(&self, t: usize, pid: usize, _state: &u64) -> Option<usize> {
        // Even sub-steps read own cell; odd sub-steps read the partner.
        if t.is_multiple_of(2) {
            Some(pid)
        } else {
            let d = 1usize << (t / 2);
            (pid + d < self.n).then_some(pid + d)
        }
    }

    fn compute(
        &self,
        t: usize,
        pid: usize,
        state: &mut u64,
        fetched: Option<u64>,
    ) -> Option<WriteReq> {
        if t.is_multiple_of(2) {
            *state = fetched.unwrap_or(0);
            None
        } else {
            let partner = fetched.unwrap_or(0);
            let m = (*state).max(partner);
            *state = m;
            Some(WriteReq { addr: pid, val: m })
        }
    }
}

/// Concurrent-write histogram: processor `i` reads `mem[i]` (its value `v`)
/// and writes its own pid into bucket `n + (v mod k)`. Conflicts exercise
/// the priority rule: each bucket ends up holding the lowest pid that
/// voted for it. Write addresses are **data-dependent**, so a non-oblivious
/// execution leaks the values — the adversarial scenario of §1.
pub struct HistogramProgram {
    n: usize,
    k: usize,
}

impl HistogramProgram {
    pub fn new(n: usize, k: usize) -> Self {
        HistogramProgram { n, k }
    }
}

impl Program for HistogramProgram {
    type State = u64;

    fn nprocs(&self) -> usize {
        self.n
    }

    fn space(&self) -> usize {
        self.n + self.k
    }

    fn steps(&self) -> usize {
        1
    }

    fn read_addr(&self, _t: usize, pid: usize, _state: &u64) -> Option<usize> {
        Some(pid)
    }

    fn compute(
        &self,
        _t: usize,
        pid: usize,
        _state: &mut u64,
        fetched: Option<u64>,
    ) -> Option<WriteReq> {
        let v = fetched.unwrap_or(0) as usize % self.k;
        Some(WriteReq {
            addr: self.n + v,
            val: pid as u64,
        })
    }
}

/// Pointer jumping over a successor array: `steps` rounds of
/// `S[i] ← S[S[i]]`, the inner loop of PRAM list ranking. Read addresses
/// are data-dependent (the list topology).
pub struct PointerJumpProgram {
    n: usize,
    rounds: usize,
}

impl PointerJumpProgram {
    pub fn new(n: usize) -> Self {
        let rounds = (usize::BITS - n.max(2).leading_zeros()) as usize;
        PointerJumpProgram { n, rounds }
    }
}

impl Program for PointerJumpProgram {
    type State = u64;

    fn nprocs(&self) -> usize {
        self.n
    }

    fn space(&self) -> usize {
        self.n
    }

    fn steps(&self) -> usize {
        2 * self.rounds
    }

    fn read_addr(&self, t: usize, pid: usize, state: &u64) -> Option<usize> {
        if t.is_multiple_of(2) {
            Some(pid) // fetch S[i]
        } else {
            Some(*state as usize % self.n) // fetch S[S[i]]
        }
    }

    fn compute(
        &self,
        t: usize,
        pid: usize,
        state: &mut u64,
        fetched: Option<u64>,
    ) -> Option<WriteReq> {
        if t.is_multiple_of(2) {
            *state = fetched.unwrap_or(0);
            None
        } else {
            let succ2 = fetched.unwrap_or(0);
            // Terminal nodes (self loops encoded as S[i] = i) stay put.
            Some(WriteReq {
                addr: pid,
                val: succ2,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::run_direct;
    use fj::SeqCtx;

    #[test]
    fn pointer_jumping_collapses_list() {
        let c = SeqCtx::new();
        // List 0 -> 1 -> 2 -> 3 -> 4 -> 4 (4 is terminal).
        let succ: Vec<u64> = vec![1, 2, 3, 4, 4];
        let prog = PointerJumpProgram::new(succ.len());
        let mem = run_direct(&c, &prog, &succ);
        assert!(
            mem.iter().all(|&s| s == 4),
            "all nodes reach the terminal: {mem:?}"
        );
    }
}
