//! van Emde Boas (vEB) tree layout.
//!
//! §4.2's first cache-complexity modification: "store all the ORAM trees …
//! in an Emde Boas layout. In this way, accessing a tree path of length
//! `O(log s)` incurs only `O(log_B s)` cache misses." The layout stores a
//! complete binary tree by recursively splitting its height: the top half
//! first, then each bottom subtree contiguously — so any root-to-leaf path
//! crosses only `O(log_B n)` blocks instead of the `O(log n)` of the
//! classic level-order (heap) layout. The `E4.veb` bench measures exactly
//! this contrast.

/// How a complete binary tree of nodes is mapped into a flat array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeLayout {
    /// Classic heap order: node `(d, i)` at `2^d − 1 + i`.
    Level,
    /// van Emde Boas recursive order.
    Veb,
}

impl TreeLayout {
    /// Array position of the node at `depth` (root = 0), index `idx` within
    /// its level, in a complete tree with `height` levels.
    pub fn pos(&self, height: usize, depth: usize, idx: usize) -> usize {
        debug_assert!(depth < height && idx < (1usize << depth));
        match self {
            TreeLayout::Level => (1usize << depth) - 1 + idx,
            TreeLayout::Veb => veb_pos(height, depth, idx),
        }
    }
}

/// Nodes in a complete binary tree with `h` levels.
#[inline]
pub fn tree_nodes(h: usize) -> usize {
    (1usize << h) - 1
}

fn veb_pos(height: usize, depth: usize, idx: usize) -> usize {
    if height == 1 {
        debug_assert_eq!(depth, 0);
        return 0;
    }
    let top_h = height / 2;
    let bot_h = height - top_h;
    if depth < top_h {
        return veb_pos(top_h, depth, idx);
    }
    // Bottom subtrees hang off the 2^top_h nodes of level top_h.
    let sub = idx >> (depth - top_h);
    let within = idx & ((1usize << (depth - top_h)) - 1);
    tree_nodes(top_h) + sub * tree_nodes(bot_h) + veb_pos(bot_h, depth - top_h, within)
}

/// Number of distinct `b`-sized blocks a root-to-leaf path to `leaf`
/// touches under `layout` (analysis helper for the E4 bench).
pub fn path_blocks(layout: TreeLayout, height: usize, leaf: usize, b: usize) -> usize {
    let mut blocks: Vec<usize> = (0..height)
        .map(|d| layout.pos(height, d, leaf >> (height - 1 - d)) / b)
        .collect();
    blocks.sort_unstable();
    blocks.dedup();
    blocks.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn veb_is_a_bijection() {
        for h in 1..=12 {
            let mut seen = HashSet::new();
            for d in 0..h {
                for i in 0..(1usize << d) {
                    let p = TreeLayout::Veb.pos(h, d, i);
                    assert!(p < tree_nodes(h), "h={h} d={d} i={i} -> {p}");
                    assert!(seen.insert(p), "duplicate position {p} (h={h})");
                }
            }
            assert_eq!(seen.len(), tree_nodes(h));
        }
    }

    #[test]
    fn level_layout_is_heap_order() {
        assert_eq!(TreeLayout::Level.pos(4, 0, 0), 0);
        assert_eq!(TreeLayout::Level.pos(4, 2, 3), 6);
        assert_eq!(TreeLayout::Level.pos(4, 3, 0), 7);
    }

    #[test]
    fn veb_small_tree_matches_hand_layout() {
        // Height 3 (7 nodes): top = height 1 (root), bottoms = height 2.
        // Order: root, then subtree of (1,0) = [(1,0),(2,0),(2,1)], then
        // subtree of (1,1).
        let l = TreeLayout::Veb;
        assert_eq!(l.pos(3, 0, 0), 0);
        assert_eq!(l.pos(3, 1, 0), 1);
        assert_eq!(l.pos(3, 2, 0), 2);
        assert_eq!(l.pos(3, 2, 1), 3);
        assert_eq!(l.pos(3, 1, 1), 4);
        assert_eq!(l.pos(3, 2, 2), 5);
        assert_eq!(l.pos(3, 2, 3), 6);
    }

    #[test]
    fn veb_paths_touch_fewer_blocks_than_level_order() {
        let h = 16; // 65535 nodes
        let b = 64;
        let leaves = 1usize << (h - 1);
        let sample: Vec<usize> = (0..64).map(|i| i * (leaves / 64)).collect();
        let veb: usize = sample
            .iter()
            .map(|&l| path_blocks(TreeLayout::Veb, h, l, b))
            .sum();
        let lvl: usize = sample
            .iter()
            .map(|&l| path_blocks(TreeLayout::Level, h, l, b))
            .sum();
        assert!(
            2 * veb < lvl,
            "vEB path blocks {veb} should be well under level-order {lvl}"
        );
        // And asymptotically: ~ log_B n blocks per path (≈ h/log2(b) + O(1)).
        let per_path = veb as f64 / sample.len() as f64;
        assert!(
            per_path <= (h as f64 / (b as f64).log2()).ceil() + 2.0,
            "{per_path}"
        );
    }
}
