//! Direct (insecure) CRCW PRAM executor: the correctness oracle.
//!
//! Reads are performed with plain indexed access — the access pattern leaks
//! every address, which is precisely what the oblivious simulations
//! ([`crate::obliv_sb`]) exist to prevent. Reads of one step run as a
//! parallel loop (this is also the classic "fork n threads per PRAM step"
//! baseline of Fact B.1); conflict resolution uses the reference priority
//! rule.

use crate::model::{resolve_priority, Program, WriteReq};
use fj::{grain_for, par_for, Ctx};
use metrics::Tracked;

/// Execute `prog` against memory initialized from `mem_init` (padded with
/// zeros to `prog.space()`); returns the final memory.
pub fn run_direct<C: Ctx, P: Program>(c: &C, prog: &P, mem_init: &[u64]) -> Vec<u64> {
    let p = prog.nprocs();
    let s = prog.space();
    assert!(mem_init.len() <= s);
    let mut mem = vec![0u64; s];
    mem[..mem_init.len()].copy_from_slice(mem_init);

    let mut states = vec![P::State::default(); p];
    let mut fetched: Vec<Option<u64>> = vec![None; p];
    let mut writes: Vec<Option<WriteReq>> = vec![None; p];

    for t in 0..prog.steps() {
        // Read phase (concurrent reads are free on a CRCW PRAM).
        {
            let mut mem_t = Tracked::new(c, &mut mem);
            let mr = mem_t.as_raw();
            let mut f_t = Tracked::new(c, &mut fetched);
            let fr = f_t.as_raw();
            let states_ref = &states;
            par_for(c, 0, p, grain_for(c), &|c, pid| {
                let got = prog
                    .read_addr(t, pid, &states_ref[pid])
                    // SAFETY: read-only on mem; fetched[pid] unique per pid.
                    .map(|a| unsafe { mr.get(c, a) });
                unsafe { fr.set(c, pid, got) };
            });
        }
        // Compute phase.
        {
            let mut w_t = Tracked::new(c, &mut writes);
            let wr = w_t.as_raw();
            let mut st_t = Tracked::new(c, &mut states);
            let sr = st_t.as_raw();
            let fetched_ref = &fetched;
            par_for(c, 0, p, grain_for(c), &|c, pid| unsafe {
                // SAFETY: per-pid slots are disjoint.
                let mut st = sr.get(c, pid);
                let w = prog.compute(t, pid, &mut st, fetched_ref[pid]);
                sr.set(c, pid, st);
                wr.set(c, pid, w);
            });
        }
        // Write phase (reference priority semantics).
        resolve_priority(&writes, &mut mem);
        c.work(p as u64);
    }
    mem
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progs::{HistogramProgram, MaxProgram};
    use fj::{Pool, SeqCtx};

    #[test]
    fn max_program_finds_maximum() {
        let c = SeqCtx::new();
        let vals: Vec<u64> = vec![3, 99, 12, 7, 54, 23, 8, 41];
        let prog = MaxProgram::new(vals.len());
        let mem = run_direct(&c, &prog, &vals);
        assert_eq!(mem[0], 99);
    }

    #[test]
    fn histogram_counts_with_priority() {
        let c = SeqCtx::new();
        let vals: Vec<u64> = vec![0, 1, 1, 2, 2, 2, 3, 0];
        let prog = HistogramProgram::new(vals.len(), 4);
        let mem = run_direct(&c, &prog, &vals);
        // Each bucket holds the lowest pid that voted for it.
        assert_eq!(&mem[8..12], &[0, 1, 3, 6]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let pool = Pool::new(4);
        let vals: Vec<u64> = (0..256).map(|i| (i * 2654435761u64) % 10_000).collect();
        let prog = MaxProgram::new(vals.len());
        let seq = run_direct(&SeqCtx::new(), &prog, &vals);
        let par = pool.run(|c| run_direct(c, &prog, &vals));
        assert_eq!(seq[0], par[0]);
        assert_eq!(seq[0], *vals.iter().max().unwrap());
    }
}
