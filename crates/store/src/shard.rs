//! One shard of the epoch engine: the resident table, pending log,
//! optional tree-ORAM mirror and analytics snapshot for a slice of the key
//! space, plus the per-shard epoch pipelines.
//!
//! A [`Shard`] is the unit of commit parallelism: `ShardedStore` routes
//! every epoch's operations to shards obliviously and then commits all
//! shards concurrently on the fork-join pool — each shard's
//! [`merge_epoch`](crate::merge) takes the shard's table by `&mut`, leases
//! its scratch from the shared (thread-safe) [`ScratchPool`], and touches
//! no state outside the shard, so commits are fully independent. A plain
//! [`crate::Store`] is exactly the 1-shard special case.

use crate::merge::{merge_epoch, Rec};
use crate::op::{kind, size_class, EpochPath, FlatOp, OpResult, StoreStats};
use crate::store::StoreConfig;
use fj::Ctx;
use metrics::ScratchPool;
use pram::Opram;

/// Table/pending/ORAM/analytics state for one slice of the key space.
pub(crate) struct Shard {
    cfg: StoreConfig,
    /// Resident records, key-sorted, padded to `size_class(live_upper)`.
    table: Vec<Rec>,
    /// Public upper bound on the number of distinct present keys.
    live_upper: usize,
    /// Ops applied to the ORAM mirror but not yet merged into the table.
    pending: Vec<FlatOp>,
    oram: Option<Opram>,
    stats: StoreStats,
    merges: u64,
}

impl Shard {
    /// `salt` decorrelates the ORAM position-map coins of sibling shards.
    pub fn new(cfg: StoreConfig, salt: u64) -> Self {
        let oram = cfg.oram_key_space.map(|s| {
            let seed = cfg.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            Opram::new(s.max(1), cfg.oram, cfg.engine, seed)
        });
        Shard {
            cfg,
            table: vec![Rec::default(); size_class(0)],
            live_upper: 0,
            pending: Vec::new(),
            oram,
            stats: StoreStats::default(),
            merges: 0,
        }
    }

    /// Rebuild a shard from a durable snapshot: the packed table plus the
    /// public counters, with the ORAM mirror (when configured) rebuilt by
    /// one fixed-pattern access per public table slot. Snapshots are only
    /// taken at merge closes, where the pending log is empty and the
    /// mirror equals the table — so table + counters is the whole state.
    pub fn from_snapshot<C: Ctx>(
        c: &C,
        cfg: StoreConfig,
        salt: u64,
        table: Vec<Rec>,
        live_upper: usize,
        merges: u64,
        stats: StoreStats,
    ) -> Self {
        let mut shard = Shard::new(cfg, salt);
        if let Some(oram) = shard.oram.as_mut() {
            // One access per slot, real or filler (fillers walk key 0):
            // the rebuild trace is a function of the public capacity only.
            for r in &table {
                let (key, write) = if r.present {
                    (r.key, Some(r.val + 1))
                } else {
                    (0, None)
                };
                oram.access(c, key, write);
            }
        }
        shard.table = table;
        shard.live_upper = live_upper;
        shard.merges = merges;
        shard.stats = stats;
        shard
    }

    /// The path a padded batch of class `b` would take right now — a public
    /// function of the class and the (public) pending-log length.
    pub fn epoch_path(&self, b: usize) -> EpochPath {
        match self.oram {
            None => EpochPath::Merge,
            Some(_)
                if b >= self.cfg.oram_threshold
                    || self.pending.len() + b > self.cfg.pending_limit =>
            {
                EpochPath::Merge
            }
            Some(_) => EpochPath::Oram,
        }
    }

    /// Run one epoch over an already padded `batch` whose `n_results`
    /// leading slots are real ops, on the given (publicly selected) path.
    pub fn execute<C: Ctx>(
        &mut self,
        c: &C,
        scratch: &ScratchPool,
        batch: &[FlatOp],
        n_results: usize,
        path: EpochPath,
    ) -> Vec<OpResult> {
        match path {
            EpochPath::Oram => self.oram_epoch(c, batch, n_results),
            EpochPath::Merge => self.merge_batch(c, scratch, batch, n_results),
        }
    }

    /// Sub-threshold path: one fixed-pattern tree-ORAM access per padded
    /// slot (dummies walk key 0), giving sequential semantics at
    /// `O(b · polylog s)` instead of a full `O((cap + b) log² )` merge.
    fn oram_epoch<C: Ctx>(&mut self, c: &C, batch: &[FlatOp], n_results: usize) -> Vec<OpResult> {
        let oram = self.oram.as_mut().expect("ORAM path requires a mirror");
        let mut results = Vec::with_capacity(n_results);
        for (i, f) in batch.iter().enumerate() {
            let prev = oram.access(c, f.key, f.oram_write());
            if i < n_results {
                results.push(if f.kind == kind::AGG {
                    OpResult::Stats(self.stats)
                } else {
                    OpResult::Value(prev.checked_sub(1))
                });
            }
        }
        // The padded batch (dummies included: public length) joins the
        // pending log for the next merge.
        self.pending.extend_from_slice(batch);
        results
    }

    /// Merge path: replay `pending ++ batch` against the table (see
    /// [`crate::merge`]), then write the batch through to the ORAM mirror.
    fn merge_batch<C: Ctx>(
        &mut self,
        c: &C,
        scratch: &ScratchPool,
        batch: &[FlatOp],
        n_results: usize,
    ) -> Vec<OpResult> {
        // Every pending/batch op could be a put of a fresh key, so the
        // public live-key bound grows by their count (clamped to the key
        // space when one is configured).
        let mut live_upper = self.live_upper + self.pending.len() + batch.len();
        if let Some(space) = self.cfg.oram_key_space {
            live_upper = live_upper.min(space.max(1));
        }
        // Public shrink schedule: every `every`-th merge compacts the
        // table back to the configured live-key bound, so capacity is no
        // longer monotone. The schedule reads only the merge counter and
        // the policy — never the data; the client promises the bound holds
        // (violations are caught by `merge_epoch`'s candidate-count
        // assert, the same contract style as the key-space assert).
        if let Some(pol) = self.cfg.shrink {
            if pol.every > 0 && (self.merges + 1).is_multiple_of(pol.every) {
                live_upper = live_upper.min(pol.live_bound.max(1));
            }
        }
        let cap_new = size_class(live_upper);

        let (results, stats) = merge_epoch(
            c,
            scratch,
            self.cfg.engine,
            self.cfg.schedule,
            &mut self.table,
            cap_new,
            &self.pending,
            batch,
            n_results,
            self.stats,
            self.cfg.shrink.is_some(),
        );
        self.live_upper = live_upper;
        self.stats = stats;
        self.pending.clear();
        self.merges += 1;

        // Keep the ORAM mirror consistent: replay the batch (pending ops
        // were applied at their own epochs). Results are discarded — the
        // merge already produced them.
        if let Some(oram) = self.oram.as_mut() {
            for f in batch {
                oram.access(c, f.key, f.oram_write());
            }
        }
        results
    }

    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    pub fn capacity(&self) -> usize {
        self.table.len()
    }

    pub fn live_upper(&self) -> usize {
        self.live_upper
    }

    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Copy of the resident table for a pipelined consult: key-sorted,
    /// present records leading, padded to the public capacity. Public
    /// length; contents stay host-side until the consult sorts/merges
    /// them under tracked kernels.
    pub fn records(&self) -> Vec<Rec> {
        self.table.clone()
    }

    /// Copy of the pending log (ops applied to the ORAM mirror but not
    /// yet merged). Public length: it is a concatenation of padded
    /// batches.
    pub fn pending_ops(&self) -> Vec<FlatOp> {
        self.pending.clone()
    }
}
