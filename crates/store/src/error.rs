//! Typed failures for the durable paths, the retry policy that guards
//! them, and the store's observable health.
//!
//! # Staging and acknowledgement
//!
//! Every durable front end upholds one contract: **an epoch's merge
//! effects are staged and applied only after its WAL durability point**.
//! `execute_epoch` appends (and syncs, per the group-commit cadence)
//! before any counter bumps or table mutation, so an append that fails —
//! even after retries — rejects the epoch *atomically*: the store is
//! bitwise what it was before the call, and the caller simply never
//! received an acknowledgement. There is no half-applied state to roll
//! back. A snapshot failure is different: it strikes *after* the epoch's
//! durability point, so the epoch stays acknowledged (its WAL record is
//! intact) and the store instead degrades — see [`Health`].
//!
//! # Transient vs. permanent
//!
//! The [`RetryPolicy`] retries faults a disk might genuinely shake off
//! (EIO and friends) with bounded exponential backoff, and fails fast on
//! faults that retrying cannot fix: ENOSPC / quota
//! ([`io::ErrorKind::StorageFull`]), permissions, corruption
//! ([`io::ErrorKind::InvalidData`]), and missing files. Retry decisions
//! read only the I/O outcome — an observable that is itself a function of
//! the public fault schedule under injection — never data, so the retry
//! stream leaks nothing (DESIGN.md §15).

use std::fmt;
use std::io;
use std::time::Duration;

/// Why a durable store operation failed. Everything a commit, checkpoint
/// or recovery can surface instead of panicking.
#[derive(Debug)]
pub enum StoreError {
    /// A non-retryable I/O fault on a durable path (ENOSPC, permissions,
    /// a vanished directory…). The epoch being committed, if any, was
    /// rejected atomically.
    Io {
        /// Which durable step failed (e.g. `"wal append"`).
        context: &'static str,
        /// The underlying fault.
        source: io::Error,
    },
    /// The WAL's clean prefix is inconsistent with the snapshot horizon:
    /// records that must exist (the snapshot says they committed) are
    /// unreadable. Starting empty would silently lose acknowledged data,
    /// so recovery refuses.
    WalCorrupt {
        /// Shard whose log is inconsistent.
        shard: usize,
        /// Human-readable diagnosis.
        detail: String,
    },
    /// A table snapshot could not be written or read back. On the write
    /// side the WAL is left intact (no acknowledged epoch is lost), but
    /// the store degrades; on the recovery side the directory is
    /// unusable as-is.
    SnapshotFailed {
        /// Shard whose snapshot failed.
        shard: usize,
        /// The underlying fault.
        source: io::Error,
    },
    /// A transient fault survived every [`RetryPolicy`] attempt. The
    /// epoch was rejected atomically; the store is degraded.
    RetriesExhausted {
        /// Which durable step failed.
        context: &'static str,
        /// Attempts made (the policy's `attempts`).
        attempts: u32,
        /// The last attempt's fault.
        source: io::Error,
    },
    /// The store previously degraded (or a pipelined commit panicked):
    /// it refuses new commits until re-opened via `recover`. Reads and
    /// accessors keep working.
    Poisoned,
    /// A pipelined handle names an epoch this store never committed, or
    /// one whose results were already taken.
    UnknownEpoch {
        /// The handle's epoch number.
        epoch: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { context, source } => {
                write!(f, "durable {context} failed: {source}")
            }
            StoreError::WalCorrupt { shard, detail } => {
                write!(f, "WAL for shard {shard} is corrupt: {detail}")
            }
            StoreError::SnapshotFailed { shard, source } => {
                write!(f, "snapshot for shard {shard} failed: {source}")
            }
            StoreError::RetriesExhausted {
                context,
                attempts,
                source,
            } => write!(
                f,
                "durable {context} still failing after {attempts} attempts: {source}"
            ),
            StoreError::Poisoned => {
                write!(f, "store is degraded (read-only); re-open it via recover()")
            }
            StoreError::UnknownEpoch { epoch } => write!(
                f,
                "epoch {epoch} has no pending results (not committed here, or already taken)"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. }
            | StoreError::SnapshotFailed { source, .. }
            | StoreError::RetriesExhausted { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Observable health of a durable store. Degradation is sticky: once a
/// durable path fails terminally the store answers reads but refuses
/// commits with [`StoreError::Poisoned`], so a caller can never
/// accumulate unlogged state on a broken disk. Re-open with `recover` to
/// resume.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Health {
    /// All durable paths operational.
    #[default]
    Ok,
    /// A durable path failed terminally; the store is read-only.
    Degraded,
}

/// Bounded retry with exponential backoff for transient durable-path
/// faults. `attempts` counts *total* tries (1 = no retry); `backoff` is
/// the pause after the first failure and doubles per further attempt.
/// Retries consult only the I/O outcome, a public observable, so the
/// policy adds no trace variation on the no-fault path and none beyond
/// the public fault schedule under injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per durable operation (minimum 1).
    pub attempts: u32,
    /// Pause after the first failed attempt; doubles each retry.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            backoff: Duration::from_millis(1),
        }
    }
}

impl RetryPolicy {
    /// No retries: every fault is terminal on first strike.
    pub const fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            backoff: Duration::ZERO,
        }
    }
}

/// Is this a fault a retry might plausibly clear? Resource exhaustion,
/// permissions, corruption and missing files are not; a bare EIO (and
/// other uncategorized kinds) may be.
fn transient(e: &io::Error) -> bool {
    !matches!(
        e.kind(),
        io::ErrorKind::StorageFull
            | io::ErrorKind::QuotaExceeded
            | io::ErrorKind::NotFound
            | io::ErrorKind::PermissionDenied
            | io::ErrorKind::InvalidData
            | io::ErrorKind::InvalidInput
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::Unsupported
            | io::ErrorKind::ReadOnlyFilesystem
    )
}

/// Terminal outcome of [`RetryPolicy::run`], before it is given a typed
/// identity by the call site (WAL append vs. snapshot vs. open).
#[derive(Debug)]
pub(crate) struct RetryFailure {
    pub attempts: u32,
    /// True when the fault was transient but the attempt budget ran out
    /// (vs. a permanent fault failing fast).
    pub exhausted: bool,
    pub source: io::Error,
}

impl RetryFailure {
    /// Surface as a WAL/commit-path error.
    pub fn on(self, context: &'static str) -> StoreError {
        if self.exhausted {
            StoreError::RetriesExhausted {
                context,
                attempts: self.attempts,
                source: self.source,
            }
        } else {
            StoreError::Io {
                context,
                source: self.source,
            }
        }
    }

    /// Surface as a snapshot error for `shard`.
    pub fn snapshot(self, shard: usize) -> StoreError {
        StoreError::SnapshotFailed {
            shard,
            source: self.source,
        }
    }
}

impl RetryPolicy {
    /// Run `f`, retrying transient faults up to the attempt budget with
    /// doubling backoff. Permanent faults fail fast.
    pub(crate) fn run<T>(&self, mut f: impl FnMut() -> io::Result<T>) -> Result<T, RetryFailure> {
        let attempts = self.attempts.max(1);
        let mut pause = self.backoff;
        for attempt in 1..=attempts {
            match f() {
                Ok(v) => return Ok(v),
                Err(e) if !transient(&e) => {
                    return Err(RetryFailure {
                        attempts: attempt,
                        exhausted: false,
                        source: e,
                    });
                }
                Err(e) if attempt == attempts => {
                    return Err(RetryFailure {
                        attempts,
                        exhausted: true,
                        source: e,
                    });
                }
                Err(_) => {
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                        pause = pause.saturating_mul(2);
                    }
                }
            }
        }
        unreachable!("loop returns on success, permanent fault, or last attempt")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_faults_retry_then_exhaust() {
        let policy = RetryPolicy {
            attempts: 3,
            backoff: Duration::ZERO,
        };
        let mut calls = 0;
        let ok = policy.run(|| {
            calls += 1;
            if calls < 3 {
                Err(io::Error::other("flaky"))
            } else {
                Ok(calls)
            }
        });
        assert_eq!(ok.ok(), Some(3));

        let mut calls = 0;
        let err = policy
            .run(|| -> io::Result<()> {
                calls += 1;
                Err(io::Error::other("always"))
            })
            .unwrap_err();
        assert_eq!(calls, 3);
        assert!(err.exhausted);
        assert!(matches!(
            err.on("wal append"),
            StoreError::RetriesExhausted { attempts: 3, .. }
        ));
    }

    #[test]
    fn permanent_faults_fail_fast() {
        let policy = RetryPolicy::default();
        let mut calls = 0;
        let err = policy
            .run(|| -> io::Result<()> {
                calls += 1;
                Err(io::Error::from_raw_os_error(28)) // ENOSPC
            })
            .unwrap_err();
        assert_eq!(calls, 1, "ENOSPC must not be retried");
        assert!(!err.exhausted);
        assert!(matches!(err.on("wal append"), StoreError::Io { .. }));
    }

    #[test]
    fn error_display_names_the_failing_step() {
        let e = StoreError::Io {
            context: "wal append",
            source: io::Error::other("boom"),
        };
        assert!(e.to_string().contains("wal append"));
        assert!(StoreError::Poisoned.to_string().contains("recover()"));
    }
}
