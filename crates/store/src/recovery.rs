//! Crash recovery: rebuild a store from its snapshot + WAL directory by
//! replaying logged epochs through the normal merge machinery.
//!
//! # Replay is the normal path
//!
//! Recovery does not interpret records with bespoke code: each WAL record
//! holds an epoch's already padded batch, and replay feeds it straight
//! into [`Shard::execute`] on the path [`Shard::epoch_path`] publicly
//! selects for its class — exactly the calls the original epoch made. The
//! recovered adversary trace is therefore the same public function of the
//! logged batch classes as a fresh run of those epochs: recovery leaks
//! nothing the original execution had not already leaked. (Replay passes
//! `n_results = 0`; the result count only controls how many answers are
//! copied out host-side and never touches the oblivious trace.)
//!
//! # The commit horizon
//!
//! A sharded store appends one record per shard per epoch, sequentially,
//! before any shard merges. A crash mid-append can leave the files
//! ragged: shard 0 holds epoch `e`'s record while shard 3 does not. An
//! epoch counts as **committed** only when its record is on every shard's
//! WAL (that is when `execute_epoch` — or the pipelined pre-log —
//! returned to the caller), so recovery replays up to the horizon
//! `min_i(next_seq_i + |records_i|)` and drops the ragged tail: exactly
//! the unacknowledged epochs. Snapshots never raise a shard above the
//! horizon, because a snapshot is only written after its epoch committed
//! on all shards.
//!
//! # Typed failures
//!
//! Recovery refuses to guess. A WAL whose clean prefix starts *above* the
//! snapshot's horizon — acknowledged records provably missing — is a hard
//! [`StoreError::WalCorrupt`], and a present-but-corrupt snapshot is
//! [`StoreError::SnapshotFailed`]: silently starting empty would lose
//! acknowledged data. Torn or corrupt WAL *tails* stay benign (the
//! crash artifact of an epoch that was never acknowledged).

use crate::error::StoreError;
use crate::op::EpochPath;
use crate::shard::Shard;
use crate::store::StoreConfig;
use crate::vfs::Vfs;
use crate::wal;
use fj::Ctx;
use metrics::ScratchPool;
use std::path::Path;

/// What [`recover_shards`] hands back to the front-end constructors.
pub(crate) struct RecoveredState {
    pub shards: Vec<Shard>,
    /// Epochs applied (the next WAL sequence number).
    pub epochs: u64,
    /// Path of the last replayed epoch (`None` when nothing replayed —
    /// a snapshot cannot remember the pre-crash value).
    pub last_path: Option<EpochPath>,
}

/// Load `n_shards` shards from `dir`: per shard, restore the snapshot (if
/// any), then replay the WAL records in `[next_seq, horizon)` through the
/// normal epoch paths. Shared by [`crate::Store::recover`] and
/// [`crate::ShardedStore::recover`].
pub(crate) fn recover_shards<C: Ctx>(
    c: &C,
    scratch: &ScratchPool,
    vfs: &dyn Vfs,
    dir: &Path,
    cfg: &StoreConfig,
    n_shards: usize,
) -> Result<RecoveredState, StoreError> {
    let mut snaps = Vec::with_capacity(n_shards);
    let mut logs = Vec::with_capacity(n_shards);
    for i in 0..n_shards {
        let snap = wal::read_snapshot(vfs, dir, i).map_err(|source| {
            if source.kind() == std::io::ErrorKind::InvalidData {
                StoreError::SnapshotFailed { shard: i, source }
            } else {
                StoreError::Io {
                    context: "snapshot read",
                    source,
                }
            }
        })?;
        let base = snap.as_ref().map_or(0, |(m, _)| m.next_seq);
        let scan = wal::read_wal(vfs, &wal::wal_path(dir, i)).map_err(|source| StoreError::Io {
            context: "wal read",
            source,
        })?;
        // A clean prefix that *starts* above the snapshot horizon means
        // acknowledged records are missing from the log: refuse rather
        // than silently dropping committed epochs. (A prefix entirely
        // below `base` is stale-but-harmless: the snapshot covers it.)
        if let Some((first_seq, _)) = scan.records.first() {
            if *first_seq > base {
                return Err(StoreError::WalCorrupt {
                    shard: i,
                    detail: format!(
                        "log resumes at epoch {first_seq} but the snapshot only covers \
                         through {base}: acknowledged records are missing{}",
                        scan.reject
                            .as_ref()
                            .map(|r| format!(
                                " (scan stopped at offset {}: {})",
                                r.offset, r.detail
                            ))
                            .unwrap_or_default()
                    ),
                });
            }
        }
        // Keep only post-snapshot records; `read_wal` already guarantees
        // a consecutive prefix, so what survives the filter is contiguous
        // from `base`.
        let records: Vec<_> = scan
            .records
            .into_iter()
            .filter(|(seq, _)| *seq >= base)
            .collect();
        snaps.push(snap);
        logs.push(records);
    }

    // Commit horizon: the last epoch whose record reached *every* shard.
    let horizon = (0..n_shards)
        .map(|i| {
            let base = snaps[i].as_ref().map_or(0, |(m, _)| m.next_seq);
            base + logs[i].len() as u64
        })
        .min()
        .unwrap_or(0);

    let mut shards = Vec::with_capacity(n_shards);
    let mut last_path = None;
    for (i, (snap, records)) in snaps.into_iter().zip(logs).enumerate() {
        let mut shard = match snap {
            Some((meta, table)) => Shard::from_snapshot(
                c,
                *cfg,
                i as u64,
                table,
                meta.live_upper as usize,
                meta.merges,
                meta.stats,
            ),
            None => Shard::new(*cfg, i as u64),
        };
        for (seq, batch) in &records {
            if *seq >= horizon {
                break;
            }
            let path = shard.epoch_path(batch.len());
            shard.execute(c, scratch, batch, 0, path);
            if i == 0 {
                last_path = Some(path);
            }
        }
        shards.push(shard);
    }

    Ok(RecoveredState {
        shards,
        epochs: horizon,
        last_path,
    })
}
