//! Oblivious op→shard routing and the result return trip.
//!
//! Keys are assigned to shards by a **public hash** of the (private) key
//! ([`shard_of`]): the mapping is a fixed, data-independent function, but
//! *which* shard a given op lands on still depends on its secret key — so
//! the routing itself must be oblivious. [`route_ops`] realizes it on
//! [`obliv_core::oblivious_scatter`] (the §F send-receive pattern): every
//! shard's sub-batch is padded to the same public class `zcap`
//! ([`shard_class`]), so the adversary trace of the whole routing step is
//! a function of `(batch class, shard count, zcap)` only. The scatter is
//! *stable* (reals keep submission order inside each sub-batch), which is
//! what preserves the store's sequential within-epoch semantics: two ops
//! on the same key always share a shard and arrive in submission order.
//!
//! [`gather_results`] is the send-receive return trip: per-shard results,
//! tagged with their submission index, flow through one oblivious sort
//! back to submission order, followed by a fixed-prefix readout of the
//! whole padded batch. The gather rides the tag-sort fast path (DESIGN.md
//! §10): each result packs into one 32-byte [`TagCell`] — submission index
//! in the tag lane, `(agg ‖ found ‖ val)` in the payload lane — so the
//! return-trip network moves dense cells instead of `Slot`-wrapped
//! records.

use crate::op::{kind, FlatOp, MIN_CLASS};
use fj::Ctx;
use metrics::{ScratchPool, Tracked};
use obliv_core::scatter::oblivious_scatter;
use obliv_core::{Engine, Item, Result, Slot, TagCell};

/// The public shard-assignment hash: a fixed multiplicative hash of the
/// key, taking the top `log2(shards)` bits. Deterministic and publicly
/// known — the secrecy of the routing comes from the oblivious scatter,
/// not from the hash.
pub fn shard_of(key: u64, shards: usize) -> usize {
    debug_assert!(shards.is_power_of_two());
    if shards <= 1 {
        return 0;
    }
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - shards.trailing_zeros())) as usize
}

/// Public per-shard sub-batch class for a batch of (padded) class `b`:
/// `slack = 0` provisions every shard for the full batch (`zcap = b`,
/// routing can never overflow); `slack = k ≥ 1` provisions
/// `size_class(k · b / shards)`, trading a public overflow-fallback signal
/// on heavily skewed epochs for `shards/k`-fold smaller routed arrays.
pub fn shard_class(b: usize, shards: usize, slack: usize) -> usize {
    debug_assert!(b >= MIN_CLASS && b.is_power_of_two());
    if slack == 0 || shards <= 1 {
        return b;
    }
    crate::op::size_class((b * slack).div_ceil(shards).min(b))
}

/// One shard's routed sub-batch: `zcap` padded slots with the reals (in
/// submission order) leading, each real's submission index alongside.
pub(crate) struct SubBatch {
    pub batch: Vec<FlatOp>,
    /// Submission index per slot; `u64::MAX` for padding.
    pub idx: Vec<u64>,
    /// Number of real ops (host-private; the trace never reads it).
    pub n_real: usize,
    /// Filled by the shard commit.
    pub results: Vec<OpResultSlot>,
}

/// Flat, `Copy` result representation carried through the gather network:
/// `agg` marks aggregate answers (rewritten host-side with the global
/// snapshot), otherwise `found`/`val` encode the `Option<u64>`.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct OpResultSlot {
    pub agg: bool,
    pub found: bool,
    pub val: u64,
}

/// Obliviously scatter a padded batch into `shards` sub-batches of `zcap`
/// slots each. Fails with `BinOverflow` (after completing its fixed-trace
/// pass) when more than `zcap` ops hash to one shard; `zcap = b` never
/// fails.
pub(crate) fn route_ops<C: Ctx>(
    c: &C,
    scratch: &ScratchPool,
    engine: Engine,
    batch: &[FlatOp],
    shards: usize,
    zcap: usize,
) -> Result<Vec<SubBatch>> {
    // Dummies become fillers (they consume no shard capacity); every input
    // slot is written exactly once either way. `item.key` carries the
    // submission index — the scatter's stability tiebreak and the gather's
    // routing key.
    let slots: Vec<Slot<FlatOp>> = batch
        .iter()
        .enumerate()
        .map(|(j, f)| {
            if f.kind == kind::DUMMY {
                Slot::filler()
            } else {
                Slot::real(Item::new(j as u128, *f), shard_of(f.key, shards) as u64)
            }
        })
        .collect();
    c.charge_par(batch.len() as u64);

    let routed = oblivious_scatter(c, scratch, &slots, shards, zcap, engine)?;
    Ok(routed
        .chunks(zcap)
        .map(|chunk| {
            let mut batch = Vec::with_capacity(zcap);
            let mut idx = Vec::with_capacity(zcap);
            let mut n_real = 0;
            for s in chunk {
                // Reals are packed in front of each chunk (scatter
                // contract), so the sub-batch keeps the merge path's
                // reals-lead-the-batch shape.
                if s.is_real() {
                    batch.push(s.item.val);
                    idx.push(s.item.key as u64);
                    n_real += 1;
                } else {
                    batch.push(FlatOp::dummy());
                    idx.push(u64::MAX);
                }
            }
            SubBatch {
                batch,
                idx,
                n_real,
                results: Vec::new(),
            }
        })
        .collect())
}

/// Route per-shard results back to submission order: one oblivious sort
/// keyed by submission index (padding last), then a fixed-prefix readout
/// of the whole padded batch class `b`. `entries` has public length
/// `shards · zcap`.
pub(crate) fn gather_results<C: Ctx>(
    c: &C,
    scratch: &ScratchPool,
    engine: Engine,
    entries: &[(u64, OpResultSlot)],
    b: usize,
) -> Vec<OpResultSlot> {
    debug_assert!(entries.len() >= b);
    let m = entries.len().next_power_of_two();
    let mut cells = scratch.lease(m, TagCell::filler());
    for (cell, &(i, v)) in cells.iter_mut().zip(entries.iter()) {
        *cell = if i == u64::MAX {
            TagCell::filler()
        } else {
            TagCell::new(
                i as u128,
                ((v.agg as u128) << 65) | ((v.found as u128) << 64) | v.val as u128,
            )
        };
    }
    c.charge_par(entries.len() as u64);

    let mut t = Tracked::new(c, &mut cells);
    engine.sort_cells(c, scratch, &mut t);

    // Fixed-pattern readout over the whole padded batch prefix — reading
    // fewer slots would leak the real op count within the class.
    let tr = t.as_raw();
    metrics::par_collect(c, b, &|c, j| {
        // SAFETY: read-only phase.
        let s = unsafe { tr.get(c, j) };
        debug_assert!(s.is_filler() || s.tag as usize == j);
        if s.is_filler() {
            OpResultSlot::default()
        } else {
            OpResultSlot {
                agg: (s.aux >> 65) & 1 == 1,
                found: (s.aux >> 64) & 1 == 1,
                val: s.aux as u64,
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use fj::SeqCtx;

    #[test]
    fn shard_hash_is_total_and_stable() {
        for shards in [1usize, 2, 4, 8] {
            for key in (0..1000u64).chain([u64::MAX, u64::MAX - 7]) {
                let s = shard_of(key, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(key, shards), "hash must be a function");
            }
        }
        assert_eq!(shard_of(12345, 1), 0);
    }

    #[test]
    fn shard_classes_are_public_and_clamped() {
        // slack 0: always the full batch class.
        assert_eq!(shard_class(64, 4, 0), 64);
        // scaled: size class of slack*b/shards, floored at MIN_CLASS…
        assert_eq!(shard_class(64, 4, 2), 32);
        assert_eq!(shard_class(8, 8, 2), MIN_CLASS);
        // …and clamped to the batch class itself.
        assert_eq!(shard_class(64, 2, 2), 64);
        assert_eq!(shard_class(64, 1, 3), 64);
    }

    #[test]
    fn routing_preserves_submission_order_within_shards() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let ops: Vec<FlatOp> = (0..13u64)
            .map(|i| FlatOp::of(&Op::Put { key: i % 5, val: i }))
            .chain(std::iter::repeat_with(FlatOp::dummy))
            .take(16)
            .collect();
        let subs = route_ops(&c, &sp, Engine::BitonicRec, &ops, 4, 16).unwrap();
        assert_eq!(subs.len(), 4);
        let mut seen = 0;
        for (s, sub) in subs.iter().enumerate() {
            assert_eq!(sub.batch.len(), 16);
            // Each real op landed on its hash shard, in ascending
            // submission order.
            let idxs: Vec<u64> = sub.idx[..sub.n_real].to_vec();
            assert!(idxs.windows(2).all(|w| w[0] < w[1]), "shard {s}: {idxs:?}");
            for (z, f) in sub.batch[..sub.n_real].iter().enumerate() {
                assert_eq!(shard_of(f.key, 4), s);
                assert_eq!(f.val, idxs[z], "payload rides along");
            }
            seen += sub.n_real;
        }
        assert_eq!(seen, 13, "every real op routed exactly once");
    }

    #[test]
    fn gather_returns_submission_order() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        // 2 shards × 4 slots, 5 real results scattered across them.
        let mk = |v: u64| OpResultSlot {
            agg: false,
            found: true,
            val: v,
        };
        let entries = vec![
            (3, mk(30)),
            (0, mk(0)),
            (u64::MAX, OpResultSlot::default()),
            (u64::MAX, OpResultSlot::default()),
            (1, mk(10)),
            (4, mk(40)),
            (2, mk(20)),
            (u64::MAX, OpResultSlot::default()),
        ];
        let out = gather_results(&c, &sp, Engine::BitonicRec, &entries, 8);
        for (j, r) in out.iter().take(5).enumerate() {
            assert!(r.found);
            assert_eq!(r.val, j as u64 * 10);
        }
        assert!(out[5..].iter().all(|r| !r.found));
    }
}
