//! Pipelined epochs: a double-buffered front end that overlaps one
//! epoch's merge with the next epoch's submission.
//!
//! [`PipelinedStore`] wraps a [`Store`] or [`ShardedStore`] and splits the
//! synchronous `submit → commit → results` cycle into two buffers:
//!
//! * the **open epoch** — an op log accepting [`submit`]s at memory speed;
//! * the **in-flight epoch** — at most one batch whose merge runs as a
//!   detached fork-join task ([`Ctx::spawn_detached`]) while the open
//!   epoch keeps filling.
//!
//! [`commit_async`] seals the open epoch and hands it to the engine,
//! first joining the previous in-flight epoch (the **handoff**): merges
//! are serialized through ownership of the wrapped store, so the engine
//! sees exactly the synchronous epoch sequence — same results, same
//! sequential consistency — only the *caller* stops waiting for it.
//! [`try_commit`] is the opportunistic variant that skips the handoff
//! while the engine is busy, which is what turns a stream of small client
//! batches into fewer, larger merges (group commit).
//!
//! # Leakage
//!
//! The handoff schedule is **public**. Every quantity the cadence reads —
//! open-buffer length, the [`open_limit`](PipelinedStore::open_limit),
//! whether an epoch is in flight, and [`Deferred::is_done`] of a merge
//! whose instruction and memory trace are data-independent by
//! construction — is a function of batch *sizes* (plus machine
//! scheduling), never of key contents. Likewise every padded shape below
//! derives from public counts. See DESIGN.md §11.
//!
//! # Read-your-writes
//!
//! A `Get` submitted while its key's `Put` is still mid-merge must
//! observe it. [`read_now`](PipelinedStore::read_now) therefore consults,
//! obliviously, the **padded op logs** of the in-flight and open epochs
//! against the handoff snapshot of the table, reusing the merge path's
//! LWW-transformer scan — the consult's trace is a function of the
//! snapshot capacity and the logs' public size classes only.
//!
//! # Durability and drop
//!
//! Wrapping a durable store (one opened via
//! [`Store::recover`](crate::Store::recover) with
//! [`Durability::Epoch`](crate::Durability::Epoch)) keeps the WAL-before-
//! merge contract: [`commit_async`] appends and flushes the epoch's WAL
//! record on the **caller's** thread *before* spawning the detached merge
//! task, so an acknowledged commit is on disk even if the process dies
//! while the merge is still in flight. Dropping a `PipelinedStore` with
//! an epoch in flight is therefore safe on both axes: the epoch's record
//! is already durable (a crash replays it), and the `fj` pool's drop
//! barrier runs every spawned detached task to completion before the
//! workers terminate (a graceful shutdown finishes the merge) — see
//! [`fj::Pool`]'s drop documentation and `tests/durability.rs`.
//!
//! [`submit`]: PipelinedStore::submit
//! [`commit_async`]: PipelinedStore::commit_async
//! [`try_commit`]: PipelinedStore::try_commit

use crate::error::{Health, StoreError};
use crate::merge::{merge_epoch, Rec};
use crate::op::{FlatOp, Op, OpResult, StoreStats};
use crate::store::{validate_and_pad, EpochTarget, ShardedStore, Store, StoreConfig};
use fj::{Ctx, Deferred};
use metrics::{ScratchPool, Tracked};
use obliv_core::scan::Schedule;
use obliv_core::{Engine, TagCell};
use std::collections::VecDeque;
use std::sync::Arc;

mod sealed {
    use crate::error::{Health, StoreError};
    use crate::merge::Rec;
    use crate::op::{FlatOp, Op};
    use crate::store::StoreConfig;
    use fj::Ctx;
    use metrics::ScratchPool;

    /// Snapshot surface the pipeline needs from a wrapped store. Sealed:
    /// the methods traffic in crate-private types, and the consult's
    /// correctness depends on invariants (`records` sortedness, pending
    /// ordering) only the stores in this crate uphold.
    pub trait Source {
        fn config(&self) -> &StoreConfig;
        /// Concatenated resident tables (public length).
        fn records(&self) -> Vec<Rec>;
        /// Un-merged pending ops, oldest first (public length).
        fn pending(&self) -> Vec<FlatOp>;
        /// True when `records` is key-sorted with reals leading (single
        /// shard); multi-shard snapshots are sorted by the consult.
        fn records_sorted(&self) -> bool;
        /// Append the sealed epoch's padded batch to the store's WAL (a
        /// no-op for non-durable stores) *before* the epoch is handed to
        /// a detached task — the pipelined durability point. A terminal
        /// fault rejects the epoch atomically and degrades the store.
        fn wal_prelog<C: Ctx>(
            &mut self,
            c: &C,
            scratch: &ScratchPool,
            ops: &[Op],
        ) -> Result<(), StoreError>;
        /// The wrapped store's observable health.
        fn health(&self) -> Health;
    }
}

impl sealed::Source for Store {
    fn config(&self) -> &StoreConfig {
        Store::config(self)
    }
    fn records(&self) -> Vec<Rec> {
        self.snapshot_records()
    }
    fn pending(&self) -> Vec<FlatOp> {
        self.snapshot_pending()
    }
    fn records_sorted(&self) -> bool {
        true
    }
    fn wal_prelog<C: Ctx>(
        &mut self,
        c: &C,
        scratch: &ScratchPool,
        ops: &[Op],
    ) -> Result<(), StoreError> {
        Store::wal_prelog(self, c, scratch, ops)
    }
    fn health(&self) -> Health {
        Store::health(self)
    }
}

impl sealed::Source for ShardedStore {
    fn config(&self) -> &StoreConfig {
        ShardedStore::config(self)
    }
    fn records(&self) -> Vec<Rec> {
        self.snapshot_records()
    }
    fn pending(&self) -> Vec<FlatOp> {
        self.snapshot_pending()
    }
    fn records_sorted(&self) -> bool {
        self.shard_count() == 1
    }
    fn wal_prelog<C: Ctx>(
        &mut self,
        c: &C,
        scratch: &ScratchPool,
        ops: &[Op],
    ) -> Result<(), StoreError> {
        ShardedStore::wal_prelog(self, c, scratch, ops)
    }
    fn health(&self) -> Health {
        ShardedStore::health(self)
    }
}

/// Epoch engines a [`PipelinedStore`] can drive: both store front ends.
/// `Send + 'static` because the wrapped store travels into the detached
/// merge task and back.
pub trait PipelineTarget: EpochTarget + sealed::Source + Send + 'static {}

impl PipelineTarget for Store {}
impl PipelineTarget for ShardedStore {}

/// Names one committed epoch; redeem it with
/// [`PipelinedStore::wait`] for that epoch's results.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochHandle {
    id: u64,
}

impl EpochHandle {
    /// Sequence number of the epoch (0-based, public).
    pub fn epoch(&self) -> u64 {
        self.id
    }
}

/// Receipt for one submitted op: result `index` within epoch `epoch`'s
/// result slice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ticket {
    /// Epoch the op will commit in (matches [`EpochHandle::epoch`]).
    pub epoch: u64,
    /// Index of the op's result in that epoch's results.
    pub index: usize,
}

struct InFlight<T> {
    id: u64,
    /// The epoch's op log, padded to its public size class — what
    /// `read_now` consults while the merge is still running.
    log: Vec<FlatOp>,
    task: Deferred<(T, Result<Vec<OpResult>, StoreError>)>,
}

/// Double-buffered epoch front end; see the [crate docs](crate) for where
/// it sits in the epoch engine.
///
/// ```
/// use fj::SeqCtx;
/// use store::{Op, PipelinedStore, Store, StoreConfig};
///
/// let c = SeqCtx::new();
/// let mut p = PipelinedStore::new(Store::new(StoreConfig::default()));
/// let put = p.submit(Op::Put { key: 7, val: 700 });
/// let h = p.commit_async(&c);
/// // The merge may still be running; reads consult its padded log.
/// assert_eq!(p.read_now(&c, &[7]), vec![Some(700)]);
/// let results = p.wait(&h).unwrap();
/// assert_eq!(results[put.index].value(), None); // first put: no prior value
/// ```
pub struct PipelinedStore<T: PipelineTarget> {
    /// `None` exactly while an epoch is in flight (the store travels into
    /// the detached task and comes back at the handoff).
    store: Option<T>,
    scratch: Arc<ScratchPool>,
    cfg: StoreConfig,
    engine: Engine,
    schedule: Schedule,
    /// Resident records as of the last handoff (see `sealed::Source`).
    snapshot: Vec<Rec>,
    /// Pre-handoff pending log (nonzero only for ORAM-path stores).
    snapshot_pending: Vec<FlatOp>,
    snapshot_sorted: bool,
    open: Vec<Op>,
    inflight: Option<InFlight<T>>,
    /// Outcomes of retired epochs awaiting
    /// [`wait`](PipelinedStore::wait) — a commit that failed its WAL
    /// pre-log (or whose merge panicked) parks its error here under the
    /// same handle.
    done: VecDeque<(u64, Result<Vec<OpResult>, StoreError>)>,
    next_epoch: u64,
    open_limit: usize,
    started: u64,
    retired: u64,
    /// A detached merge panicked and took the store with it: every later
    /// commit is refused with [`StoreError::Poisoned`].
    poisoned: bool,
}

impl<T: PipelineTarget> PipelinedStore<T> {
    /// Wrap `store` with a private scratch arena.
    pub fn new(store: T) -> Self {
        Self::with_scratch(store, Arc::new(ScratchPool::new()))
    }

    /// Wrap `store`, leasing consult/merge scratch from `scratch` (shared
    /// arenas amortize across stores; the pool is thread-safe).
    pub fn with_scratch(store: T, scratch: Arc<ScratchPool>) -> Self {
        let cfg = *sealed::Source::config(&store);
        PipelinedStore {
            snapshot: store.records(),
            snapshot_pending: store.pending(),
            snapshot_sorted: store.records_sorted(),
            cfg,
            engine: cfg.engine,
            schedule: cfg.schedule,
            store: Some(store),
            scratch,
            open: Vec::new(),
            inflight: None,
            done: VecDeque::new(),
            next_epoch: 0,
            open_limit: usize::MAX,
            started: 0,
            retired: 0,
            poisoned: false,
        }
    }

    /// Cap the open buffer at `limit` ops (public): once reached,
    /// [`try_commit`](PipelinedStore::try_commit) commits even if the
    /// handoff must block. This bounds memory and is the knob that sets
    /// the maximum group-commit batch.
    pub fn with_open_limit(mut self, limit: usize) -> Self {
        self.open_limit = limit.max(1);
        self
    }

    /// Public open-buffer cap (see
    /// [`with_open_limit`](PipelinedStore::with_open_limit)).
    pub fn open_limit(&self) -> usize {
        self.open_limit
    }

    /// Queue `op` into the open epoch. Never blocks, never runs engine
    /// work; the returned ticket locates the op's result once its epoch
    /// commits.
    pub fn submit(&mut self, op: Op) -> Ticket {
        self.open.push(op);
        Ticket {
            epoch: self.next_epoch,
            index: self.open.len() - 1,
        }
    }

    /// Number of ops in the open epoch (public).
    pub fn open_len(&self) -> usize {
        self.open.len()
    }

    /// True while an epoch's merge is running (or queued) in the engine.
    pub fn in_flight(&self) -> bool {
        self.inflight.is_some()
    }

    /// True when [`commit_async`](PipelinedStore::commit_async) would
    /// block on the handoff: an in-flight merge has not finished. Public:
    /// the merge's running time is a function of its data-independent
    /// trace (shapes), never of key contents.
    pub fn handoff_would_block(&self) -> bool {
        self.inflight.as_ref().is_some_and(|i| !i.task.is_done())
    }

    /// `(started, retired)` engine epochs: epochs handed off, and epochs
    /// whose merge has been joined back. Empty commits are public no-ops
    /// and counted in neither (mirroring [`Store::execute_epoch`]).
    pub fn epoch_counts(&self) -> (u64, u64) {
        (self.started, self.retired)
    }

    /// The wrapped store, available while no epoch is in flight (it
    /// travels into the detached merge task otherwise).
    pub fn inner(&self) -> Option<&T> {
        self.store.as_ref()
    }

    /// Seal the open epoch and hand it to the engine as a detached task,
    /// joining the previous in-flight epoch first (double buffer: at most
    /// one epoch in flight). Returns immediately after the handoff; the
    /// merge runs in the background on pool executors and inline on
    /// sequential/metered ones.
    ///
    /// Committing an **empty** open epoch is a public no-op, exactly like
    /// the synchronous engines: no handoff, no merge, no trace — the
    /// returned handle redeems to an empty result slice.
    ///
    /// A commit that fails its durable pre-log does not panic and does
    /// not merge: the epoch is rejected atomically and the typed error
    /// is parked under the returned handle, surfacing at
    /// [`wait`](PipelinedStore::wait).
    pub fn commit_async<C: Ctx>(&mut self, c: &C) -> EpochHandle {
        let id = self.next_epoch;
        self.next_epoch += 1;
        if self.open.is_empty() {
            self.done.push_back((id, Ok(Vec::new())));
            return EpochHandle { id };
        }
        self.join_inflight();
        let Some(mut store) = self.store.take() else {
            // A previous detached merge panicked and the store was lost
            // with it; refuse (and drop) the batch rather than unwind.
            self.open.clear();
            self.done.push_back((id, Err(StoreError::Poisoned)));
            return EpochHandle { id };
        };
        // Pad the log to the epoch's public class *before* the handoff:
        // this validates the batch on the caller's thread and is what
        // `read_now` consults while the merge runs.
        let ops = std::mem::take(&mut self.open);
        let log = validate_and_pad(&self.cfg, &ops);
        // Pre-log (durable stores only): the epoch's WAL record is
        // written on the *caller's* thread, before the merge is handed to
        // a detached task. With `sync_every == 1` that write is flushed
        // and this method returning is the durability point; with group
        // commit (`sync_every == k`) consecutive pre-logs share one
        // `sync_data` per k appends, so the durability point is the
        // append completing the group and a crash drops at most the
        // k − 1 trailing un-synced epochs (a clean suffix — see
        // `Durability::Epoch`).
        if let Err(e) = sealed::Source::wal_prelog(&mut store, c, &self.scratch, &ops) {
            // The epoch never reached its durability point: nothing
            // merged, nothing acknowledged. The (degraded) store stays
            // here for reads and recovery.
            self.store = Some(store);
            self.done.push_back((id, Err(e)));
            return EpochHandle { id };
        }
        let scratch = Arc::clone(&self.scratch);
        let task = c.spawn_detached(move |c| {
            let mut store = store;
            let results = store.run_epoch(c, &scratch, &ops);
            (store, results)
        });
        self.inflight = Some(InFlight { id, log, task });
        self.started += 1;
        EpochHandle { id }
    }

    /// Commit the open epoch only if the handoff would not block (or the
    /// open buffer hit [`open_limit`](PipelinedStore::open_limit), which
    /// forces the commit). This is the group-commit cadence: while a
    /// merge is in flight, client batches coalesce into the open epoch
    /// and the engine runs fewer, larger merges. Returns `None` when
    /// nothing was committed (empty buffer, or engine busy below the
    /// cap).
    pub fn try_commit<C: Ctx>(&mut self, c: &C) -> Option<EpochHandle> {
        if self.open.is_empty() {
            return None;
        }
        if self.handoff_would_block() && self.open.len() < self.open_limit {
            return None;
        }
        Some(self.commit_async(c))
    }

    /// Block until epoch `h` has merged and take its results (one per
    /// submitted op, in submission order).
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownEpoch`] for a handle this store never issued
    /// or whose results were already taken; the commit's own error
    /// ([`StoreError::RetriesExhausted`], [`StoreError::Io`]…) if its
    /// WAL pre-log failed; [`StoreError::Poisoned`] if the epoch's
    /// detached merge panicked (the panic is contained to the worker —
    /// it does not unwind through `wait`).
    pub fn wait(&mut self, h: &EpochHandle) -> Result<Vec<OpResult>, StoreError> {
        if self.inflight.as_ref().is_some_and(|i| i.id == h.id) {
            self.join_inflight();
        }
        let pos = self.done.iter().position(|(id, _)| *id == h.id);
        match pos {
            Some(pos) => self.done.remove(pos).expect("position just found").1,
            None => Err(StoreError::UnknownEpoch { epoch: h.id }),
        }
    }

    /// Commit any open ops and retire the in-flight epoch. Afterwards
    /// [`inner`](PipelinedStore::inner) is `Some` and every committed
    /// handle is redeemable without blocking.
    pub fn drain<C: Ctx>(&mut self, c: &C) {
        if !self.open.is_empty() {
            let _ = self.commit_async(c);
        }
        self.join_inflight();
    }

    /// Drain and unwrap the engine. Panics only if a detached merge
    /// panicked and the store was lost with it (see
    /// [`health`](PipelinedStore::health)) — not on durable I/O faults,
    /// which surface as typed errors at [`wait`](PipelinedStore::wait).
    pub fn into_inner<C: Ctx>(mut self, c: &C) -> T {
        self.drain(c);
        self.store
            .take()
            .expect("store lost: a detached merge panicked")
    }

    /// Observable health of the pipeline and its wrapped store:
    /// [`Health::Degraded`] once a durable path failed terminally or a
    /// detached merge panicked. Degradation is sticky; later commits are
    /// refused with [`StoreError::Poisoned`].
    pub fn health(&self) -> Health {
        if self.poisoned {
            return Health::Degraded;
        }
        match &self.store {
            Some(s) => sealed::Source::health(s),
            // In flight: the store travels with the merge task; the
            // pipeline itself is healthy.
            None => Health::Ok,
        }
    }

    fn join_inflight(&mut self) {
        if let Some(inf) = self.inflight.take() {
            match inf.task.try_join() {
                Ok((store, results)) => {
                    // Refresh the handoff snapshot: consults between now
                    // and the next handoff read the just-merged table
                    // (plus any pending log the epoch left behind on the
                    // ORAM path).
                    self.snapshot = store.records();
                    self.snapshot_pending = store.pending();
                    self.done.push_back((inf.id, results));
                    self.store = Some(store);
                    self.retired += 1;
                }
                Err(_panic) => {
                    // The merge panicked on a worker; the store moved
                    // into the task and is gone. Contain the panic as a
                    // typed error under the epoch's handle and poison
                    // the pipeline.
                    self.poisoned = true;
                    self.done.push_back((inf.id, Err(StoreError::Poisoned)));
                    self.retired += 1;
                }
            }
        }
    }

    /// Read `keys` **now**, observing the committed table, the in-flight
    /// epoch and the open buffer — strict read-your-writes: a `Put`
    /// submitted before this call is visible even while its merge is
    /// still running. Results do not consume tickets; the keys' ops still
    /// resolve normally in their epochs.
    ///
    /// Obliviously: the consult replays `pending ++ in-flight log ++
    /// open` (each already padded to a public class) against a copy of
    /// the handoff snapshot using the merge path's LWW machinery, so its
    /// trace is a function of the snapshot capacity and those public
    /// classes plus the query class — never of key contents. The copy is
    /// discarded; the engine's state is untouched.
    pub fn read_now<C: Ctx>(&self, c: &C, keys: &[u64]) -> Vec<Option<u64>> {
        let c_ref = c;
        let scratch = &*self.scratch;
        // Queries as a padded Get batch (validates key-space contracts
        // the same way a real epoch would).
        let queries: Vec<Op> = keys.iter().map(|&key| Op::Get { key }).collect();
        let batch = validate_and_pad(&self.cfg, &queries);

        // 1. A discardable copy of the handoff snapshot; multi-shard
        //    concatenations are key-sorted first (public branch: the
        //    shard count is public).
        let mut table = self.snapshot.clone();
        if !self.snapshot_sorted {
            sort_snapshot(c_ref, scratch, self.engine, &mut table);
        }

        // 2. The consult log: everything the engine has accepted but not
        //    merged, oldest first. All three parts have public lengths.
        let mut log = self.snapshot_pending.clone();
        if let Some(inf) = &self.inflight {
            log.extend_from_slice(&inf.log);
        }
        if !self.open.is_empty() {
            log.extend(validate_and_pad(&self.cfg, &self.open));
        }

        // 3. One merge-path replay; capacity is unchanged (`cap_new =
        //    cap`), the live bound is not enforced (the copy is never
        //    rebuilt into the engine), and the refreshed stats are
        //    discarded along with the table.
        let cap = table.len();
        let (results, _) = merge_epoch(
            c_ref,
            scratch,
            self.engine,
            self.schedule,
            &mut table,
            cap,
            &log,
            &batch,
            keys.len(),
            StoreStats::default(),
            false,
        );
        results.into_iter().map(|r| r.value()).collect()
    }
}

/// Key-sort a concatenated multi-shard snapshot (reals ascending by key,
/// fillers to the back), padding to the next power of two. Keys are
/// unique across shards, so the order is total.
fn sort_snapshot<C: Ctx>(c: &C, scratch: &ScratchPool, engine: Engine, table: &mut Vec<Rec>) {
    let m = table.len().next_power_of_two().max(1);
    let mut cells = scratch.lease(m, TagCell::filler());
    for (cell, r) in cells.iter_mut().zip(table.iter()) {
        *cell = if r.present {
            TagCell::new((r.key as u128) << 64, r.val as u128)
        } else {
            TagCell::filler()
        };
    }
    c.charge_par(m as u64);
    {
        let mut t = Tracked::new(c, &mut cells);
        engine.sort_cells(c, scratch, &mut t);
    }
    table.clear();
    table.resize(m, Rec::default());
    for (r, cell) in table.iter_mut().zip(cells.iter()) {
        if !cell.is_filler() {
            *r = Rec {
                present: true,
                key: (cell.tag >> 64) as u64,
                val: cell.aux as u64,
            };
        }
    }
    c.charge_par(m as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{ShardConfig, ShrinkPolicy};
    use fj::SeqCtx;

    fn ops_mix(n: u64, salt: u64) -> Vec<Op> {
        (0..n)
            .map(|i| {
                let key = (i * 7 + salt) % 37;
                match i % 4 {
                    0 | 1 => Op::Put {
                        key,
                        val: i * 100 + salt,
                    },
                    2 => Op::Get { key },
                    _ => Op::Delete {
                        key: (key + 5) % 37,
                    },
                }
            })
            .collect()
    }

    #[test]
    fn pipelined_matches_synchronous_store() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let mut sync = Store::new(StoreConfig::default());
        let mut pipe = PipelinedStore::new(Store::new(StoreConfig::default()));

        let mut handles = Vec::new();
        let mut want = Vec::new();
        for e in 0..5 {
            let ops = ops_mix(24, e * 13);
            want.push(sync.execute_epoch(&c, &sp, &ops).unwrap());
            for op in &ops {
                pipe.submit(*op);
            }
            handles.push(pipe.commit_async(&c));
        }
        for (h, want) in handles.iter().zip(want) {
            assert_eq!(pipe.wait(h).unwrap(), want);
        }
        let inner = pipe.into_inner(&c);
        assert_eq!(inner.stats(), sync.stats());
        assert_eq!(inner.epoch_counts(), sync.epoch_counts());
    }

    #[test]
    fn read_now_sees_inflight_and_open_writes() {
        let c = SeqCtx::new();
        let mut p = PipelinedStore::new(Store::new(StoreConfig::default()));
        p.submit(Op::Put { key: 1, val: 10 });
        p.submit(Op::Put { key: 2, val: 20 });
        let h = p.commit_async(&c);
        // Put still "mid-merge" from the caller's perspective.
        p.submit(Op::Put { key: 2, val: 21 }); // open overwrite
        p.submit(Op::Delete { key: 1 }); // open delete
        p.submit(Op::Put { key: 3, val: 30 });
        assert_eq!(
            p.read_now(&c, &[1, 2, 3, 4]),
            vec![None, Some(21), Some(30), None]
        );
        let _ = p.wait(&h).unwrap();
        // After the handoff the snapshot serves the merged keys.
        assert_eq!(p.read_now(&c, &[2]), vec![Some(21)]);
        p.drain(&c);
        assert_eq!(p.read_now(&c, &[1, 2, 3]), vec![None, Some(21), Some(30)]);
    }

    #[test]
    fn read_now_on_sharded_store_sorts_the_snapshot() {
        let c = SeqCtx::new();
        let mut p = PipelinedStore::new(ShardedStore::new(ShardConfig::with_shards(4)));
        for i in 0..32u64 {
            p.submit(Op::Put {
                key: i * 3,
                val: i + 1,
            });
        }
        let h = p.commit_async(&c);
        let _ = p.wait(&h).unwrap();
        let keys: Vec<u64> = (0..32).map(|i| i * 3).collect();
        let got = p.read_now(&c, &keys);
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, Some(i as u64 + 1));
        }
        // And mid-flight on the sharded engine too.
        p.submit(Op::Put { key: 3, val: 999 });
        let h2 = p.commit_async(&c);
        assert_eq!(p.read_now(&c, &[3, 6]), vec![Some(999), Some(3)]);
        let _ = p.wait(&h2).unwrap();
    }

    #[test]
    fn empty_commit_is_a_public_noop() {
        let c = SeqCtx::new();
        let mut p = PipelinedStore::new(Store::new(StoreConfig::default()));
        let h = p.commit_async(&c);
        assert_eq!(p.epoch_counts(), (0, 0));
        assert!(p.wait(&h).unwrap().is_empty());
        p.submit(Op::Put { key: 9, val: 90 });
        let h2 = p.commit_async(&c);
        let h3 = p.commit_async(&c); // empty again
        assert_eq!(p.wait(&h2).unwrap().len(), 1);
        assert!(p.wait(&h3).unwrap().is_empty());
        assert_eq!(p.epoch_counts(), (1, 1));
    }

    #[test]
    fn try_commit_coalesces_while_busy() {
        // Under SeqCtx the spawn resolves inline, so the handoff never
        // blocks and try_commit always commits; the cadence logic itself
        // is driven by `handoff_would_block`, which is false here.
        let c = SeqCtx::new();
        let mut p = PipelinedStore::new(Store::new(StoreConfig::default())).with_open_limit(64);
        for i in 0..10u64 {
            p.submit(Op::Put { key: i, val: i });
        }
        assert!(p.try_commit(&c).is_some());
        assert!(p.try_commit(&c).is_none(), "empty buffer must not commit");
        p.drain(&c);
        assert_eq!(p.epoch_counts(), (1, 1));
    }

    #[test]
    fn shrink_pinned_store_pipelines_correctly() {
        // The consult must also be right when capacity is pinned by a
        // shrink schedule (cap_new == cap path in the replay).
        let c = SeqCtx::new();
        let cfg = StoreConfig {
            shrink: Some(ShrinkPolicy {
                every: 1,
                live_bound: 64,
                snapshot: 0,
            }),
            ..StoreConfig::default()
        };
        let mut p = PipelinedStore::new(Store::new(cfg));
        for round in 0..4u64 {
            for i in 0..48u64 {
                p.submit(Op::Put {
                    key: i,
                    val: round * 1000 + i,
                });
            }
            let h = p.commit_async(&c);
            assert_eq!(
                p.read_now(&c, &[0, 47]),
                vec![Some(round * 1000), Some(round * 1000 + 47)]
            );
            let _ = p.wait(&h).unwrap();
        }
    }

    #[test]
    fn unknown_and_spent_handles_return_typed_errors() {
        // Regression: both used to panic inside `wait`.
        let c = SeqCtx::new();
        let mut p = PipelinedStore::new(Store::new(StoreConfig::default()));
        p.submit(Op::Put { key: 1, val: 1 });
        let h = p.commit_async(&c);
        assert_eq!(p.wait(&h).unwrap().len(), 1);
        // Already taken: the same handle no longer redeems.
        assert!(matches!(
            p.wait(&h),
            Err(StoreError::UnknownEpoch { epoch }) if epoch == h.epoch()
        ));
        // Foreign handle: an epoch some *other* store committed.
        let mut q = PipelinedStore::new(Store::new(StoreConfig::default()));
        for i in 0..3u64 {
            q.submit(Op::Put { key: i, val: i });
            let _ = q.commit_async(&c);
        }
        q.submit(Op::Put { key: 9, val: 9 });
        let foreign = q.commit_async(&c); // epoch 3: p never issued it
        assert!(matches!(
            p.wait(&foreign),
            Err(StoreError::UnknownEpoch { epoch: 3 })
        ));
        // The error path consumed nothing: p keeps working.
        p.submit(Op::Put { key: 2, val: 2 });
        let h2 = p.commit_async(&c);
        assert_eq!(p.wait(&h2).unwrap().len(), 1);
        assert_eq!(p.health(), crate::Health::Ok);
    }

    #[test]
    fn detached_merge_panic_is_contained_as_poisoned() {
        // A shrink bound the epoch violates passes the caller-thread
        // validation (it is checked inside the merge), so the panic
        // strikes on the detached task — `wait` must hand back a typed
        // error, not unwind through the join.
        let c = SeqCtx::new();
        let cfg = StoreConfig {
            shrink: Some(ShrinkPolicy {
                every: 1,
                live_bound: 4,
                snapshot: 0,
            }),
            ..StoreConfig::default()
        };
        let mut p = PipelinedStore::new(Store::new(cfg));
        for i in 0..32u64 {
            p.submit(Op::Put { key: i, val: i });
        }
        let h = p.commit_async(&c);
        assert!(matches!(p.wait(&h), Err(StoreError::Poisoned)));
        assert_eq!(p.health(), crate::Health::Degraded);
        // Later commits are refused, not unwound.
        p.submit(Op::Put { key: 1, val: 1 });
        let h2 = p.commit_async(&c);
        assert!(matches!(p.wait(&h2), Err(StoreError::Poisoned)));
    }
}
