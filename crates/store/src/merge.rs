//! The batched §F merge path: one epoch's operations are resolved against
//! the resident table with the paper's sort-and-scan routing pattern
//! (Ramachandran & Shi §F; cf. [`obliv_core::send_receive`]), evaluated on
//! the **tag-sort fast path** (DESIGN.md §10): every element is a packed
//! 32-byte [`TagCell`] — a 16-byte `key ‖ seq` tag and a 16-byte payload
//! lane — instead of the ~96-byte `Slot<MergeVal>` record a naive
//! implementation would push through every comparator layer.
//!
//! Pipeline, all fixed-pattern given the public shape `(cap, |pending|,
//! |batch|)`:
//!
//! 1. pack pending-log ops and the padded batch into cells keyed
//!    `(key ‖ seq)` and sort them — the only full sort left, over the
//!    small op class `b₂ = pow2(|pending| + |batch|)`;
//! 2. lay out `[table ascending | fillers | sorted ops descending]` — a
//!    bitonic sequence, because the resident table is key-sorted by the
//!    previous rebuild — and run **one bitonic merge** (`O(m log m)`
//!    comparators, not an `O(m log² m)` sort) to group each key's history
//!    contiguously, the record (seq 0) leading its run;
//! 3. a segmented *exclusive* scan with the last-writer-wins transformer
//!    monoid hands every op the value state produced by the record and all
//!    earlier writes of its run (sequential within-epoch semantics), and
//!    every run-last element the key's final state;
//! 4. the fix-up projects two fresh cell lanes from the (still key-sorted)
//!    merged array: a *results* lane tagged by submission index and a
//!    *candidates* lane tagged by key — the wide per-element state never
//!    rides through another network;
//! 5. results: one stable [`compact_cells`] pass moves the batch answers
//!    to the front, then one small sort of the `|batch|`-cell window
//!    restores submission order for the fixed-prefix readout;
//! 6. rebuild: because the merged array kept key order, the candidates
//!    lane is already key-sorted — one stable [`compact_cells`] pass (no
//!    sort at all) rebuilds the resident table at its new public capacity.
//!
//! Relative to the record-sort pipeline this replaces three full wide-slot
//! sorts with one small sort + one merge + one small sort + two
//! compactions over dense cells — several-fold less work and far less data
//! through the cache (the `store_bench`/`bench_diff` rows gate both).
//!
//! Because every comparator network, compaction level, scan and parallel
//! map above touches addresses that depend only on the public shape, two
//! epochs with the same shape but different keys/values/op-kinds generate
//! identical traces (`tests/store.rs`, `obliv_check`).

use crate::op::{kind, FlatOp, OpResult, StoreStats};
use fj::{grain_for, par_for, par_reduce, Ctx};
use metrics::{ScratchPool, Tracked};
use obliv_core::scan::{scan_in, Schedule};
use obliv_core::{compact_cells, select_u128, select_u64, Engine, TagCell};

/// One resident-table slot. Absent slots are padding: the number of
/// *present* records is secret, the physical length is public.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Rec {
    pub present: bool,
    pub key: u64,
    pub val: u64,
}

/// Table records carry this pseudo-kind (they head their key run; every
/// client op kind from [`kind`] is smaller).
const REC_KIND: u8 = 255;

/// Last-writer-wins transformer: what an element does to its key's value
/// state. `KEEP` (gets, aggregates, padding) is the monoid identity.
const T_KEEP: u8 = 0;
const T_SET: u8 = 1;
const T_CLEAR: u8 = 2;

// --- Cell packing -----------------------------------------------------------
//
// Merge tag:  `(key << 64) | seq` for real elements, `u128::MAX` for
// fillers (a real tag can never reach the all-ones pattern: seq ≤
// |pending| + |batch| ≪ 2^64). Sorting by the tag groups runs by key with
// the record (seq 0) first and ops in submission order — and keeps every
// comparison strict, so the networks need no stability argument.
//
// Merge aux:  `(kind << 64) | val`.
//
// Results lane:    tag = submission index (batch ops only, else filler);
//                  aux = `(kind << 72) | (found << 64) | prev_val`.
// Candidates lane: tag = key (run-last surviving states only, else
//                  filler); aux = final value.

#[inline]
fn op_cell(key: u64, seq: u64, op_kind: u8, val: u64) -> TagCell {
    TagCell::new(
        ((key as u128) << 64) | seq as u128,
        ((op_kind as u128) << 64) | val as u128,
    )
}

#[inline]
fn cell_key(cell: &TagCell) -> u64 {
    (cell.tag >> 64) as u64
}

#[inline]
fn cell_kind(cell: &TagCell) -> u8 {
    (cell.aux >> 64) as u8
}

#[inline]
fn cell_val(cell: &TagCell) -> u64 {
    cell.aux as u64
}

#[inline]
fn cell_seq(cell: &TagCell) -> u64 {
    cell.tag as u64
}

/// Scan element: segment head flag plus a value-state transformer. The
/// combine below is the standard segmented-scan monoid over transformer
/// composition (right transformer wins unless it is `KEEP`), so an
/// exclusive scan yields, at every position, the composition of the run
/// prefix before it.
#[derive(Clone, Copy, Debug, Default)]
struct Lww {
    head: bool,
    kind: u8,
    val: u64,
}

#[inline]
fn compose(a: Lww, b: Lww) -> (u8, u64) {
    // Branchless: transformer kinds are secret cell contents, so the
    // right-wins-unless-KEEP rule goes through word selects, not control
    // flow (DESIGN.md §14).
    let keep = b.kind == T_KEEP;
    (
        select_u64(keep, b.kind as u64, a.kind as u64) as u8,
        select_u64(keep, b.val, a.val),
    )
}

#[inline]
fn lww_combine(a: Lww, b: Lww) -> Lww {
    let (k, v) = compose(a, b);
    Lww {
        head: a.head | b.head,
        kind: select_u64(b.head, k as u64, b.kind as u64) as u8,
        val: select_u64(b.head, v, b.val),
    }
}

/// Head/last run boundaries, computed once from the merged array.
#[derive(Clone, Copy, Debug, Default)]
struct Bounds {
    head: bool,
    last: bool,
}

#[inline]
fn transformer_of(cell: &TagCell) -> Lww {
    // Branchless: filler-ness and op kind are secret; fold them through
    // word selects. A filler's aux lane reads as `REC_KIND`, so every
    // predicate is gated on `real`.
    let real = !cell.is_filler();
    let k = cell_kind(cell);
    let is_set = real && (k == REC_KIND || k == kind::PUT);
    let is_clear = real && k == kind::DELETE;
    Lww {
        head: false,
        kind: select_u64(
            is_set,
            select_u64(is_clear, T_KEEP as u64, T_CLEAR as u64),
            T_SET as u64,
        ) as u8,
        val: select_u64(is_set, 0, cell_val(cell)),
    }
}

/// Flat `Option<u64>`-plus-kind for the fixed-pattern result readout.
#[derive(Clone, Copy, Default)]
struct OutRes {
    kind: u8,
    found: bool,
    val: u64,
}

/// Run one merge epoch. `table` holds the resident records sorted by key
/// (padded, public length) and is rebuilt at public capacity `cap_new`;
/// `pending` and `batch` are already padded to their public classes, with
/// `n_results` real ops leading `batch`. Returns the batch results in
/// submission order and the refreshed analytics snapshot. `stats_snapshot`
/// (the pre-epoch snapshot) answers `Aggregate` ops. `enforce_live_bound`
/// — a public config bit, set iff a shrink schedule is configured — adds
/// the candidate-count guard pass before the rebuild.
#[allow(clippy::too_many_arguments)]
pub(crate) fn merge_epoch<C: Ctx>(
    c: &C,
    scratch: &ScratchPool,
    engine: Engine,
    sched: Schedule,
    table: &mut Vec<Rec>,
    cap_new: usize,
    pending: &[FlatOp],
    batch: &[FlatOp],
    n_results: usize,
    stats_snapshot: StoreStats,
    enforce_live_bound: bool,
) -> (Vec<OpResult>, StoreStats) {
    let cap = table.len();
    let p = pending.len();
    let b = batch.len();
    let b2 = (p + b).next_power_of_two();
    let m = (cap + b2).next_power_of_two();
    debug_assert!(cap_new <= m, "new capacity must fit the merge array");

    // 1. Pack and sort the epoch's ops by (key, seq); dummies become
    //    fillers — every position is written exactly once regardless of
    //    contents, and the sort is over the small op class only.
    let mut ops = scratch.lease(b2, TagCell::filler());
    for (j, (cell, f)) in ops
        .iter_mut()
        .zip(pending.iter().chain(batch.iter()))
        .enumerate()
    {
        *cell = if f.kind == kind::DUMMY {
            TagCell::filler()
        } else {
            op_cell(f.key, 1 + j as u64, f.kind, f.val)
        };
    }
    c.charge_par(b2 as u64);
    {
        let mut ot = Tracked::new(c, &mut ops);
        engine.sort_cells(c, scratch, &mut ot);
    }

    // 2. Merged array: the resident table is key-sorted (reals ascending,
    //    fillers last) by the previous rebuild, so `[table | fillers |
    //    sorted ops reversed]` is a bitonic sequence — one merge butterfly
    //    replaces the full sort of the concatenation.
    let mut cells = scratch.lease(m, TagCell::filler());
    for (i, cell) in cells.iter_mut().enumerate() {
        *cell = if i < cap {
            let r = table[i];
            if r.present {
                op_cell(r.key, 0, REC_KIND, r.val)
            } else {
                TagCell::filler()
            }
        } else if i >= m - b2 {
            ops[m - 1 - i]
        } else {
            TagCell::filler()
        };
    }
    c.charge_par(m as u64);

    let mut t = Tracked::new(c, &mut cells);
    engine.merge_cells(c, scratch, &mut t);

    // 3. Mark run boundaries, run the segmented exclusive LWW scan, and
    //    project the two output lanes — the merged array itself stays
    //    key-sorted and is never sorted again.
    let mut res_store = scratch.lease(m, TagCell::filler());
    let mut cand_store = scratch.lease(m, TagCell::filler());
    {
        let mut bounds_store = scratch.lease(m, Bounds::default());
        let mut lww_store = scratch.lease(m, Lww::default());
        let mut bounds = Tracked::new(c, &mut bounds_store);
        let mut lww = Tracked::new(c, &mut lww_store);
        let br = bounds.as_raw();
        let lr = lww.as_raw();
        let tr = t.as_raw();
        par_for(c, 0, m, grain_for(c), &|c, i| unsafe {
            let s = tr.get(c, i);
            let head = if i == 0 {
                true
            } else {
                let prev = tr.get(c, i - 1);
                c.work(1);
                prev.is_filler() != s.is_filler() || cell_key(&prev) != cell_key(&s)
            };
            let last = if i + 1 == m {
                true
            } else {
                let next = tr.get(c, i + 1);
                c.work(1);
                next.is_filler() != s.is_filler() || cell_key(&next) != cell_key(&s)
            };
            br.set(c, i, Bounds { head, last });
            let mut l = transformer_of(&s);
            l.head = head;
            lr.set(c, i, l);
        });

        // Segmented exclusive scan: position i receives the composed state
        // of its run's prefix [run start, i).
        scan_in(
            c,
            scratch,
            &mut lww,
            Lww::default(),
            &lww_combine,
            false,
            false,
            sched,
        );

        // Fix-up: every op learns its pre-op state; every run-last element
        // learns its key's final state. Both lanes written unconditionally
        // at every position.
        let lr = lww.as_raw();
        let mut res_t = Tracked::new(c, &mut res_store);
        let mut cand_t = Tracked::new(c, &mut cand_store);
        let rr = res_t.as_raw();
        let cr = cand_t.as_raw();
        par_for(c, 0, m, grain_for(c), &|c, i| unsafe {
            let s = tr.get(c, i);
            let bd = br.get(c, i);
            let scanned = lr.get(c, i);
            // Run heads see the empty state no matter what the scan
            // carried over from the previous run. Selected, not branched:
            // the head flag derives from secret keys.
            let pre = Lww {
                head: !bd.head & scanned.head,
                kind: select_u64(bd.head, scanned.kind as u64, T_KEEP as u64) as u8,
                val: select_u64(bd.head, scanned.val, 0),
            };
            let own = transformer_of(&s);
            let (inc_kind, inc_val) = compose(pre, own);
            let found = pre.kind == T_SET;
            let prev_val = select_u64(found, 0, pre.val);
            let is_batch_op = !s.is_filler() && cell_seq(&s) > p as u64;
            // The submission index is computed unconditionally (wrapping:
            // table records carry seq 0) and selected away for non-batch
            // positions.
            rr.set(
                c,
                i,
                TagCell {
                    tag: select_u128(
                        is_batch_op,
                        u128::MAX,
                        cell_seq(&s).wrapping_sub(1 + p as u64) as u128,
                    ),
                    aux: ((cell_kind(&s) as u128) << 72)
                        | ((found as u128) << 64)
                        | prev_val as u128,
                },
            );
            let cand = bd.last && inc_kind == T_SET && !s.is_filler();
            cr.set(
                c,
                i,
                TagCell {
                    tag: select_u128(cand, u128::MAX, cell_key(&s) as u128),
                    aux: inc_val as u128,
                },
            );
        });
    }

    // 4. Results: stable-compact the batch answers to the front, then one
    //    small sort of the padded-batch window restores submission order.
    //    The readout covers the *whole padded batch prefix* — reading
    //    exactly `n_results` slots would leak the real op count within the
    //    size class; the padding suffix is dropped host-side below.
    let outs: Vec<OutRes> = {
        let mut res_t = Tracked::new(c, &mut res_store);
        compact_cells(c, scratch, &mut res_t);
        {
            let mut win = res_t.range(0, b);
            engine.sort_cells(c, scratch, &mut win);
        }
        let rr = res_t.as_raw();
        metrics::par_collect(c, b, &|c, j| {
            // SAFETY: read-only phase.
            let s = unsafe { rr.get(c, j) };
            debug_assert!(j >= n_results || s.tag == j as u128);
            OutRes {
                kind: (s.aux >> 72) as u8,
                found: (s.aux >> 64) & 1 == 1,
                val: s.aux as u64,
            }
        })
    };

    // 5. Rebuild: the candidates lane inherited key order from the merged
    //    array, so one stable compaction (no sort) moves the surviving
    //    final states to the front at the new public capacity.
    let mut cand_t = Tracked::new(c, &mut cand_store);
    compact_cells(c, scratch, &mut cand_t);

    // Guard the rebuild: the surviving final states must fit the new
    // public capacity. Without a shrink schedule this holds by
    // construction (`cap_new` ≥ the grown live bound), so the pass is
    // skipped; with one it is the client's declared-bound contract, and
    // violating it must fail loudly instead of silently dropping records.
    // The count is a fixed-pattern reduce over the whole (public-length)
    // array, gated only by the public config bit.
    if enforce_live_bound {
        let cr = cand_t.as_raw();
        let cand_total = par_reduce(
            c,
            0,
            m,
            grain_for(c),
            &|c, i| unsafe { !cr.get(c, i).is_filler() as u64 },
            &|a, b| a + b,
        )
        .unwrap_or(0);
        assert!(
            cand_total as usize <= cap_new,
            "{cand_total} live records exceed the public capacity bound {cap_new} \
             (shrink-policy contract violated)"
        );
    }

    table.clear();
    table.resize(cap_new, Rec::default());
    let stats = {
        let mut tt = Tracked::new(c, table.as_mut_slice());
        let ttr = tt.as_raw();
        let cr = cand_t.as_raw();
        par_for(c, 0, cap_new, grain_for(c), &|c, i| unsafe {
            let s = cr.get(c, i);
            let keep = !s.is_filler();
            ttr.set(
                c,
                i,
                Rec {
                    present: keep,
                    key: select_u64(keep, 0, s.tag as u64),
                    val: select_u64(keep, 0, s.aux as u64),
                },
            );
        });
        // Refresh the analytics snapshot with one reduce over the new table.
        par_reduce(
            c,
            0,
            cap_new,
            grain_for(c),
            &|c, i| {
                // SAFETY: read-only phase over the freshly written table.
                let r = unsafe { ttr.get(c, i) };
                (r.present as u64, select_u64(r.present, 0, r.val))
            },
            // One overflow policy for both fields (see `StoreStats`):
            // wrap, exactly like the cross-shard fold.
            &|a, b| (a.0.wrapping_add(b.0), a.1.wrapping_add(b.1)),
        )
        .map(|(count, sum)| StoreStats { count, sum })
        .unwrap_or_default()
    };

    let results = outs
        .into_iter()
        .take(n_results)
        .map(|o| {
            if o.kind == kind::AGG {
                OpResult::Stats(stats_snapshot)
            } else {
                OpResult::Value(o.found.then_some(o.val))
            }
        })
        .collect();
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use fj::SeqCtx;

    fn run(
        table: &mut Vec<Rec>,
        cap_new: usize,
        pending: &[FlatOp],
        ops: &[Op],
        pad_to: usize,
    ) -> Vec<OpResult> {
        let c = SeqCtx::new();
        let scratch = ScratchPool::new();
        let mut batch: Vec<FlatOp> = ops.iter().map(FlatOp::of).collect();
        batch.resize(pad_to, FlatOp::dummy());
        let (res, _) = merge_epoch(
            &c,
            &scratch,
            Engine::BitonicRec,
            Schedule::Tree,
            table,
            cap_new,
            pending,
            &batch,
            ops.len(),
            StoreStats::default(),
            true,
        );
        res
    }

    fn live(table: &[Rec]) -> Vec<(u64, u64)> {
        table
            .iter()
            .filter(|r| r.present)
            .map(|r| (r.key, r.val))
            .collect()
    }

    #[test]
    fn put_get_delete_sequential_semantics() {
        let mut table = vec![Rec::default(); 8];
        let ops = vec![
            Op::Put { key: 5, val: 50 },
            Op::Get { key: 5 },
            Op::Put { key: 5, val: 51 },
            Op::Get { key: 5 },
            Op::Delete { key: 5 },
            Op::Get { key: 5 },
        ];
        let res = run(&mut table, 8, &[], &ops, 8);
        assert_eq!(
            res,
            vec![
                OpResult::Value(None),
                OpResult::Value(Some(50)),
                OpResult::Value(Some(50)),
                OpResult::Value(Some(51)),
                OpResult::Value(Some(51)),
                OpResult::Value(None),
            ]
        );
        assert_eq!(live(&table), vec![]);
    }

    #[test]
    fn table_records_head_their_runs() {
        let mut table = vec![
            Rec {
                present: true,
                key: 3,
                val: 30,
            },
            Rec {
                present: true,
                key: 9,
                val: 90,
            },
            Rec::default(),
            Rec::default(),
        ];
        let ops = vec![
            Op::Get { key: 3 },
            Op::Delete { key: 9 },
            Op::Put { key: 7, val: 70 },
            Op::Get { key: 9 },
        ];
        let res = run(&mut table, 8, &[], &ops, 8);
        assert_eq!(
            res,
            vec![
                OpResult::Value(Some(30)),
                OpResult::Value(Some(90)),
                OpResult::Value(None),
                OpResult::Value(None),
            ]
        );
        assert_eq!(live(&table), vec![(3, 30), (7, 70)]);
    }

    #[test]
    fn pending_ops_apply_before_batch() {
        let mut table = vec![Rec::default(); 8];
        let pending = vec![
            FlatOp {
                kind: kind::PUT,
                key: 2,
                val: 20,
            },
            FlatOp::dummy(),
        ];
        let ops = vec![Op::Get { key: 2 }, Op::Delete { key: 2 }];
        let res = run(&mut table, 8, &pending, &ops, 8);
        assert_eq!(
            res,
            vec![OpResult::Value(Some(20)), OpResult::Value(Some(20))]
        );
        assert_eq!(live(&table), vec![]);
    }

    #[test]
    fn stats_reflect_new_table_and_aggregates_see_snapshot() {
        let c = SeqCtx::new();
        let scratch = ScratchPool::new();
        let mut table = vec![Rec::default(); 8];
        let batch: Vec<FlatOp> = [
            Op::Put { key: 1, val: 10 },
            Op::Put { key: 2, val: 5 },
            Op::Aggregate,
        ]
        .iter()
        .map(FlatOp::of)
        .chain(std::iter::repeat_with(FlatOp::dummy))
        .take(8)
        .collect();
        let snapshot = StoreStats { count: 9, sum: 99 };
        let (res, stats) = merge_epoch(
            &c,
            &scratch,
            Engine::BitonicRec,
            Schedule::Tree,
            &mut table,
            8,
            &[],
            &batch,
            3,
            snapshot,
            true,
        );
        // Aggregates answer from the pre-epoch snapshot...
        assert_eq!(res[2], OpResult::Stats(snapshot));
        // ...while the refreshed snapshot covers the new table.
        assert_eq!(stats, StoreStats { count: 2, sum: 15 });
    }

    #[test]
    fn capacity_growth_keeps_records() {
        let mut table = vec![Rec {
            present: true,
            key: 100,
            val: 1,
        }];
        table.resize(8, Rec::default());
        let ops: Vec<Op> = (0..12).map(|i| Op::Put { key: i, val: i }).collect();
        let res = run(&mut table, 16, &[], &ops, 16);
        assert!(res.iter().all(|r| *r == OpResult::Value(None)));
        assert_eq!(table.len(), 16);
        let mut want: Vec<(u64, u64)> = (0..12).map(|i| (i, i)).collect();
        want.push((100, 1));
        assert_eq!(live(&table), want);
    }

    #[test]
    fn rebuilt_table_is_key_sorted_with_reals_leading() {
        // The bitonic-merge step relies on the rebuild invariant: present
        // records ascending by key, fillers after.
        let mut table = vec![Rec::default(); 8];
        let ops: Vec<Op> = [9u64, 2, 7, 4]
            .iter()
            .map(|&k| Op::Put {
                key: k,
                val: k * 10,
            })
            .collect();
        run(&mut table, 8, &[], &ops, 8);
        let first_absent = table.iter().position(|r| !r.present).unwrap_or(8);
        assert_eq!(first_absent, 4);
        assert!(table[first_absent..].iter().all(|r| !r.present));
        assert!(table[..first_absent]
            .windows(2)
            .all(|w| w[0].key < w[1].key));
    }

    #[test]
    fn extreme_keys_do_not_collide_with_fillers() {
        // key u64::MAX packs to a tag below u128::MAX (seq keeps it real).
        let mut table = vec![Rec::default(); 8];
        let ops = vec![
            Op::Put {
                key: u64::MAX,
                val: 1,
            },
            Op::Get { key: u64::MAX },
            Op::Put { key: 0, val: 2 },
        ];
        let res = run(&mut table, 8, &[], &ops, 8);
        assert_eq!(res[1], OpResult::Value(Some(1)));
        assert_eq!(live(&table), vec![(0, 2), (u64::MAX, 1)]);
    }
}
