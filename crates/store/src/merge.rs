//! The batched §F merge path: one epoch's operations are resolved against
//! the resident table with the paper's sort-and-scan routing pattern
//! (Ramachandran & Shi §F; cf. [`obliv_core::send_receive`]).
//!
//! Pipeline, all fixed-pattern given the public shape `(cap, |pending|,
//! |batch|)`:
//!
//! 1. concatenate table records, pending-log ops and the padded batch into
//!    one slot array, keyed `(key ‖ seq)` — the record (seq 0) leads its
//!    key-run, ops follow in submission order;
//! 2. one oblivious sort groups each key's history contiguously;
//! 3. a segmented *exclusive* scan with the last-writer-wins transformer
//!    monoid hands every op the value state produced by the record and all
//!    earlier writes of its run (sequential within-epoch semantics), and
//!    every run-last element the key's final state;
//! 4. one oblivious sort routes batch ops back to their submission slots
//!    (the send-receive return trip) for a fixed-prefix readout;
//! 5. one oblivious sort routes the surviving final states to the front,
//!    rebuilding the resident table at its new public capacity.
//!
//! Because every comparator network, scan and parallel map above touches
//! addresses that depend only on the public shape, two epochs with the
//! same shape but different keys/values/op-kinds generate identical traces
//! (`tests/store.rs`, `obliv_check`).

use crate::op::{kind, FlatOp, OpResult, StoreStats};
use fj::{grain_for, par_for, par_reduce, Ctx};
use metrics::{ScratchPool, Tracked};
use obliv_core::scan::{scan_in, Schedule};
use obliv_core::{set_keys, Engine, Item, Slot};

/// One resident-table slot. Absent slots are padding: the number of
/// *present* records is secret, the physical length is public.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Rec {
    pub present: bool,
    pub key: u64,
    pub val: u64,
}

/// Payload carried through the merge network.
#[derive(Clone, Copy, Debug, Default)]
struct MergeVal {
    key: u64,
    /// 0 = table record; `1..` = ops in submission order (pending first).
    seq: u64,
    /// [`kind`] op kinds, or [`REC_KIND`] for table records.
    kind: u8,
    /// Put/record value.
    val: u64,
    /// Op result: was a value present before this op?
    res_found: bool,
    res_val: u64,
    /// Run-last elements whose final state is "present" become the new
    /// table record for their key.
    cand: bool,
    cand_val: u64,
}

const REC_KIND: u8 = 255;

/// Last-writer-wins transformer: what an element does to its key's value
/// state. `KEEP` (gets, aggregates, padding) is the monoid identity.
const T_KEEP: u8 = 0;
const T_SET: u8 = 1;
const T_CLEAR: u8 = 2;

/// Scan element: segment head flag plus a value-state transformer. The
/// combine below is the standard segmented-scan monoid over transformer
/// composition (right transformer wins unless it is `KEEP`), so an
/// exclusive scan yields, at every position, the composition of the run
/// prefix before it.
#[derive(Clone, Copy, Debug, Default)]
struct Lww {
    head: bool,
    kind: u8,
    val: u64,
}

#[inline]
fn compose(a: Lww, b: Lww) -> (u8, u64) {
    if b.kind == T_KEEP {
        (a.kind, a.val)
    } else {
        (b.kind, b.val)
    }
}

#[inline]
fn lww_combine(a: Lww, b: Lww) -> Lww {
    if b.head {
        b
    } else {
        let (k, v) = compose(a, b);
        Lww {
            head: a.head,
            kind: k,
            val: v,
        }
    }
}

/// Head/last run boundaries, computed once from the sorted array.
#[derive(Clone, Copy, Debug, Default)]
struct Bounds {
    head: bool,
    last: bool,
}

#[inline]
fn transformer_of(s: &Slot<MergeVal>) -> Lww {
    if !s.is_real() {
        return Lww::default();
    }
    let v = &s.item.val;
    let (kind, val) = match v.kind {
        REC_KIND | kind::PUT => (T_SET, v.val),
        kind::DELETE => (T_CLEAR, 0),
        _ => (T_KEEP, 0),
    };
    Lww {
        head: false,
        kind,
        val,
    }
}

/// Flat `Option<u64>`-plus-kind for the fixed-pattern result readout.
#[derive(Clone, Copy, Default)]
struct OutRes {
    kind: u8,
    found: bool,
    val: u64,
}

/// Run one merge epoch. `table` holds the resident records sorted by key
/// (padded, public length) and is rebuilt at public capacity `cap_new`;
/// `pending` and `batch` are already padded to their public classes, with
/// `n_results` real ops leading `batch`. Returns the batch results in
/// submission order and the refreshed analytics snapshot. `stats_snapshot`
/// (the pre-epoch snapshot) answers `Aggregate` ops. `enforce_live_bound`
/// — a public config bit, set iff a shrink schedule is configured — adds
/// the candidate-count guard pass before the rebuild.
#[allow(clippy::too_many_arguments)]
pub(crate) fn merge_epoch<C: Ctx>(
    c: &C,
    scratch: &ScratchPool,
    engine: Engine,
    sched: Schedule,
    table: &mut Vec<Rec>,
    cap_new: usize,
    pending: &[FlatOp],
    batch: &[FlatOp],
    n_results: usize,
    stats_snapshot: StoreStats,
    enforce_live_bound: bool,
) -> (Vec<OpResult>, StoreStats) {
    let cap = table.len();
    let p = pending.len();
    let total = cap + p + batch.len();
    let m = total.next_power_of_two();
    debug_assert!(cap_new <= m, "new capacity must fit the merge array");

    // 1. Concatenate: records (seq 0), pending ops, batch ops. Dummy ops
    //    and absent table slots become fillers — every position is written
    //    exactly once regardless of contents.
    let mut slots = scratch.lease(m, Slot::<MergeVal>::filler());
    for (slot, r) in slots.iter_mut().zip(table.iter()) {
        *slot = if r.present {
            Slot::real(
                Item::new(
                    0,
                    MergeVal {
                        key: r.key,
                        seq: 0,
                        kind: REC_KIND,
                        val: r.val,
                        ..MergeVal::default()
                    },
                ),
                0,
            )
        } else {
            Slot::filler()
        };
    }
    for (j, (slot, f)) in slots[cap..]
        .iter_mut()
        .zip(pending.iter().chain(batch.iter()))
        .enumerate()
    {
        *slot = if f.kind == kind::DUMMY {
            Slot::filler()
        } else {
            Slot::real(
                Item::new(
                    0,
                    MergeVal {
                        key: f.key,
                        seq: 1 + j as u64,
                        kind: f.kind,
                        val: f.val,
                        ..MergeVal::default()
                    },
                ),
                0,
            )
        };
    }
    c.charge_par(total as u64);

    let mut t = Tracked::new(c, &mut slots);

    // 2. Sort by (key, seq); fillers last. The record (seq 0) heads its
    //    run, ops follow in submission order.
    set_keys(c, &mut t, &|s: &Slot<MergeVal>| {
        if s.is_real() {
            ((s.item.val.key as u128) << 64) | s.item.val.seq as u128
        } else {
            u128::MAX
        }
    });
    engine.sort_slots(c, scratch, &mut t);

    // 3a. Mark run boundaries and gather the scan input (read-only over the
    //     sorted slots; each output position written once).
    let mut bounds_store = scratch.lease(m, Bounds::default());
    let mut lww_store = scratch.lease(m, Lww::default());
    {
        let mut bounds = Tracked::new(c, &mut bounds_store);
        let mut lww = Tracked::new(c, &mut lww_store);
        let br = bounds.as_raw();
        let lr = lww.as_raw();
        let tr = t.as_raw();
        par_for(c, 0, m, grain_for(c), &|c, i| unsafe {
            let s = tr.get(c, i);
            let head = if i == 0 {
                true
            } else {
                let prev = tr.get(c, i - 1);
                c.work(1);
                prev.is_filler() != s.is_filler() || prev.item.val.key != s.item.val.key
            };
            let last = if i + 1 == m {
                true
            } else {
                let next = tr.get(c, i + 1);
                c.work(1);
                next.is_filler() != s.is_filler() || next.item.val.key != s.item.val.key
            };
            br.set(c, i, Bounds { head, last });
            let mut l = transformer_of(&s);
            l.head = head;
            lr.set(c, i, l);
        });

        // 3b. Segmented exclusive scan: position i receives the composed
        //     state of its run's prefix [run start, i).
        scan_in(
            c,
            scratch,
            &mut lww,
            Lww::default(),
            &lww_combine,
            false,
            false,
            sched,
        );

        // 3c. Fix-up: every op learns its pre-op state; every run-last
        //     element learns its key's final state. Unconditional writes.
        let lr = lww.as_raw();
        par_for(c, 0, m, grain_for(c), &|c, i| unsafe {
            let mut s = tr.get(c, i);
            let b = br.get(c, i);
            let scanned = lr.get(c, i);
            // Run heads see the empty state no matter what the scan
            // carried over from the previous run.
            let pre = if b.head { Lww::default() } else { scanned };
            let own = transformer_of(&s);
            let (inc_kind, inc_val) = compose(pre, own);
            s.item.val.res_found = pre.kind == T_SET;
            s.item.val.res_val = if pre.kind == T_SET { pre.val } else { 0 };
            s.item.val.cand = b.last && inc_kind == T_SET && s.is_real();
            s.item.val.cand_val = inc_val;
            tr.set(c, i, s);
        });
    }

    // 4. Route batch ops back to submission order; fixed-prefix readout.
    set_keys(c, &mut t, &|s: &Slot<MergeVal>| {
        if s.is_real() && s.item.val.seq > p as u64 {
            (s.item.val.seq - 1 - p as u64) as u128
        } else {
            u128::MAX
        }
    });
    engine.sort_slots(c, scratch, &mut t);
    // Fixed-pattern readout over the *whole padded batch prefix* — reading
    // exactly `n_results` slots would leak the real op count within the
    // size class. The padding suffix holds whatever sorted into the
    // `u128::MAX` key region; those entries are dropped host-side below.
    let outs: Vec<OutRes> = {
        let tr = t.as_raw();
        metrics::par_collect(c, batch.len(), &|c, j| {
            // SAFETY: read-only phase.
            let s = unsafe { tr.get(c, j) };
            debug_assert!(j >= n_results || s.item.val.seq as usize == 1 + p + j);
            OutRes {
                kind: s.item.val.kind,
                found: s.item.val.res_found,
                val: s.item.val.res_val,
            }
        })
    };

    // 5. Route final states to the front and rebuild the table at its new
    //    public capacity (records stay sorted by key).
    set_keys(c, &mut t, &|s: &Slot<MergeVal>| {
        if s.is_real() && s.item.val.cand {
            s.item.val.key as u128
        } else {
            u128::MAX
        }
    });
    engine.sort_slots(c, scratch, &mut t);

    // Guard the rebuild: the surviving final states must fit the new
    // public capacity. Without a shrink schedule this holds by
    // construction (`cap_new` ≥ the grown live bound), so the pass is
    // skipped; with one it is the client's declared-bound contract, and
    // violating it must fail loudly instead of silently dropping records.
    // The count is a fixed-pattern reduce over the whole (public-length)
    // array, gated only by the public config bit.
    if enforce_live_bound {
        let cand_total = {
            let tr = t.as_raw();
            par_reduce(
                c,
                0,
                m,
                grain_for(c),
                &|c, i| unsafe {
                    let s = tr.get(c, i);
                    (s.is_real() && s.item.val.cand) as u64
                },
                &|a, b| a + b,
            )
            .unwrap_or(0)
        };
        assert!(
            cand_total as usize <= cap_new,
            "{cand_total} live records exceed the public capacity bound {cap_new} \
             (shrink-policy contract violated)"
        );
    }

    table.clear();
    table.resize(cap_new, Rec::default());
    let stats = {
        let mut tt = Tracked::new(c, table.as_mut_slice());
        let ttr = tt.as_raw();
        let tr = t.as_raw();
        par_for(c, 0, cap_new, grain_for(c), &|c, i| unsafe {
            let s = tr.get(c, i);
            let keep = s.is_real() && s.item.val.cand;
            ttr.set(
                c,
                i,
                Rec {
                    present: keep,
                    key: if keep { s.item.val.key } else { 0 },
                    val: if keep { s.item.val.cand_val } else { 0 },
                },
            );
        });
        // Refresh the analytics snapshot with one reduce over the new table.
        par_reduce(
            c,
            0,
            cap_new,
            grain_for(c),
            &|c, i| {
                // SAFETY: read-only phase over the freshly written table.
                let r = unsafe { ttr.get(c, i) };
                (r.present as u64, if r.present { r.val } else { 0 })
            },
            &|a, b| (a.0 + b.0, a.1.wrapping_add(b.1)),
        )
        .map(|(count, sum)| StoreStats { count, sum })
        .unwrap_or_default()
    };

    let results = outs
        .into_iter()
        .take(n_results)
        .map(|o| {
            if o.kind == kind::AGG {
                OpResult::Stats(stats_snapshot)
            } else {
                OpResult::Value(o.found.then_some(o.val))
            }
        })
        .collect();
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use fj::SeqCtx;

    fn run(
        table: &mut Vec<Rec>,
        cap_new: usize,
        pending: &[FlatOp],
        ops: &[Op],
        pad_to: usize,
    ) -> Vec<OpResult> {
        let c = SeqCtx::new();
        let scratch = ScratchPool::new();
        let mut batch: Vec<FlatOp> = ops.iter().map(FlatOp::of).collect();
        batch.resize(pad_to, FlatOp::dummy());
        let (res, _) = merge_epoch(
            &c,
            &scratch,
            Engine::BitonicRec,
            Schedule::Tree,
            table,
            cap_new,
            pending,
            &batch,
            ops.len(),
            StoreStats::default(),
            true,
        );
        res
    }

    fn live(table: &[Rec]) -> Vec<(u64, u64)> {
        table
            .iter()
            .filter(|r| r.present)
            .map(|r| (r.key, r.val))
            .collect()
    }

    #[test]
    fn put_get_delete_sequential_semantics() {
        let mut table = vec![Rec::default(); 8];
        let ops = vec![
            Op::Put { key: 5, val: 50 },
            Op::Get { key: 5 },
            Op::Put { key: 5, val: 51 },
            Op::Get { key: 5 },
            Op::Delete { key: 5 },
            Op::Get { key: 5 },
        ];
        let res = run(&mut table, 8, &[], &ops, 8);
        assert_eq!(
            res,
            vec![
                OpResult::Value(None),
                OpResult::Value(Some(50)),
                OpResult::Value(Some(50)),
                OpResult::Value(Some(51)),
                OpResult::Value(Some(51)),
                OpResult::Value(None),
            ]
        );
        assert_eq!(live(&table), vec![]);
    }

    #[test]
    fn table_records_head_their_runs() {
        let mut table = vec![
            Rec {
                present: true,
                key: 3,
                val: 30,
            },
            Rec {
                present: true,
                key: 9,
                val: 90,
            },
            Rec::default(),
            Rec::default(),
        ];
        let ops = vec![
            Op::Get { key: 3 },
            Op::Delete { key: 9 },
            Op::Put { key: 7, val: 70 },
            Op::Get { key: 9 },
        ];
        let res = run(&mut table, 8, &[], &ops, 8);
        assert_eq!(
            res,
            vec![
                OpResult::Value(Some(30)),
                OpResult::Value(Some(90)),
                OpResult::Value(None),
                OpResult::Value(None),
            ]
        );
        assert_eq!(live(&table), vec![(3, 30), (7, 70)]);
    }

    #[test]
    fn pending_ops_apply_before_batch() {
        let mut table = vec![Rec::default(); 8];
        let pending = vec![
            FlatOp {
                kind: kind::PUT,
                key: 2,
                val: 20,
            },
            FlatOp::dummy(),
        ];
        let ops = vec![Op::Get { key: 2 }, Op::Delete { key: 2 }];
        let res = run(&mut table, 8, &pending, &ops, 8);
        assert_eq!(
            res,
            vec![OpResult::Value(Some(20)), OpResult::Value(Some(20))]
        );
        assert_eq!(live(&table), vec![]);
    }

    #[test]
    fn stats_reflect_new_table_and_aggregates_see_snapshot() {
        let c = SeqCtx::new();
        let scratch = ScratchPool::new();
        let mut table = vec![Rec::default(); 8];
        let batch: Vec<FlatOp> = [
            Op::Put { key: 1, val: 10 },
            Op::Put { key: 2, val: 5 },
            Op::Aggregate,
        ]
        .iter()
        .map(FlatOp::of)
        .chain(std::iter::repeat_with(FlatOp::dummy))
        .take(8)
        .collect();
        let snapshot = StoreStats { count: 9, sum: 99 };
        let (res, stats) = merge_epoch(
            &c,
            &scratch,
            Engine::BitonicRec,
            Schedule::Tree,
            &mut table,
            8,
            &[],
            &batch,
            3,
            snapshot,
            true,
        );
        // Aggregates answer from the pre-epoch snapshot...
        assert_eq!(res[2], OpResult::Stats(snapshot));
        // ...while the refreshed snapshot covers the new table.
        assert_eq!(stats, StoreStats { count: 2, sum: 15 });
    }

    #[test]
    fn capacity_growth_keeps_records() {
        let mut table = vec![Rec {
            present: true,
            key: 100,
            val: 1,
        }];
        table.resize(8, Rec::default());
        let ops: Vec<Op> = (0..12).map(|i| Op::Put { key: i, val: i }).collect();
        let res = run(&mut table, 16, &[], &ops, 16);
        assert!(res.iter().all(|r| *r == OpResult::Value(None)));
        assert_eq!(table.len(), 16);
        let mut want: Vec<(u64, u64)> = (0..12).map(|i| (i, i)).collect();
        want.push((100, 1));
        assert_eq!(live(&table), want);
    }
}
