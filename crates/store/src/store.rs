//! The store front ends: [`Store`] (one shard) and [`ShardedStore`]
//! (oblivious routing + parallel per-shard commits), sharing the
//! [`Epoch`] batch builder.
//!
//! # State and path selection
//!
//! The authoritative state of each shard is its resident **table** (flat,
//! key-sorted, padded to a public power-of-two capacity) — the §F merge
//! path resolves whole epochs against it. When the key space is bounded
//! ([`StoreConfig::oram_key_space`]), a 1-shard store additionally keeps a
//! recursive tree-ORAM **mirror** ([`pram::Opram`], §4.2) of the same
//! key→value map, and epochs whose *public* padded size falls below
//! [`StoreConfig::oram_threshold`] are served by per-op ORAM point lookups
//! instead of paying a full merge. The two representations stay consistent
//! LSM-style (see [`crate::shard`]). Path selection reads only public
//! quantities (padded batch class, pending-log length), so the dispatch
//! itself leaks nothing about the operations.
//!
//! # Sharded epochs
//!
//! A [`ShardedStore`] partitions the key space across `shards` shards by
//! the public hash [`shard_of`](crate::shard_of). Each epoch is routed
//! obliviously (every shard's sub-batch padded to the same public class),
//! committed on all shards in parallel via [`fj::par_zip_mut_affine`]
//! (shard *i* hinted at worker *i*, so on a pinned pool each shard's
//! table stays hot in the same core's cache across epochs), and the
//! results are obliviously routed back to submission order — the
//! adversary trace of the whole epoch is a function of `(batch class,
//! shard count, capacity history)` only. See DESIGN.md §9.

use crate::error::{Health, RetryPolicy, StoreError};
use crate::op::{size_class, EpochPath, FlatOp, Op, OpResult, StoreStats};
use crate::recovery::recover_shards;
use crate::router::{gather_results, route_ops, shard_class, OpResultSlot, SubBatch};
use crate::shard::Shard;
use crate::vfs::{OsVfs, Vfs};
use crate::wal::{self, Durability, SnapMeta, Wal};
use fj::{par_zip_mut_affine, Ctx};
use metrics::ScratchPool;
use obliv_core::scan::Schedule;
use obliv_core::Engine;
use pram::OramConfig;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Public compaction schedule: every [`every`](ShrinkPolicy::every)-th
/// merge, a shard's capacity is obliviously compacted back to the size
/// class of [`live_bound`](ShrinkPolicy::live_bound) instead of growing
/// monotonically. The schedule is a function of the merge counter only;
/// `live_bound` is a *client-declared public bound* on the number of
/// distinct live keys (per shard, for sharded stores) — exceeding it is a
/// contract violation caught by the merge's candidate-count assert, in
/// the same style as the key-space assert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShrinkPolicy {
    /// Compact every `every` merges (`0` disables the schedule).
    pub every: u64,
    /// Public upper bound on distinct live keys at compaction points.
    pub live_bound: usize,
    /// Snapshot cadence for [`Durability::Epoch`] stores: every
    /// `snapshot`-th merge, write the packed table to disk and truncate
    /// the WAL (`0` disables scheduled snapshots; see
    /// [`Store::checkpoint`] for the explicit variant). Like `every`,
    /// this reads only the public merge counter, so snapshot points — and
    /// thus WAL file lengths — stay public functions of batch sizes.
    pub snapshot: u64,
}

/// Tuning for a [`Store`] (or for each shard of a [`ShardedStore`]).
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Sorting engine driving the merge path (and the ORAM's conflict
    /// machinery).
    pub engine: Engine,
    /// Scan schedule for the merge path's LWW scan.
    pub schedule: Schedule,
    /// Bounded key space enabling the ORAM path: all keys must be
    /// `< oram_key_space`. `None` disables the ORAM path (arbitrary `u64`
    /// keys, every epoch merges).
    pub oram_key_space: Option<usize>,
    /// Epochs whose padded batch class is `>=` this merge; smaller ones
    /// take the ORAM path (when enabled).
    pub oram_threshold: usize,
    /// A merge is forced once `pending + batch` would exceed this, bounding
    /// the pending log.
    pub pending_limit: usize,
    /// Tree-ORAM tuning (bucket size, stash, layout).
    pub oram: OramConfig,
    /// Seed for the ORAM's position-map coins.
    pub seed: u64,
    /// Optional public shrink schedule (capacity compaction).
    pub shrink: Option<ShrinkPolicy>,
    /// Durability mode. [`Durability::Epoch`] takes effect only through
    /// [`Store::recover`] / [`ShardedStore::recover`], which bind the
    /// store to an on-disk directory; the default keeps every path
    /// in-memory and filesystem-free.
    pub durability: Durability,
    /// Retry policy for transient durable-path faults (WAL appends and
    /// syncs, snapshot writes). Irrelevant — and alloc-free — on
    /// in-memory stores and on the durable no-fault path.
    pub retry: RetryPolicy,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            engine: Engine::BitonicRec,
            schedule: Schedule::Tree,
            oram_key_space: None,
            oram_threshold: 64,
            pending_limit: 512,
            oram: OramConfig::default(),
            seed: 0xD0B_5707,
            shrink: None,
            durability: Durability::None,
            retry: RetryPolicy::default(),
        }
    }
}

impl StoreConfig {
    /// Default config with the ORAM path enabled over `key_space` keys.
    pub fn with_oram(key_space: usize) -> Self {
        StoreConfig {
            oram_key_space: Some(key_space),
            ..StoreConfig::default()
        }
    }
}

/// Check the epoch-wide client contracts and pad the batch to its public
/// size class. Shared by both front ends (and by the pipelined wrapper's
/// in-flight op log, which must be padded to the same public class).
pub(crate) fn validate_and_pad(cfg: &StoreConfig, ops: &[Op]) -> Vec<FlatOp> {
    if let Some(space) = cfg.oram_key_space {
        for op in ops {
            assert!(
                (op.key() as usize) < space.max(1),
                "key {} outside the configured ORAM key space {}",
                op.key(),
                space
            );
        }
    }
    for op in ops {
        if let Op::Put { val, .. } = op {
            assert!(*val < u64::MAX, "values must be < u64::MAX");
        }
    }
    ops.iter()
        .map(FlatOp::of)
        .chain(std::iter::repeat_with(FlatOp::dummy))
        .take(size_class(ops.len()))
        .collect()
}

/// Directory + append handle of a durable single-shard store, plus the
/// filesystem it writes through.
struct DurableLog {
    dir: PathBuf,
    wal: Wal,
    vfs: Arc<dyn Vfs>,
}

/// An oblivious batched key-value / private-analytics store. See the
/// [crate docs](crate) for the architecture, and DESIGN.md §13 for the
/// durability model behind [`Store::recover`] / [`Store::checkpoint`].
pub struct Store {
    cfg: StoreConfig,
    shard: Shard,
    epochs: u64,
    last_path: Option<EpochPath>,
    /// `Some` iff this store logs epochs (built via [`Store::recover`]
    /// with [`Durability::Epoch`]).
    durable: Option<DurableLog>,
    /// Sequence number of an epoch already appended by the pipelined
    /// pre-log; `execute_epoch` must not append it a second time.
    prelogged: Option<u64>,
    /// Sticky durable health: [`Health::Degraded`] after a terminal
    /// durable-path failure (reads keep working, commits are refused).
    health: Health,
    /// Display form of the fault that degraded the store.
    fault: Option<String>,
}

impl Store {
    /// An in-memory store. [`StoreConfig::durability`] is ignored here —
    /// there is no directory to log into; use [`Store::recover`] to open
    /// (or create) a durable store.
    pub fn new(cfg: StoreConfig) -> Self {
        Store {
            cfg,
            shard: Shard::new(cfg, 0),
            epochs: 0,
            last_path: None,
            durable: None,
            prelogged: None,
            health: Health::Ok,
            fault: None,
        }
    }

    /// Open the store persisted in `dir`, creating the directory (and an
    /// empty store) on first use: restore the latest snapshot, then
    /// replay every committed WAL record since it through the normal
    /// epoch paths, so the recovered table, counters, and adversary trace
    /// are the same public functions of the logged batch classes as the
    /// original run's (see DESIGN.md §13). A torn record at the WAL tail
    /// — an epoch that crashed mid-append, hence was never acknowledged —
    /// is dropped.
    ///
    /// With `cfg.durability == Durability::Epoch` the returned store
    /// keeps logging into `dir`; with [`Durability::None`] it is a
    /// read-only-ish revival — fully functional in memory, but new epochs
    /// are not persisted and `dir` is left untouched.
    pub fn recover<C: Ctx>(
        c: &C,
        scratch: &ScratchPool,
        dir: impl AsRef<Path>,
        cfg: StoreConfig,
    ) -> Result<Store, StoreError> {
        Self::recover_with(c, scratch, dir, cfg, Arc::new(OsVfs))
    }

    /// [`Store::recover`] through an explicit [`Vfs`] — how the chaos
    /// suite opens stores on a [`FaultVfs`](crate::vfs::FaultVfs); the
    /// plain `recover` binds [`OsVfs`].
    pub fn recover_with<C: Ctx>(
        c: &C,
        scratch: &ScratchPool,
        dir: impl AsRef<Path>,
        cfg: StoreConfig,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Store, StoreError> {
        let dir = dir.as_ref();
        vfs.create_dir_all(dir).map_err(|source| StoreError::Io {
            context: "store directory create",
            source,
        })?;
        let state = recover_shards(c, scratch, &*vfs, dir, &cfg, 1)?;
        let durable = match cfg.durability {
            Durability::Epoch { sync_every } => Some(DurableLog {
                dir: dir.to_path_buf(),
                wal: Wal::open_with(&*vfs, &wal::wal_path(dir, 0), sync_every).map_err(
                    |source| StoreError::Io {
                        context: "wal open",
                        source,
                    },
                )?,
                vfs,
            }),
            Durability::None => None,
        };
        let mut shards = state.shards;
        Ok(Store {
            cfg,
            shard: shards.pop().expect("one shard requested"),
            epochs: state.epochs,
            last_path: state.last_path,
            durable,
            prelogged: None,
            health: Health::Ok,
            fault: None,
        })
    }

    /// The path an epoch of `n_ops` operations would take right now — a
    /// public function of the padded class and the pending-log length.
    pub fn epoch_path(&self, n_ops: usize) -> EpochPath {
        self.shard.epoch_path(size_class(n_ops))
    }

    /// Execute one epoch: pad `ops` to its public size class, run the
    /// selected pipeline, and return one result per op in submission order.
    ///
    /// An **empty epoch is a public no-op**: the batch length is public,
    /// so branching on `ops.is_empty()` leaks nothing, and nothing runs —
    /// no padding, no merge, no counter bump, no trace. (`Aggregate`
    /// answers are defined against merge closes, so a no-op heartbeat
    /// would have refreshed nothing anyway.)
    ///
    /// # Errors
    ///
    /// `Ok(results)` *is* the acknowledgement: the epoch is durable (per
    /// the configured cadence) and applied. On a durable store, a WAL
    /// append that fails terminally (after [`StoreConfig::retry`])
    /// rejects the epoch **atomically** — no counter, table, or log
    /// mutation survives — and degrades the store ([`Store::health`]);
    /// further commits return [`StoreError::Poisoned`]. A snapshot
    /// failure *after* the epoch's durability point keeps the epoch
    /// acknowledged (`Ok`) but likewise degrades the store, since the
    /// next scheduled truncation cannot be trusted.
    pub fn execute_epoch<C: Ctx>(
        &mut self,
        c: &C,
        scratch: &ScratchPool,
        ops: &[Op],
    ) -> Result<Vec<OpResult>, StoreError> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        if self.health == Health::Degraded {
            return Err(StoreError::Poisoned);
        }
        let batch = validate_and_pad(&self.cfg, ops);
        let path = self.shard.epoch_path(batch.len());
        // WAL-before-merge: the padded batch is appended (and synced on
        // the group-commit cadence) before any state changes — unless the
        // pipelined pre-log already wrote it.
        if self.prelogged.take() != Some(self.epochs) {
            let retry = self.cfg.retry;
            let appended = match self.durable.as_mut() {
                Some(d) => d.wal.append(retry, self.epochs, &batch),
                None => Ok(()),
            };
            if let Err(f) = appended {
                return Err(self.degrade(f.on("wal append")));
            }
        }
        self.epochs += 1;
        self.last_path = Some(path);
        let res = self.shard.execute(c, scratch, &batch, ops.len(), path);
        if path == EpochPath::Merge {
            if let Err(e) = self.maybe_snapshot() {
                // The epoch itself is acknowledged — its WAL record is
                // durable and the merge applied — so the failure only
                // degrades the *store* for future commits.
                let _ = self.degrade(e);
            }
        }
        Ok(res)
    }

    /// Scheduled snapshot: at every `snapshot`-th merge (a public cadence;
    /// see [`ShrinkPolicy::snapshot`]) persist the packed table and
    /// truncate the WAL. Only called at merge closes, where the pending
    /// log is empty and the ORAM mirror equals the table.
    fn maybe_snapshot(&mut self) -> Result<(), StoreError> {
        let Some(pol) = self.cfg.shrink else {
            return Ok(());
        };
        if self.durable.is_none()
            || pol.snapshot == 0
            || !self.shard.merges().is_multiple_of(pol.snapshot)
        {
            return Ok(());
        }
        self.checkpoint()
    }

    /// Persist the current table as a snapshot and truncate the WAL, now.
    /// An explicit, caller-scheduled snapshot point (the scheduled
    /// variant is [`ShrinkPolicy::snapshot`]): calling it is a public
    /// action, so invoke it on public schedule only. No-op (`Ok`) on
    /// non-durable stores.
    ///
    /// # Errors
    ///
    /// A terminal snapshot-write or truncate failure (after retries)
    /// returns [`StoreError::SnapshotFailed`] / [`StoreError::Io`] with
    /// the WAL left intact — no acknowledged epoch is lost — and the
    /// store degraded (re-open via [`Store::recover`] to resume).
    ///
    /// # Panics
    /// If the pending log is non-empty (the last epoch took the ORAM
    /// path): snapshots only capture the table, so checkpoint after a
    /// merge epoch.
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        if self.health == Health::Degraded {
            return Err(StoreError::Poisoned);
        }
        if self.durable.is_none() {
            return Ok(());
        }
        assert_eq!(
            self.shard.pending_len(),
            0,
            "checkpoint requires an empty pending log (snapshot at a merge close)"
        );
        let meta = SnapMeta {
            next_seq: self.epochs,
            merges: self.shard.merges(),
            live_upper: self.shard.live_upper() as u64,
            stats: self.shard.stats(),
        };
        let records = self.shard.records();
        let retry = self.cfg.retry;
        let result = 'ck: {
            let d = self.durable.as_mut().expect("checked durable above");
            // Both steps are idempotent, so each retries wholesale; a
            // crash or terminal fault between them is benign (recovery
            // skips WAL records the new snapshot already covers).
            if let Err(f) = retry.run(|| wal::write_snapshot(&*d.vfs, &d.dir, 0, &meta, &records)) {
                break 'ck Err(f.snapshot(0));
            }
            if let Err(f) = retry.run(|| d.wal.truncate()) {
                break 'ck Err(f.on("wal truncate"));
            }
            Ok(())
        };
        result.map_err(|e| self.degrade(e))
    }

    /// Append `ops` (padded to their public class) to the WAL *now*,
    /// before the epoch itself runs — the pipelined front end's
    /// durability point, invoked on the caller's thread before the merge
    /// is handed to a detached task. The matching `execute_epoch` call
    /// skips its own append. No-op on non-durable stores. Error contract
    /// as for [`Store::execute_epoch`]: a terminal append failure rejects
    /// the epoch atomically and degrades the store.
    pub(crate) fn wal_prelog<C: Ctx>(
        &mut self,
        _c: &C,
        _scratch: &ScratchPool,
        ops: &[Op],
    ) -> Result<(), StoreError> {
        if ops.is_empty() {
            return Ok(());
        }
        if self.health == Health::Degraded {
            return Err(StoreError::Poisoned);
        }
        let Some(d) = self.durable.as_mut() else {
            return Ok(());
        };
        let batch = validate_and_pad(&self.cfg, ops);
        let appended = d.wal.append(self.cfg.retry, self.epochs, &batch);
        match appended {
            Ok(()) => {
                self.prelogged = Some(self.epochs);
                Ok(())
            }
            Err(f) => Err(self.degrade(f.on("wal append"))),
        }
    }

    /// Record a terminal durable-path failure: flip to
    /// [`Health::Degraded`] (sticky) and remember the first fault.
    fn degrade(&mut self, e: StoreError) -> StoreError {
        self.health = Health::Degraded;
        if self.fault.is_none() {
            self.fault = Some(e.to_string());
        }
        e
    }

    /// Durable health: [`Health::Degraded`] after a terminal durable
    /// failure (commits refused, reads fine). Always [`Health::Ok`] for
    /// in-memory stores.
    pub fn health(&self) -> Health {
        self.health
    }

    /// The fault that degraded this store, if any (display form).
    pub fn last_fault(&self) -> Option<&str> {
        self.fault.as_deref()
    }

    /// Current analytics snapshot (as of the last merge epoch).
    pub fn stats(&self) -> StoreStats {
        self.shard.stats()
    }

    /// Public physical capacity of the resident table.
    pub fn capacity(&self) -> usize {
        self.shard.capacity()
    }

    /// Public upper bound on distinct present keys.
    pub fn live_upper_bound(&self) -> usize {
        self.shard.live_upper()
    }

    /// Public length of the pending log awaiting the next merge.
    pub fn pending_len(&self) -> usize {
        self.shard.pending_len()
    }

    /// Path the most recent epoch took.
    pub fn last_path(&self) -> Option<EpochPath> {
        self.last_path
    }

    /// Epochs executed (total, and merge epochs among them).
    pub fn epoch_counts(&self) -> (u64, u64) {
        (self.epochs, self.shard.merges())
    }

    /// Start collecting an epoch's operations. The builder is detached —
    /// it holds only its own op log, so the store stays readable
    /// ([`Store::stats`], [`Store::last_path`], …) while the epoch is
    /// open; pass the store back at [`Epoch::commit`] time.
    pub fn epoch(&self) -> Epoch {
        Epoch::new()
    }

    pub(crate) fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    pub(crate) fn snapshot_records(&self) -> Vec<crate::merge::Rec> {
        self.shard.records()
    }

    pub(crate) fn snapshot_pending(&self) -> Vec<FlatOp> {
        self.shard.pending_ops()
    }
}

/// Anything an [`Epoch`] can commit to.
pub trait EpochTarget {
    /// Execute one epoch of `ops`, returning one result per op in
    /// submission order. `Ok` is the acknowledgement; an `Err` means the
    /// epoch was rejected atomically (see [`Store::execute_epoch`]) —
    /// always `Ok` on in-memory stores.
    fn run_epoch<C: Ctx>(
        &mut self,
        c: &C,
        scratch: &ScratchPool,
        ops: &[Op],
    ) -> Result<Vec<OpResult>, StoreError>;
}

impl EpochTarget for Store {
    fn run_epoch<C: Ctx>(
        &mut self,
        c: &C,
        scratch: &ScratchPool,
        ops: &[Op],
    ) -> Result<Vec<OpResult>, StoreError> {
        self.execute_epoch(c, scratch, ops)
    }
}

impl EpochTarget for ShardedStore {
    fn run_epoch<C: Ctx>(
        &mut self,
        c: &C,
        scratch: &ScratchPool,
        ops: &[Op],
    ) -> Result<Vec<OpResult>, StoreError> {
        self.execute_epoch(c, scratch, ops)
    }
}

/// Builder collecting one epoch's operations; [`Epoch::commit`] executes
/// them as a single oblivious batch against any [`EpochTarget`].
///
/// The builder owns its op log and holds **no borrow of the store** (a
/// historical version did, which made `stats()`/`last_path()` unreadable
/// while an epoch was being assembled).
#[derive(Default)]
pub struct Epoch {
    ops: Vec<Op>,
}

impl Epoch {
    pub fn new() -> Self {
        Epoch { ops: Vec::new() }
    }

    /// Queue an op; the returned ticket indexes its result in the slice
    /// [`Epoch::commit`] returns.
    pub fn submit(&mut self, op: Op) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Execute the collected ops as one epoch against `store`. `Ok` is
    /// the durable acknowledgement (and always the outcome on in-memory
    /// stores); see [`Store::execute_epoch`] for the error contract.
    pub fn commit<C: Ctx, T: EpochTarget>(
        self,
        c: &C,
        scratch: &ScratchPool,
        store: &mut T,
    ) -> Result<Vec<OpResult>, StoreError> {
        store.run_epoch(c, scratch, &self.ops)
    }
}

/// Tuning for a [`ShardedStore`].
#[derive(Clone, Copy, Debug)]
pub struct ShardConfig {
    /// Number of shards (a power of two). `1` routes nothing and behaves
    /// exactly like a [`Store`].
    pub shards: usize,
    /// Per-shard sub-batch provisioning (see
    /// [`shard_class`](crate::shard_class)): `0` pads every shard to the
    /// full batch class — routing can never overflow and the epoch trace
    /// is *unconditionally* shape-only; `k ≥ 1` pads to
    /// `size_class(k·b/shards)`, and an epoch whose key skew overflows a
    /// shard publicly falls back to full provisioning (the fallback — one
    /// bit per epoch — is the only data-dependent signal, and only under
    /// this opt-in policy).
    pub route_slack: usize,
    /// Per-shard configuration. The ORAM path requires `shards == 1`;
    /// multi-shard stores are merge-only. A configured
    /// [`StoreConfig::shrink`] bound applies *per shard*.
    pub store: StoreConfig,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 4,
            route_slack: 0,
            store: StoreConfig::default(),
        }
    }
}

impl ShardConfig {
    /// Default config with `shards` shards.
    pub fn with_shards(shards: usize) -> Self {
        ShardConfig {
            shards,
            ..ShardConfig::default()
        }
    }
}

/// The sharded epoch engine: oblivious op routing across shards, parallel
/// per-shard commits, oblivious result gather.
///
/// ```
/// use fj::SeqCtx;
/// use metrics::ScratchPool;
/// use store::{Op, ShardConfig, ShardedStore};
///
/// let c = SeqCtx::new();
/// let scratch = ScratchPool::new();
/// let mut store = ShardedStore::new(ShardConfig::with_shards(4));
/// let mut epoch = store.epoch();
/// epoch.submit(Op::Put { key: 7, val: 700 });
/// let get = epoch.submit(Op::Get { key: 7 });
/// let results = epoch.commit(&c, &scratch, &mut store).unwrap();
/// assert_eq!(results[get].value(), Some(700));
/// ```
pub struct ShardedStore {
    cfg: ShardConfig,
    shards: Vec<Shard>,
    /// Global analytics snapshot (sum of shard snapshots) as of the last
    /// epoch close; what `Aggregate` ops observe.
    snapshot: StoreStats,
    epochs: u64,
    merges: u64,
    fallbacks: u64,
    last_path: Option<EpochPath>,
    /// `Some` iff this store logs epochs — one WAL per shard, all
    /// carrying the same epoch sequence numbers (built via
    /// [`ShardedStore::recover`] with [`Durability::Epoch`]).
    durable: Option<DurableLogs>,
    /// An epoch the pipelined pre-log already routed and appended;
    /// `execute_epoch` consumes the routed jobs instead of re-routing
    /// (and skips its own appends).
    prerouted: Option<PreRouted>,
    /// Sticky durable health (see [`Store`]'s field of the same name).
    health: Health,
    /// Display form of the fault that degraded the store.
    fault: Option<String>,
}

/// Directory + per-shard append handles of a durable sharded store, plus
/// the filesystem they write through.
struct DurableLogs {
    dir: PathBuf,
    wals: Vec<Wal>,
    vfs: Arc<dyn Vfs>,
}

/// One epoch routed and logged ahead of its commit by the pipelined
/// front end. `jobs` is `None` on the 1-shard fast path (nothing routes).
struct PreRouted {
    seq: u64,
    jobs: Option<(Vec<SubBatch>, usize)>,
}

impl ShardedStore {
    fn validate_cfg(cfg: &ShardConfig) {
        assert!(
            cfg.shards >= 1 && cfg.shards.is_power_of_two(),
            "shard count must be a power of two"
        );
        assert!(
            cfg.store.oram_key_space.is_none() || cfg.shards == 1,
            "the ORAM path requires a single shard (sharded stores are merge-only)"
        );
    }

    /// An in-memory sharded store ([`StoreConfig::durability`] is ignored
    /// without a directory; see [`ShardedStore::recover`]).
    pub fn new(cfg: ShardConfig) -> Self {
        Self::validate_cfg(&cfg);
        let shards = (0..cfg.shards)
            .map(|i| Shard::new(cfg.store, i as u64))
            .collect();
        ShardedStore {
            cfg,
            shards,
            snapshot: StoreStats::default(),
            epochs: 0,
            merges: 0,
            fallbacks: 0,
            last_path: None,
            durable: None,
            prerouted: None,
            health: Health::Ok,
            fault: None,
        }
    }

    /// Open the sharded store persisted in `dir` (creating it on first
    /// use): per shard, restore the snapshot and replay committed WAL
    /// records through the normal merge path — see [`Store::recover`] for
    /// the contract. An epoch counts as committed only once its record is
    /// on **every** shard's WAL; a crash mid-append leaves a ragged tail
    /// that recovery uniformly drops, so shards never diverge.
    ///
    /// [`ShardedStore::routing_fallbacks`] restarts at 0: the fallback
    /// count is diagnostic, not state, and is not persisted.
    pub fn recover<C: Ctx>(
        c: &C,
        scratch: &ScratchPool,
        dir: impl AsRef<Path>,
        cfg: ShardConfig,
    ) -> Result<ShardedStore, StoreError> {
        Self::recover_with(c, scratch, dir, cfg, Arc::new(OsVfs))
    }

    /// [`ShardedStore::recover`] through an explicit [`Vfs`] (the chaos
    /// suite's entry point; plain `recover` binds [`OsVfs`]).
    pub fn recover_with<C: Ctx>(
        c: &C,
        scratch: &ScratchPool,
        dir: impl AsRef<Path>,
        cfg: ShardConfig,
        vfs: Arc<dyn Vfs>,
    ) -> Result<ShardedStore, StoreError> {
        Self::validate_cfg(&cfg);
        let dir = dir.as_ref();
        vfs.create_dir_all(dir).map_err(|source| StoreError::Io {
            context: "store directory create",
            source,
        })?;
        let state = recover_shards(c, scratch, &*vfs, dir, &cfg.store, cfg.shards)?;
        let durable = match cfg.store.durability {
            Durability::Epoch { sync_every } => Some(DurableLogs {
                dir: dir.to_path_buf(),
                wals: (0..cfg.shards)
                    .map(|i| Wal::open_with(&*vfs, &wal::wal_path(dir, i), sync_every))
                    .collect::<std::io::Result<_>>()
                    .map_err(|source| StoreError::Io {
                        context: "wal open",
                        source,
                    })?,
                vfs,
            }),
            Durability::None => None,
        };
        let snapshot = state
            .shards
            .iter()
            .fold(StoreStats::default(), |acc, s| acc.merged(s.stats()));
        let merges = state.shards[0].merges();
        Ok(ShardedStore {
            cfg,
            shards: state.shards,
            snapshot,
            epochs: state.epochs,
            merges,
            fallbacks: 0,
            last_path: state.last_path,
            durable,
            prerouted: None,
            health: Health::Ok,
            fault: None,
        })
    }

    /// Execute one epoch: pad to the public batch class, route ops to
    /// shards obliviously, commit every shard in parallel, and obliviously
    /// gather the results back to submission order.
    ///
    /// An **empty epoch is a public no-op** (batch length is public; see
    /// [`Store::execute_epoch`]): nothing is padded, routed, merged or
    /// counted.
    ///
    /// **Aggregate semantics (all shard counts):** an [`Op::Aggregate`]
    /// observes the global snapshot as of the most recent merge-epoch
    /// close *strictly before* this epoch, regardless of its position in
    /// the batch — epoch-atomic, never sequential-within-the-epoch. A
    /// 1-shard store answers from its single shard's pre-epoch snapshot
    /// and an n-shard store from the pre-epoch sum over shards, which are
    /// the same number for the same op history (the wrapping fold of
    /// [`StoreStats::merged`] is associative), so answers are identical
    /// across shard counts; `tests/sharded.rs` pins this cross-config.
    ///
    /// # Errors
    ///
    /// Same contract as [`Store::execute_epoch`]: `Ok` is the
    /// acknowledgement; a terminal WAL failure rejects the epoch
    /// atomically (a partial per-shard append leaves only a ragged tail
    /// below the commit horizon, which recovery uniformly drops) and
    /// degrades the store.
    pub fn execute_epoch<C: Ctx>(
        &mut self,
        c: &C,
        scratch: &ScratchPool,
        ops: &[Op],
    ) -> Result<Vec<OpResult>, StoreError> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        if self.health == Health::Degraded {
            return Err(StoreError::Poisoned);
        }
        let batch = validate_and_pad(&self.cfg.store, ops);
        let b = batch.len();
        let seq = self.epochs;
        let retry = self.cfg.store.retry;
        let pre = self.prerouted.take().filter(|p| p.seq == seq);

        if self.shards.len() == 1 {
            // Public fast path: one shard needs no routing; this is the
            // plain-`Store` pipeline.
            let path = self.shards[0].epoch_path(b);
            if pre.is_none() {
                let appended = match self.durable.as_mut() {
                    Some(d) => d.wals[0].append(retry, seq, &batch),
                    None => Ok(()),
                };
                if let Err(f) = appended {
                    return Err(self.degrade(f.on("wal append")));
                }
            }
            self.epochs += 1;
            self.last_path = Some(path);
            if path == EpochPath::Merge {
                self.merges += 1;
            }
            let res = self.shards[0].execute(c, scratch, &batch, ops.len(), path);
            self.snapshot = self.shards[0].stats();
            if path == EpochPath::Merge {
                if let Err(e) = self.maybe_snapshot() {
                    // Acknowledged epoch, degraded store — see
                    // `Store::execute_epoch`.
                    let _ = self.degrade(e);
                }
            }
            return Ok(res);
        }

        let engine = self.cfg.store.engine;

        // Oblivious routing — or the pipelined pre-log's routed jobs,
        // whose route already ran (with an identical trace) on the
        // caller's thread at append time.
        let (mut jobs, zcap) = match pre.and_then(|p| p.jobs) {
            Some((jobs, zcap)) => (jobs, zcap),
            None => {
                let (jobs, zcap) = self.route_with_fallback(c, scratch, &batch);
                // WAL-before-merge: every shard's routed, padded
                // sub-batch is on disk under this epoch's sequence number
                // before any shard merges. A failure partway through the
                // loop leaves a ragged tail strictly below the commit
                // horizon — recovery drops it on every shard, so the
                // rejection stays atomic.
                if let Some(d) = self.durable.as_mut() {
                    let mut failed = None;
                    for (i, job) in jobs.iter().enumerate() {
                        if let Err(f) = d.wals[i].append(retry, seq, &job.batch) {
                            failed = Some(f);
                            break;
                        }
                    }
                    if let Some(f) = failed {
                        return Err(self.degrade(f.on("wal append")));
                    }
                }
                (jobs, zcap)
            }
        };
        self.epochs += 1;

        // Parallel per-shard commits: every shard owns its table and
        // leases scratch from the shared pool, so the commits are
        // independent fork-join tasks. The affine zip hints shard i at
        // executor slot i — a public function of the shard index — so a
        // pinned pool re-runs each shard's commit on the core whose cache
        // already holds that shard's table.
        let snap = self.snapshot;
        par_zip_mut_affine(c, &mut self.shards, &mut jobs, &|c, _s, shard, job| {
            let res = shard.execute(c, scratch, &job.batch, job.n_real, EpochPath::Merge);
            job.results = res
                .into_iter()
                .map(|r| match r {
                    OpResult::Value(v) => OpResultSlot {
                        agg: false,
                        found: v.is_some(),
                        val: v.unwrap_or(0),
                    },
                    OpResult::Stats(_) => OpResultSlot {
                        agg: true,
                        ..OpResultSlot::default()
                    },
                })
                .collect();
        });

        // Oblivious result gather back to submission order.
        let entries: Vec<(u64, OpResultSlot)> = jobs
            .iter()
            .flat_map(|job| {
                (0..zcap).map(move |z| {
                    if z < job.n_real {
                        (job.idx[z], job.results[z])
                    } else {
                        (u64::MAX, OpResultSlot::default())
                    }
                })
            })
            .collect();
        let gathered = gather_results(c, scratch, engine, &entries, b);

        self.merges += 1;
        self.last_path = Some(EpochPath::Merge);
        self.snapshot = self
            .shards
            .iter()
            .fold(StoreStats::default(), |acc, s| acc.merged(s.stats()));
        if let Err(e) = self.maybe_snapshot() {
            // Acknowledged epoch, degraded store — see
            // `Store::execute_epoch`.
            let _ = self.degrade(e);
        }

        Ok(gathered
            .into_iter()
            .take(ops.len())
            .map(|r| {
                if r.agg {
                    // Aggregates observe the pre-epoch global snapshot
                    // (each shard only knows its own slice).
                    OpResult::Stats(snap)
                } else {
                    OpResult::Value(r.found.then_some(r.val))
                }
            })
            .collect())
    }

    /// Start collecting an epoch's operations (detached builder; commit
    /// with [`Epoch::commit`]).
    pub fn epoch(&self) -> Epoch {
        Epoch::new()
    }

    /// Global analytics snapshot as of the last epoch close.
    pub fn stats(&self) -> StoreStats {
        self.snapshot
    }

    /// Number of shards (public).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total public physical capacity across shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.capacity()).sum()
    }

    /// Sum of the shards' public live-key upper bounds.
    pub fn live_upper_bound(&self) -> usize {
        self.shards.iter().map(|s| s.live_upper()).sum()
    }

    /// Total public pending-log length (nonzero only for 1-shard stores
    /// with the ORAM path enabled).
    pub fn pending_len(&self) -> usize {
        self.shards.iter().map(|s| s.pending_len()).sum()
    }

    /// Path the most recent epoch took.
    pub fn last_path(&self) -> Option<EpochPath> {
        self.last_path
    }

    /// Epochs executed (total, and merge epochs among them).
    pub fn epoch_counts(&self) -> (u64, u64) {
        (self.epochs, self.merges)
    }

    /// Epochs that publicly fell back to full per-shard provisioning
    /// because the scaled class overflowed (always 0 with
    /// [`ShardConfig::route_slack`] `= 0`).
    pub fn routing_fallbacks(&self) -> u64 {
        self.fallbacks
    }

    /// Oblivious routing: pad every shard's sub-batch to the public class
    /// `zcap`. Under scaled provisioning a heavily skewed epoch can
    /// overflow a shard; the fixed-trace pass reports it and we publicly
    /// fall back to full provisioning for this epoch.
    fn route_with_fallback<C: Ctx>(
        &mut self,
        c: &C,
        scratch: &ScratchPool,
        batch: &[FlatOp],
    ) -> (Vec<SubBatch>, usize) {
        let engine = self.cfg.store.engine;
        let shards = self.shards.len();
        let b = batch.len();
        let zcap = shard_class(b, shards, self.cfg.route_slack);
        if zcap < b {
            match route_ops(c, scratch, engine, batch, shards, zcap) {
                Ok(jobs) => (jobs, zcap),
                Err(_) => {
                    self.fallbacks += 1;
                    let jobs = route_ops(c, scratch, engine, batch, shards, b)
                        .expect("full provisioning cannot overflow");
                    (jobs, b)
                }
            }
        } else {
            let jobs = route_ops(c, scratch, engine, batch, shards, b)
                .expect("full provisioning cannot overflow");
            (jobs, b)
        }
    }

    /// Scheduled snapshot on the public [`ShrinkPolicy::snapshot`]
    /// cadence; see [`Store::checkpoint`].
    fn maybe_snapshot(&mut self) -> Result<(), StoreError> {
        let Some(pol) = self.cfg.store.shrink else {
            return Ok(());
        };
        if self.durable.is_none()
            || pol.snapshot == 0
            || !self.shards[0].merges().is_multiple_of(pol.snapshot)
        {
            return Ok(());
        }
        self.checkpoint()
    }

    /// Persist every shard's table as a snapshot and truncate its WAL —
    /// the sharded [`Store::checkpoint`]. Shards are checkpointed one at
    /// a time, snapshot-then-truncate; a crash anywhere in the loop
    /// leaves each shard with either (old snapshot + full WAL) or (new
    /// snapshot + empty WAL), both of which recover to the same horizon.
    ///
    /// # Errors
    ///
    /// [`StoreError::SnapshotFailed`] / [`StoreError::Io`] after the
    /// retry budget; no acknowledged epoch is lost (each shard's WAL is
    /// only truncated after its snapshot landed), but the store degrades.
    /// [`StoreError::Poisoned`] if it already had.
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        if self.health == Health::Degraded {
            return Err(StoreError::Poisoned);
        }
        if self.durable.is_none() {
            return Ok(());
        }
        assert_eq!(
            self.shards.iter().map(|s| s.pending_len()).sum::<usize>(),
            0,
            "checkpoint requires an empty pending log (snapshot at a merge close)"
        );
        let retry = self.cfg.store.retry;
        let epochs = self.epochs;
        let result = 'ck: {
            let d = self.durable.as_mut().expect("checked durable above");
            for (i, shard) in self.shards.iter().enumerate() {
                let meta = SnapMeta {
                    next_seq: epochs,
                    merges: shard.merges(),
                    live_upper: shard.live_upper() as u64,
                    stats: shard.stats(),
                };
                let records = shard.records();
                if let Err(f) =
                    retry.run(|| wal::write_snapshot(&*d.vfs, &d.dir, i, &meta, &records))
                {
                    break 'ck Err(f.snapshot(i));
                }
                if let Err(f) = retry.run(|| d.wals[i].truncate()) {
                    break 'ck Err(f.on("wal truncate"));
                }
            }
            Ok(())
        };
        result.map_err(|e| self.degrade(e))
    }

    /// Pipelined pre-log (see [`Store::wal_prelog`]): route the epoch on
    /// the caller's thread, append every shard's sub-batch, and stash the
    /// routed jobs so the detached commit task neither re-routes nor
    /// re-appends. The routing trace is identical to the synchronous
    /// path's — it just runs at append time.
    ///
    /// # Errors
    ///
    /// Same contract as the synchronous append: a terminal failure
    /// rejects the epoch atomically (nothing prerouted, nothing merged;
    /// a ragged partial append sits below the commit horizon) and
    /// degrades the store.
    pub(crate) fn wal_prelog<C: Ctx>(
        &mut self,
        c: &C,
        scratch: &ScratchPool,
        ops: &[Op],
    ) -> Result<(), StoreError> {
        if ops.is_empty() || self.durable.is_none() {
            return Ok(());
        }
        if self.health == Health::Degraded {
            return Err(StoreError::Poisoned);
        }
        let batch = validate_and_pad(&self.cfg.store, ops);
        let seq = self.epochs;
        let retry = self.cfg.store.retry;
        if self.shards.len() == 1 {
            let d = self.durable.as_mut().expect("checked above");
            if let Err(f) = d.wals[0].append(retry, seq, &batch) {
                return Err(self.degrade(f.on("wal append")));
            }
            self.prerouted = Some(PreRouted { seq, jobs: None });
            return Ok(());
        }
        let (jobs, zcap) = self.route_with_fallback(c, scratch, &batch);
        let d = self.durable.as_mut().expect("checked above");
        let mut failed = None;
        for (i, job) in jobs.iter().enumerate() {
            if let Err(f) = d.wals[i].append(retry, seq, &job.batch) {
                failed = Some(f);
                break;
            }
        }
        if let Some(f) = failed {
            return Err(self.degrade(f.on("wal append")));
        }
        self.prerouted = Some(PreRouted {
            seq,
            jobs: Some((jobs, zcap)),
        });
        Ok(())
    }

    /// Record a terminal durable-path failure: flip to
    /// [`Health::Degraded`] (sticky) and remember the first fault.
    fn degrade(&mut self, e: StoreError) -> StoreError {
        self.health = Health::Degraded;
        if self.fault.is_none() {
            self.fault = Some(e.to_string());
        }
        e
    }

    /// Observable health; [`Health::Degraded`] once a durable path has
    /// failed terminally (commits refused until re-opened via
    /// [`ShardedStore::recover`]).
    pub fn health(&self) -> Health {
        self.health
    }

    /// Description of the first terminal durable fault, if any.
    pub fn last_fault(&self) -> Option<&str> {
        self.fault.as_deref()
    }

    pub(crate) fn config(&self) -> &StoreConfig {
        &self.cfg.store
    }

    /// Concatenated per-shard tables. Key-sorted only when there is a
    /// single shard; a multi-shard consult re-sorts (publicly: the shard
    /// count is public).
    pub(crate) fn snapshot_records(&self) -> Vec<crate::merge::Rec> {
        self.shards.iter().flat_map(|s| s.records()).collect()
    }

    pub(crate) fn snapshot_pending(&self) -> Vec<FlatOp> {
        self.shards.iter().flat_map(|s| s.pending_ops()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj::SeqCtx;
    use std::collections::HashMap;

    fn merge_only() -> Store {
        Store::new(StoreConfig::default())
    }

    #[test]
    fn basic_crud_roundtrip() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let mut s = merge_only();
        let res = s.execute_epoch(
            &c,
            &sp,
            &[
                Op::Put { key: 1, val: 11 },
                Op::Put { key: 2, val: 22 },
                Op::Get { key: 1 },
            ],
        );
        let res = res.unwrap();
        assert_eq!(res[2], OpResult::Value(Some(11)));
        let res = s.execute_epoch(
            &c,
            &sp,
            &[
                Op::Delete { key: 1 },
                Op::Get { key: 1 },
                Op::Get { key: 2 },
            ],
        );
        let res = res.unwrap();
        assert_eq!(res[0], OpResult::Value(Some(11)));
        assert_eq!(res[1], OpResult::Value(None));
        assert_eq!(res[2], OpResult::Value(Some(22)));
    }

    #[test]
    fn aggregate_sees_last_merge_snapshot() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let mut s = merge_only();
        // Epoch 1 loads; its own aggregate still sees the empty snapshot.
        let res = s.execute_epoch(
            &c,
            &sp,
            &[
                Op::Put { key: 1, val: 10 },
                Op::Put { key: 2, val: 20 },
                Op::Aggregate,
            ],
        );
        let res = res.unwrap();
        assert_eq!(res[2], OpResult::Stats(StoreStats::default()));
        // Epoch 2 sees epoch 1's merge.
        let res = s.execute_epoch(&c, &sp, &[Op::Aggregate]).unwrap();
        assert_eq!(res[0], OpResult::Stats(StoreStats { count: 2, sum: 30 }));
        assert_eq!(s.stats(), StoreStats { count: 2, sum: 30 });
    }

    #[test]
    fn epoch_builder_tickets_index_results() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let mut s = merge_only();
        let mut e = s.epoch();
        let t0 = e.submit(Op::Put { key: 9, val: 90 });
        let t1 = e.submit(Op::Get { key: 9 });
        assert_eq!((t0, t1), (0, 1));
        assert_eq!(e.len(), 2);
        let res = e.commit(&c, &sp, &mut s).unwrap();
        assert_eq!(res[t1], OpResult::Value(Some(90)));
    }

    #[test]
    fn store_stays_readable_while_an_epoch_is_open() {
        // Regression: the builder used to hold `&mut Store`, which made
        // every read accessor unusable between `epoch()` and `commit()`.
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let mut s = merge_only();
        s.execute_epoch(&c, &sp, &[Op::Put { key: 1, val: 5 }])
            .unwrap();
        let mut e = s.epoch();
        e.submit(Op::Get { key: 1 });
        // All of these read the store while the epoch is open.
        assert_eq!(s.stats(), StoreStats { count: 1, sum: 5 });
        assert_eq!(s.last_path(), Some(EpochPath::Merge));
        assert_eq!(s.pending_len(), 0);
        assert!(s.capacity() >= 8);
        let res = e.commit(&c, &sp, &mut s).unwrap();
        assert_eq!(res[0], OpResult::Value(Some(5)));
    }

    #[test]
    fn empty_epoch_is_a_public_noop() {
        // Regression: an empty commit used to pad to the minimum class and
        // run a full merge. The batch length is public, so skipping is a
        // public branch — counters, capacity, pending and the adversary
        // trace must all be untouched.
        let sp = ScratchPool::new();
        let mut s = merge_only();
        let trace_of = |s: &mut Store, ops: &[Op]| {
            let (_, rep) = metrics::measure(
                metrics::CacheConfig::default(),
                metrics::TraceMode::Hash,
                |c| {
                    let _ = s.execute_epoch(c, &sp, ops);
                },
            );
            (rep.trace_hash, rep.trace_len)
        };

        let before = trace_of(&mut s, &[]);
        assert_eq!(before.1, 0, "empty epoch must leave no trace");
        assert_eq!(s.epoch_counts(), (0, 0));
        let cap = s.capacity();

        // Interleaving empty commits with a real one changes nothing: the
        // real epoch's trace is identical with or without them, and only
        // the real epoch is counted.
        let real = trace_of(&mut s, &[Op::Put { key: 1, val: 10 }]);
        let mut s2 = merge_only();
        assert_eq!(trace_of(&mut s2, &[]).1, 0);
        let real2 = trace_of(&mut s2, &[Op::Put { key: 1, val: 10 }]);
        assert_eq!(trace_of(&mut s2, &[]).1, 0);
        assert_eq!(real, real2, "empty commits perturbed the real trace");
        assert_eq!(s.epoch_counts(), (1, 1));
        assert_eq!(s2.epoch_counts(), (1, 1));
        assert_eq!(s.capacity(), s2.capacity());
        assert!(cap <= s.capacity());

        // Same discipline on the sharded front end.
        let c = SeqCtx::new();
        let mut sh = ShardedStore::new(ShardConfig::with_shards(4));
        assert!(sh.execute_epoch(&c, &sp, &[]).unwrap().is_empty());
        assert_eq!(sh.epoch_counts(), (0, 0));
    }

    #[test]
    fn capacity_grows_by_public_classes_only() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let mut s = merge_only();
        assert_eq!(s.capacity(), 8);
        let ops: Vec<Op> = (0..20).map(|i| Op::Put { key: i, val: i }).collect();
        s.execute_epoch(&c, &sp, &ops).unwrap();
        // live_upper = 32 (padded batch class), capacity = its class.
        assert_eq!(s.capacity(), 32);
        assert_eq!(s.live_upper_bound(), 32);
    }

    #[test]
    fn shrink_schedule_compacts_on_public_cadence() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let cfg = StoreConfig {
            shrink: Some(ShrinkPolicy {
                every: 2,
                live_bound: 8,
                snapshot: 0,
            }),
            ..StoreConfig::default()
        };
        let mut s = Store::new(cfg);
        // Merge 1 (unscheduled): capacity grows with the padded batch.
        let ops: Vec<Op> = (0..20).map(|i| Op::Put { key: i % 8, val: i }).collect();
        s.execute_epoch(&c, &sp, &ops).unwrap();
        assert_eq!(s.capacity(), 32);
        // Merge 2 (scheduled): compacts back to the declared bound's class.
        s.execute_epoch(&c, &sp, &[Op::Get { key: 0 }]).unwrap();
        assert_eq!(s.capacity(), 8, "live_upper is no longer monotone");
        // Contents survive the compaction.
        let res = s.execute_epoch(&c, &sp, &[Op::Get { key: 3 }]).unwrap();
        assert_eq!(res[0], OpResult::Value(Some(19)));
    }

    #[test]
    fn hybrid_paths_stay_consistent() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let mut cfg = StoreConfig::with_oram(256);
        cfg.oram_threshold = 32;
        let mut s = Store::new(cfg);
        let mut oracle: HashMap<u64, u64> = HashMap::new();

        // Big load epoch → merge path.
        let ops: Vec<Op> = (0..40)
            .map(|i| Op::Put {
                key: i,
                val: 100 + i,
            })
            .collect();
        assert_eq!(s.epoch_path(ops.len()), EpochPath::Merge);
        s.execute_epoch(&c, &sp, &ops).unwrap();
        for i in 0..40 {
            oracle.insert(i, 100 + i);
        }

        // Small epochs → ORAM path, fully consistent with the oracle.
        for round in 0..4u64 {
            let ops = vec![
                Op::Get { key: round * 7 },
                Op::Put {
                    key: 200 + round,
                    val: round,
                },
                Op::Delete { key: round },
            ];
            assert_eq!(s.epoch_path(ops.len()), EpochPath::Oram);
            let res = s.execute_epoch(&c, &sp, &ops).unwrap();
            assert_eq!(res[0].value(), oracle.get(&(round * 7)).copied());
            assert_eq!(res[1].value(), oracle.insert(200 + round, round));
            assert_eq!(res[2].value(), oracle.remove(&round));
        }
        assert_eq!(s.last_path(), Some(EpochPath::Oram));
        assert!(s.pending_len() > 0);

        // Another big epoch merges the pending log back into the table.
        let ops: Vec<Op> = (0..40)
            .map(|i| Op::Get {
                key: if i < 4 { 200 + i } else { i },
            })
            .collect();
        assert_eq!(s.epoch_path(ops.len()), EpochPath::Merge);
        let res = s.execute_epoch(&c, &sp, &ops).unwrap();
        for (i, r) in res.iter().enumerate() {
            let key = if i < 4 { 200 + i as u64 } else { i as u64 };
            assert_eq!(r.value(), oracle.get(&key).copied(), "key {key}");
        }
        assert_eq!(s.pending_len(), 0);
    }

    #[test]
    fn pending_limit_forces_merge() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let mut cfg = StoreConfig::with_oram(64);
        cfg.oram_threshold = 64;
        cfg.pending_limit = 16;
        let mut s = Store::new(cfg);
        assert_eq!(s.epoch_path(1), EpochPath::Oram);
        s.execute_epoch(&c, &sp, &[Op::Put { key: 1, val: 1 }])
            .unwrap();
        assert_eq!(s.pending_len(), 8);
        s.execute_epoch(&c, &sp, &[Op::Put { key: 2, val: 2 }])
            .unwrap();
        assert_eq!(s.pending_len(), 16);
        // 16 + 8 > 16 → merge.
        assert_eq!(s.epoch_path(1), EpochPath::Merge);
        let res = s.execute_epoch(&c, &sp, &[Op::Get { key: 1 }]).unwrap();
        assert_eq!(res[0], OpResult::Value(Some(1)));
        assert_eq!(s.pending_len(), 0);
    }

    #[test]
    #[should_panic(expected = "outside the configured ORAM key space")]
    fn bounded_stores_reject_out_of_space_keys() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let mut s = Store::new(StoreConfig::with_oram(16));
        let _ = s.execute_epoch(&c, &sp, &[Op::Get { key: 16 }]);
    }

    #[test]
    fn sharded_crud_roundtrip_across_shards() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let mut s = ShardedStore::new(ShardConfig::with_shards(4));
        // Keys chosen to spread over several shards; duplicates exercise
        // the stable within-shard ordering.
        let res = s.execute_epoch(
            &c,
            &sp,
            &[
                Op::Put { key: 3, val: 30 },
                Op::Put { key: 11, val: 110 },
                Op::Get { key: 3 },
                Op::Put { key: 3, val: 31 },
                Op::Get { key: 3 },
                Op::Delete { key: 11 },
                Op::Get { key: 11 },
            ],
        );
        let res = res.unwrap();
        assert_eq!(res[2], OpResult::Value(Some(30)));
        assert_eq!(res[4], OpResult::Value(Some(31)));
        assert_eq!(res[5], OpResult::Value(Some(110)));
        assert_eq!(res[6], OpResult::Value(None));
        assert_eq!(s.epoch_counts(), (1, 1));
        assert_eq!(s.shard_count(), 4);
        assert_eq!(s.routing_fallbacks(), 0, "slack 0 never falls back");
    }

    #[test]
    fn sharded_aggregates_see_the_global_snapshot() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let mut s = ShardedStore::new(ShardConfig::with_shards(4));
        let load: Vec<Op> = (0..32).map(|i| Op::Put { key: i, val: i }).collect();
        s.execute_epoch(&c, &sp, &load).unwrap();
        let want = StoreStats {
            count: 32,
            sum: (0..32).sum(),
        };
        assert_eq!(s.stats(), want, "snapshot sums all shards");
        let res = s.execute_epoch(&c, &sp, &[Op::Aggregate]).unwrap();
        assert_eq!(res[0], OpResult::Stats(want));
    }

    #[test]
    fn sharded_one_shard_matches_plain_store() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let mut plain = merge_only();
        let mut one = ShardedStore::new(ShardConfig::with_shards(1));
        for round in 0..3u64 {
            let ops: Vec<Op> = (0..20)
                .map(|i| match (i + round) % 3 {
                    0 => Op::Put {
                        key: i,
                        val: i * round,
                    },
                    1 => Op::Get { key: i / 2 },
                    _ => Op::Delete { key: i },
                })
                .collect();
            assert_eq!(
                plain.execute_epoch(&c, &sp, &ops).unwrap(),
                one.execute_epoch(&c, &sp, &ops).unwrap(),
                "round {round}"
            );
        }
        assert_eq!(plain.stats(), one.stats());
        assert_eq!(plain.capacity(), one.capacity());
    }

    #[test]
    fn scaled_routing_falls_back_publicly_on_skew() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let mut cfg = ShardConfig::with_shards(4);
        cfg.route_slack = 1;
        let mut s = ShardedStore::new(cfg);
        // 30 ops on one key: they all hash to one shard, overflowing the
        // slack-1 class (8 of 32). The epoch must still be correct.
        let ops: Vec<Op> = (0..30)
            .map(|i| Op::Put { key: 7, val: i })
            .chain([Op::Get { key: 7 }])
            .collect();
        let res = s.execute_epoch(&c, &sp, &ops).unwrap();
        assert_eq!(res[30], OpResult::Value(Some(29)));
        assert_eq!(s.routing_fallbacks(), 1);
    }

    #[test]
    #[should_panic(expected = "single shard")]
    fn sharded_rejects_oram_configs() {
        let mut cfg = ShardConfig::with_shards(4);
        cfg.store = StoreConfig::with_oram(64);
        ShardedStore::new(cfg);
    }
}
