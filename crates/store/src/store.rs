//! The [`Store`] facade: batched epochs over the merge path, with a
//! tree-ORAM point-lookup path for sub-threshold batches.
//!
//! # State and path selection
//!
//! The authoritative state is the resident **table** (flat, key-sorted,
//! padded to a public power-of-two capacity) — the §F merge path resolves
//! whole epochs against it. When the key space is bounded
//! ([`StoreConfig::oram_key_space`]), the store additionally keeps a
//! recursive tree-ORAM **mirror** ([`pram::Opram`], §4.2) of the same
//! key→value map, and epochs whose *public* padded size falls below
//! [`StoreConfig::oram_threshold`] are served by per-op ORAM point lookups
//! instead of paying a full merge.
//!
//! The two representations stay consistent LSM-style:
//!
//! * ORAM epochs apply their ops to the mirror immediately and append them
//!   to a **pending log** (padded, public length);
//! * merge epochs replay `pending ++ batch` against the table in one
//!   oblivious pass, then write the batch through to the mirror.
//!
//! Path selection reads only public quantities (padded batch class,
//! pending-log length), so the dispatch itself leaks nothing about the
//! operations.

use crate::merge::{merge_epoch, Rec};
use crate::op::{kind, size_class, EpochPath, FlatOp, Op, OpResult, StoreStats};
use fj::Ctx;
use metrics::ScratchPool;
use obliv_core::scan::Schedule;
use obliv_core::Engine;
use pram::{Opram, OramConfig};

/// Tuning for a [`Store`].
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Sorting engine driving the merge path (and the ORAM's conflict
    /// machinery).
    pub engine: Engine,
    /// Scan schedule for the merge path's LWW scan.
    pub schedule: Schedule,
    /// Bounded key space enabling the ORAM path: all keys must be
    /// `< oram_key_space`. `None` disables the ORAM path (arbitrary `u64`
    /// keys, every epoch merges).
    pub oram_key_space: Option<usize>,
    /// Epochs whose padded batch class is `>=` this merge; smaller ones
    /// take the ORAM path (when enabled).
    pub oram_threshold: usize,
    /// A merge is forced once `pending + batch` would exceed this, bounding
    /// the pending log.
    pub pending_limit: usize,
    /// Tree-ORAM tuning (bucket size, stash, layout).
    pub oram: OramConfig,
    /// Seed for the ORAM's position-map coins.
    pub seed: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            engine: Engine::BitonicRec,
            schedule: Schedule::Tree,
            oram_key_space: None,
            oram_threshold: 64,
            pending_limit: 512,
            oram: OramConfig::default(),
            seed: 0xD0B_5707,
        }
    }
}

impl StoreConfig {
    /// Default config with the ORAM path enabled over `key_space` keys.
    pub fn with_oram(key_space: usize) -> Self {
        StoreConfig {
            oram_key_space: Some(key_space),
            ..StoreConfig::default()
        }
    }
}

/// An oblivious batched key-value / private-analytics store. See the
/// [module docs](self) for the architecture.
pub struct Store {
    cfg: StoreConfig,
    /// Resident records, key-sorted, padded to `size_class(live_upper)`.
    table: Vec<Rec>,
    /// Public upper bound on the number of distinct present keys.
    live_upper: usize,
    /// Ops applied to the ORAM mirror but not yet merged into the table.
    pending: Vec<FlatOp>,
    oram: Option<Opram>,
    stats: StoreStats,
    epochs: u64,
    merges: u64,
    last_path: Option<EpochPath>,
}

impl Store {
    pub fn new(cfg: StoreConfig) -> Self {
        let oram = cfg
            .oram_key_space
            .map(|s| Opram::new(s.max(1), cfg.oram, cfg.engine, cfg.seed));
        Store {
            cfg,
            table: vec![Rec::default(); size_class(0)],
            live_upper: 0,
            pending: Vec::new(),
            oram,
            stats: StoreStats::default(),
            epochs: 0,
            merges: 0,
            last_path: None,
        }
    }

    /// The path an epoch of `n_ops` operations would take right now — a
    /// public function of the padded class and the pending-log length.
    pub fn epoch_path(&self, n_ops: usize) -> EpochPath {
        let b = size_class(n_ops);
        match self.oram {
            None => EpochPath::Merge,
            Some(_)
                if b >= self.cfg.oram_threshold
                    || self.pending.len() + b > self.cfg.pending_limit =>
            {
                EpochPath::Merge
            }
            Some(_) => EpochPath::Oram,
        }
    }

    /// Execute one epoch: pad `ops` to its public size class, run the
    /// selected pipeline, and return one result per op in submission order.
    pub fn execute_epoch<C: Ctx>(
        &mut self,
        c: &C,
        scratch: &ScratchPool,
        ops: &[Op],
    ) -> Vec<OpResult> {
        if let Some(space) = self.cfg.oram_key_space {
            for op in ops {
                assert!(
                    (op.key() as usize) < space.max(1),
                    "key {} outside the configured ORAM key space {}",
                    op.key(),
                    space
                );
            }
        }
        for op in ops {
            if let Op::Put { val, .. } = op {
                assert!(*val < u64::MAX, "values must be < u64::MAX");
            }
        }

        let b = size_class(ops.len());
        let path = self.epoch_path(ops.len());
        self.epochs += 1;
        self.last_path = Some(path);

        let batch: Vec<FlatOp> = ops
            .iter()
            .map(FlatOp::of)
            .chain(std::iter::repeat_with(FlatOp::dummy))
            .take(b)
            .collect();

        match path {
            EpochPath::Oram => self.oram_epoch(c, &batch, ops.len()),
            EpochPath::Merge => self.merge_epoch_inner(c, scratch, &batch, ops.len()),
        }
    }

    /// Sub-threshold path: one fixed-pattern tree-ORAM access per padded
    /// slot (dummies walk key 0), giving sequential semantics at
    /// `O(b · polylog s)` instead of a full `O((cap + b) log² )` merge.
    fn oram_epoch<C: Ctx>(&mut self, c: &C, batch: &[FlatOp], n_results: usize) -> Vec<OpResult> {
        let oram = self.oram.as_mut().expect("ORAM path requires a mirror");
        let mut results = Vec::with_capacity(n_results);
        for (i, f) in batch.iter().enumerate() {
            let prev = oram.access(c, f.key, f.oram_write());
            if i < n_results {
                results.push(if f.kind == kind::AGG {
                    OpResult::Stats(self.stats)
                } else {
                    OpResult::Value(prev.checked_sub(1))
                });
            }
        }
        // The padded batch (dummies included: public length) joins the
        // pending log for the next merge.
        self.pending.extend_from_slice(batch);
        results
    }

    /// Merge path: replay `pending ++ batch` against the table (see
    /// [`crate::merge`]), then write the batch through to the ORAM mirror.
    fn merge_epoch_inner<C: Ctx>(
        &mut self,
        c: &C,
        scratch: &ScratchPool,
        batch: &[FlatOp],
        n_results: usize,
    ) -> Vec<OpResult> {
        // Every pending/batch op could be a put of a fresh key, so the
        // public live-key bound grows by their count (clamped to the key
        // space when one is configured).
        let mut live_upper = self.live_upper + self.pending.len() + batch.len();
        if let Some(space) = self.cfg.oram_key_space {
            live_upper = live_upper.min(space.max(1));
        }
        let cap_new = size_class(live_upper);

        let (results, stats) = merge_epoch(
            c,
            scratch,
            self.cfg.engine,
            self.cfg.schedule,
            &mut self.table,
            cap_new,
            &self.pending,
            batch,
            n_results,
            self.stats,
        );
        self.live_upper = live_upper;
        self.stats = stats;
        self.pending.clear();
        self.merges += 1;

        // Keep the ORAM mirror consistent: replay the batch (pending ops
        // were applied at their own epochs). Results are discarded — the
        // merge already produced them.
        if let Some(oram) = self.oram.as_mut() {
            for f in batch {
                oram.access(c, f.key, f.oram_write());
            }
        }
        results
    }

    /// Current analytics snapshot (as of the last merge epoch).
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Public physical capacity of the resident table.
    pub fn capacity(&self) -> usize {
        self.table.len()
    }

    /// Public upper bound on distinct present keys.
    pub fn live_upper_bound(&self) -> usize {
        self.live_upper
    }

    /// Public length of the pending log awaiting the next merge.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Path the most recent epoch took.
    pub fn last_path(&self) -> Option<EpochPath> {
        self.last_path
    }

    /// Epochs executed (total, and merge epochs among them).
    pub fn epoch_counts(&self) -> (u64, u64) {
        (self.epochs, self.merges)
    }

    /// Start collecting an epoch's operations.
    pub fn epoch(&mut self) -> Epoch<'_> {
        Epoch {
            store: self,
            ops: Vec::new(),
        }
    }
}

/// Builder collecting one epoch's operations; [`Epoch::commit`] executes
/// them as a single oblivious batch.
pub struct Epoch<'s> {
    store: &'s mut Store,
    ops: Vec<Op>,
}

impl Epoch<'_> {
    /// Queue an op; the returned ticket indexes its result in the slice
    /// [`Epoch::commit`] returns.
    pub fn submit(&mut self, op: Op) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Execute the collected ops as one epoch.
    pub fn commit<C: Ctx>(self, c: &C, scratch: &ScratchPool) -> Vec<OpResult> {
        self.store.execute_epoch(c, scratch, &self.ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj::SeqCtx;
    use std::collections::HashMap;

    fn merge_only() -> Store {
        Store::new(StoreConfig::default())
    }

    #[test]
    fn basic_crud_roundtrip() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let mut s = merge_only();
        let res = s.execute_epoch(
            &c,
            &sp,
            &[
                Op::Put { key: 1, val: 11 },
                Op::Put { key: 2, val: 22 },
                Op::Get { key: 1 },
            ],
        );
        assert_eq!(res[2], OpResult::Value(Some(11)));
        let res = s.execute_epoch(
            &c,
            &sp,
            &[
                Op::Delete { key: 1 },
                Op::Get { key: 1 },
                Op::Get { key: 2 },
            ],
        );
        assert_eq!(res[0], OpResult::Value(Some(11)));
        assert_eq!(res[1], OpResult::Value(None));
        assert_eq!(res[2], OpResult::Value(Some(22)));
    }

    #[test]
    fn aggregate_sees_last_merge_snapshot() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let mut s = merge_only();
        // Epoch 1 loads; its own aggregate still sees the empty snapshot.
        let res = s.execute_epoch(
            &c,
            &sp,
            &[
                Op::Put { key: 1, val: 10 },
                Op::Put { key: 2, val: 20 },
                Op::Aggregate,
            ],
        );
        assert_eq!(res[2], OpResult::Stats(StoreStats::default()));
        // Epoch 2 sees epoch 1's merge.
        let res = s.execute_epoch(&c, &sp, &[Op::Aggregate]);
        assert_eq!(res[0], OpResult::Stats(StoreStats { count: 2, sum: 30 }));
        assert_eq!(s.stats(), StoreStats { count: 2, sum: 30 });
    }

    #[test]
    fn epoch_builder_tickets_index_results() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let mut s = merge_only();
        let mut e = s.epoch();
        let t0 = e.submit(Op::Put { key: 9, val: 90 });
        let t1 = e.submit(Op::Get { key: 9 });
        assert_eq!((t0, t1), (0, 1));
        assert_eq!(e.len(), 2);
        let res = e.commit(&c, &sp);
        assert_eq!(res[t1], OpResult::Value(Some(90)));
    }

    #[test]
    fn empty_epoch_is_a_public_heartbeat() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let mut s = merge_only();
        let res = s.execute_epoch(&c, &sp, &[]);
        assert!(res.is_empty());
        assert_eq!(s.epoch_counts(), (1, 1));
    }

    #[test]
    fn capacity_grows_by_public_classes_only() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let mut s = merge_only();
        assert_eq!(s.capacity(), 8);
        let ops: Vec<Op> = (0..20).map(|i| Op::Put { key: i, val: i }).collect();
        s.execute_epoch(&c, &sp, &ops);
        // live_upper = 32 (padded batch class), capacity = its class.
        assert_eq!(s.capacity(), 32);
        assert_eq!(s.live_upper_bound(), 32);
    }

    #[test]
    fn hybrid_paths_stay_consistent() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let mut cfg = StoreConfig::with_oram(256);
        cfg.oram_threshold = 32;
        let mut s = Store::new(cfg);
        let mut oracle: HashMap<u64, u64> = HashMap::new();

        // Big load epoch → merge path.
        let ops: Vec<Op> = (0..40)
            .map(|i| Op::Put {
                key: i,
                val: 100 + i,
            })
            .collect();
        assert_eq!(s.epoch_path(ops.len()), EpochPath::Merge);
        s.execute_epoch(&c, &sp, &ops);
        for i in 0..40 {
            oracle.insert(i, 100 + i);
        }

        // Small epochs → ORAM path, fully consistent with the oracle.
        for round in 0..4u64 {
            let ops = vec![
                Op::Get { key: round * 7 },
                Op::Put {
                    key: 200 + round,
                    val: round,
                },
                Op::Delete { key: round },
            ];
            assert_eq!(s.epoch_path(ops.len()), EpochPath::Oram);
            let res = s.execute_epoch(&c, &sp, &ops);
            assert_eq!(res[0].value(), oracle.get(&(round * 7)).copied());
            assert_eq!(res[1].value(), oracle.insert(200 + round, round));
            assert_eq!(res[2].value(), oracle.remove(&round));
        }
        assert_eq!(s.last_path(), Some(EpochPath::Oram));
        assert!(s.pending_len() > 0);

        // Another big epoch merges the pending log back into the table.
        let ops: Vec<Op> = (0..40)
            .map(|i| Op::Get {
                key: if i < 4 { 200 + i } else { i },
            })
            .collect();
        assert_eq!(s.epoch_path(ops.len()), EpochPath::Merge);
        let res = s.execute_epoch(&c, &sp, &ops);
        for (i, r) in res.iter().enumerate() {
            let key = if i < 4 { 200 + i as u64 } else { i as u64 };
            assert_eq!(r.value(), oracle.get(&key).copied(), "key {key}");
        }
        assert_eq!(s.pending_len(), 0);
    }

    #[test]
    fn pending_limit_forces_merge() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let mut cfg = StoreConfig::with_oram(64);
        cfg.oram_threshold = 64;
        cfg.pending_limit = 16;
        let mut s = Store::new(cfg);
        assert_eq!(s.epoch_path(1), EpochPath::Oram);
        s.execute_epoch(&c, &sp, &[Op::Put { key: 1, val: 1 }]);
        assert_eq!(s.pending_len(), 8);
        s.execute_epoch(&c, &sp, &[Op::Put { key: 2, val: 2 }]);
        assert_eq!(s.pending_len(), 16);
        // 16 + 8 > 16 → merge.
        assert_eq!(s.epoch_path(1), EpochPath::Merge);
        let res = s.execute_epoch(&c, &sp, &[Op::Get { key: 1 }]);
        assert_eq!(res[0], OpResult::Value(Some(1)));
        assert_eq!(s.pending_len(), 0);
    }

    #[test]
    #[should_panic(expected = "outside the configured ORAM key space")]
    fn bounded_stores_reject_out_of_space_keys() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let mut s = Store::new(StoreConfig::with_oram(16));
        s.execute_epoch(&c, &sp, &[Op::Get { key: 16 }]);
    }
}
