//! # dob-store — an oblivious batched key-value store
//!
//! The paper's motivating scenario (§1) is private analytics on a secure
//! processor: many clients' queries must be served without the host
//! learning *which* records are touched. This crate turns the workspace's
//! §F routing kernels into that system: clients submit
//! [`Op::Get`]/[`Op::Put`]/[`Op::Delete`]/[`Op::Aggregate`] operations into
//! an **epoch**; at epoch close the batch is padded to a public size class
//! and resolved against the resident table with oblivious sorts and a
//! segmented last-writer-wins scan (the send-receive pattern of §F), or —
//! for sub-threshold batches over a bounded key space — with per-op
//! recursive tree-ORAM point lookups (§4.2).
//!
//! **Leakage contract:** the client-visible access trace of every epoch is
//! a function of *public* quantities only — the padded batch class, the
//! (public) pending-log length, and the table capacity, all of which
//! derive from the history of batch *sizes*. Keys, values, op kinds, hit
//! rates, and duplicate structure are hidden. The merge path is exactly
//! trace-equal across same-shape inputs; the ORAM path is trace-length
//! invariant with contents fresh-coin simulatable (the classic tree-ORAM
//! argument). See DESIGN.md §8 and `tests/store.rs`.
//!
//! ```
//! use fj::SeqCtx;
//! use metrics::ScratchPool;
//! use store::{Op, Store, StoreConfig};
//!
//! let c = SeqCtx::new();
//! let scratch = ScratchPool::new();
//! let mut store = Store::new(StoreConfig::default());
//! let mut epoch = store.epoch();
//! epoch.submit(Op::Put { key: 7, val: 700 });
//! let get = epoch.submit(Op::Get { key: 7 });
//! let results = epoch.commit(&c, &scratch);
//! assert_eq!(results[get].value(), Some(700));
//! ```

mod merge;
mod op;
mod store;

pub use crate::store::{Epoch, Store, StoreConfig};
pub use merge::Rec;
pub use op::{size_class, EpochPath, Op, OpResult, StoreStats, MIN_CLASS};
