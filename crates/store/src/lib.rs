//! # dob-store — an oblivious batched key-value store, sharded
//!
//! The paper's motivating scenario (§1) is private analytics on a secure
//! processor: many clients' queries must be served without the host
//! learning *which* records are touched. This crate turns the workspace's
//! §F routing kernels into that system: clients submit
//! [`Op::Get`]/[`Op::Put`]/[`Op::Delete`]/[`Op::Aggregate`] operations into
//! an **epoch**; at epoch close the batch is padded to a public size class
//! and resolved against the resident table with oblivious sorts and a
//! segmented last-writer-wins scan (the send-receive pattern of §F), or —
//! for sub-threshold batches over a bounded key space — with per-op
//! recursive tree-ORAM point lookups (§4.2).
//!
//! A [`ShardedStore`] scales the engine across shards: keys are assigned
//! to shards by the public hash [`shard_of`], each epoch's ops are routed
//! to their shards *obliviously* (every sub-batch padded to the same
//! public class), all shards commit in parallel on the fork-join pool,
//! and the results are obliviously routed back to submission order.
//!
//! **Leakage contract:** the client-visible access trace of every epoch is
//! a function of *public* quantities only — the padded batch class, the
//! shard count and per-shard class, the (public) pending-log length, and
//! the table capacities, all of which derive from the history of batch
//! *sizes* (plus, when a [`ShrinkPolicy`] is configured, the public merge
//! counter). Keys, values, op kinds, hit rates, duplicate structure and
//! per-shard load are hidden — with one opt-in exception: under scaled
//! provisioning ([`ShardConfig::route_slack`] `>= 1`) an epoch whose key
//! skew overflows a shard's sub-batch class publicly falls back to full
//! provisioning, revealing one bit about the load distribution; the
//! default (`route_slack = 0`) leaks nothing. The merge path is exactly trace-equal
//! across same-shape workloads; the ORAM path is trace-length invariant
//! with contents fresh-coin simulatable (the classic tree-ORAM argument).
//! See DESIGN.md §8–§9 and `tests/store.rs` / `tests/sharded.rs`.
//!
//! A [`PipelinedStore`] adds a double-buffered front end on top of either
//! engine: ops for epoch N+1 are accepted while epoch N's merge runs as a
//! detached fork-join task, with strict read-your-writes through an
//! oblivious consult of the in-flight epoch's padded op log. Its handoff
//! cadence and every consult shape are functions of batch sizes only —
//! the same contract as above (DESIGN.md §11).
//!
//! **Durability** is opt-in: open a store with [`Store::recover`] (or
//! [`ShardedStore::recover`]) under [`Durability::Epoch`] and every epoch
//! is appended to a write-ahead log *before* its merge runs — one framed,
//! checksummed record per epoch whose on-disk size is fixed by the public
//! batch class. The `sync_every` knob group-commits the log: one `fsync`
//! per `sync_every` appends, trading at most that many trailing
//! un-acknowledged epochs on a crash for far fewer flushes. Snapshots of the packed table are written on the public
//! [`ShrinkPolicy::snapshot`] cadence (or explicitly via
//! [`Store::checkpoint`]), truncating the WAL. Recovery replays the
//! logged batches through the normal epoch path, so the recovered trace —
//! and the disk image itself — is the same public function of batch sizes
//! as a fresh run (DESIGN.md §13, `tests/durability.rs`).
//!
//! ```
//! use fj::SeqCtx;
//! use metrics::ScratchPool;
//! use store::{Op, Store, StoreConfig};
//!
//! let c = SeqCtx::new();
//! let scratch = ScratchPool::new();
//! let mut store = Store::new(StoreConfig::default());
//! let mut epoch = store.epoch();
//! epoch.submit(Op::Put { key: 7, val: 700 });
//! let get = epoch.submit(Op::Get { key: 7 });
//! let results = epoch.commit(&c, &scratch, &mut store).unwrap();
//! assert_eq!(results[get].value(), Some(700));
//! ```
//!
//! **Failure model** (DESIGN.md §15): every durable-path fault surfaces
//! as a typed [`StoreError`], never a panic. Transient faults are retried
//! under the configurable [`RetryPolicy`]; a terminal fault rejects the
//! epoch *atomically* (merge effects apply only after the WAL durability
//! point) and flips the store to a sticky [`Health::Degraded`] read-only
//! mode. The [`vfs`] module's injectable filesystem ([`vfs::FaultVfs`])
//! drives the crash-point chaos suite in `tests/fault_injection.rs` from
//! seeded, *public* fault schedules.

mod error;
mod merge;
mod op;
mod pipeline;
mod recovery;
mod router;
mod shard;
mod store;
pub mod vfs;
mod wal;

pub use crate::store::{
    Epoch, EpochTarget, ShardConfig, ShardedStore, ShrinkPolicy, Store, StoreConfig,
};
pub use error::{Health, RetryPolicy, StoreError};
pub use merge::Rec;
pub use op::{size_class, EpochPath, Op, OpResult, StoreStats, MIN_CLASS};
pub use pipeline::{EpochHandle, PipelineTarget, PipelinedStore, Ticket};
pub use router::{shard_class, shard_of};
pub use wal::Durability;
