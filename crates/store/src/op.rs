//! Client operations and results of the oblivious store.
//!
//! An [`Op`]'s *kind* and *contents* (keys, values) are secret: inside an
//! epoch every operation flows through the same fixed-pattern pipeline, so
//! the adversary learns only how many operations the epoch carried — and
//! that only after padding to a public size class ([`size_class`]).

/// One client operation submitted to an epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Read the value stored under `key`.
    Get { key: u64 },
    /// Store `val` under `key`, returning the previous value.
    /// Values must be `< u64::MAX` (the ORAM path encodes presence as
    /// `val + 1`).
    Put { key: u64, val: u64 },
    /// Remove `key`, returning the previous value.
    Delete { key: u64 },
    /// Read the store-wide analytics snapshot (record count and value sum)
    /// as of the last merge epoch.
    Aggregate,
}

impl Op {
    /// The key this op addresses (aggregates address the reserved slot 0 so
    /// padding and dispatch stay shape-only).
    pub(crate) fn key(&self) -> u64 {
        match *self {
            Op::Get { key } | Op::Put { key, .. } | Op::Delete { key } => key,
            Op::Aggregate => 0,
        }
    }
}

/// Result of one [`Op`], in submission order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpResult {
    /// `Get`/`Put`/`Delete`: the value stored under the key *before* this
    /// op ran (sequential within-epoch semantics: earlier ops of the same
    /// epoch are visible).
    Value(Option<u64>),
    /// `Aggregate`: the analytics snapshot.
    Stats(StoreStats),
}

impl OpResult {
    /// The previous value, for `Value` results (panics on `Stats`).
    pub fn value(&self) -> Option<u64> {
        match *self {
            OpResult::Value(v) => v,
            OpResult::Stats(_) => panic!("aggregate result has no single value"),
        }
    }
}

/// Store-wide analytics snapshot, refreshed at each merge epoch.
///
/// **Overflow policy:** both fields wrap mod 2⁶⁴, everywhere they are
/// folded — per-record reduces inside a merge and cross-shard folds alike
/// ([`StoreStats::merged`] is the one sanctioned combiner). `sum` can
/// overflow legitimately (it adds arbitrary `u64` client values); `count`
/// cannot in practice, but it gets the same wrapping treatment so debug
/// and release builds, and 1-shard and n-shard stores, agree bit-for-bit
/// instead of debug-panicking on one path and wrapping on another.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of present records (wrapping; see overflow policy above).
    pub count: u64,
    /// Wrapping sum of all present values.
    pub sum: u64,
}

impl StoreStats {
    /// Fold another snapshot into this one under the store's wrapping
    /// overflow policy (both fields wrap mod 2⁶⁴).
    pub fn merged(self, other: StoreStats) -> StoreStats {
        StoreStats {
            count: self.count.wrapping_add(other.count),
            sum: self.sum.wrapping_add(other.sum),
        }
    }
}

/// Which pipeline an epoch takes — a *public* function of batch size and
/// the (public) pending-log length, never of the operations themselves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EpochPath {
    /// Sub-threshold batch: per-op tree-ORAM point lookups (§4.2).
    Oram,
    /// Batched §F merge against the resident table.
    Merge,
}

/// Internal op kinds, including the padding element.
pub(crate) mod kind {
    pub const GET: u8 = 0;
    pub const PUT: u8 = 1;
    pub const DELETE: u8 = 2;
    pub const AGG: u8 = 3;
    pub const DUMMY: u8 = 4;
}

/// Flat, `Copy` encoding of an op (internal; also the pending-log entry).
/// Nominally `pub` only because the sealed pipeline-source trait returns
/// it; not re-exported, not API.
#[doc(hidden)]
#[derive(Clone, Copy, Debug, Default)]
pub struct FlatOp {
    pub kind: u8,
    pub key: u64,
    pub val: u64,
}

impl FlatOp {
    pub fn of(op: &Op) -> Self {
        match *op {
            Op::Get { key } => FlatOp {
                kind: kind::GET,
                key,
                val: 0,
            },
            Op::Put { key, val } => FlatOp {
                kind: kind::PUT,
                key,
                val,
            },
            Op::Delete { key } => FlatOp {
                kind: kind::DELETE,
                key,
                val: 0,
            },
            Op::Aggregate => FlatOp {
                kind: kind::AGG,
                key: 0,
                val: 0,
            },
        }
    }

    pub fn dummy() -> Self {
        FlatOp {
            kind: kind::DUMMY,
            key: 0,
            val: 0,
        }
    }

    /// The ORAM-mirror write this op performs, under the presence-as-
    /// `val + 1` encoding (0 = absent) — the single source of truth for
    /// both the ORAM path and the merge path's write-through.
    pub fn oram_write(&self) -> Option<u64> {
        match self.kind {
            kind::PUT => Some(self.val + 1),
            kind::DELETE => Some(0),
            _ => None,
        }
    }
}

/// Smallest padded batch the store accepts.
pub const MIN_CLASS: usize = 8;

/// Pad `n` up to its public size class: the next power of two, at least
/// [`MIN_CLASS`]. Every client-visible length in the store is a size class,
/// so the trace reveals batch sizes only up to this granularity.
pub fn size_class(n: usize) -> usize {
    n.max(MIN_CLASS).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes_are_powers_of_two_with_floor() {
        assert_eq!(size_class(0), MIN_CLASS);
        assert_eq!(size_class(1), MIN_CLASS);
        assert_eq!(size_class(8), 8);
        assert_eq!(size_class(9), 16);
        assert_eq!(size_class(1000), 1024);
    }

    #[test]
    fn stats_fold_wraps_both_fields_near_u64_max() {
        // Regression: the cross-shard fold used debug-panicking `+` for
        // `count` but `wrapping_add` for `sum`. Both must wrap.
        let a = StoreStats {
            count: u64::MAX - 1,
            sum: u64::MAX - 2,
        };
        let b = StoreStats { count: 3, sum: 7 };
        let m = a.merged(b);
        assert_eq!(m.count, 1);
        assert_eq!(m.sum, 4);
        // Identity and symmetry of the fold.
        assert_eq!(a.merged(StoreStats::default()), a);
        assert_eq!(a.merged(b), b.merged(a));
    }

    #[test]
    fn flat_op_roundtrips_kinds() {
        assert_eq!(FlatOp::of(&Op::Get { key: 7 }).kind, kind::GET);
        assert_eq!(FlatOp::of(&Op::Put { key: 7, val: 9 }).val, 9);
        assert_eq!(FlatOp::of(&Op::Delete { key: 7 }).kind, kind::DELETE);
        assert_eq!(FlatOp::of(&Op::Aggregate).key, 0);
        assert_eq!(FlatOp::dummy().kind, kind::DUMMY);
    }
}
