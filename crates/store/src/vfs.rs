//! Injectable filesystem: the durable layer's only window onto storage.
//!
//! Every byte the store persists — WAL appends, snapshot temp files, the
//! atomic rename that publishes a snapshot — flows through a [`Vfs`]
//! handle, so the host filesystem can be swapped out without touching the
//! WAL or recovery logic. Two implementations ship:
//!
//! * [`OsVfs`] — a thin passthrough to `std::fs`, the production default
//!   (and what [`Store::recover`](crate::Store::recover) binds when no
//!   VFS is supplied).
//! * [`FaultVfs`] — a fully in-memory filesystem that injects faults from
//!   a seeded, **public** schedule ([`FaultPlan`]): EIO/ENOSPC on the
//!   k-th write, short (torn) appends, syncs that report success but
//!   persist nothing ("fsync lie"), failed renames, and a whole-process
//!   crash at an exact I/O-operation index. `tests/fault_injection.rs`
//!   drives the chaos suite with it.
//!
//! # Fault schedules are public
//!
//! The paper's adversary already observes every I/O the store performs —
//! offsets, lengths, flush points — and the store's discipline makes all
//! of those functions of public quantities (batch classes, shard count,
//! cadences). A [`FaultPlan`] decides faults from `(seed, I/O-op index)`
//! alone: the index sequence is itself a public function of the epoch
//! shapes, so injected faults — and the retries they provoke — never
//! depend on keys, values, or op kinds. Definition 1 survives injection:
//! the fault/retry decision stream is part of the public schedule, not a
//! new side channel. [`FaultVfs::fault_log`] exposes the decisions so
//! tests can assert exactly that (see the schedule-public rows in
//! `obliv_check` and `tests/fault_injection.rs`).
//!
//! # Crash–durability model
//!
//! [`FaultVfs`] keeps two byte images per file: `data` (what a reader of
//! the live filesystem sees) and `durable` (what survives a crash). An
//! append or `set_len` mutates `data` only; a successful, honest `sync`
//! copies `data` into `durable`. A lying sync returns `Ok` without the
//! copy — but a *later* honest sync persists everything, so lost epochs
//! are always a clean suffix, matching the group-commit contract. Renames
//! are atomic and immediately durable (the journalled-metadata assumption
//! the snapshot temp-file dance already relies on). After the crash point
//! every operation fails and the durable halves freeze;
//! [`FaultVfs::durable_image`] hands back a fresh, fault-free filesystem
//! containing exactly what survived — recovery runs against that.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// An open file handle on a [`Vfs`]. Write-side only: the store reads
/// whole files via [`Vfs::read`] (WALs and snapshots are scanned, never
/// seeked).
pub trait VfsFile: Send {
    /// Append `buf` at the end of the file.
    fn append(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flush appended data to stable storage (the durability point).
    fn sync(&mut self) -> io::Result<()>;
    /// Truncate (or extend with zeros) to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Current file size in bytes.
    fn size(&self) -> io::Result<u64>;
}

/// The filesystem surface the durable store consumes. Object-safe so a
/// store can hold `Arc<dyn Vfs>` and tests can swap in [`FaultVfs`].
pub trait Vfs: Send + Sync {
    /// Create `path` and its parents (no-op if present).
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Read an entire file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Open for appending, creating the file if missing.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Open for writing from scratch, truncating any existing content.
    fn open_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Atomically rename `from` to `to` (replacing `to` if present).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
}

/// The production [`Vfs`]: a passthrough to `std::fs`.
#[derive(Clone, Copy, Debug, Default)]
pub struct OsVfs;

struct OsFile(std::fs::File);

impl VfsFile for OsFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        use std::io::Write;
        self.0.write_all(buf)
    }
    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
    fn size(&self) -> io::Result<u64> {
        Ok(self.0.metadata()?.len())
    }
}

impl Vfs for OsVfs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Box::new(OsFile(f)))
    }
    fn open_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(OsFile(f)))
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
}

/// Seeded, public fault schedule for a [`FaultVfs`]. All probabilities
/// are chances out of 256 per eligible operation, decided by hashing
/// `(seed, I/O-op index)` — deterministic, replayable, and independent of
/// file *contents* by construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the per-op fault coins.
    pub seed: u64,
    /// Chance /256 that an append fails with EIO (transient).
    pub write_fault: u8,
    /// Chance /256 that a failing append is *torn*: a prefix of the
    /// buffer lands in the live image before the error returns.
    pub torn: u8,
    /// Chance /256 that a sync fails with EIO (transient; nothing
    /// becomes durable).
    pub sync_fault: u8,
    /// Chance /256 that a sync *lies*: returns `Ok` but persists nothing.
    pub sync_lie: u8,
    /// Chance /256 that a rename fails with EIO (transient).
    pub rename_fault: u8,
    /// Fail exactly the k-th append (0-based, counting appends only)
    /// with EIO — a deterministic "k-th write" fault.
    pub eio_write: Option<u64>,
    /// Fail exactly the k-th append with ENOSPC (permanent: the retry
    /// policy must fail fast, not spin).
    pub enospc_write: Option<u64>,
    /// Crash at the k-th I/O operation (0-based, counting every VFS
    /// call): that operation and all later ones fail, and the durable
    /// image freezes. Drives the exhaustive crash-point sweep.
    pub crash_at: Option<u64>,
}

/// One injected fault, in the public decision log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Global I/O-operation index the fault fired at.
    pub op: u64,
    /// What was injected (`"write-eio"`, `"write-torn"`,
    /// `"write-enospc"`, `"sync-eio"`, `"sync-lie"`, `"rename-eio"`,
    /// `"crash"`).
    pub kind: &'static str,
}

struct FileState {
    data: Vec<u8>,
    durable: Vec<u8>,
}

struct VfsState {
    files: BTreeMap<PathBuf, FileState>,
    plan: FaultPlan,
    /// Global I/O-operation counter (every VFS call).
    ops: u64,
    /// Append-operation counter (for the deterministic k-th-write knobs).
    writes: u64,
    log: Vec<FaultEvent>,
    crashed: bool,
}

/// Deterministic in-memory filesystem with seeded fault injection; see
/// the [module docs](self). Clones share the same filesystem.
#[derive(Clone)]
pub struct FaultVfs {
    state: Arc<Mutex<VfsState>>,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn eio(what: &str) -> io::Error {
    // Raw EIO: kind() is Uncategorized, which the retry policy treats as
    // transient — exactly how a flaky disk surfaces through std.
    io::Error::new(io::Error::from_raw_os_error(5).kind(), what.to_string())
}

fn enospc() -> io::Error {
    io::Error::from_raw_os_error(28) // ENOSPC → ErrorKind::StorageFull
}

impl VfsState {
    /// Charge one I/O operation: bump the public counter and fail if the
    /// crash point has been reached.
    fn begin(&mut self) -> io::Result<u64> {
        let idx = self.ops;
        self.ops += 1;
        if self.crashed || self.plan.crash_at.is_some_and(|k| idx >= k) {
            if !self.crashed {
                self.crashed = true;
                self.log.push(FaultEvent {
                    op: idx,
                    kind: "crash",
                });
            }
            return Err(eio("injected crash: I/O unreachable past the crash point"));
        }
        Ok(idx)
    }

    /// Per-op fault coins: a pure function of (seed, op index).
    fn coins(&self, idx: u64) -> u64 {
        splitmix64(self.plan.seed ^ (idx + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    fn file(&mut self, path: &Path) -> &mut FileState {
        self.files.entry(path.to_path_buf()).or_insert(FileState {
            data: Vec::new(),
            durable: Vec::new(),
        })
    }
}

impl FaultVfs {
    /// A filesystem injecting faults per `plan`.
    pub fn new(plan: FaultPlan) -> FaultVfs {
        FaultVfs {
            state: Arc::new(Mutex::new(VfsState {
                files: BTreeMap::new(),
                plan,
                ops: 0,
                writes: 0,
                log: Vec::new(),
                crashed: false,
            })),
        }
    }

    /// A fault-free in-memory filesystem (the all-zeros plan).
    pub fn unfaulted() -> FaultVfs {
        FaultVfs::new(FaultPlan::default())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VfsState> {
        self.state.lock().expect("fault-vfs state poisoned")
    }

    /// Total I/O operations charged so far (the crash-point coordinate
    /// space: sweep `FaultPlan::crash_at` over `0..io_ops()`).
    pub fn io_ops(&self) -> u64 {
        self.lock().ops
    }

    /// The public fault-decision log, in injection order.
    pub fn fault_log(&self) -> Vec<FaultEvent> {
        self.lock().log.clone()
    }

    /// True once the crash point has fired.
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// What stable storage holds right now: a fresh, fault-free
    /// [`FaultVfs`] containing each file's durable bytes. Recovery after
    /// a simulated crash runs against this image.
    pub fn durable_image(&self) -> FaultVfs {
        let s = self.lock();
        let files = s
            .files
            .iter()
            .map(|(p, f)| {
                (
                    p.clone(),
                    FileState {
                        data: f.durable.clone(),
                        durable: f.durable.clone(),
                    },
                )
            })
            .collect();
        FaultVfs {
            state: Arc::new(Mutex::new(VfsState {
                files,
                plan: FaultPlan::default(),
                ops: 0,
                writes: 0,
                log: Vec::new(),
                crashed: false,
            })),
        }
    }
}

struct FaultFile {
    vfs: FaultVfs,
    path: PathBuf,
}

impl VfsFile for FaultFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut s = self.vfs.lock();
        let idx = s.begin()?;
        let w = s.writes;
        s.writes += 1;
        if s.plan.enospc_write == Some(w) {
            s.log.push(FaultEvent {
                op: idx,
                kind: "write-enospc",
            });
            return Err(enospc());
        }
        let coins = s.coins(idx);
        if s.plan.eio_write == Some(w) || (coins & 0xFF) < u64::from(s.plan.write_fault) {
            if ((coins >> 8) & 0xFF) < u64::from(s.plan.torn) {
                // Torn append: a strict prefix lands before the error.
                let cut = (buf.len() * (((coins >> 16) & 0x7F) as usize)) / 128;
                let torn = &buf[..cut.min(buf.len().saturating_sub(1))];
                let torn = torn.to_vec();
                s.file(&self.path).data.extend_from_slice(&torn);
                s.log.push(FaultEvent {
                    op: idx,
                    kind: "write-torn",
                });
            } else {
                s.log.push(FaultEvent {
                    op: idx,
                    kind: "write-eio",
                });
            }
            return Err(eio("injected append failure"));
        }
        let buf = buf.to_vec();
        s.file(&self.path).data.extend_from_slice(&buf);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut s = self.vfs.lock();
        let idx = s.begin()?;
        let coins = s.coins(idx);
        if (coins & 0xFF) < u64::from(s.plan.sync_fault) {
            s.log.push(FaultEvent {
                op: idx,
                kind: "sync-eio",
            });
            return Err(eio("injected sync failure"));
        }
        if ((coins >> 8) & 0xFF) < u64::from(s.plan.sync_lie) {
            // Fsync lie: report success, persist nothing. A later honest
            // sync flushes everything, so losses stay a clean suffix.
            s.log.push(FaultEvent {
                op: idx,
                kind: "sync-lie",
            });
            return Ok(());
        }
        let f = s.file(&self.path);
        f.durable = f.data.clone();
        Ok(())
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        let mut s = self.vfs.lock();
        s.begin()?;
        let f = s.file(&self.path);
        f.data.resize(len as usize, 0);
        Ok(())
    }

    fn size(&self) -> io::Result<u64> {
        let mut s = self.vfs.lock();
        s.begin()?;
        Ok(s.file(&self.path).data.len() as u64)
    }
}

impl Vfs for FaultVfs {
    fn create_dir_all(&self, _path: &Path) -> io::Result<()> {
        // Directories are implicit in the in-memory namespace; creating
        // one is not an I/O operation worth a crash point.
        Ok(())
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut s = self.lock();
        s.begin()?;
        match s.files.get(path) {
            Some(f) => Ok(f.data.clone()),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such in-memory file: {}", path.display()),
            )),
        }
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut s = self.lock();
        s.begin()?;
        s.file(path);
        drop(s);
        Ok(Box::new(FaultFile {
            vfs: self.clone(),
            path: path.to_path_buf(),
        }))
    }

    fn open_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut s = self.lock();
        s.begin()?;
        s.file(path).data.clear();
        drop(s);
        Ok(Box::new(FaultFile {
            vfs: self.clone(),
            path: path.to_path_buf(),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut s = self.lock();
        let idx = s.begin()?;
        let coins = s.coins(idx);
        if (coins & 0xFF) < u64::from(s.plan.rename_fault) {
            s.log.push(FaultEvent {
                op: idx,
                kind: "rename-eio",
            });
            return Err(eio("injected rename failure"));
        }
        let Some(f) = s.files.remove(from) else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("rename source missing: {}", from.display()),
            ));
        };
        // Atomic and immediately durable, the journalled-metadata
        // contract the snapshot publish step assumes of the host.
        s.files.insert(to.to_path_buf(), f);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn unsynced_appends_do_not_survive_a_crash() {
        let vfs = FaultVfs::unfaulted();
        let mut f = vfs.open_append(&p("wal")).unwrap();
        f.append(b"aaaa").unwrap();
        f.sync().unwrap();
        f.append(b"bbbb").unwrap();
        assert_eq!(vfs.read(&p("wal")).unwrap(), b"aaaabbbb");
        let image = vfs.durable_image();
        assert_eq!(image.read(&p("wal")).unwrap(), b"aaaa");
    }

    #[test]
    fn lying_sync_persists_nothing_until_an_honest_one() {
        // Lie on the first sync only (op index known: open=0, append=1,
        // sync=2): pick a plan whose coins lie at exactly that op.
        let mut plan = FaultPlan {
            sync_lie: 128,
            ..FaultPlan::default()
        };
        // Find a seed whose op-2 coin lies and op-4 coin is honest.
        plan.seed = (0..)
            .find(|&seed| {
                let probe = FaultVfs::new(FaultPlan { seed, ..plan });
                let s = probe.lock();
                let lie = |i: u64| ((s.coins(i) >> 8) & 0xFF) < 128;
                lie(2) && !lie(4)
            })
            .unwrap();
        let vfs = FaultVfs::new(plan);
        let mut f = vfs.open_append(&p("wal")).unwrap();
        f.append(b"aaaa").unwrap();
        f.sync().unwrap(); // lies
        assert!(vfs.durable_image().read(&p("wal")).unwrap().is_empty());
        f.append(b"bbbb").unwrap();
        f.sync().unwrap(); // honest: flushes *everything*
        assert_eq!(vfs.durable_image().read(&p("wal")).unwrap(), b"aaaabbbb");
        assert_eq!(
            vfs.fault_log(),
            vec![FaultEvent {
                op: 2,
                kind: "sync-lie"
            }]
        );
    }

    #[test]
    fn crash_point_freezes_the_durable_image() {
        let n = {
            let dry = FaultVfs::unfaulted();
            let mut f = dry.open_append(&p("wal")).unwrap();
            for _ in 0..4 {
                f.append(b"xx").unwrap();
                f.sync().unwrap();
            }
            dry.io_ops()
        };
        // Crash at every point: the durable image is always a prefix of
        // the synced appends, and later ops fail.
        for k in 0..n {
            let vfs = FaultVfs::new(FaultPlan {
                crash_at: Some(k),
                ..FaultPlan::default()
            });
            let mut failed = false;
            if let Ok(mut f) = vfs.open_append(&p("wal")) {
                for _ in 0..4 {
                    if f.append(b"xx").is_err() || f.sync().is_err() {
                        failed = true;
                        break;
                    }
                }
            } else {
                failed = true;
            }
            assert!(failed, "crash point {k} must be observable");
            assert!(vfs.crashed());
            let img = vfs.durable_image().read(&p("wal")).unwrap_or_default();
            assert!(img.len().is_multiple_of(2) && img.len() <= 8);
            // Post-crash operations keep failing.
            assert!(vfs.read(&p("wal")).is_err());
        }
    }

    #[test]
    fn deterministic_kth_write_faults_fire_once() {
        let vfs = FaultVfs::new(FaultPlan {
            eio_write: Some(1),
            enospc_write: Some(3),
            ..FaultPlan::default()
        });
        let mut f = vfs.open_append(&p("wal")).unwrap();
        assert!(f.append(b"a").is_ok());
        let e = f.append(b"b").unwrap_err();
        assert_ne!(e.kind(), io::ErrorKind::StorageFull);
        assert!(f.append(b"c").is_ok());
        let e = f.append(b"d").unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::StorageFull);
        assert_eq!(vfs.read(&p("wal")).unwrap(), b"ac");
        let kinds: Vec<_> = vfs.fault_log().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["write-eio", "write-enospc"]);
    }

    #[test]
    fn fault_decisions_depend_on_the_schedule_not_the_bytes() {
        let plan = FaultPlan {
            seed: 7,
            write_fault: 64,
            torn: 128,
            sync_fault: 32,
            ..FaultPlan::default()
        };
        let run = |fill: u8| {
            let vfs = FaultVfs::new(plan);
            let mut f = vfs.open_append(&p("wal")).unwrap();
            for _ in 0..16 {
                let _ = f.append(&[fill; 32]);
                let _ = f.sync();
            }
            vfs.fault_log()
        };
        assert_eq!(run(0x00), run(0xFF), "same shapes, same schedule");
    }

    #[test]
    fn rename_is_atomic_and_durable() {
        let vfs = FaultVfs::unfaulted();
        let mut f = vfs.open_truncate(&p("snap.tmp")).unwrap();
        f.append(b"snapshot").unwrap();
        f.sync().unwrap();
        drop(f);
        vfs.rename(&p("snap.tmp"), &p("snap.bin")).unwrap();
        assert!(vfs.read(&p("snap.tmp")).is_err());
        assert_eq!(
            vfs.durable_image().read(&p("snap.bin")).unwrap(),
            b"snapshot"
        );
    }
}
