//! Durable epoch log: framed write-ahead records plus packed table
//! snapshots, the on-disk half of [`Durability::Epoch`].
//!
//! # Frame format
//!
//! The WAL is a flat sequence of fixed-layout records, one per epoch:
//!
//! ```text
//! seq: u64 LE | class: u32 LE | class × (kind u8, key u64 LE, val u64 LE) | fnv1a64: u64 LE
//! ```
//!
//! A record carries the epoch's **already padded** batch — dummies
//! included — so its size is `20 + 17·class` bytes, a function of the
//! public size class alone. Nothing about the record layout (offsets,
//! lengths, flush points) depends on keys, values, op kinds, or how many
//! of the `class` slots are real: the only thing an observer of the log
//! file learns is the sequence of batch classes, which the store's
//! padding discipline already makes public. Record *contents* are exactly
//! as secret as the store's resident memory — in the paper's secure-
//! processor scenario both live outside the enclave and are encrypted at
//! rest by the same layer; this module is about *shape*, not ciphers.
//!
//! # The filesystem is injectable
//!
//! All I/O goes through a [`Vfs`](crate::vfs::Vfs) handle — [`OsVfs`]
//! (`std::fs`) in production, [`FaultVfs`](crate::vfs::FaultVfs) under
//! the chaos suite — so every path below is exercised against injected
//! EIO/ENOSPC, torn appends, lying syncs and crash points. Appends repair
//! their own torn writes: a failed write truncates back to the record
//! boundary before the error propagates, so a retry never buries an
//! unreachable record behind a torn frame.
//!
//! # Snapshots and truncation
//!
//! A snapshot file holds the packed table of one shard — `capacity` cells
//! of 32 bytes each, the same `TagCell` packing the merge path sorts —
//! plus the public counters needed to resume (`next_seq`, merge count,
//! live-key bound, analytics snapshot). Snapshots are written to a
//! temporary file and atomically renamed into place, then the WAL is
//! truncated; a crash between the two steps is benign because recovery
//! skips WAL records with `seq < next_seq`. Snapshot points follow the
//! public [`ShrinkPolicy::snapshot`](crate::ShrinkPolicy::snapshot)
//! cadence (or an explicit [`Store::checkpoint`](crate::Store::checkpoint)
//! call), both functions of the public merge counter — never of the data.
//!
//! # Torn tails
//!
//! [`read_wal`] accepts the longest clean prefix of the file and reports
//! *why* it stopped, if it did: a record with a short header or body, an
//! implausible class, a checksum mismatch, or a non-consecutive sequence
//! number ends the scan with an explicit [`FrameReject`]. A crash
//! mid-append thus silently drops only the epoch that was never
//! acknowledged; recovery escalates a reject to
//! [`StoreError::WalCorrupt`](crate::StoreError::WalCorrupt) only when it
//! contradicts the snapshot horizon (acknowledged records missing).

use crate::error::{RetryFailure, RetryPolicy};
use crate::merge::Rec;
use crate::op::{FlatOp, StoreStats};
use crate::vfs::{Vfs, VfsFile};
use std::io;
use std::path::{Path, PathBuf};

/// Whether (and when) a store persists its epochs. The default is
/// [`Durability::None`]: every pre-existing construction path is
/// unchanged and nothing touches the filesystem.
///
/// [`Durability::Epoch`] only takes effect through
/// [`Store::recover`](crate::Store::recover) /
/// [`ShardedStore::recover`](crate::ShardedStore::recover), which bind
/// the store to a directory; a store built with
/// [`Store::new`](crate::Store::new) has nowhere to log and stays
/// in-memory regardless of the knob.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Durability {
    /// In-memory only (the default): no WAL, no snapshots, no recovery.
    #[default]
    None,
    /// Epoch durability: each epoch's padded batch is appended to the WAL
    /// *before* the merge runs (WAL-before-merge), and the file is
    /// `fsync`ed every `sync_every`-th append (group commit). With
    /// `sync_every == 1` every append is its own durability point: the
    /// epoch survives a crash the moment its append returns. With
    /// `sync_every == k > 1` up to `k − 1` trailing epochs may sit in the
    /// OS page cache; a crash drops that un-synced suffix and recovery
    /// replays the longest clean (synced) prefix — epochs are still never
    /// reordered or partially applied. `sync_every` is public
    /// configuration: flush points are a function of the append counter
    /// alone, never of keys, values, or op kinds. The table is
    /// snapshotted and the WAL truncated on the public snapshot cadence
    /// regardless of the knob. A value of 0 is treated as 1.
    Epoch {
        /// `fsync` the WAL every this-many appends (group commit).
        sync_every: u32,
    },
}

impl Durability {
    /// Epoch durability with the strictest setting: one `fsync` per
    /// append (`sync_every = 1`).
    pub const fn epoch() -> Durability {
        Durability::Epoch { sync_every: 1 }
    }

    /// Epoch durability with group commit: one `fsync` per `sync_every`
    /// appends.
    pub const fn epoch_every(sync_every: u32) -> Durability {
        Durability::Epoch { sync_every }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
    })
}

/// Bytes of one WAL record for a batch of `class` slots — `20 + 17·class`,
/// a public function of the class.
pub(crate) const fn record_size(class: usize) -> usize {
    8 + 4 + 17 * class + 8
}

/// Sanity ceiling on a record's class while scanning: anything larger is
/// treated as tail corruption rather than attempted as an allocation.
const MAX_CLASS: usize = 1 << 28;

pub(crate) fn wal_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("wal-{shard}.log"))
}

pub(crate) fn snapshot_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("snap-{shard}.bin"))
}

/// Append handle on one shard's WAL file, with group-commit `fsync`
/// coalescing: one `sync_data` per `sync_every` appends.
pub(crate) struct Wal {
    file: Box<dyn VfsFile>,
    /// Clean length: the byte just past the last fully appended record.
    /// Torn-write repair truncates back to this before a retry.
    len: u64,
    sync_every: u32,
    unsynced: u32,
}

impl Wal {
    /// Open with the strictest cadence: `fsync` on every append.
    #[cfg(test)]
    pub fn open(vfs: &dyn Vfs, path: &Path) -> io::Result<Wal> {
        Self::open_with(vfs, path, 1)
    }

    /// Open with a group-commit cadence of `sync_every` appends per
    /// `fsync` (0 is treated as 1).
    pub fn open_with(vfs: &dyn Vfs, path: &Path, sync_every: u32) -> io::Result<Wal> {
        let file = vfs.open_append(path)?;
        let len = file.size()?;
        Ok(Wal {
            file,
            len,
            sync_every: sync_every.max(1),
            unsynced: 0,
        })
    }

    /// Append epoch `seq`'s padded batch as one framed record, flushing
    /// to stable storage on every `sync_every`-th append. With
    /// `sync_every == 1` this call returning *is* the durability point;
    /// with a larger cadence the durability point is the append that
    /// completes the group (or [`Wal::sync`]), and a crash drops at most
    /// the `sync_every − 1` trailing un-synced epochs — always a clean
    /// suffix, because records are written in sequence order.
    ///
    /// Transient faults are retried per `policy`, each phase separately
    /// and idempotently: a failed *write* is repaired (the file truncated
    /// back to the last record boundary) before the next attempt, so a
    /// torn frame never buries a retried record; a failed *sync* retries
    /// the flush alone, never duplicating the record. On terminal failure
    /// the record is truncated off the live file — the epoch was never
    /// acknowledged, so it must not resurface at recovery.
    pub fn append(
        &mut self,
        policy: RetryPolicy,
        seq: u64,
        batch: &[FlatOp],
    ) -> Result<(), RetryFailure> {
        let mut buf = Vec::with_capacity(record_size(batch.len()));
        buf.extend_from_slice(&seq.to_le_bytes());
        buf.extend_from_slice(&(batch.len() as u32).to_le_bytes());
        for f in batch {
            buf.push(f.kind);
            buf.extend_from_slice(&f.key.to_le_bytes());
            buf.extend_from_slice(&f.val.to_le_bytes());
        }
        buf.extend_from_slice(&fnv1a(&buf).to_le_bytes());

        // Write phase: torn-write repair between attempts.
        let file = &mut self.file;
        let base = self.len;
        policy.run(|| match file.append(&buf) {
            Ok(()) => Ok(()),
            Err(e) => match file.set_len(base) {
                Ok(()) => Err(e),
                // An unrepairable torn write is permanent: retrying the
                // append would bury the record behind the torn frame.
                Err(e2) => Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("torn WAL append could not be repaired: {e}; truncate failed: {e2}"),
                )),
            },
        })?;
        let new_len = base + buf.len() as u64;

        // Sync phase (group-commit cadence): retried alone — the record
        // is already written, so attempts here never duplicate it.
        if self.unsynced + 1 >= self.sync_every {
            if let Err(f) = policy.run(|| self.file.sync()) {
                // Unacknowledged epoch: truncate it off the live file
                // (best-effort; the failed sync never made it durable).
                let _ = self.file.set_len(base);
                return Err(f);
            }
            self.unsynced = 0;
        } else {
            self.unsynced += 1;
        }
        self.len = new_len;
        Ok(())
    }

    /// Force the durability point now: flush any appends still in the OS
    /// page cache and reset the group counter.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Drop every record (the snapshot now covers them). Force-syncs, so
    /// the truncation itself is durable and the group counter restarts.
    /// Idempotent: safe to retry wholesale.
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.len = 0;
        self.sync()
    }
}

/// Why a WAL scan stopped before end-of-file: the byte offset of the
/// offending frame and a human-readable diagnosis. A reject at the tail
/// is the normal crash artifact (the epoch was never acknowledged);
/// recovery escalates it to a typed
/// [`StoreError::WalCorrupt`](crate::StoreError::WalCorrupt) only when
/// the snapshot horizon proves acknowledged records are missing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct FrameReject {
    /// Byte offset of the rejected frame.
    pub offset: usize,
    /// What was wrong with it.
    pub detail: String,
}

/// Outcome of scanning one WAL file: the longest clean prefix of
/// consecutive, checksummed records, plus the explicit reason the scan
/// stopped early (if it did).
pub(crate) struct WalScan {
    pub records: Vec<(u64, Vec<FlatOp>)>,
    pub reject: Option<FrameReject>,
}

fn le_u64(bytes: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(bytes.get(at..at + 8)?.try_into().ok()?))
}

fn le_u32(bytes: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_le_bytes(bytes.get(at..at + 4)?.try_into().ok()?))
}

/// Read the longest clean prefix of a WAL file. A missing file is an
/// empty log; a torn or corrupt tail ends the scan without error but
/// with an explicit [`FrameReject`] naming the boundary.
pub(crate) fn read_wal(vfs: &dyn Vfs, path: &Path) -> io::Result<WalScan> {
    let bytes = match vfs.read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok(WalScan {
                records: Vec::new(),
                reject: None,
            })
        }
        Err(e) => return Err(e),
    };
    let mut records = Vec::new();
    let mut at = 0usize;
    let mut expected_seq: Option<u64> = None;
    let reject = loop {
        if at == bytes.len() {
            break None;
        }
        let reject_here = |detail: String| FrameReject { offset: at, detail };
        let (Some(seq), Some(class)) = (le_u64(&bytes, at), le_u32(&bytes, at + 8)) else {
            break Some(reject_here(format!(
                "truncated frame header: {} trailing bytes, header needs 12",
                bytes.len() - at
            )));
        };
        let class = class as usize;
        if class == 0 || class > MAX_CLASS || !class.is_power_of_two() {
            break Some(reject_here(format!("implausible class {class}")));
        }
        let size = record_size(class);
        if bytes.len() - at < size {
            break Some(reject_here(format!(
                "truncated frame body: class {class} needs {size} bytes, {} remain",
                bytes.len() - at
            )));
        }
        let Some(want) = le_u64(&bytes, at + size - 8) else {
            break Some(reject_here("checksum unreadable".to_string()));
        };
        if fnv1a(&bytes[at..at + size - 8]) != want {
            break Some(reject_here("checksum mismatch".to_string()));
        }
        if let Some(e) = expected_seq {
            if e != seq {
                break Some(reject_here(format!(
                    "non-consecutive sequence: expected {e}, found {seq}"
                )));
            }
        }
        expected_seq = Some(seq + 1);
        let mut batch = Vec::with_capacity(class);
        let mut o = at + 12;
        for _ in 0..class {
            let (Some(key), Some(val)) = (le_u64(&bytes, o + 1), le_u64(&bytes, o + 9)) else {
                // Unreachable after the length check above, but parse
                // defensively: a short op is a rejected frame, never a
                // panic.
                break;
            };
            batch.push(FlatOp {
                kind: bytes[o],
                key,
                val,
            });
            o += 17;
        }
        if batch.len() != class {
            break Some(reject_here("short op block".to_string()));
        }
        records.push((seq, batch));
        at += size;
    };
    Ok(WalScan { records, reject })
}

/// Public counters a snapshot resumes: everything except the table cells.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SnapMeta {
    /// First WAL sequence number *not* covered by this snapshot (equals
    /// the store's epoch count at the snapshot point).
    pub next_seq: u64,
    /// The shard's merge counter (drives the shrink/snapshot cadence).
    pub merges: u64,
    /// Public upper bound on distinct live keys.
    pub live_upper: u64,
    /// Analytics snapshot as of the last merge.
    pub stats: StoreStats,
}

const SNAP_MAGIC: u64 = 0x444F_4253_4E41_5031; // "DOBSNAP1"

/// Write one shard's snapshot: meta + the packed table (32-byte cells,
/// the merge path's `TagCell` layout: `tag = key << 64` for present slots,
/// all-ones for fillers; `aux = val`). Temp-file + rename keeps the old
/// snapshot intact if the process dies (or a fault fires) mid-write.
/// Idempotent: safe to retry wholesale.
pub(crate) fn write_snapshot(
    vfs: &dyn Vfs,
    dir: &Path,
    shard: usize,
    meta: &SnapMeta,
    table: &[Rec],
) -> io::Result<()> {
    let mut buf = Vec::with_capacity(8 * 7 + 32 * table.len());
    buf.extend_from_slice(&SNAP_MAGIC.to_le_bytes());
    buf.extend_from_slice(&meta.next_seq.to_le_bytes());
    buf.extend_from_slice(&meta.merges.to_le_bytes());
    buf.extend_from_slice(&meta.live_upper.to_le_bytes());
    buf.extend_from_slice(&meta.stats.count.to_le_bytes());
    buf.extend_from_slice(&meta.stats.sum.to_le_bytes());
    buf.extend_from_slice(&(table.len() as u64).to_le_bytes());
    for r in table {
        let tag: u128 = if r.present {
            (r.key as u128) << 64
        } else {
            u128::MAX
        };
        buf.extend_from_slice(&tag.to_le_bytes());
        buf.extend_from_slice(&(r.val as u128).to_le_bytes());
    }
    buf.extend_from_slice(&fnv1a(&buf).to_le_bytes());

    let tmp = dir.join(format!("snap-{shard}.tmp"));
    {
        let mut f = vfs.open_truncate(&tmp)?;
        f.append(&buf)?;
        f.sync()?;
    }
    vfs.rename(&tmp, &snapshot_path(dir, shard))
}

/// Read one shard's snapshot; `Ok(None)` when the file does not exist. A
/// present-but-corrupt snapshot is a hard error (its WAL prefix was
/// already truncated, so silently starting empty would lose data).
pub(crate) fn read_snapshot(
    vfs: &dyn Vfs,
    dir: &Path,
    shard: usize,
) -> io::Result<Option<(SnapMeta, Vec<Rec>)>> {
    let bytes = match vfs.read(&snapshot_path(dir, shard)) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let corrupt = |what: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("snapshot for shard {shard} is corrupt: {what}"),
        )
    };
    if bytes.len() < 8 * 8 {
        return Err(corrupt("too short"));
    }
    let word = |i: usize| le_u64(&bytes, 8 * i);
    let (Some(magic), Some(cap)) = (word(0), word(6)) else {
        return Err(corrupt("header unreadable"));
    };
    if magic != SNAP_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let cap = cap as usize;
    let total = 8 * 7 + 32 * cap + 8;
    if cap > MAX_CLASS || bytes.len() != total {
        return Err(corrupt("bad length"));
    }
    match le_u64(&bytes, total - 8) {
        Some(want) if fnv1a(&bytes[..total - 8]) == want => {}
        _ => return Err(corrupt("checksum mismatch")),
    }
    let meta = SnapMeta {
        next_seq: word(1).unwrap_or(0),
        merges: word(2).unwrap_or(0),
        live_upper: word(3).unwrap_or(0),
        stats: StoreStats {
            count: word(4).unwrap_or(0),
            sum: word(5).unwrap_or(0),
        },
    };
    let mut table = Vec::with_capacity(cap);
    let mut o = 8 * 7;
    for _ in 0..cap {
        let (Some(tag), Some(aux)) = (
            bytes
                .get(o..o + 16)
                .map(|b| u128::from_le_bytes(b.try_into().expect("16-byte slice"))),
            bytes
                .get(o + 16..o + 32)
                .map(|b| u128::from_le_bytes(b.try_into().expect("16-byte slice"))),
        ) else {
            return Err(corrupt("short cell block"));
        };
        table.push(if tag == u128::MAX {
            Rec::default()
        } else {
            Rec {
                present: true,
                key: (tag >> 64) as u64,
                val: aux as u64,
            }
        });
        o += 32;
    }
    Ok(Some((meta, table)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::kind;
    use crate::vfs::{FaultPlan, FaultVfs, OsVfs};

    fn batch(n: u64) -> Vec<FlatOp> {
        (0..n)
            .map(|i| FlatOp {
                kind: kind::PUT,
                key: i,
                val: i * 10,
            })
            .collect()
    }

    fn relaxed() -> RetryPolicy {
        RetryPolicy::none()
    }

    #[test]
    fn wal_roundtrips_records() {
        let vfs = OsVfs;
        let dir = std::env::temp_dir().join(format!("dob_wal_unit_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = wal_path(&dir, 0);
        let mut w = Wal::open(&vfs, &path).unwrap();
        w.append(relaxed(), 0, &batch(8)).unwrap();
        w.append(relaxed(), 1, &batch(16)).unwrap();
        let scan = read_wal(&vfs, &path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert!(scan.reject.is_none());
        assert_eq!(scan.records[0].0, 0);
        assert_eq!(scan.records[1].1.len(), 16);
        assert_eq!(scan.records[1].1[3].val, 30);
        // Record sizes are a function of the class alone.
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            (record_size(8) + record_size(16)) as u64
        );
        w.truncate().unwrap();
        assert!(read_wal(&vfs, &path).unwrap().records.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_appends_stay_readable() {
        let vfs = OsVfs;
        let dir = std::env::temp_dir().join(format!("dob_wal_group_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = wal_path(&dir, 0);
        // Cadence 0 is clamped to 1; a cadence larger than the append
        // count leaves records in the page cache but still readable.
        let mut w = Wal::open_with(&vfs, &path, 0).unwrap();
        w.append(relaxed(), 0, &batch(8)).unwrap();
        drop(w);
        let mut w = Wal::open_with(&vfs, &path, 4).unwrap();
        w.append(relaxed(), 1, &batch(8)).unwrap();
        w.append(relaxed(), 2, &batch(8)).unwrap();
        w.sync().unwrap();
        assert_eq!(read_wal(&vfs, &path).unwrap().records.len(), 3);
        w.truncate().unwrap();
        assert!(read_wal(&vfs, &path).unwrap().records.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_cleanly() {
        let vfs = OsVfs;
        let dir = std::env::temp_dir().join(format!("dob_wal_torn_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = wal_path(&dir, 0);
        let mut w = Wal::open(&vfs, &path).unwrap();
        w.append(relaxed(), 0, &batch(8)).unwrap();
        w.append(relaxed(), 1, &batch(8)).unwrap();
        // Tear the second record mid-payload.
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len((record_size(8) + 30) as u64).unwrap();
        let scan = read_wal(&vfs, &path).unwrap();
        assert_eq!(scan.records.len(), 1, "torn tail must be ignored");
        assert!(
            scan.reject.unwrap().detail.contains("truncated frame"),
            "the reject names the tear"
        );
        // A flipped byte in the tail record is equally dropped.
        drop(f);
        let mut w = Wal::open(&vfs, &path).unwrap();
        // Re-extend with a clean record, then corrupt its checksum region.
        w.append(relaxed(), 1, &batch(8)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let scan = read_wal(&vfs, &path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.reject.unwrap().detail, "checksum mismatch");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_boundaries_reject_explicitly() {
        let vfs = FaultVfs::unfaulted();
        let path = PathBuf::from("wal-0.log");

        // Zero-length file: empty log, no reject.
        {
            let mut f = vfs.open_truncate(&path).unwrap();
            f.sync().unwrap();
        }
        let scan = read_wal(&vfs, &path).unwrap();
        assert!(scan.records.is_empty() && scan.reject.is_none());

        // Header-only frame (12 bytes: seq + class, no body at all).
        {
            let mut f = vfs.open_truncate(&path).unwrap();
            let mut hdr = Vec::new();
            hdr.extend_from_slice(&0u64.to_le_bytes());
            hdr.extend_from_slice(&8u32.to_le_bytes());
            f.append(&hdr).unwrap();
        }
        let scan = read_wal(&vfs, &path).unwrap();
        assert!(scan.records.is_empty());
        let reject = scan.reject.unwrap();
        assert_eq!(reject.offset, 0);
        assert!(reject.detail.contains("truncated frame"), "{reject:?}");

        // A clean record followed by a frame truncated exactly at the
        // checksum (everything but the final 8 bytes present).
        {
            let mut w = Wal::open(&vfs, &path).unwrap();
            // Rebuild from scratch: truncate then append two records.
            w.truncate().unwrap();
            w.append(relaxed(), 0, &batch(8)).unwrap();
            w.append(relaxed(), 1, &batch(8)).unwrap();
        }
        let full = vfs.read(&path).unwrap();
        {
            let mut f = vfs.open_truncate(&path).unwrap();
            f.append(&full[..2 * record_size(8) - 8]).unwrap();
        }
        let scan = read_wal(&vfs, &path).unwrap();
        assert_eq!(scan.records.len(), 1, "the clean head record survives");
        let reject = scan.reject.unwrap();
        assert_eq!(reject.offset, record_size(8));
        assert!(reject.detail.contains("truncated frame body"), "{reject:?}");

        // Implausible class (not a power of two).
        {
            let mut f = vfs.open_truncate(&path).unwrap();
            let mut hdr = Vec::new();
            hdr.extend_from_slice(&0u64.to_le_bytes());
            hdr.extend_from_slice(&9u32.to_le_bytes());
            hdr.extend_from_slice(&[0u8; 64]);
            f.append(&hdr).unwrap();
        }
        let scan = read_wal(&vfs, &path).unwrap();
        assert!(scan.reject.unwrap().detail.contains("implausible class"));
    }

    #[test]
    fn torn_append_is_repaired_before_retry() {
        // Fault every append once (EIO with a torn prefix); the retry
        // must land a clean record with no torn bytes buried mid-file.
        let vfs = FaultVfs::new(FaultPlan {
            seed: 11,
            eio_write: Some(1),
            torn: 255,
            write_fault: 0,
            ..FaultPlan::default()
        });
        let path = PathBuf::from("wal-0.log");
        let mut w = Wal::open(&vfs, &path).unwrap();
        let policy = RetryPolicy {
            attempts: 3,
            backoff: std::time::Duration::ZERO,
        };
        w.append(policy, 0, &batch(8)).unwrap();
        w.append(policy, 1, &batch(8)).unwrap(); // faulted once, retried
        let scan = read_wal(&vfs, &path).unwrap();
        assert_eq!(scan.records.len(), 2, "retried record must be reachable");
        assert!(scan.reject.is_none(), "no torn bytes may linger");
        assert_eq!(
            vfs.read(&path).unwrap().len(),
            2 * record_size(8),
            "repair truncated the torn prefix"
        );
    }

    #[test]
    fn terminally_failed_append_leaves_no_record() {
        // ENOSPC on the second append: the epoch is rejected and its
        // record must not survive to be recovered.
        let vfs = FaultVfs::new(FaultPlan {
            enospc_write: Some(1),
            ..FaultPlan::default()
        });
        let path = PathBuf::from("wal-0.log");
        let mut w = Wal::open(&vfs, &path).unwrap();
        w.append(relaxed(), 0, &batch(8)).unwrap();
        let err = w.append(relaxed(), 1, &batch(8)).unwrap_err();
        assert!(!err.exhausted, "ENOSPC fails fast");
        // A later successful append continues the clean sequence.
        w.append(relaxed(), 1, &batch(8)).unwrap();
        let scan = read_wal(&vfs, &path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert!(scan.reject.is_none());
    }

    #[test]
    fn snapshot_roundtrips_and_rejects_corruption() {
        let vfs = OsVfs;
        let dir = std::env::temp_dir().join(format!("dob_snap_unit_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let table = vec![
            Rec {
                present: true,
                key: 3,
                val: 33,
            },
            Rec::default(),
        ];
        let meta = SnapMeta {
            next_seq: 5,
            merges: 4,
            live_upper: 2,
            stats: StoreStats { count: 1, sum: 33 },
        };
        write_snapshot(&vfs, &dir, 0, &meta, &table).unwrap();
        let (m, t) = read_snapshot(&vfs, &dir, 0).unwrap().unwrap();
        assert_eq!(m.next_seq, 5);
        assert_eq!(m.stats, meta.stats);
        assert!(t[0].present && t[0].key == 3 && t[0].val == 33);
        assert!(!t[1].present);
        assert!(read_snapshot(&vfs, &dir, 1).unwrap().is_none());
        // Corruption is a hard error, never a silent empty store.
        let path = snapshot_path(&dir, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_snapshot(&vfs, &dir, 0).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
