//! Durable epoch log: framed write-ahead records plus packed table
//! snapshots, the on-disk half of [`Durability::Epoch`].
//!
//! # Frame format
//!
//! The WAL is a flat sequence of fixed-layout records, one per epoch:
//!
//! ```text
//! seq: u64 LE | class: u32 LE | class × (kind u8, key u64 LE, val u64 LE) | fnv1a64: u64 LE
//! ```
//!
//! A record carries the epoch's **already padded** batch — dummies
//! included — so its size is `20 + 17·class` bytes, a function of the
//! public size class alone. Nothing about the record layout (offsets,
//! lengths, flush points) depends on keys, values, op kinds, or how many
//! of the `class` slots are real: the only thing an observer of the log
//! file learns is the sequence of batch classes, which the store's
//! padding discipline already makes public. Record *contents* are exactly
//! as secret as the store's resident memory — in the paper's secure-
//! processor scenario both live outside the enclave and are encrypted at
//! rest by the same layer; this module is about *shape*, not ciphers.
//!
//! # Snapshots and truncation
//!
//! A snapshot file holds the packed table of one shard — `capacity` cells
//! of 32 bytes each, the same `TagCell` packing the merge path sorts —
//! plus the public counters needed to resume (`next_seq`, merge count,
//! live-key bound, analytics snapshot). Snapshots are written to a
//! temporary file and atomically renamed into place, then the WAL is
//! truncated; a crash between the two steps is benign because recovery
//! skips WAL records with `seq < next_seq`. Snapshot points follow the
//! public [`ShrinkPolicy::snapshot`](crate::ShrinkPolicy::snapshot)
//! cadence (or an explicit [`Store::checkpoint`](crate::Store::checkpoint)
//! call), both functions of the public merge counter — never of the data.
//!
//! # Torn tails
//!
//! [`read_wal`] accepts the longest clean prefix of the file: a record
//! with a short body, an implausible class, a checksum mismatch, or a
//! non-consecutive sequence number ends the scan. A crash mid-append thus
//! silently drops only the epoch that was never acknowledged.

use crate::merge::Rec;
use crate::op::{FlatOp, StoreStats};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Whether (and when) a store persists its epochs. The default is
/// [`Durability::None`]: every pre-existing construction path is
/// unchanged and nothing touches the filesystem.
///
/// [`Durability::Epoch`] only takes effect through
/// [`Store::recover`](crate::Store::recover) /
/// [`ShardedStore::recover`](crate::ShardedStore::recover), which bind
/// the store to a directory; a store built with
/// [`Store::new`](crate::Store::new) has nowhere to log and stays
/// in-memory regardless of the knob.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Durability {
    /// In-memory only (the default): no WAL, no snapshots, no recovery.
    #[default]
    None,
    /// Epoch durability: each epoch's padded batch is appended to the WAL
    /// *before* the merge runs (WAL-before-merge), and the file is
    /// `fsync`ed every `sync_every`-th append (group commit). With
    /// `sync_every == 1` every append is its own durability point: the
    /// epoch survives a crash the moment its append returns. With
    /// `sync_every == k > 1` up to `k − 1` trailing epochs may sit in the
    /// OS page cache; a crash drops that un-synced suffix and recovery
    /// replays the longest clean (synced) prefix — epochs are still never
    /// reordered or partially applied. `sync_every` is public
    /// configuration: flush points are a function of the append counter
    /// alone, never of keys, values, or op kinds. The table is
    /// snapshotted and the WAL truncated on the public snapshot cadence
    /// regardless of the knob. A value of 0 is treated as 1.
    Epoch {
        /// `fsync` the WAL every this-many appends (group commit).
        sync_every: u32,
    },
}

impl Durability {
    /// Epoch durability with the strictest setting: one `fsync` per
    /// append (`sync_every = 1`).
    pub const fn epoch() -> Durability {
        Durability::Epoch { sync_every: 1 }
    }

    /// Epoch durability with group commit: one `fsync` per `sync_every`
    /// appends.
    pub const fn epoch_every(sync_every: u32) -> Durability {
        Durability::Epoch { sync_every }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
    })
}

/// Bytes of one WAL record for a batch of `class` slots — `20 + 17·class`,
/// a public function of the class.
pub(crate) const fn record_size(class: usize) -> usize {
    8 + 4 + 17 * class + 8
}

/// Sanity ceiling on a record's class while scanning: anything larger is
/// treated as tail corruption rather than attempted as an allocation.
const MAX_CLASS: usize = 1 << 28;

pub(crate) fn wal_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("wal-{shard}.log"))
}

pub(crate) fn snapshot_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("snap-{shard}.bin"))
}

/// Append handle on one shard's WAL file, with group-commit `fsync`
/// coalescing: one `sync_data` per `sync_every` appends.
pub(crate) struct Wal {
    file: File,
    sync_every: u32,
    unsynced: u32,
}

impl Wal {
    /// Open with the strictest cadence: `fsync` on every append.
    #[cfg(test)]
    pub fn open(path: &Path) -> io::Result<Wal> {
        Self::open_with(path, 1)
    }

    /// Open with a group-commit cadence of `sync_every` appends per
    /// `fsync` (0 is treated as 1).
    pub fn open_with(path: &Path, sync_every: u32) -> io::Result<Wal> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Wal {
            file,
            sync_every: sync_every.max(1),
            unsynced: 0,
        })
    }

    /// Append epoch `seq`'s padded batch as one framed record, flushing
    /// to stable storage on every `sync_every`-th append. With
    /// `sync_every == 1` this call returning *is* the durability point;
    /// with a larger cadence the durability point is the append that
    /// completes the group (or [`Wal::sync`]), and a crash drops at most
    /// the `sync_every − 1` trailing un-synced epochs — always a clean
    /// suffix, because records are written in sequence order.
    pub fn append(&mut self, seq: u64, batch: &[FlatOp]) -> io::Result<()> {
        let mut buf = Vec::with_capacity(record_size(batch.len()));
        buf.extend_from_slice(&seq.to_le_bytes());
        buf.extend_from_slice(&(batch.len() as u32).to_le_bytes());
        for f in batch {
            buf.push(f.kind);
            buf.extend_from_slice(&f.key.to_le_bytes());
            buf.extend_from_slice(&f.val.to_le_bytes());
        }
        buf.extend_from_slice(&fnv1a(&buf).to_le_bytes());
        self.file.write_all(&buf)?;
        self.unsynced += 1;
        if self.unsynced >= self.sync_every {
            return self.sync();
        }
        Ok(())
    }

    /// Force the durability point now: flush any appends still in the OS
    /// page cache and reset the group counter.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Drop every record (the snapshot now covers them). Force-syncs, so
    /// the truncation itself is durable and the group counter restarts.
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.sync()
    }
}

/// Read the longest clean prefix of a WAL file: consecutive, checksummed
/// records. A missing file is an empty log; a torn or corrupt tail ends
/// the scan without error (those epochs were never acknowledged).
pub(crate) fn read_wal(path: &Path) -> io::Result<Vec<(u64, Vec<FlatOp>)>> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut records = Vec::new();
    let mut at = 0usize;
    let mut expected_seq: Option<u64> = None;
    while bytes.len() - at >= record_size(0) {
        let seq = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        let class = u32::from_le_bytes(bytes[at + 8..at + 12].try_into().unwrap()) as usize;
        if class == 0 || class > MAX_CLASS || !class.is_power_of_two() {
            break;
        }
        let size = record_size(class);
        if bytes.len() - at < size {
            break;
        }
        if fnv1a(&bytes[at..at + size - 8])
            != u64::from_le_bytes(bytes[at + size - 8..at + size].try_into().unwrap())
        {
            break;
        }
        if expected_seq.is_some_and(|e| e != seq) {
            break;
        }
        expected_seq = Some(seq + 1);
        let mut batch = Vec::with_capacity(class);
        let mut o = at + 12;
        for _ in 0..class {
            batch.push(FlatOp {
                kind: bytes[o],
                key: u64::from_le_bytes(bytes[o + 1..o + 9].try_into().unwrap()),
                val: u64::from_le_bytes(bytes[o + 9..o + 17].try_into().unwrap()),
            });
            o += 17;
        }
        records.push((seq, batch));
        at += size;
    }
    Ok(records)
}

/// Public counters a snapshot resumes: everything except the table cells.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SnapMeta {
    /// First WAL sequence number *not* covered by this snapshot (equals
    /// the store's epoch count at the snapshot point).
    pub next_seq: u64,
    /// The shard's merge counter (drives the shrink/snapshot cadence).
    pub merges: u64,
    /// Public upper bound on distinct live keys.
    pub live_upper: u64,
    /// Analytics snapshot as of the last merge.
    pub stats: StoreStats,
}

const SNAP_MAGIC: u64 = 0x444F_4253_4E41_5031; // "DOBSNAP1"

/// Write one shard's snapshot: meta + the packed table (32-byte cells,
/// the merge path's `TagCell` layout: `tag = key << 64` for present slots,
/// all-ones for fillers; `aux = val`). Temp-file + rename keeps the old
/// snapshot intact if the process dies mid-write.
pub(crate) fn write_snapshot(
    dir: &Path,
    shard: usize,
    meta: &SnapMeta,
    table: &[Rec],
) -> io::Result<()> {
    let mut buf = Vec::with_capacity(8 * 7 + 32 * table.len());
    buf.extend_from_slice(&SNAP_MAGIC.to_le_bytes());
    buf.extend_from_slice(&meta.next_seq.to_le_bytes());
    buf.extend_from_slice(&meta.merges.to_le_bytes());
    buf.extend_from_slice(&meta.live_upper.to_le_bytes());
    buf.extend_from_slice(&meta.stats.count.to_le_bytes());
    buf.extend_from_slice(&meta.stats.sum.to_le_bytes());
    buf.extend_from_slice(&(table.len() as u64).to_le_bytes());
    for r in table {
        let tag: u128 = if r.present {
            (r.key as u128) << 64
        } else {
            u128::MAX
        };
        buf.extend_from_slice(&tag.to_le_bytes());
        buf.extend_from_slice(&(r.val as u128).to_le_bytes());
    }
    buf.extend_from_slice(&fnv1a(&buf).to_le_bytes());

    let tmp = dir.join(format!("snap-{shard}.tmp"));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&buf)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, snapshot_path(dir, shard))
}

/// Read one shard's snapshot; `Ok(None)` when the file does not exist. A
/// present-but-corrupt snapshot is a hard error (its WAL prefix was
/// already truncated, so silently starting empty would lose data).
pub(crate) fn read_snapshot(dir: &Path, shard: usize) -> io::Result<Option<(SnapMeta, Vec<Rec>)>> {
    let bytes = match std::fs::read(snapshot_path(dir, shard)) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let corrupt = |what: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("snapshot for shard {shard} is corrupt: {what}"),
        )
    };
    if bytes.len() < 8 * 8 {
        return Err(corrupt("too short"));
    }
    let word = |i: usize| u64::from_le_bytes(bytes[8 * i..8 * (i + 1)].try_into().unwrap());
    if word(0) != SNAP_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let cap = word(6) as usize;
    let total = 8 * 7 + 32 * cap + 8;
    if cap > MAX_CLASS || bytes.len() != total {
        return Err(corrupt("bad length"));
    }
    if fnv1a(&bytes[..total - 8]) != u64::from_le_bytes(bytes[total - 8..].try_into().unwrap()) {
        return Err(corrupt("checksum mismatch"));
    }
    let meta = SnapMeta {
        next_seq: word(1),
        merges: word(2),
        live_upper: word(3),
        stats: StoreStats {
            count: word(4),
            sum: word(5),
        },
    };
    let mut table = Vec::with_capacity(cap);
    let mut o = 8 * 7;
    for _ in 0..cap {
        let tag = u128::from_le_bytes(bytes[o..o + 16].try_into().unwrap());
        let aux = u128::from_le_bytes(bytes[o + 16..o + 32].try_into().unwrap());
        table.push(if tag == u128::MAX {
            Rec::default()
        } else {
            Rec {
                present: true,
                key: (tag >> 64) as u64,
                val: aux as u64,
            }
        });
        o += 32;
    }
    Ok(Some((meta, table)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::kind;

    fn batch(n: u64) -> Vec<FlatOp> {
        (0..n)
            .map(|i| FlatOp {
                kind: kind::PUT,
                key: i,
                val: i * 10,
            })
            .collect()
    }

    #[test]
    fn wal_roundtrips_records() {
        let dir = std::env::temp_dir().join(format!("dob_wal_unit_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = wal_path(&dir, 0);
        let mut w = Wal::open(&path).unwrap();
        w.append(0, &batch(8)).unwrap();
        w.append(1, &batch(16)).unwrap();
        let recs = read_wal(&path).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].0, 0);
        assert_eq!(recs[1].1.len(), 16);
        assert_eq!(recs[1].1[3].val, 30);
        // Record sizes are a function of the class alone.
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            (record_size(8) + record_size(16)) as u64
        );
        w.truncate().unwrap();
        assert!(read_wal(&path).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_appends_stay_readable() {
        let dir = std::env::temp_dir().join(format!("dob_wal_group_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = wal_path(&dir, 0);
        // Cadence 0 is clamped to 1; a cadence larger than the append
        // count leaves records in the page cache but still readable.
        let mut w = Wal::open_with(&path, 0).unwrap();
        w.append(0, &batch(8)).unwrap();
        drop(w);
        let mut w = Wal::open_with(&path, 4).unwrap();
        w.append(1, &batch(8)).unwrap();
        w.append(2, &batch(8)).unwrap();
        w.sync().unwrap();
        assert_eq!(read_wal(&path).unwrap().len(), 3);
        w.truncate().unwrap();
        assert!(read_wal(&path).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_cleanly() {
        let dir = std::env::temp_dir().join(format!("dob_wal_torn_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = wal_path(&dir, 0);
        let mut w = Wal::open(&path).unwrap();
        w.append(0, &batch(8)).unwrap();
        w.append(1, &batch(8)).unwrap();
        // Tear the second record mid-payload.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len((record_size(8) + 30) as u64).unwrap();
        let recs = read_wal(&path).unwrap();
        assert_eq!(recs.len(), 1, "torn tail must be ignored");
        // A flipped byte in the tail record is equally dropped.
        drop(f);
        let mut w = Wal::open(&path).unwrap();
        // Re-extend with a clean record, then corrupt its checksum region.
        w.append(1, &batch(8)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(read_wal(&path).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_roundtrips_and_rejects_corruption() {
        let dir = std::env::temp_dir().join(format!("dob_snap_unit_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let table = vec![
            Rec {
                present: true,
                key: 3,
                val: 33,
            },
            Rec::default(),
        ];
        let meta = SnapMeta {
            next_seq: 5,
            merges: 4,
            live_upper: 2,
            stats: StoreStats { count: 1, sum: 33 },
        };
        write_snapshot(&dir, 0, &meta, &table).unwrap();
        let (m, t) = read_snapshot(&dir, 0).unwrap().unwrap();
        assert_eq!(m.next_seq, 5);
        assert_eq!(m.stats, meta.stats);
        assert!(t[0].present && t[0].key == 3 && t[0].val == 33);
        assert!(!t[1].present);
        assert!(read_snapshot(&dir, 1).unwrap().is_none());
        // Corruption is a hard error, never a silent empty store.
        let path = snapshot_path(&dir, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_snapshot(&dir, 0).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
