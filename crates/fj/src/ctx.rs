//! The execution-context abstraction shared by every algorithm in this
//! workspace.
//!
//! The paper's model (§2.1, §A.2) charges three costs to a binary fork-join
//! algorithm: total *work*, *span* (critical-path length), and sequential
//! *cache complexity*. Rather than writing each algorithm three times, we
//! write it once against [`Ctx`] and plug in one of three executors:
//!
//! * [`crate::SeqCtx`] — plain sequential execution, zero accounting;
//! * [`crate::Pool`] — real parallel execution under randomized work
//!   stealing (the `join` of the two closures may run on different cores);
//! * `metrics::MeterCtx` — sequential instrumented execution that counts
//!   work, computes span through the fork-join recursion, simulates an
//!   ideal LRU cache, and records the address trace the paper's adversary
//!   observes (Definition 1).
//!
//! `work` and `touch` are deliberately no-ops on the non-metered executors
//! so the abstraction costs nothing in release builds.

use crate::task::Deferred;
use std::panic::{self, AssertUnwindSafe};

/// Identifier of a logical memory buffer registered with the context.
///
/// The value is the buffer's base address in *words* inside the context's
/// flat logical address space. Non-metered contexts hand out `BufId(0)` for
/// everything and ignore subsequent `touch` calls.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BufId(pub u64);

/// Kind of memory access, as visible to the adversary of Definition 1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Access {
    Read,
    Write,
}

/// Execution context for binary fork-join algorithms.
///
/// Algorithms must only express parallelism through [`Ctx::join`] (and the
/// helpers in [`crate::par`], which bottom out in `join`); this is exactly
/// the binary fork-join model of the paper: forks are binary, and the only
/// synchronization points are joins, which are properly nested.
pub trait Ctx: Sync {
    /// Fork two tasks that may run in parallel and join on both results.
    ///
    /// `a` and `b` receive the context again so nested forks keep working
    /// regardless of which worker executes them.
    fn join<RA, RB>(
        &self,
        a: impl FnOnce(&Self) -> RA + Send,
        b: impl FnOnce(&Self) -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send;

    /// [`join`](Ctx::join) with *placement hints*: `hint_a`/`hint_b` name
    /// the executor slot (worker index, modulo pool size) that should
    /// preferably run each side. Hints are pure scheduling advice — they
    /// never affect results, and executors are free to ignore them (the
    /// default does exactly that, so sequential and metered contexts keep
    /// their fork structure, and hence their adversary trace, unchanged).
    /// The pool executor routes hinted tasks to the named worker's inbox so
    /// repeated calls with the same hints land on the same core — this is
    /// what keeps shard *i*'s table hot in core *i*'s cache across store
    /// epochs. Hints must be derived from *public* values only (sizes,
    /// indices), exactly like the fork structure itself.
    fn join_hint<RA, RB>(
        &self,
        _hint_a: usize,
        _hint_b: usize,
        a: impl FnOnce(&Self) -> RA + Send,
        b: impl FnOnce(&Self) -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        self.join(a, b)
    }

    /// Account `n` units of work (each unit also contributes one step of
    /// sequential depth on the current path).
    #[inline(always)]
    fn work(&self, _n: u64) {}

    /// Record an access of `len` contiguous words starting `off` words into
    /// buffer `buf`. Feeds the cache simulator and the adversary trace on
    /// metered contexts; free elsewhere.
    #[inline(always)]
    fn touch(&self, _buf: BufId, _off: u64, _len: u64, _kind: Access) {}

    /// Register a logical buffer of `len` words, returning its id.
    ///
    /// Metered contexts lay buffers out disjointly (block-aligned) so the
    /// cache simulator sees a faithful address space.
    #[inline(always)]
    fn register(&self, _len: u64) -> BufId {
        BufId(0)
    }

    /// True when running under a metering executor. Algorithms may use this
    /// to skip building debug-only structures, never to change their
    /// *access pattern* (that would invalidate the obliviousness argument).
    #[inline(always)]
    fn is_metered(&self) -> bool {
        false
    }

    /// Bump a semantic counter (see [`counters`]). No-op unless metered.
    #[inline(always)]
    fn count(&self, _counter: usize, _n: u64) {}

    /// Hand `f` to the executor as a **detached task** and return a
    /// [`Deferred`] handle for its result; the caller keeps running.
    ///
    /// Unlike [`join`](Ctx::join), the task is decoupled from the
    /// spawning frame (hence `'static`): it may still be running after
    /// this call returns, and the handle may outlive the frame. The pool
    /// executor queues the task for its workers; executors without
    /// background workers (sequential, metered) run `f` inline and return
    /// an already-resolved handle, so code written against this method
    /// stays executable — and meterable, with a deterministic trace — on
    /// every context. A panic inside `f` is captured and re-raised at
    /// [`Deferred::join`], never at the spawn site.
    fn spawn_detached<R, F>(&self, f: F) -> Deferred<R>
    where
        R: Send + 'static,
        F: FnOnce(&Self) -> R + Send + 'static,
    {
        Deferred::ready_result(panic::catch_unwind(AssertUnwindSafe(|| f(self))))
    }

    /// Account `n` units of work performed by an embarrassingly parallel
    /// map (cost shape of a balanced fork tree: `n` work, `O(log n)`
    /// depth). Used for untracked CPU-side transforms whose real execution
    /// is data-parallel; metering executors add `n` work but only a
    /// logarithmic span contribution.
    #[inline(always)]
    fn charge_par(&self, _n: u64) {}
}

/// Indices for the semantic counters understood by metering executors.
pub mod counters {
    /// Comparator evaluations (compare-exchange gates).
    pub const COMPARISONS: usize = 0;
    /// Element moves (copies between memory slots).
    pub const MOVES: usize = 1;
    /// Complete sorting-subroutine invocations.
    pub const SORTS: usize = 2;
    /// Randomized retries (bin overflow, label collision, …).
    pub const RETRIES: usize = 3;
}

/// Reasonable default grain size for leaf-level parallel loops.
///
/// Small enough to expose parallelism on poly-log-size subproblems, large
/// enough that task overhead does not dominate.
pub const DEFAULT_GRAIN: usize = 1024;

/// Grain to use for parallel loops on this context: metered executors get
/// grain 1 so the measured span matches the model (where a fork costs
/// `O(1)`); real executors amortize task overhead with [`DEFAULT_GRAIN`].
/// The memory trace is identical either way — only the fork structure
/// differs, and it is input-independent in both schedules.
#[inline]
pub fn grain_for<C: Ctx>(c: &C) -> usize {
    if c.is_metered() {
        1
    } else {
        DEFAULT_GRAIN
    }
}
