//! Parallel-loop helpers built purely from binary `join`.
//!
//! Every helper expands into a balanced binary fork tree, so a loop over `n`
//! items contributes `O(log n)` to the span plus the per-leaf cost — the
//! standard "fork and join k tasks in a binary-tree fashion" convention the
//! paper uses throughout its pseudocode.

use crate::ctx::Ctx;

/// Parallel `for i in lo..hi { f(ctx, i) }` with sequential leaves of at
/// most `grain` iterations.
pub fn par_for<C: Ctx, F>(c: &C, lo: usize, hi: usize, grain: usize, f: &F)
where
    F: Fn(&C, usize) + Sync,
{
    let grain = grain.max(1);
    if hi <= lo {
        return;
    }
    if hi - lo <= grain {
        for i in lo..hi {
            f(c, i);
        }
    } else {
        let mid = lo + (hi - lo) / 2;
        c.join(
            |c| par_for(c, lo, mid, grain, f),
            |c| par_for(c, mid, hi, grain, f),
        );
    }
}

/// Parallel map-reduce over `lo..hi`: `reduce(map(lo), map(lo+1), …)`.
/// Returns `None` on an empty range. `reduce` must be associative.
pub fn par_reduce<C: Ctx, T, M, R>(
    c: &C,
    lo: usize,
    hi: usize,
    grain: usize,
    map: &M,
    reduce: &R,
) -> Option<T>
where
    T: Send,
    M: Fn(&C, usize) -> T + Sync,
    R: Fn(T, T) -> T + Sync,
{
    let grain = grain.max(1);
    if hi <= lo {
        return None;
    }
    if hi - lo <= grain {
        let mut acc = map(c, lo);
        for i in lo + 1..hi {
            acc = reduce(acc, map(c, i));
        }
        return Some(acc);
    }
    let mid = lo + (hi - lo) / 2;
    let (a, b) = c.join(
        |c| par_reduce(c, lo, mid, grain, map, reduce),
        |c| par_reduce(c, mid, hi, grain, map, reduce),
    );
    match (a, b) {
        (Some(a), Some(b)) => Some(reduce(a, b)),
        (Some(a), None) => Some(a),
        (None, Some(b)) => Some(b),
        (None, None) => None,
    }
}

/// Split `data` into `nchunks` nearly equal contiguous chunks (chunk `i`
/// covering `[i·len/n, (i+1)·len/n)`) and run `f(ctx, chunk_index, chunk)`
/// on each, in parallel.
pub fn par_chunks_mut<C: Ctx, T, F>(c: &C, data: &mut [T], nchunks: usize, f: &F)
where
    T: Send,
    F: Fn(&C, usize, &mut [T]) + Sync,
{
    let total = data.len();
    if total == 0 {
        return;
    }
    let nchunks = nchunks.clamp(1, total);

    fn go<C: Ctx, T: Send, F: Fn(&C, usize, &mut [T]) + Sync>(
        c: &C,
        data: &mut [T],
        first: usize,
        count: usize,
        total: usize,
        nchunks: usize,
        f: &F,
    ) {
        if count == 1 {
            f(c, first, data);
            return;
        }
        let left = count / 2;
        let abs_start = first * total / nchunks;
        let abs_mid = (first + left) * total / nchunks;
        let split = abs_mid - abs_start;
        let (lo, hi) = data.split_at_mut(split);
        c.join(
            |c| go(c, lo, first, left, total, nchunks, f),
            |c| go(c, hi, first + left, count - left, total, nchunks, f),
        );
    }

    go(c, data, 0, nchunks, total, nchunks, f);
}

/// Scoped parallel-for over two equal-length slices: run
/// `f(ctx, i, &mut a[i], &mut b[i])` for every `i`, forking in a balanced
/// binary tree (one leaf per element). The zip lets a task own *two*
/// pieces of per-index state — e.g. `dob-store` commits every shard in
/// parallel by zipping `&mut [Shard]` with the routed per-shard batches.
/// All borrows are plain slice splits, so the parallelism is scoped: the
/// call returns only after every leaf has run.
///
/// Meant for *coarse* per-element tasks (each leaf here is a whole shard
/// commit), so there is deliberately no grain: for fine-grained loops over
/// many elements use [`par_for`]/[`par_chunks_mut`], which amortize task
/// overhead with [`crate::grain_for`]-sized leaves.
pub fn par_zip_mut<C: Ctx, A, B, F>(c: &C, a: &mut [A], b: &mut [B], f: &F)
where
    A: Send,
    B: Send,
    F: Fn(&C, usize, &mut A, &mut B) + Sync,
{
    assert_eq!(a.len(), b.len(), "par_zip_mut slices must zip exactly");

    fn go<C: Ctx, A: Send, B: Send, F: Fn(&C, usize, &mut A, &mut B) + Sync>(
        c: &C,
        a: &mut [A],
        b: &mut [B],
        first: usize,
        f: &F,
    ) {
        match a.len() {
            0 => {}
            1 => f(c, first, &mut a[0], &mut b[0]),
            n => {
                let mid = n / 2;
                let (a0, a1) = a.split_at_mut(mid);
                let (b0, b1) = b.split_at_mut(mid);
                c.join(
                    move |c| go(c, a0, b0, first, f),
                    move |c| go(c, a1, b1, first + mid, f),
                );
            }
        }
    }

    go(c, a, b, 0, f)
}

/// [`par_zip_mut`] with *placement affinity*: leaf `i` carries the hint
/// that executor slot `i` should run it, via [`Ctx::join_hint`]. On the
/// pool this makes element `i`'s task land on worker `i % nthreads` every
/// call — `dob-store` commits shard *i* through this so the shard's table
/// stays hot in the same core's cache across epochs. On executors that
/// ignore hints (sequential, metered) it is exactly [`par_zip_mut`]: same
/// fork tree, same trace.
pub fn par_zip_mut_affine<C: Ctx, A, B, F>(c: &C, a: &mut [A], b: &mut [B], f: &F)
where
    A: Send,
    B: Send,
    F: Fn(&C, usize, &mut A, &mut B) + Sync,
{
    assert_eq!(
        a.len(),
        b.len(),
        "par_zip_mut_affine slices must zip exactly"
    );

    fn go<C: Ctx, A: Send, B: Send, F: Fn(&C, usize, &mut A, &mut B) + Sync>(
        c: &C,
        a: &mut [A],
        b: &mut [B],
        first: usize,
        f: &F,
    ) {
        match a.len() {
            0 => {}
            1 => f(c, first, &mut a[0], &mut b[0]),
            n => {
                let mid = n / 2;
                let (a0, a1) = a.split_at_mut(mid);
                let (b0, b1) = b.split_at_mut(mid);
                // Hint each half at its first element's slot; the leaves
                // refine the hint until element i is pinned to slot i.
                c.join_hint(
                    first,
                    first + mid,
                    move |c| go(c, a0, b0, first, f),
                    move |c| go(c, a1, b1, first + mid, f),
                );
            }
        }
    }

    go(c, a, b, 0, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SeqCtx;

    #[test]
    fn par_reduce_sums() {
        let c = SeqCtx::new();
        let s = par_reduce(&c, 0, 1000, 7, &|_, i| i as u64, &|a, b| a + b);
        assert_eq!(s, Some(499_500));
    }

    #[test]
    fn par_reduce_empty_is_none() {
        let c = SeqCtx::new();
        assert_eq!(par_reduce(&c, 5, 5, 1, &|_, i| i, &|a, _| a), None);
    }

    #[test]
    fn par_for_visits_all() {
        let c = SeqCtx::new();
        let mut seen = vec![false; 100];
        let cell = std::sync::Mutex::new(&mut seen);
        par_for(&c, 0, 100, 3, &|_, i| {
            cell.lock().unwrap()[i] = true;
        });
        assert!(seen.iter().all(|&b| b));
    }
}

#[cfg(test)]
mod chunk_tests {
    use super::*;
    use crate::pool::Pool;
    use crate::seq::SeqCtx;

    #[test]
    fn par_chunks_mut_covers_slice_with_balanced_chunks() {
        let c = SeqCtx::new();
        let mut v = vec![0u32; 103];
        par_chunks_mut(&c, &mut v, 7, &|_, idx, chunk| {
            for x in chunk.iter_mut() {
                *x = idx as u32 + 1;
            }
        });
        assert!(v.iter().all(|&x| (1..=7).contains(&x)));
        // Balanced: chunk sizes differ by at most 1.
        let mut counts = [0usize; 8];
        for &x in &v {
            counts[x as usize] += 1;
        }
        let sizes: Vec<usize> = counts[1..=7].to_vec();
        let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(mx - mn <= 1, "sizes {sizes:?}");
    }

    #[test]
    fn par_chunks_mut_more_chunks_than_items() {
        let c = SeqCtx::new();
        let mut v = vec![0u8; 3];
        par_chunks_mut(&c, &mut v, 10, &|_, _, chunk| {
            for x in chunk.iter_mut() {
                *x += 1;
            }
        });
        assert_eq!(v, vec![1, 1, 1]);
    }

    #[test]
    fn par_chunks_mut_parallel_disjointness() {
        let pool = Pool::new(4);
        let mut v = vec![0u64; 10_000];
        pool.run(|p| {
            par_chunks_mut(p, &mut v, 64, &|_, _, chunk| {
                for x in chunk.iter_mut() {
                    *x += 1;
                }
            });
        });
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn par_zip_mut_pairs_indices() {
        let c = SeqCtx::new();
        let mut a: Vec<u64> = (0..37).collect();
        let mut b = vec![0u64; 37];
        par_zip_mut(&c, &mut a, &mut b, &|_, i, x, y| {
            *x += 1;
            *y = i as u64 * 10;
        });
        assert!(a.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));
        assert!(b.iter().enumerate().all(|(i, &y)| y == i as u64 * 10));
    }

    #[test]
    fn par_zip_mut_runs_on_the_pool() {
        let pool = Pool::new(4);
        let mut a = vec![1u64; 64];
        let mut b: Vec<Vec<u64>> = (0..64).map(|i| vec![i]).collect();
        pool.run(|p| {
            par_zip_mut(p, &mut a, &mut b, &|_, i, x, ys| {
                *x += ys[0];
                ys.push(i as u64);
            });
        });
        assert!(a.iter().enumerate().all(|(i, &x)| x == 1 + i as u64));
        assert!(b
            .iter()
            .enumerate()
            .all(|(i, ys)| ys == &[i as u64, i as u64]));
    }

    #[test]
    fn par_zip_mut_affine_matches_par_zip_mut() {
        let c = SeqCtx::new();
        let mut a: Vec<u64> = (0..37).collect();
        let mut b = vec![0u64; 37];
        par_zip_mut_affine(&c, &mut a, &mut b, &|_, i, x, y| {
            *x += 1;
            *y = i as u64 * 10;
        });
        assert!(a.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));
        assert!(b.iter().enumerate().all(|(i, &y)| y == i as u64 * 10));
    }

    #[test]
    fn par_zip_mut_affine_on_pinned_pool() {
        let pool = Pool::pinned(4);
        let mut a = vec![0u64; 16];
        let mut b = vec![0u64; 16];
        pool.run(|p| {
            par_zip_mut_affine(p, &mut a, &mut b, &|_, i, x, y| {
                *x = i as u64;
                *y = fj_worker_or_max();
            });
        });
        assert!(a.iter().enumerate().all(|(i, &x)| x == i as u64));
        // Every leaf ran on *some* pool worker (affinity is advice, but
        // execution always happens inside the pool).
        assert!(b.iter().all(|&w| w < 4));
    }

    fn fj_worker_or_max() -> u64 {
        crate::pool::current_worker_index()
            .map(|i| i as u64)
            .unwrap_or(u64::MAX)
    }

    #[test]
    fn par_zip_mut_empty_is_noop() {
        let c = SeqCtx::new();
        let mut a: Vec<u8> = vec![];
        let mut b: Vec<u8> = vec![];
        par_zip_mut(&c, &mut a, &mut b, &|_, _, _, _| unreachable!());
    }

    #[test]
    fn deeply_nested_joins_do_not_overflow_reasonable_depth() {
        let pool = Pool::new(2);
        fn deep(c: &Pool, d: u32) -> u32 {
            if d == 0 {
                return 0;
            }
            let (a, _) = c.join(|c| deep(c, d - 1), |_| 0u32);
            a + 1
        }
        assert_eq!(pool.run(|p| deep(p, 500)), 500);
    }
}
