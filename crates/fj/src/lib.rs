//! # fj — a binary fork-join runtime
//!
//! This crate is the computation-model substrate for the reproduction of
//! *Data Oblivious Algorithms for Multicores* (Ramachandran & Shi,
//! SPAA 2021). The paper's algorithms are stated in the **binary fork-join
//! model** (§2.1, §A.2): parallelism is expressed exclusively through paired
//! binary `fork`/`join` operations, and the scheduler is randomized work
//! stealing in the style of Blumofe–Leiserson.
//!
//! The crate provides:
//!
//! * [`Ctx`] — the execution-context trait every algorithm in the workspace
//!   is written against (fork-join plus cost-accounting hooks);
//! * [`SeqCtx`] — sequential executor;
//! * [`Pool`] — a work-stealing thread pool (Chase–Lev deques via
//!   `crossbeam`, LIFO owner side), hardware-shaped: optionally pinned
//!   workers ([`topo`]), nearest-neighbor wake/steal order, and affine
//!   inboxes behind [`Ctx::join_hint`];
//! * [`par`] — parallel loop/reduce helpers that expand into balanced
//!   binary fork trees.
//!
//! Detached tasks ([`Ctx::spawn_detached`], joined through [`Deferred`])
//! carry the store's pipelined epoch commits. Dropping a [`Pool`] is a
//! barrier for them: every spawned-but-unfinished detached task runs to
//! completion before the workers terminate, which is what lets a durable
//! store acknowledge an epoch as soon as its WAL record is written (see
//! `dob-store`'s durability docs).

mod ctx;
pub mod par;
mod pool;
mod seq;
mod task;
pub mod topo;

pub use ctx::{counters, grain_for, Access, BufId, Ctx, DEFAULT_GRAIN};
pub use par::{par_chunks_mut, par_for, par_reduce, par_zip_mut, par_zip_mut_affine};
pub use pool::{current_worker_index, Pool, PoolConfig};
pub use seq::SeqCtx;
pub use task::Deferred;
