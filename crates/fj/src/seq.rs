//! Trivial sequential executor.

use crate::ctx::Ctx;

/// Runs every fork-join program sequentially (`a` then `b`) with no
/// accounting at all. This is the executor of choice for unit tests and for
/// measuring single-thread wall-clock baselines.
#[derive(Default, Debug, Clone, Copy)]
pub struct SeqCtx;

impl SeqCtx {
    pub fn new() -> Self {
        SeqCtx
    }
}

impl Ctx for SeqCtx {
    #[inline]
    fn join<RA, RB>(
        &self,
        a: impl FnOnce(&Self) -> RA + Send,
        b: impl FnOnce(&Self) -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        (a(self), b(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_runs_both_closures_in_order() {
        let c = SeqCtx::new();
        let (a, b) = c.join(|_| 1u32, |_| "two");
        assert_eq!(a, 1);
        assert_eq!(b, "two");
    }

    #[test]
    fn nested_joins() {
        let c = SeqCtx::new();
        let ((a, b), (x, y)) = c.join(|c| c.join(|_| 1, |_| 2), |c| c.join(|_| 3, |_| 4));
        assert_eq!([a, b, x, y], [1, 2, 3, 4]);
    }
}
