//! Work-stealing thread pool implementing the binary fork-join model,
//! shaped to the hardware it runs on.
//!
//! The design follows the classic Cilk/rayon architecture the paper's model
//! assumes (§A.2, [BL99]): each worker owns a LIFO deque of jobs; `join`
//! pushes the second task, runs the first inline, and then either pops the
//! second task back (the common, allocation-free fast path) or *steals other
//! work* while waiting for a thief to finish it. On top of that baseline the
//! pool is **topology-aware** in the `sched-local` style:
//!
//! * **Pinned workers.** With [`PoolConfig::pin`] set, worker *i* pins
//!   itself to core *i* (or to `affinity[i]`) via `sched_setaffinity`, so a
//!   worker's L1/L2 contents survive across epochs instead of following the
//!   OS scheduler around the die. Pinning is best-effort: failure degrades
//!   to an unpinned worker with a one-time warning (see [`crate::topo`]).
//! * **Locality-aware wake.** Every worker has its own sleep slot; a
//!   notification wakes the *nearest sleeping neighbor* (smallest ring
//!   distance from the notifier) rather than broadcasting to a global
//!   condvar — on a pinned pool ring distance approximates cache distance.
//! * **Nearest-first stealing.** An idle worker scans victims by increasing
//!   ring distance (random side first at each distance) instead of in
//!   uniformly random order, so spilled work is picked up by the core most
//!   likely to share cache with the victim.
//! * **Affine inboxes.** [`Ctx::join_hint`] routes tasks to a named
//!   worker's inbox. Workers drain their inbox before touching the global
//!   injector, and inboxes are stolen from only as a last resort, so a
//!   hinted task runs on its target worker whenever that worker is live —
//!   this is what keeps shard *i*'s table hot in core *i*'s cache across
//!   `dob-store` epochs.
//! * **Bounded local deques.** A deque that outgrows
//!   [`LOCAL_QUEUE_CAP`] spills to the global injector, bounding the
//!   worst-case burst a single victim has to serve.
//!
//! Every scheduling decision above is a function of worker indices, queue
//! occupancy and public sizes — never of element *values* — so the
//! schedule leaks nothing the fork structure itself does not (DESIGN.md
//! §12 gives the full argument).
//!
//! # Safety
//!
//! Jobs are type-erased pointers into the stack frame of the `join` (or
//! `run`) call that created them ([`StackJob`]). This is sound because the
//! creating frame never returns before the job has executed: `join` loops
//! until the job's latch is set (even when the first closure panics), and
//! `run` blocks on a mutex-based latch. Results travel through an
//! `UnsafeCell` guarded by the latch's release/acquire pair.

use crate::ctx::Ctx;
use crate::task::{Deferred, TaskState};
use crate::topo;
use crossbeam::deque::{Injector, Steal, Stealer, Worker as Deque};
use parking_lot::{Condvar, Mutex};
use std::cell::{Cell, UnsafeCell};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Once, OnceLock};
use std::thread;
use std::time::Duration;

/// Local deque occupancy beyond which freshly forked jobs spill to the
/// global injector. Fork trees are depth-bounded so this is rarely hit; it
/// caps the burst a single victim can accumulate.
const LOCAL_QUEUE_CAP: usize = 256;

// --------------------------------------------------------------------------
// Latches
// --------------------------------------------------------------------------

/// A one-shot flag set by the executor of a job and probed by its owner.
struct SpinLatch {
    set: AtomicBool,
}

impl SpinLatch {
    fn new() -> Self {
        SpinLatch {
            set: AtomicBool::new(false),
        }
    }

    #[inline]
    fn probe(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }

    #[inline]
    fn set(&self) {
        self.set.store(true, Ordering::Release);
    }
}

/// A blocking latch for threads that are not pool workers.
struct LockLatch {
    m: Mutex<bool>,
    cv: Condvar,
}

impl LockLatch {
    fn new() -> Self {
        LockLatch {
            m: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn set(&self) {
        let mut done = self.m.lock();
        *done = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut done = self.m.lock();
        while !*done {
            self.cv.wait(&mut done);
        }
    }
}

// --------------------------------------------------------------------------
// Jobs
// --------------------------------------------------------------------------

/// Type-erased pointer to a job living on some `join`/`run` stack frame.
#[derive(Clone, Copy)]
struct JobRef {
    data: *const (),
    exec: unsafe fn(*const ()),
}

// SAFETY: a JobRef is only ever executed once, and the frame it points to
// outlives the execution (see module docs).
unsafe impl Send for JobRef {}

enum JobLatch {
    Spin(SpinLatch),
    Lock(LockLatch),
}

impl JobLatch {
    fn set(&self) {
        match self {
            JobLatch::Spin(l) => l.set(),
            JobLatch::Lock(l) => l.set(),
        }
    }

    fn as_spin(&self) -> &SpinLatch {
        match self {
            JobLatch::Spin(l) => l,
            JobLatch::Lock(_) => unreachable!("spin latch expected"),
        }
    }

    fn as_lock(&self) -> &LockLatch {
        match self {
            JobLatch::Lock(l) => l,
            JobLatch::Spin(_) => unreachable!("lock latch expected"),
        }
    }
}

struct StackJob<F, R> {
    f: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<thread::Result<R>>>,
    latch: JobLatch,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R,
{
    fn new(f: F, latch: JobLatch) -> Self {
        StackJob {
            f: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(None),
            latch,
        }
    }

    /// SAFETY: caller must guarantee the job is executed at most once and
    /// that `self` outlives the execution.
    unsafe fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            exec: Self::execute,
        }
    }

    unsafe fn execute(data: *const ()) {
        let this = &*(data as *const Self);
        let f = (*this.f.get()).take().expect("job executed twice");
        let result = panic::catch_unwind(AssertUnwindSafe(f));
        *this.result.get() = Some(result);
        this.latch.set();
    }

    /// SAFETY: only call after the latch has been set (or after executing
    /// the job on the current thread).
    unsafe fn take_result(&self) -> R {
        match (*self.result.get()).take().expect("job result missing") {
            Ok(r) => r,
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

/// A heap-owned job for detached tasks: unlike [`StackJob`], its lifetime
/// is decoupled from any stack frame, so it can sit in the injector after
/// the spawning call has returned.
fn heap_job(f: Box<dyn FnOnce() + Send>) -> JobRef {
    unsafe fn execute(data: *const ()) {
        // SAFETY: `data` came from `Box::into_raw` below and each JobRef is
        // executed exactly once, so reconstituting the box is sound.
        let f = unsafe { Box::from_raw(data as *mut Box<dyn FnOnce() + Send>) };
        f();
    }
    JobRef {
        data: Box::into_raw(Box::new(f)) as *const (),
        exec: execute,
    }
}

// --------------------------------------------------------------------------
// Sleep machinery: one slot per worker, nearest-neighbor wake
// --------------------------------------------------------------------------

/// Per-worker sleep slot. `asleep` is the cheap outside probe; the
/// `pending` flag under the mutex closes the wake/sleep race (a wake that
/// lands between the probe and the wait is not lost), and the 1 ms timeout
/// bounds the damage of any remaining missed edge.
struct Sleeper {
    m: Mutex<bool>,
    cv: Condvar,
    asleep: AtomicBool,
}

impl Sleeper {
    fn new() -> Self {
        Sleeper {
            m: Mutex::new(false),
            cv: Condvar::new(),
            asleep: AtomicBool::new(false),
        }
    }
}

// --------------------------------------------------------------------------
// Registry and workers
// --------------------------------------------------------------------------

struct Registry {
    injector: Injector<JobRef>,
    stealers: Vec<Stealer<JobRef>>,
    /// Per-worker affine inboxes: tasks placed by [`Ctx::join_hint`].
    /// Drained by their owner before the global injector; stolen by others
    /// only as a last resort.
    inboxes: Vec<Injector<JobRef>>,
    sleepers: Vec<Sleeper>,
    terminate: AtomicBool,
    nthreads: usize,
    /// Worker→CPU map; `None` entries run unpinned.
    pin_map: Vec<Option<usize>>,
    /// Workers whose `sched_setaffinity` actually succeeded (diagnostics).
    pinned_ok: AtomicUsize,
    /// Detached tasks spawned but not yet finished. The owning `Pool`'s
    /// drop drains this to zero before telling workers to terminate, so a
    /// queued detached job is never abandoned un-run.
    detached: AtomicUsize,
}

impl Registry {
    /// Wake worker `target` if it is asleep. Returns whether a wake was
    /// delivered.
    fn wake(&self, target: usize) -> bool {
        let s = &self.sleepers[target];
        if !s.asleep.load(Ordering::SeqCst) {
            return false;
        }
        let mut pending = s.m.lock();
        *pending = true;
        s.cv.notify_one();
        true
    }

    /// Wake the sleeping worker nearest to `origin` on the worker ring
    /// (`origin` itself is probed first — free when the caller *is* that
    /// worker, since it is awake). Ring distance approximates cache
    /// distance on a pinned pool, so new work lands next to its producer.
    fn notify_near(&self, origin: usize) {
        let n = self.nthreads;
        let origin = origin % n;
        if self.wake(origin) {
            return;
        }
        let mut d = 1;
        while d <= n / 2 {
            if self.wake((origin + d) % n) || self.wake((origin + n - d) % n) {
                return;
            }
            d += 1;
        }
    }

    fn notify_all(&self) {
        for i in 0..self.nthreads {
            self.wake(i);
        }
    }

    /// Put worker `me` to sleep until woken or until `has_work` might be
    /// true again (re-checked under the lock; 1 ms timeout as backstop).
    fn sleep_worker(&self, me: usize, has_work: impl Fn() -> bool) {
        let s = &self.sleepers[me];
        s.asleep.store(true, Ordering::SeqCst);
        {
            let mut pending = s.m.lock();
            if !*pending && !has_work() {
                s.cv.wait_for(&mut pending, Duration::from_millis(1));
            }
            *pending = false;
        }
        s.asleep.store(false, Ordering::SeqCst);
    }
}

struct WorkerThread {
    deque: Deque<JobRef>,
    index: usize,
    registry: *const Registry,
    rng: Cell<u64>,
}

thread_local! {
    static WORKER: Cell<*const WorkerThread> = const { Cell::new(std::ptr::null()) };
}

/// Index of the pool worker running the current thread, if any.
///
/// This is what keys per-core resources *outside* the pool — most notably
/// `metrics::ScratchPool`'s per-worker freelist lanes — so a worker keeps
/// hitting the same lane (and on a pinned pool, the same core's cache)
/// without threading the index through every call.
pub fn current_worker_index() -> Option<usize> {
    let wt = WorkerThread::current();
    // SAFETY: non-null worker pointers are valid for the thread's life.
    (!wt.is_null()).then(|| unsafe { (*wt).index })
}

impl WorkerThread {
    #[inline]
    fn current() -> *const WorkerThread {
        WORKER.with(|w| w.get())
    }

    fn next_rand(&self) -> u64 {
        // xorshift64*: cheap, good-enough tie-breaking.
        let mut x = self.rng.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng.set(x);
        x
    }

    fn registry(&self) -> &Registry {
        // SAFETY: the registry outlives every worker (workers are joined in
        // Pool::drop while the Arc is still alive).
        unsafe { &*self.registry }
    }

    fn try_steal(source: &Stealer<JobRef>) -> Option<JobRef> {
        loop {
            match source.steal() {
                Steal::Success(job) => return Some(job),
                Steal::Empty => return None,
                Steal::Retry => continue,
            }
        }
    }

    fn try_inbox(inbox: &Injector<JobRef>) -> Option<JobRef> {
        loop {
            match inbox.steal() {
                Steal::Success(job) => return Some(job),
                Steal::Empty => return None,
                Steal::Retry => continue,
            }
        }
    }

    /// Steal one job: own inbox (affine work addressed to us), then the
    /// global injector, then victims' deques by increasing ring distance,
    /// then — only if every deque is dry — victims' inboxes, so hinted
    /// work migrates off its target core only when nothing else runs.
    fn steal(&self) -> Option<JobRef> {
        let reg = self.registry();
        if let Some(job) = Self::try_inbox(&reg.inboxes[self.index]) {
            return Some(job);
        }
        loop {
            match reg.injector.steal_batch_and_pop(&self.deque) {
                Steal::Success(job) => return Some(job),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
        let n = reg.stealers.len();
        for victim in self.victim_order(n) {
            if let Some(job) = Self::try_steal(&reg.stealers[victim]) {
                return Some(job);
            }
        }
        for victim in self.victim_order(n) {
            if let Some(job) = Self::try_inbox(&reg.inboxes[victim]) {
                return Some(job);
            }
        }
        None
    }

    /// Victims ordered by increasing ring distance from this worker, the
    /// side at each distance chosen by a coin flip (keeps symmetric
    /// neighbors from always being raided in the same order).
    fn victim_order(&self, n: usize) -> impl Iterator<Item = usize> + '_ {
        let me = self.index;
        (1..=n / 2).flat_map(move |d| {
            let (a, b) = ((me + d) % n, (me + n - d) % n);
            let (first, second) = if self.next_rand() & 1 == 0 {
                (a, b)
            } else {
                (b, a)
            };
            [first, second]
                .into_iter()
                .filter(move |&v| v != me)
                // The two sides coincide when 2d == n; visit once.
                .enumerate()
                .filter(move |&(i, v)| i == 0 || v != first)
                .map(|(_, v)| v)
        })
    }

    fn find_work(&self) -> Option<JobRef> {
        self.deque.pop().or_else(|| self.steal())
    }
}

fn worker_main(registry: Arc<Registry>, index: usize, deque: Deque<JobRef>) {
    if let Some(cpu) = registry.pin_map[index] {
        if topo::pin_current_thread(cpu).is_ok() {
            if topo::supported() {
                registry.pinned_ok.fetch_add(1, Ordering::SeqCst);
            }
        } else {
            static PIN_WARN: Once = Once::new();
            PIN_WARN.call_once(|| {
                eprintln!(
                    "fj: sched_setaffinity(cpu {cpu}) failed; \
                     continuing with unpinned worker(s) (warned once)"
                );
            });
        }
    }

    let wt = WorkerThread {
        deque,
        index,
        registry: Arc::as_ptr(&registry),
        rng: Cell::new(0x9E37_79B9_7F4A_7C15 ^ ((index as u64 + 1) << 17)),
    };
    WORKER.with(|w| w.set(&wt as *const WorkerThread));

    while !registry.terminate.load(Ordering::Acquire) {
        if let Some(job) = wt.find_work() {
            unsafe { (job.exec)(job.data) };
        } else {
            let reg = &*registry;
            reg.sleep_worker(index, || {
                reg.terminate.load(Ordering::Acquire)
                    || !reg.injector.is_empty()
                    || reg.inboxes.iter().any(|ib| !ib.is_empty())
                    || reg
                        .stealers
                        .iter()
                        .enumerate()
                        .any(|(i, s)| i != index && !s.is_empty())
            });
        }
    }

    WORKER.with(|w| w.set(std::ptr::null()));
}

// --------------------------------------------------------------------------
// Pool
// --------------------------------------------------------------------------

/// How to build a [`Pool`]: thread count, pinning, and an explicit
/// worker→CPU map. [`PoolConfig::from_env`] reads the `DOB_*` knobs.
#[derive(Clone, Debug, Default)]
pub struct PoolConfig {
    /// Worker count; `None` = machine parallelism.
    pub threads: Option<usize>,
    /// Pin worker *i* to a core (see `affinity` for which).
    pub pin: bool,
    /// Explicit CPU list; worker *i* pins to `affinity[i % len]`. `None`
    /// with `pin` set pins worker *i* to core `i % online_cpus`.
    pub affinity: Option<Vec<usize>>,
}

impl PoolConfig {
    /// Read the environment knobs:
    ///
    /// * `DOB_THREADS=<n>` — worker count (CI runs a thread matrix).
    /// * `DOB_PIN=1|0` — pin workers to cores / force off.
    /// * `DOB_AFFINITY=<c0,c1,…>` — explicit CPU list (implies pinning
    ///   unless `DOB_PIN=0`).
    pub fn from_env() -> Self {
        let threads = std::env::var("DOB_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n: &usize| n >= 1);
        let affinity = std::env::var("DOB_AFFINITY").ok().and_then(|s| {
            let cpus: Vec<usize> = s
                .split(',')
                .map(str::trim)
                .filter(|t| !t.is_empty())
                .filter_map(|t| t.parse().ok())
                .collect();
            (!cpus.is_empty()).then_some(cpus)
        });
        let pin = match std::env::var("DOB_PIN").ok().as_deref() {
            Some("0") => false,
            Some(_) => true,
            None => affinity.is_some(),
        };
        PoolConfig {
            threads,
            pin,
            affinity,
        }
    }
}

/// A binary fork-join thread pool with locality-aware work stealing.
///
/// `Pool` implements [`Ctx`], so any algorithm written against the context
/// abstraction runs in parallel by passing `&pool`:
///
/// ```
/// use fj::{Ctx, Pool};
///
/// let pool = Pool::new(4);
/// let (a, b) = pool.join(|_| 1 + 1, |_| 2 + 2);
/// assert_eq!((a, b), (2, 4));
/// ```
pub struct Pool {
    registry: Arc<Registry>,
    handles: Mutex<Vec<thread::JoinHandle<()>>>,
    /// Only the pool that spawned the workers tears them down; non-owning
    /// handles (created for detached tasks) drop without side effects.
    owner: bool,
}

impl Pool {
    /// Spawn an unpinned pool with `nthreads` workers (at least 1).
    pub fn new(nthreads: usize) -> Self {
        Pool::with_config(PoolConfig {
            threads: Some(nthreads),
            ..PoolConfig::default()
        })
    }

    /// Spawn a pool of `nthreads` workers with worker *i* pinned to core
    /// `i % online_cpus` (best effort; see [`crate::topo`]).
    pub fn pinned(nthreads: usize) -> Self {
        Pool::with_config(PoolConfig {
            threads: Some(nthreads),
            pin: true,
            affinity: None,
        })
    }

    /// Spawn a pool from an explicit [`PoolConfig`].
    pub fn with_config(cfg: PoolConfig) -> Self {
        let nthreads = cfg.threads.unwrap_or_else(topo::online_cpus).max(1);
        let pin_map: Vec<Option<usize>> = (0..nthreads)
            .map(|i| {
                if !cfg.pin {
                    return None;
                }
                Some(match &cfg.affinity {
                    Some(cpus) => cpus[i % cpus.len()] % topo::MAX_CPUS,
                    None => i % topo::online_cpus(),
                })
            })
            .collect();
        let deques: Vec<Deque<JobRef>> = (0..nthreads).map(|_| Deque::new_lifo()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();
        let registry = Arc::new(Registry {
            injector: Injector::new(),
            stealers,
            inboxes: (0..nthreads).map(|_| Injector::new()).collect(),
            sleepers: (0..nthreads).map(|_| Sleeper::new()).collect(),
            terminate: AtomicBool::new(false),
            nthreads,
            pin_map,
            pinned_ok: AtomicUsize::new(0),
            detached: AtomicUsize::new(0),
        });
        let handles = deques
            .into_iter()
            .enumerate()
            .map(|(i, d)| {
                let reg = Arc::clone(&registry);
                thread::Builder::new()
                    .name(format!("fj-worker-{i}"))
                    .spawn(move || worker_main(reg, i, d))
                    .expect("failed to spawn fj worker")
            })
            .collect();
        Pool {
            registry,
            handles: Mutex::new(handles),
            owner: true,
        }
    }

    /// A non-owning handle on the same registry: detached tasks receive
    /// one as their `&Pool` context, so nested joins inside the task still
    /// resolve [`current_worker`](Pool::current_worker) against the right
    /// registry (the check is by registry pointer, which the handle
    /// shares). Dropping a handle never terminates the workers.
    fn handle(&self) -> Pool {
        Pool {
            registry: Arc::clone(&self.registry),
            handles: Mutex::new(Vec::new()),
            owner: false,
        }
    }

    /// A pool configured by the environment: `DOB_THREADS` sizes it (CI
    /// runs the suite under a thread-count matrix through it), `DOB_PIN` /
    /// `DOB_AFFINITY` control core pinning (see [`PoolConfig::from_env`]);
    /// unset variables fall back to the machine (`available_parallelism`,
    /// unpinned).
    pub fn with_default_threads() -> Self {
        Pool::with_config(PoolConfig::from_env())
    }

    /// Process-wide shared pool, created on first use.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(Pool::with_default_threads)
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.registry.nthreads
    }

    /// Whether this pool was configured to pin its workers.
    pub fn is_pinned(&self) -> bool {
        self.registry.pin_map.iter().any(Option::is_some)
    }

    /// Workers whose pin actually took effect (0 on unsupported platforms
    /// or after graceful degradation).
    pub fn pinned_workers(&self) -> usize {
        self.registry.pinned_ok.load(Ordering::SeqCst)
    }

    #[inline]
    fn current_worker(&self) -> Option<&WorkerThread> {
        let wt = WorkerThread::current();
        if wt.is_null() {
            return None;
        }
        // SAFETY: non-null worker pointers are valid for the thread's life.
        let wt = unsafe { &*wt };
        (std::ptr::eq(wt.registry, Arc::as_ptr(&self.registry))).then_some(wt)
    }

    /// Run `f` on a pool worker, blocking the calling thread until done.
    /// If already on a worker of this pool, runs inline.
    pub fn run<R: Send>(&self, f: impl FnOnce(&Pool) -> R + Send) -> R {
        if self.current_worker().is_some() {
            return f(self);
        }
        let job = StackJob::new(|| f(self), JobLatch::Lock(LockLatch::new()));
        // SAFETY: we block on the latch below, so the job outlives execution
        // and is executed exactly once.
        let job_ref = unsafe { job.as_job_ref() };
        self.registry.injector.push(job_ref);
        self.registry.notify_near(0);
        job.latch.as_lock().wait();
        unsafe { job.take_result() }
    }

    /// The wait side of a join: keep executing available work until
    /// `job_b`'s latch is set. `job_b` may sit in our deque, in a remote
    /// inbox, or already be running on a thief — all cases converge here.
    fn wait_for_job<F, R>(&self, wt: &WorkerThread, job_b: &StackJob<F, R>, job_ref: JobRef)
    where
        F: FnOnce() -> R,
    {
        let latch = job_b.latch.as_spin();
        while !latch.probe() {
            if let Some(job) = wt.deque.pop() {
                // With LIFO semantics this is either our own b or a job some
                // nested computation left behind; executing it inline is
                // always correct.
                unsafe { (job.exec)(job.data) };
                if std::ptr::eq(job.data, job_ref.data) {
                    break;
                }
            } else if let Some(job) = wt.steal() {
                unsafe { (job.exec)(job.data) };
            } else {
                std::hint::spin_loop();
            }
        }
    }

    fn join_worker<RA, RB>(
        &self,
        wt: &WorkerThread,
        a: impl FnOnce(&Self) -> RA + Send,
        b: impl FnOnce(&Self) -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        self.join_worker_to(wt, a, b, wt.index)
    }

    /// `join` with `b` placed at worker `target_b`: on our own deque when
    /// `target_b` is us (the classic pop-back fast path), otherwise in the
    /// target's affine inbox.
    fn join_worker_to<RA, RB>(
        &self,
        wt: &WorkerThread,
        a: impl FnOnce(&Self) -> RA + Send,
        b: impl FnOnce(&Self) -> RB + Send,
        target_b: usize,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        let job_b = StackJob::new(|| b(self), JobLatch::Spin(SpinLatch::new()));
        // SAFETY: this frame does not return before job_b has run (the wait
        // loop runs even when `a` panics), and job_b runs once: popped back,
        // stolen, or drained from an inbox — never twice (queue semantics).
        let job_ref = unsafe { job_b.as_job_ref() };
        if target_b != wt.index {
            self.registry.inboxes[target_b].push(job_ref);
        } else if wt.deque.len() >= LOCAL_QUEUE_CAP {
            // Bounded local deque: spill the overflow to the injector.
            self.registry.injector.push(job_ref);
        } else {
            wt.deque.push(job_ref);
        }
        self.registry.notify_near(target_b);

        let ra = panic::catch_unwind(AssertUnwindSafe(|| a(self)));

        self.wait_for_job(wt, &job_b, job_ref);

        let rb = unsafe { job_b.take_result() };
        match ra {
            Ok(ra) => (ra, rb),
            Err(payload) => panic::resume_unwind(payload),
        }
    }

    /// Both sides hinted away from this worker: ship both jobs to their
    /// target inboxes and service other work until both complete.
    fn join_both_shipped<RA, RB>(
        &self,
        wt: &WorkerThread,
        target_a: usize,
        a: impl FnOnce(&Self) -> RA + Send,
        target_b: usize,
        b: impl FnOnce(&Self) -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        let job_a = StackJob::new(|| a(self), JobLatch::Spin(SpinLatch::new()));
        let job_b = StackJob::new(|| b(self), JobLatch::Spin(SpinLatch::new()));
        // SAFETY: as in join_worker_to — this frame blocks below until both
        // latches are set, and each job executes exactly once.
        let ref_a = unsafe { job_a.as_job_ref() };
        let ref_b = unsafe { job_b.as_job_ref() };
        self.registry.inboxes[target_a].push(ref_a);
        self.registry.notify_near(target_a);
        self.registry.inboxes[target_b].push(ref_b);
        self.registry.notify_near(target_b);

        while !(job_a.latch.as_spin().probe() && job_b.latch.as_spin().probe()) {
            if let Some(job) = wt.find_work() {
                unsafe { (job.exec)(job.data) };
            } else {
                std::hint::spin_loop();
            }
        }
        // Both latches are set; panics (if any) re-raise here, after the
        // stack frames they point into are no longer shared.
        unsafe { (job_a.take_result(), job_b.take_result()) }
    }
}

impl Ctx for Pool {
    fn join<RA, RB>(
        &self,
        a: impl FnOnce(&Self) -> RA + Send,
        b: impl FnOnce(&Self) -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        match self.current_worker() {
            Some(wt) => self.join_worker(wt, a, b),
            // Calls from outside the pool enter it first; the nested join
            // then lands on a worker and takes the parallel path.
            None => self.run(move |p| p.join_worker(p.current_worker().unwrap(), a, b)),
        }
    }

    /// [`join`](Ctx::join) routed by placement hints: each side prefers the
    /// worker `hint % num_threads`. The side hinted at the current worker
    /// (or an arbitrary one, when neither matches) runs inline; remote
    /// sides go to their target's affine inbox.
    fn join_hint<RA, RB>(
        &self,
        hint_a: usize,
        hint_b: usize,
        a: impl FnOnce(&Self) -> RA + Send,
        b: impl FnOnce(&Self) -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        let n = self.registry.nthreads;
        let (ta, tb) = (hint_a % n, hint_b % n);
        match self.current_worker() {
            Some(wt) => {
                if ta == wt.index || ta == tb || n == 1 {
                    self.join_worker_to(wt, a, b, tb)
                } else if tb == wt.index {
                    let (rb, ra) = self.join_worker_to(wt, b, a, ta);
                    (ra, rb)
                } else {
                    self.join_both_shipped(wt, ta, a, tb, b)
                }
            }
            None => self.run(move |p| {
                let wt = p.current_worker().unwrap();
                if ta == wt.index || ta == tb || n == 1 {
                    p.join_worker_to(wt, a, b, tb)
                } else if tb == wt.index {
                    let (rb, ra) = p.join_worker_to(wt, b, a, ta);
                    (ra, rb)
                } else {
                    p.join_both_shipped(wt, ta, a, tb, b)
                }
            }),
        }
    }

    /// Queue `f` for the workers and return immediately. The task runs
    /// with a non-owning pool handle as its context, so it can fork
    /// freely; its panic (if any) is captured into the [`Deferred`] and
    /// re-raised at join.
    fn spawn_detached<R, F>(&self, f: F) -> Deferred<R>
    where
        R: Send + 'static,
        F: FnOnce(&Self) -> R + Send + 'static,
    {
        let state = Arc::new(TaskState::new());
        let task_state = Arc::clone(&state);
        let ctx = self.handle();
        let registry = Arc::clone(&self.registry);
        registry.detached.fetch_add(1, Ordering::SeqCst);
        let job: Box<dyn FnOnce() + Send> = Box::new(move || {
            let result = panic::catch_unwind(AssertUnwindSafe(|| f(&ctx)));
            // Publish the result before releasing the drop barrier: once
            // `detached` hits zero the owner may tear the pool down, and
            // joiners must already be able to observe completion.
            task_state.complete(result);
            let reg = &*ctx.registry;
            reg.detached.fetch_sub(1, Ordering::SeqCst);
            reg.notify_all();
        });
        self.registry.injector.push(heap_job(job));
        self.registry.notify_near(0);
        Deferred::from_task(state)
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        if !self.owner {
            return;
        }
        // Drop barrier: let every spawned-but-unfinished detached task run
        // to completion before workers terminate. Unjoined tasks are thus
        // never silently dropped, and a `Deferred` held past the pool's
        // life joins an already-completed slot. Durable stores lean on
        // this: a `PipelinedStore` appends an epoch's WAL record *before*
        // it spawns the detached commit task, and this barrier guarantees
        // the in-flight merge itself also completes on a graceful drop —
        // an acknowledged durable epoch is never lost to pool teardown
        // (see `tests/durability.rs`).
        while self.registry.detached.load(Ordering::SeqCst) > 0 {
            self.registry.notify_all();
            thread::yield_now();
        }
        self.registry.terminate.store(true, Ordering::Release);
        let handles = std::mem::take(&mut *self.handles.lock());
        for h in handles {
            // Workers wake at least every millisecond, observe `terminate`,
            // and exit.
            self.registry.notify_all();
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::par_for;
    use std::sync::atomic::AtomicU64;

    fn fib(c: &Pool, n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        if n < 12 {
            return fib_seq(n);
        }
        let (a, b) = c.join(|c| fib(c, n - 1), |c| fib(c, n - 2));
        a + b
    }

    fn fib_seq(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fib_seq(n - 1) + fib_seq(n - 2)
        }
    }

    #[test]
    fn join_from_external_thread() {
        let pool = Pool::new(4);
        let (a, b) = pool.join(|_| 21, |_| 2);
        assert_eq!(a * b, 42);
    }

    #[test]
    fn nested_parallel_fib() {
        let pool = Pool::new(4);
        assert_eq!(fib(&pool, 24), fib_seq(24));
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = Pool::new(1);
        assert_eq!(fib(&pool, 18), fib_seq(18));
    }

    #[test]
    fn pinned_pool_computes_correctly() {
        let pool = Pool::pinned(4);
        assert!(pool.is_pinned());
        assert_eq!(fib(&pool, 22), fib_seq(22));
        // Pinning is best-effort: on linux we normally expect success, but
        // a restrictive cpuset may legally leave workers unpinned.
        assert!(pool.pinned_workers() <= 4);
    }

    #[test]
    fn affinity_list_wraps_over_workers() {
        let pool = Pool::with_config(PoolConfig {
            threads: Some(3),
            pin: true,
            affinity: Some(vec![0]),
        });
        assert!(pool.is_pinned());
        assert_eq!(fib(&pool, 20), fib_seq(20));
    }

    #[test]
    fn join_hint_routes_and_returns_in_order() {
        let pool = Pool::new(4);
        pool.run(|p| {
            // All four placements: both local, a remote, b remote, both
            // remote. Results must always come back in (a, b) order.
            for (ha, hb) in [(0, 0), (1, 0), (0, 1), (2, 3)] {
                let (a, b) = p.join_hint(ha, hb, |_| 10, |_| 20);
                assert_eq!((a, b), (10, 20));
            }
        });
    }

    #[test]
    fn join_hint_from_external_thread() {
        let pool = Pool::new(2);
        let (a, b) = pool.join_hint(0, 1, |c| fib(c, 16), |c| fib(c, 14));
        assert_eq!((a, b), (fib_seq(16), fib_seq(14)));
    }

    #[test]
    fn join_hint_is_just_advice_under_load() {
        let pool = Pool::new(2);
        pool.run(|p| {
            let total: u64 = (0..64)
                .map(|i| {
                    let (a, b) = p.join_hint(i, i + 1, |_| 1u64, |_| 2u64);
                    a + b
                })
                .sum();
            assert_eq!(total, 64 * 3);
        });
    }

    #[test]
    fn current_worker_index_inside_and_outside() {
        assert_eq!(current_worker_index(), None);
        let pool = Pool::new(3);
        let idx = pool.run(|_| current_worker_index());
        assert!(matches!(idx, Some(i) if i < 3));
    }

    #[test]
    fn par_for_covers_every_index_once() {
        let pool = Pool::new(8);
        let n = 100_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        pool.run(|p| {
            par_for(p, 0, n, 64, &|_, i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn run_returns_value() {
        let pool = Pool::new(2);
        let v = pool.run(|_| vec![1, 2, 3]);
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn panic_in_first_closure_propagates_after_b_completes() {
        let pool = Pool::new(4);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.join(
                |_| panic!("boom-a"),
                |_| std::thread::sleep(Duration::from_millis(5)),
            )
        }));
        assert!(result.is_err());
    }

    #[test]
    fn panic_in_second_closure_propagates() {
        let pool = Pool::new(4);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.join(|_| 1, |_| -> i32 { panic!("boom-b") })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn panic_under_join_hint_propagates() {
        let pool = Pool::new(4);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|p| p.join_hint(1, 2, |_| 1, |_| -> i32 { panic!("boom-hint") }))
        }));
        assert!(result.is_err());
        assert_eq!(pool.join(|_| 1, |_| 2), (1, 2));
    }

    #[test]
    fn many_pools_spawn_and_drop() {
        for _ in 0..8 {
            let pool = Pool::new(2);
            assert_eq!(pool.join(|_| 1, |_| 2), (1, 2));
        }
    }

    #[test]
    fn spawn_detached_runs_and_joins() {
        let pool = Pool::new(2);
        let d = pool.spawn_detached(|c| fib(c, 20));
        // The spawner is free to do other work while the task runs.
        let inline = fib_seq(20);
        assert_eq!(d.join(), inline);
    }

    #[test]
    fn spawn_detached_panic_surfaces_at_join() {
        let pool = Pool::new(2);
        let d = pool.spawn_detached(|_| -> u64 { panic!("detached boom") });
        assert!(panic::catch_unwind(AssertUnwindSafe(|| d.join())).is_err());
        // The pool is still usable afterwards.
        assert_eq!(pool.join(|_| 1, |_| 2), (1, 2));
    }

    #[test]
    fn detached_task_can_fork_on_its_handle() {
        let pool = Pool::new(4);
        let d = pool.spawn_detached(|c| {
            let (a, b) = c.join(|c| fib(c, 18), |c| fib(c, 16));
            a + b
        });
        assert_eq!(d.join(), fib_seq(18) + fib_seq(16));
    }

    #[test]
    fn drop_barrier_finishes_unjoined_tasks() {
        let hits = Arc::new(AtomicU64::new(0));
        let d = {
            let pool = Pool::new(2);
            let hits = Arc::clone(&hits);
            let d = pool.spawn_detached(move |_| {
                thread::sleep(Duration::from_millis(10));
                hits.fetch_add(1, Ordering::SeqCst);
                7u64
            });
            // `pool` drops here with the task possibly still queued; drop
            // must wait for it rather than abandon it.
            d
        };
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert!(d.is_done());
        assert_eq!(d.join(), 7);
    }

    #[test]
    fn is_done_eventually_flips_without_joining() {
        let pool = Pool::new(1);
        let d = pool.spawn_detached(|_| 1u64);
        for _ in 0..10_000 {
            if d.is_done() {
                break;
            }
            thread::yield_now();
        }
        assert_eq!(d.join(), 1);
    }

    #[test]
    fn seq_ctx_spawn_detached_resolves_inline() {
        let c = crate::SeqCtx::new();
        let d = c.spawn_detached(|_| 6 * 7);
        assert!(d.is_done());
        assert_eq!(d.join(), 42);
    }

    #[test]
    fn seq_ctx_join_hint_ignores_hints() {
        let c = crate::SeqCtx::new();
        let (a, b) = c.join_hint(17, 3, |_| 1, |_| 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn dob_env_knobs_shape_the_default_pool() {
        // One test body for all cases: env mutation is process-global and
        // must not race a parallel test.
        std::env::set_var("DOB_THREADS", "3");
        assert_eq!(Pool::with_default_threads().num_threads(), 3);
        std::env::set_var("DOB_THREADS", "not-a-number");
        let fallback = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(Pool::with_default_threads().num_threads(), fallback);
        std::env::remove_var("DOB_THREADS");
        assert_eq!(Pool::with_default_threads().num_threads(), fallback);

        // DOB_PIN turns pinning on; DOB_PIN=0 overrides DOB_AFFINITY.
        std::env::set_var("DOB_THREADS", "2");
        std::env::set_var("DOB_PIN", "1");
        let p = Pool::with_default_threads();
        assert!(p.is_pinned());
        assert_eq!(p.join(|_| 2, |_| 3), (2, 3));
        drop(p);

        std::env::set_var("DOB_AFFINITY", "0, 1");
        std::env::set_var("DOB_PIN", "0");
        assert!(!Pool::with_default_threads().is_pinned());

        // DOB_AFFINITY alone implies pinning.
        std::env::remove_var("DOB_PIN");
        let p = Pool::with_default_threads();
        assert!(p.is_pinned());
        drop(p);

        // Garbage affinity lists are ignored (no panic, no pin).
        std::env::set_var("DOB_AFFINITY", ",,junk,");
        assert!(!Pool::with_default_threads().is_pinned());

        std::env::remove_var("DOB_AFFINITY");
        std::env::remove_var("DOB_THREADS");
    }
}
