//! Work-stealing thread pool implementing the binary fork-join model.
//!
//! The design follows the classic Cilk/rayon architecture the paper's model
//! assumes (§A.2, [BL99]): each worker owns a LIFO deque of jobs; `join`
//! pushes the second task, runs the first inline, and then either pops the
//! second task back (the common, allocation-free fast path) or *steals other
//! work* while waiting for a thief to finish it. Idle workers steal from
//! victims in random order, which is exactly the randomized work-stealing
//! scheduler whose `O(W/P + T∞)` execution-time bound the paper cites.
//!
//! # Safety
//!
//! Jobs are type-erased pointers into the stack frame of the `join` (or
//! `run`) call that created them ([`StackJob`]). This is sound because the
//! creating frame never returns before the job has executed: `join` loops
//! until the job's latch is set (even when the first closure panics), and
//! `run` blocks on a mutex-based latch. Results travel through an
//! `UnsafeCell` guarded by the latch's release/acquire pair.

use crate::ctx::Ctx;
use crate::task::{Deferred, TaskState};
use crossbeam::deque::{Injector, Steal, Stealer, Worker as Deque};
use parking_lot::{Condvar, Mutex};
use std::cell::{Cell, UnsafeCell};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::Duration;

// --------------------------------------------------------------------------
// Latches
// --------------------------------------------------------------------------

/// A one-shot flag set by the executor of a job and probed by its owner.
struct SpinLatch {
    set: AtomicBool,
}

impl SpinLatch {
    fn new() -> Self {
        SpinLatch {
            set: AtomicBool::new(false),
        }
    }

    #[inline]
    fn probe(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }

    #[inline]
    fn set(&self) {
        self.set.store(true, Ordering::Release);
    }
}

/// A blocking latch for threads that are not pool workers.
struct LockLatch {
    m: Mutex<bool>,
    cv: Condvar,
}

impl LockLatch {
    fn new() -> Self {
        LockLatch {
            m: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn set(&self) {
        let mut done = self.m.lock();
        *done = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut done = self.m.lock();
        while !*done {
            self.cv.wait(&mut done);
        }
    }
}

// --------------------------------------------------------------------------
// Jobs
// --------------------------------------------------------------------------

/// Type-erased pointer to a job living on some `join`/`run` stack frame.
#[derive(Clone, Copy)]
struct JobRef {
    data: *const (),
    exec: unsafe fn(*const ()),
}

// SAFETY: a JobRef is only ever executed once, and the frame it points to
// outlives the execution (see module docs).
unsafe impl Send for JobRef {}

enum JobLatch {
    Spin(SpinLatch),
    Lock(LockLatch),
}

impl JobLatch {
    fn set(&self) {
        match self {
            JobLatch::Spin(l) => l.set(),
            JobLatch::Lock(l) => l.set(),
        }
    }

    fn as_spin(&self) -> &SpinLatch {
        match self {
            JobLatch::Spin(l) => l,
            JobLatch::Lock(_) => unreachable!("spin latch expected"),
        }
    }

    fn as_lock(&self) -> &LockLatch {
        match self {
            JobLatch::Lock(l) => l,
            JobLatch::Spin(_) => unreachable!("lock latch expected"),
        }
    }
}

struct StackJob<F, R> {
    f: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<thread::Result<R>>>,
    latch: JobLatch,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R,
{
    fn new(f: F, latch: JobLatch) -> Self {
        StackJob {
            f: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(None),
            latch,
        }
    }

    /// SAFETY: caller must guarantee the job is executed at most once and
    /// that `self` outlives the execution.
    unsafe fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            exec: Self::execute,
        }
    }

    unsafe fn execute(data: *const ()) {
        let this = &*(data as *const Self);
        let f = (*this.f.get()).take().expect("job executed twice");
        let result = panic::catch_unwind(AssertUnwindSafe(f));
        *this.result.get() = Some(result);
        this.latch.set();
    }

    /// SAFETY: only call after the latch has been set (or after executing
    /// the job on the current thread).
    unsafe fn take_result(&self) -> R {
        match (*self.result.get()).take().expect("job result missing") {
            Ok(r) => r,
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

/// A heap-owned job for detached tasks: unlike [`StackJob`], its lifetime
/// is decoupled from any stack frame, so it can sit in the injector after
/// the spawning call has returned.
fn heap_job(f: Box<dyn FnOnce() + Send>) -> JobRef {
    unsafe fn execute(data: *const ()) {
        // SAFETY: `data` came from `Box::into_raw` below and each JobRef is
        // executed exactly once, so reconstituting the box is sound.
        let f = unsafe { Box::from_raw(data as *mut Box<dyn FnOnce() + Send>) };
        f();
    }
    JobRef {
        data: Box::into_raw(Box::new(f)) as *const (),
        exec: execute,
    }
}

// --------------------------------------------------------------------------
// Sleep machinery
// --------------------------------------------------------------------------

struct Sleep {
    mutex: Mutex<()>,
    cv: Condvar,
    idlers: AtomicUsize,
}

impl Sleep {
    fn new() -> Self {
        Sleep {
            mutex: Mutex::new(()),
            cv: Condvar::new(),
            idlers: AtomicUsize::new(0),
        }
    }

    /// Block until `has_work` might be true again. `has_work` is re-checked
    /// under the lock so a concurrent `notify` cannot be lost; a timeout
    /// bounds the damage of any missed edge case.
    fn sleep(&self, has_work: impl Fn() -> bool) {
        self.idlers.fetch_add(1, Ordering::SeqCst);
        {
            let mut guard = self.mutex.lock();
            if !has_work() {
                self.cv.wait_for(&mut guard, Duration::from_millis(1));
            }
        }
        self.idlers.fetch_sub(1, Ordering::SeqCst);
    }

    fn notify(&self) {
        if self.idlers.load(Ordering::SeqCst) > 0 {
            let _guard = self.mutex.lock();
            self.cv.notify_all();
        }
    }
}

// --------------------------------------------------------------------------
// Registry and workers
// --------------------------------------------------------------------------

struct Registry {
    injector: Injector<JobRef>,
    stealers: Vec<Stealer<JobRef>>,
    sleep: Sleep,
    terminate: AtomicBool,
    nthreads: usize,
    /// Detached tasks spawned but not yet finished. The owning `Pool`'s
    /// drop drains this to zero before telling workers to terminate, so a
    /// queued detached job is never abandoned un-run.
    detached: AtomicUsize,
}

struct WorkerThread {
    deque: Deque<JobRef>,
    index: usize,
    registry: *const Registry,
    rng: Cell<u64>,
}

thread_local! {
    static WORKER: Cell<*const WorkerThread> = const { Cell::new(std::ptr::null()) };
}

impl WorkerThread {
    #[inline]
    fn current() -> *const WorkerThread {
        WORKER.with(|w| w.get())
    }

    fn next_rand(&self) -> u64 {
        // xorshift64*: cheap, good-enough victim selection.
        let mut x = self.rng.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng.set(x);
        x
    }

    fn registry(&self) -> &Registry {
        // SAFETY: the registry outlives every worker (workers are joined in
        // Pool::drop while the Arc is still alive).
        unsafe { &*self.registry }
    }

    /// Steal one job: first from the global injector, then from victims in
    /// random order.
    fn steal(&self) -> Option<JobRef> {
        let reg = self.registry();
        loop {
            match reg.injector.steal_batch_and_pop(&self.deque) {
                Steal::Success(job) => return Some(job),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
        let n = reg.stealers.len();
        let start = (self.next_rand() as usize) % n.max(1);
        for i in 0..n {
            let victim = (start + i) % n;
            if victim == self.index {
                continue;
            }
            loop {
                match reg.stealers[victim].steal() {
                    Steal::Success(job) => return Some(job),
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        }
        None
    }

    fn find_work(&self) -> Option<JobRef> {
        self.deque.pop().or_else(|| self.steal())
    }
}

fn worker_main(registry: Arc<Registry>, index: usize, deque: Deque<JobRef>) {
    let wt = WorkerThread {
        deque,
        index,
        registry: Arc::as_ptr(&registry),
        rng: Cell::new(0x9E37_79B9_7F4A_7C15 ^ ((index as u64 + 1) << 17)),
    };
    WORKER.with(|w| w.set(&wt as *const WorkerThread));

    while !registry.terminate.load(Ordering::Acquire) {
        if let Some(job) = wt.find_work() {
            unsafe { (job.exec)(job.data) };
        } else {
            let reg = &*registry;
            reg.sleep.sleep(|| {
                reg.terminate.load(Ordering::Acquire)
                    || !reg.injector.is_empty()
                    || reg
                        .stealers
                        .iter()
                        .enumerate()
                        .any(|(i, s)| i != index && !s.is_empty())
            });
        }
    }

    WORKER.with(|w| w.set(std::ptr::null()));
}

// --------------------------------------------------------------------------
// Pool
// --------------------------------------------------------------------------

/// A binary fork-join thread pool with randomized work stealing.
///
/// `Pool` implements [`Ctx`], so any algorithm written against the context
/// abstraction runs in parallel by passing `&pool`:
///
/// ```
/// use fj::{Ctx, Pool};
///
/// let pool = Pool::new(4);
/// let (a, b) = pool.join(|_| 1 + 1, |_| 2 + 2);
/// assert_eq!((a, b), (2, 4));
/// ```
pub struct Pool {
    registry: Arc<Registry>,
    handles: Mutex<Vec<thread::JoinHandle<()>>>,
    /// Only the pool that spawned the workers tears them down; non-owning
    /// handles (created for detached tasks) drop without side effects.
    owner: bool,
}

impl Pool {
    /// Spawn a pool with `nthreads` workers (at least 1).
    pub fn new(nthreads: usize) -> Self {
        let nthreads = nthreads.max(1);
        let deques: Vec<Deque<JobRef>> = (0..nthreads).map(|_| Deque::new_lifo()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();
        let registry = Arc::new(Registry {
            injector: Injector::new(),
            stealers,
            sleep: Sleep::new(),
            terminate: AtomicBool::new(false),
            nthreads,
            detached: AtomicUsize::new(0),
        });
        let handles = deques
            .into_iter()
            .enumerate()
            .map(|(i, d)| {
                let reg = Arc::clone(&registry);
                thread::Builder::new()
                    .name(format!("fj-worker-{i}"))
                    .spawn(move || worker_main(reg, i, d))
                    .expect("failed to spawn fj worker")
            })
            .collect();
        Pool {
            registry,
            handles: Mutex::new(handles),
            owner: true,
        }
    }

    /// A non-owning handle on the same registry: detached tasks receive
    /// one as their `&Pool` context, so nested joins inside the task still
    /// resolve [`current_worker`](Pool::current_worker) against the right
    /// registry (the check is by registry pointer, which the handle
    /// shares). Dropping a handle never terminates the workers.
    fn handle(&self) -> Pool {
        Pool {
            registry: Arc::clone(&self.registry),
            handles: Mutex::new(Vec::new()),
            owner: false,
        }
    }

    /// A pool sized by the `DOB_THREADS` environment variable when set (CI
    /// runs the suite under a thread-count matrix through it), otherwise to
    /// the machine (`available_parallelism`).
    pub fn with_default_threads() -> Self {
        let n = std::env::var("DOB_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n: &usize| n >= 1)
            .unwrap_or_else(|| {
                thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Pool::new(n)
    }

    /// Process-wide shared pool, created on first use.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(Pool::with_default_threads)
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.registry.nthreads
    }

    #[inline]
    fn current_worker(&self) -> Option<&WorkerThread> {
        let wt = WorkerThread::current();
        if wt.is_null() {
            return None;
        }
        // SAFETY: non-null worker pointers are valid for the thread's life.
        let wt = unsafe { &*wt };
        (std::ptr::eq(wt.registry, Arc::as_ptr(&self.registry))).then_some(wt)
    }

    /// Run `f` on a pool worker, blocking the calling thread until done.
    /// If already on a worker of this pool, runs inline.
    pub fn run<R: Send>(&self, f: impl FnOnce(&Pool) -> R + Send) -> R {
        if self.current_worker().is_some() {
            return f(self);
        }
        let job = StackJob::new(|| f(self), JobLatch::Lock(LockLatch::new()));
        // SAFETY: we block on the latch below, so the job outlives execution
        // and is executed exactly once.
        let job_ref = unsafe { job.as_job_ref() };
        self.registry.injector.push(job_ref);
        self.registry.sleep.notify();
        job.latch.as_lock().wait();
        unsafe { job.take_result() }
    }

    fn join_worker<RA, RB>(
        &self,
        wt: &WorkerThread,
        a: impl FnOnce(&Self) -> RA + Send,
        b: impl FnOnce(&Self) -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        let job_b = StackJob::new(|| b(self), JobLatch::Spin(SpinLatch::new()));
        // SAFETY: this frame does not return before job_b has run (the wait
        // loop below runs even when `a` panics), and job_b runs once: either
        // popped back by us or stolen, never both (deque semantics).
        let job_ref = unsafe { job_b.as_job_ref() };
        wt.deque.push(job_ref);
        self.registry.sleep.notify();

        let ra = panic::catch_unwind(AssertUnwindSafe(|| a(self)));

        // Retrieve b: pop it back, or steal other work while a thief runs it.
        let latch = job_b.latch.as_spin();
        while !latch.probe() {
            if let Some(job) = wt.deque.pop() {
                // With LIFO semantics this is either our own b or a job some
                // nested computation left behind; executing it inline is
                // always correct.
                unsafe { (job.exec)(job.data) };
                if std::ptr::eq(job.data, job_ref.data) {
                    break;
                }
            } else if let Some(job) = wt.steal() {
                unsafe { (job.exec)(job.data) };
            } else {
                std::hint::spin_loop();
            }
        }

        let rb = unsafe { job_b.take_result() };
        match ra {
            Ok(ra) => (ra, rb),
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

impl Ctx for Pool {
    fn join<RA, RB>(
        &self,
        a: impl FnOnce(&Self) -> RA + Send,
        b: impl FnOnce(&Self) -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        match self.current_worker() {
            Some(wt) => self.join_worker(wt, a, b),
            // Calls from outside the pool enter it first; the nested join
            // then lands on a worker and takes the parallel path.
            None => self.run(move |p| p.join_worker(p.current_worker().unwrap(), a, b)),
        }
    }

    /// Queue `f` for the workers and return immediately. The task runs
    /// with a non-owning [`Pool::handle`] as its context, so it can fork
    /// freely; its panic (if any) is captured into the [`Deferred`] and
    /// re-raised at join.
    fn spawn_detached<R, F>(&self, f: F) -> Deferred<R>
    where
        R: Send + 'static,
        F: FnOnce(&Self) -> R + Send + 'static,
    {
        let state = Arc::new(TaskState::new());
        let task_state = Arc::clone(&state);
        let ctx = self.handle();
        let registry = Arc::clone(&self.registry);
        registry.detached.fetch_add(1, Ordering::SeqCst);
        let job: Box<dyn FnOnce() + Send> = Box::new(move || {
            let result = panic::catch_unwind(AssertUnwindSafe(|| f(&ctx)));
            // Publish the result before releasing the drop barrier: once
            // `detached` hits zero the owner may tear the pool down, and
            // joiners must already be able to observe completion.
            task_state.complete(result);
            let reg = &*ctx.registry;
            reg.detached.fetch_sub(1, Ordering::SeqCst);
            reg.sleep.notify();
        });
        self.registry.injector.push(heap_job(job));
        self.registry.sleep.notify();
        Deferred::from_task(state)
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        if !self.owner {
            return;
        }
        // Drop barrier: let every spawned-but-unfinished detached task run
        // to completion before workers terminate. Unjoined tasks are thus
        // never silently dropped, and a `Deferred` held past the pool's
        // life joins an already-completed slot.
        while self.registry.detached.load(Ordering::SeqCst) > 0 {
            self.registry.sleep.notify();
            thread::yield_now();
        }
        self.registry.terminate.store(true, Ordering::Release);
        let handles = std::mem::take(&mut *self.handles.lock());
        for h in handles {
            // Workers wake at least every millisecond, observe `terminate`,
            // and exit.
            self.registry.sleep.notify();
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::par_for;
    use std::sync::atomic::AtomicU64;

    fn fib(c: &Pool, n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        if n < 12 {
            return fib_seq(n);
        }
        let (a, b) = c.join(|c| fib(c, n - 1), |c| fib(c, n - 2));
        a + b
    }

    fn fib_seq(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fib_seq(n - 1) + fib_seq(n - 2)
        }
    }

    #[test]
    fn join_from_external_thread() {
        let pool = Pool::new(4);
        let (a, b) = pool.join(|_| 21, |_| 2);
        assert_eq!(a * b, 42);
    }

    #[test]
    fn nested_parallel_fib() {
        let pool = Pool::new(4);
        assert_eq!(fib(&pool, 24), fib_seq(24));
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = Pool::new(1);
        assert_eq!(fib(&pool, 18), fib_seq(18));
    }

    #[test]
    fn par_for_covers_every_index_once() {
        let pool = Pool::new(8);
        let n = 100_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        pool.run(|p| {
            par_for(p, 0, n, 64, &|_, i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn run_returns_value() {
        let pool = Pool::new(2);
        let v = pool.run(|_| vec![1, 2, 3]);
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn panic_in_first_closure_propagates_after_b_completes() {
        let pool = Pool::new(4);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.join(
                |_| panic!("boom-a"),
                |_| std::thread::sleep(Duration::from_millis(5)),
            )
        }));
        assert!(result.is_err());
    }

    #[test]
    fn panic_in_second_closure_propagates() {
        let pool = Pool::new(4);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.join(|_| 1, |_| -> i32 { panic!("boom-b") })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn many_pools_spawn_and_drop() {
        for _ in 0..8 {
            let pool = Pool::new(2);
            assert_eq!(pool.join(|_| 1, |_| 2), (1, 2));
        }
    }

    #[test]
    fn spawn_detached_runs_and_joins() {
        let pool = Pool::new(2);
        let d = pool.spawn_detached(|c| fib(c, 20));
        // The spawner is free to do other work while the task runs.
        let inline = fib_seq(20);
        assert_eq!(d.join(), inline);
    }

    #[test]
    fn spawn_detached_panic_surfaces_at_join() {
        let pool = Pool::new(2);
        let d = pool.spawn_detached(|_| -> u64 { panic!("detached boom") });
        assert!(panic::catch_unwind(AssertUnwindSafe(|| d.join())).is_err());
        // The pool is still usable afterwards.
        assert_eq!(pool.join(|_| 1, |_| 2), (1, 2));
    }

    #[test]
    fn detached_task_can_fork_on_its_handle() {
        let pool = Pool::new(4);
        let d = pool.spawn_detached(|c| {
            let (a, b) = c.join(|c| fib(c, 18), |c| fib(c, 16));
            a + b
        });
        assert_eq!(d.join(), fib_seq(18) + fib_seq(16));
    }

    #[test]
    fn drop_barrier_finishes_unjoined_tasks() {
        let hits = Arc::new(AtomicU64::new(0));
        let d = {
            let pool = Pool::new(2);
            let hits = Arc::clone(&hits);
            let d = pool.spawn_detached(move |_| {
                thread::sleep(Duration::from_millis(10));
                hits.fetch_add(1, Ordering::SeqCst);
                7u64
            });
            // `pool` drops here with the task possibly still queued; drop
            // must wait for it rather than abandon it.
            d
        };
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert!(d.is_done());
        assert_eq!(d.join(), 7);
    }

    #[test]
    fn is_done_eventually_flips_without_joining() {
        let pool = Pool::new(1);
        let d = pool.spawn_detached(|_| 1u64);
        for _ in 0..10_000 {
            if d.is_done() {
                break;
            }
            thread::yield_now();
        }
        assert_eq!(d.join(), 1);
    }

    #[test]
    fn seq_ctx_spawn_detached_resolves_inline() {
        let c = crate::SeqCtx::new();
        let d = c.spawn_detached(|_| 6 * 7);
        assert!(d.is_done());
        assert_eq!(d.join(), 42);
    }

    #[test]
    fn dob_threads_env_sizes_the_default_pool() {
        // One test body for all three cases: env mutation is process-global
        // and must not race a parallel test.
        std::env::set_var("DOB_THREADS", "3");
        assert_eq!(Pool::with_default_threads().num_threads(), 3);
        std::env::set_var("DOB_THREADS", "not-a-number");
        let fallback = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(Pool::with_default_threads().num_threads(), fallback);
        std::env::remove_var("DOB_THREADS");
        assert_eq!(Pool::with_default_threads().num_threads(), fallback);
    }
}
