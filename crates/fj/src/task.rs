//! Detached tasks: the handle half of [`Ctx::spawn_detached`].
//!
//! A [`Deferred`] is a one-shot future for a task that was handed to an
//! executor and left to run on its own — the spawning frame returns
//! immediately and joins later (or never: dropping a `Deferred` abandons
//! the *result*, not the task). The epoch pipeline in `dob-store` uses
//! this to run a merge in the background while the caller keeps
//! submitting ops; sequential and metered executors resolve the task
//! inline at spawn time, so the same caller code is executable (and
//! meterable) on every [`Ctx`].
//!
//! Unlike the pool's stack jobs, a detached task owns its closure on the
//! heap: its lifetime is decoupled from the spawning frame, so the
//! closure and result must be `'static`.
//!
//! [`Ctx::spawn_detached`]: crate::Ctx::spawn_detached

use parking_lot::{Condvar, Mutex};
use std::panic;
use std::sync::Arc;
use std::thread;

/// Shared completion slot between a running detached task and its
/// [`Deferred`] handle: a mutex-guarded `(done, result)` pair plus a
/// condvar for blocking joins from non-worker threads.
pub(crate) struct TaskState<R> {
    slot: Mutex<(bool, Option<thread::Result<R>>)>,
    cv: Condvar,
}

impl<R> TaskState<R> {
    pub(crate) fn new() -> Self {
        TaskState {
            slot: Mutex::new((false, None)),
            cv: Condvar::new(),
        }
    }

    /// Publish the task's outcome and wake every blocked joiner.
    pub(crate) fn complete(&self, r: thread::Result<R>) {
        let mut g = self.slot.lock();
        g.0 = true;
        g.1 = Some(r);
        self.cv.notify_all();
    }

    fn probe(&self) -> bool {
        self.slot.lock().0
    }

    fn take_blocking(&self) -> thread::Result<R> {
        let mut g = self.slot.lock();
        while !g.0 {
            self.cv.wait(&mut g);
        }
        g.1.take().expect("detached task result taken twice")
    }
}

enum Inner<R> {
    /// Resolved at spawn time (sequential/metered executors, or
    /// [`Deferred::ready`]).
    Ready(Option<thread::Result<R>>),
    /// Running (or queued) on a pool; resolved through the shared slot.
    Task(Arc<TaskState<R>>),
}

/// Handle to a detached task spawned with
/// [`Ctx::spawn_detached`](crate::Ctx::spawn_detached).
///
/// [`join`](Deferred::join) blocks until the task finishes and returns its
/// result, re-raising the task's panic if it had one.
/// [`is_done`](Deferred::is_done) is a non-blocking readiness probe — the epoch
/// pipeline uses it to decide (on public information only) whether a
/// handoff would block. Dropping a `Deferred` without joining abandons
/// the result; the task itself still runs to completion.
#[must_use = "a detached task's panic is only observed by joining it"]
pub struct Deferred<R>(Inner<R>);

impl<R> Deferred<R> {
    /// An already-resolved handle. Executors without background workers
    /// run the task inline at spawn time and wrap its outcome with this.
    pub fn ready(r: R) -> Self {
        Deferred(Inner::Ready(Some(Ok(r))))
    }

    /// Like [`ready`](Deferred::ready) but for a task that panicked
    /// inline; the payload re-raises at [`join`](Deferred::join).
    pub(crate) fn ready_result(r: thread::Result<R>) -> Self {
        Deferred(Inner::Ready(Some(r)))
    }

    pub(crate) fn from_task(state: Arc<TaskState<R>>) -> Self {
        Deferred(Inner::Task(state))
    }

    /// True once the task has finished (successfully or by panicking) and
    /// [`join`](Deferred::join) would not block. Inline-resolved handles
    /// are always done.
    pub fn is_done(&self) -> bool {
        match &self.0 {
            Inner::Ready(_) => true,
            Inner::Task(t) => t.probe(),
        }
    }

    /// Block until the task finishes and return its result, re-raising
    /// the task's panic if it had one.
    pub fn join(self) -> R {
        match self.try_join() {
            Ok(r) => r,
            Err(payload) => panic::resume_unwind(payload),
        }
    }

    /// Block until the task finishes and return its outcome, handing a
    /// panicking task's payload back as `Err` instead of re-raising it.
    /// This is the error-propagation half of the detached-task contract:
    /// a caller that owns state travelling through the task (the epoch
    /// pipeline's store) can observe the failure, mark itself poisoned,
    /// and surface a typed error instead of unwinding through the join.
    pub fn try_join(self) -> thread::Result<R> {
        match self.0 {
            Inner::Ready(r) => r.expect("detached task result taken twice"),
            Inner::Task(t) => t.take_blocking(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::AssertUnwindSafe;

    #[test]
    fn ready_handle_is_done_and_joins() {
        let d = Deferred::ready(41 + 1);
        assert!(d.is_done());
        assert_eq!(d.join(), 42);
    }

    #[test]
    fn inline_panic_reraises_at_join_not_spawn() {
        let r: thread::Result<()> =
            panic::catch_unwind(AssertUnwindSafe(|| panic!("deferred boom")));
        let d = Deferred::ready_result(r);
        assert!(d.is_done());
        assert!(panic::catch_unwind(AssertUnwindSafe(|| d.join())).is_err());
    }

    #[test]
    fn try_join_surfaces_the_panic_payload_without_unwinding() {
        let r: thread::Result<u32> = panic::catch_unwind(AssertUnwindSafe(|| panic!("typed boom")));
        let d = Deferred::ready_result(r);
        let payload = d.try_join().expect_err("panic must surface as Err");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"typed boom"));
        assert_eq!(Deferred::ready(9).try_join().ok(), Some(9));
    }

    #[test]
    fn task_state_completes_across_threads() {
        let state = Arc::new(TaskState::new());
        let d: Deferred<u64> = Deferred::from_task(Arc::clone(&state));
        assert!(!d.is_done());
        let t = thread::spawn(move || state.complete(Ok(7)));
        assert_eq!(d.join(), 7);
        t.join().unwrap();
    }
}
