//! Best-effort CPU topology: pinning worker threads to cores.
//!
//! The pool's locality story (nearest-neighbor wake, shard-affine
//! scheduling, per-core scratch lanes) only pays off when worker *i* really
//! stays on core *i* across epochs — otherwise the OS scheduler shuffles
//! workers and every "affine" cache is cold anyway. On linux we pin with
//! `sched_setaffinity(2)`; the symbol comes straight from the glibc that
//! `std` already links, so no new dependency is needed (the build container
//! is offline). Everywhere else pinning is a documented no-op: the pool
//! still runs, merely unpinned.
//!
//! Pinning is *best effort* by contract: a failed `sched_setaffinity`
//! (restricted cpuset, exotic sandbox) degrades to an unpinned worker and a
//! one-time warning — never a panic. Callers that must know can ask
//! [`supported`].

/// Upper bound on CPU ids we can express: glibc's `cpu_set_t` is 1024 bits.
pub const MAX_CPUS: usize = 1024;

/// The kernel refused the affinity mask (restricted cpuset, out-of-range
/// CPU id, exotic sandbox). The thread keeps its old mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PinError;

impl std::fmt::Display for PinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "the kernel refused to pin this thread")
    }
}

impl std::error::Error for PinError {}

#[cfg(target_os = "linux")]
mod imp {
    use super::{PinError, MAX_CPUS};

    // `std` links libc on linux; declaring the one prototype we need avoids
    // pulling in a `libc` crate the offline container does not have.
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }

    pub const SUPPORTED: bool = true;

    /// Restrict the calling thread to `cpu`. `Err` means the kernel said no
    /// (or the id is out of range); the thread keeps its old mask.
    pub fn pin_current_thread(cpu: usize) -> Result<(), PinError> {
        if cpu >= MAX_CPUS {
            return Err(PinError);
        }
        let mut mask = [0u64; MAX_CPUS / 64];
        mask[cpu / 64] |= 1u64 << (cpu % 64);
        // SAFETY: pid 0 = calling thread; the mask buffer is live and its
        // length is passed explicitly.
        let rc = unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) };
        if rc == 0 {
            Ok(())
        } else {
            Err(PinError)
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    pub const SUPPORTED: bool = false;

    /// No-op on platforms without `sched_setaffinity`: the worker simply
    /// stays unpinned (this is the documented fallback, not an error).
    pub fn pin_current_thread(_cpu: usize) -> Result<(), super::PinError> {
        Ok(())
    }
}

/// Whether this platform can actually pin threads ([`pin_current_thread`]
/// is a no-op elsewhere).
pub fn supported() -> bool {
    imp::SUPPORTED
}

/// Pin the calling thread to `cpu` (best effort; see module docs).
pub fn pin_current_thread(cpu: usize) -> Result<(), PinError> {
    imp::pin_current_thread(cpu)
}

/// Number of CPUs visible to this process, used to wrap worker→core maps.
pub fn online_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_to_cpu0_succeeds_or_degrades() {
        // CPU 0 exists on every machine; on linux this should normally
        // succeed, and on other platforms it is a no-op Ok. Either way it
        // must not panic.
        let _ = pin_current_thread(0);
    }

    #[test]
    fn out_of_range_cpu_is_rejected_on_linux() {
        if supported() {
            assert!(pin_current_thread(MAX_CPUS).is_err());
        }
    }

    #[test]
    fn online_cpus_is_positive() {
        assert!(online_cpus() >= 1);
    }
}
