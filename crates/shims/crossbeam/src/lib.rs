//! Minimal in-tree stand-in for the slice of `crossbeam` the workspace
//! uses: `crossbeam::deque`'s work-stealing deques. The container this repo
//! builds in has no crates.io access (see DESIGN.md §6), so the deques are
//! implemented as mutex-protected `VecDeque`s with the same owner-LIFO /
//! thief-FIFO semantics as the lock-free Chase–Lev originals. Correctness
//! is identical; contention behavior is worse, which only shows up as
//! scheduler overhead under heavy stealing. Swap the workspace dependency
//! for the real crate when a registry is available.

pub mod deque {
    use parking_lot::Mutex;
    use std::collections::VecDeque;
    use std::sync::Arc;

    /// Outcome of a steal attempt; mirrors `crossbeam::deque::Steal`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        Empty,
        Success(T),
        /// Never produced by this implementation (locking cannot lose a
        /// race), but kept so caller retry loops compile unchanged.
        Retry,
    }

    /// Owner side of a work-stealing deque: LIFO push/pop at the back.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        pub fn new_lifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }

        pub fn push(&self, item: T) {
            self.queue.lock().push_back(item);
        }

        pub fn pop(&self) -> Option<T> {
            self.queue.lock().pop_back()
        }

        pub fn is_empty(&self) -> bool {
            self.queue.lock().is_empty()
        }

        pub fn len(&self) -> usize {
            self.queue.lock().len()
        }
    }

    /// Thief side: steals the oldest item (front).
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().pop_front() {
                Some(item) => Steal::Success(item),
                None => Steal::Empty,
            }
        }

        pub fn is_empty(&self) -> bool {
            self.queue.lock().is_empty()
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// Global FIFO injector queue shared by all workers.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, item: T) {
            self.queue.lock().push_back(item);
        }

        /// Pop one task for `_dest`'s owner. The real implementation moves a
        /// batch into the destination deque first; taking a single task is a
        /// legal (if less efficient) refinement of the same contract.
        pub fn steal_batch_and_pop(&self, _dest: &Worker<T>) -> Steal<T> {
            match self.queue.lock().pop_front() {
                Some(item) => Steal::Success(item),
                None => Steal::Empty,
            }
        }

        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().pop_front() {
                Some(item) => Steal::Success(item),
                None => Steal::Empty,
            }
        }

        pub fn is_empty(&self) -> bool {
            self.queue.lock().is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::*;

    #[test]
    fn worker_is_lifo_stealer_is_fifo() {
        let w: Worker<u32> = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3), "owner pops newest");
        assert_eq!(s.steal(), Steal::Success(1), "thief steals oldest");
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn injector_is_fifo() {
        let inj: Injector<u32> = Injector::new();
        let w: Worker<u32> = Worker::new_lifo();
        inj.push(10);
        inj.push(20);
        assert!(!inj.is_empty());
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(10));
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(20));
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Empty);
        assert!(inj.is_empty());
    }

    #[test]
    fn concurrent_producers_and_thieves_lose_nothing() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let w: Worker<u64> = Worker::new_lifo();
        let total = Arc::new(AtomicU64::new(0));
        let n = 10_000u64;
        for i in 0..n {
            w.push(i);
        }
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = w.stealer();
                let total = Arc::clone(&total);
                std::thread::spawn(move || loop {
                    match s.steal() {
                        Steal::Success(v) => {
                            total.fetch_add(v, Ordering::Relaxed);
                        }
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), n * (n - 1) / 2);
    }
}
