//! Minimal in-tree stand-in for the slice of `criterion` the workspace's
//! benches use (see DESIGN.md §6). It runs each benchmark `sample_size`
//! times around a single warm-up and prints mean wall-clock per iteration —
//! no statistics, HTML reports, or outlier analysis. The bench *sources*
//! are written against the real criterion API so they migrate unchanged
//! when a registry is available.

use std::fmt::Display;
use std::hint::black_box;
use std::time::Instant;

/// Benchmark identifier (`criterion::BenchmarkId`).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

/// Timing driver passed to benchmark closures (`criterion::Bencher`).
pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration, recorded by [`Bencher::iter`].
    mean_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.samples.max(1) as f64;
    }
}

/// Group of related benchmarks (`criterion::BenchmarkGroup`).
pub struct BenchmarkGroup {
    group_name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run_one(&self, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b);
        println!(
            "bench {:<48} {:>14.1} ns/iter ({} samples)",
            format!("{}/{}", self.group_name, name),
            b.mean_ns,
            self.sample_size
        );
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        self.run_one(name, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = id.name.clone();
        self.run_one(&name, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Top-level driver (`criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            group_name: name.into(),
            sample_size: 10,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group("bench");
        g.bench_function(name, f);
        g.finish();
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_closure_sample_size_plus_warmup_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(5);
        let mut count = 0u32;
        g.bench_function("counter", |b| b.iter(|| count += 1));
        g.finish();
        assert_eq!(count, 6, "1 warm-up + 5 samples");
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        let n = 21usize;
        let mut seen = 0usize;
        g.bench_with_input(BenchmarkId::new("double", n), &n, |b, &n| {
            b.iter(|| {
                seen = n * 2;
                seen
            })
        });
        g.finish();
        assert_eq!(seen, 42);
    }
}
