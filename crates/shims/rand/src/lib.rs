//! Minimal in-tree stand-in for the slice of `rand` 0.8 the workspace
//! uses (see DESIGN.md §6): `StdRng::seed_from_u64`, `Rng::{gen,
//! gen_range, gen_bool}` and `seq::SliceRandom::shuffle`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — not
//! cryptographic, but statistically strong, which is all the oblivious
//! algorithms' *tests* rely on (the security argument treats the RNG as an
//! ideal coin source either way; a CSPRNG drop-in goes here when the real
//! crate is available). Streams are deterministic per seed, which the
//! trace-equality tests depend on.

use std::ops::Range;

/// Core generator interface (the `rand::RngCore` role).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a half-open range. Panics on empty ranges.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Bernoulli sample with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 uniform mantissa bits, the standard unit-interval construction.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution role).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types uniformly samplable from a range (the `SampleUniform`
/// role). Rejection sampling makes the draw exactly uniform.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone keeps the modulo unbiased.
    let zone = u64::MAX - u64::MAX % span;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Seedable generators (the `rand::SeedableRng` role).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (the `rand::seq::SliceRandom` role).
    pub trait SliceRandom {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..10).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..10).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 8];
        for _ in 0..500 {
            let v = rng.gen_range(0u64..8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "all residues hit: {seen:?}");
        for _ in 0..100 {
            let v = rng.gen_range(100usize..103);
            assert!((100..103).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}/10000 at p=0.25");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle moved something");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn uniformity_chi_square_smoke() {
        // 16 buckets, 16k draws: each bucket within ±25% of the mean.
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 16];
        for _ in 0..16_384 {
            counts[rng.gen_range(0usize..16)] += 1;
        }
        for (i, &ct) in counts.iter().enumerate() {
            assert!((768..=1280).contains(&ct), "bucket {i} count {ct}");
        }
    }
}
