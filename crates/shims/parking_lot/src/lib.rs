//! Minimal in-tree stand-in for the `parking_lot` crate, backed by
//! `std::sync`. The container this repo builds in has no crates.io access,
//! so the tiny slice of the API the workspace uses is reimplemented here
//! (see DESIGN.md §6): `Mutex` with panic-free poisoned-lock recovery and a
//! `Condvar` that works with our guard type. Swap the workspace dependency
//! back to the real crate when a registry is available — no call site
//! changes needed.

use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// `parking_lot::Mutex`: `lock()` returns the guard directly (no
/// `Result`); a poisoned std mutex is recovered, matching parking_lot's
/// no-poisoning semantics.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { guard: Some(guard) }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Guard wrapping the std guard in an `Option` so `Condvar::wait` can take
/// it out and put the re-acquired guard back.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard taken")
    }
}

/// Result of a timed wait; mirrors `parking_lot::WaitTimeoutResult`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// `parking_lot::Condvar` working with [`MutexGuard`].
#[derive(Default, Debug)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard taken");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard taken");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res.timed_out()),
            Err(e) => {
                let (g, res) = e.into_inner();
                (g, res.timed_out())
            }
        };
        guard.guard = Some(g);
        WaitTimeoutResult(res)
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(1));
        assert!(res.timed_out());
    }
}
