//! Minimal in-tree stand-in for the slice of `proptest` the workspace uses
//! (see DESIGN.md §6): the `proptest!` macro, `prop_assert!`/
//! `prop_assert_eq!`, `any`, integer-range and tuple strategies,
//! `collection::{vec, hash_set}` and `option::of`.
//!
//! Differences from the real crate, by design:
//! * **no shrinking** — a failing case panics with its inputs still bound,
//!   but is not minimized;
//! * **fixed derivation of case seeds** — deterministic per test name, so
//!   failures reproduce across runs;
//! * `PROPTEST_CASES` overrides the case count, like the real crate.
//!
//! Swap the workspace dependency for real proptest when a registry is
//! available; the test sources need no changes.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod test_runner {
    use super::*;

    /// Stand-in for `proptest::test_runner::Config` (aka `ProptestConfig`).
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }

        /// Case count after the `PROPTEST_CASES` env override.
        pub fn resolved_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// The RNG handed to strategies.
    pub struct TestRng(pub(crate) StdRng);

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Per-test driver: a deterministic RNG derived from the test's name.
    pub struct TestRunner {
        cases: u32,
        rng: TestRng,
    }

    impl TestRunner {
        pub fn new(config: Config, name: &str) -> Self {
            // FNV-1a of the test path: stable, collision-irrelevant here.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRunner {
                cases: config.resolved_cases(),
                rng: TestRng(StdRng::seed_from_u64(h)),
            }
        }

        pub fn cases(&self) -> u32 {
            self.cases
        }

        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use rand::{Rng, SampleUniform, Standard};
    use std::ops::Range;

    /// Value generator (the `proptest::strategy::Strategy` role, minus
    /// shrinking).
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// `any::<T>()` strategy over a type's whole domain.
    pub struct Any<T>(std::marker::PhantomData<T>);

    pub fn any<T: Standard>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Standard> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen()
        }
    }

    impl<T: SampleUniform + Copy> Strategy for Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    /// Collection-size specifier: exact, half-open, or inclusive.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(*self.start()..*self.end() + 1)
        }
    }
}

pub mod collection {
    use super::strategy::{SizeRange, Strategy};
    use super::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct HashSetStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `proptest::collection::hash_set`.
    pub fn hash_set<S, R>(element: S, size: R) -> HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Hash + Eq,
        R: SizeRange,
    {
        HashSetStrategy { element, size }
    }

    impl<S, R> Strategy for HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Hash + Eq,
        R: SizeRange,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = HashSet::with_capacity(target);
            // Duplicates shrink the result below target, matching the real
            // crate's "best effort within the size range" contract; the try
            // budget bounds pathological element domains.
            for _ in 0..10 * target.max(1) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    pub struct OptionStrategy<S>(S);

    /// `proptest::option::of`: `None` with probability 1/2.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_bool(0.5) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Failing assertions panic immediately (no shrinking pass).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The `proptest!` test-definition macro: expands each `fn name(arg in
/// strategy, ...) { body }` into a `#[test]` that redraws the bound values
/// `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$attr:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new(
                    $cfg,
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..runner.cases() {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            runner.rng(),
                        );
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::{Config, TestRunner};

    #[test]
    fn strategies_respect_bounds() {
        let mut runner = TestRunner::new(Config::default(), "bounds");
        for _ in 0..200 {
            let v = (0u64..10).generate(runner.rng());
            assert!(v < 10);
            let t = (0usize..5, 100u64..200).generate(runner.rng());
            assert!(t.0 < 5 && (100..200).contains(&t.1));
            let xs = crate::collection::vec(any::<u32>(), 3usize..7).generate(runner.rng());
            assert!((3..7).contains(&xs.len()));
            let hs = crate::collection::hash_set(0u64..50, 0usize..10).generate(runner.rng());
            assert!(hs.len() < 10);
            let exact = crate::collection::vec(any::<bool>(), 4usize).generate(runner.rng());
            assert_eq!(exact.len(), 4);
        }
    }

    #[test]
    fn option_of_produces_both_variants() {
        let mut runner = TestRunner::new(Config::default(), "opts");
        let strat = crate::option::of(0u64..100);
        let vals: Vec<Option<u64>> = (0..200).map(|_| strat.generate(runner.rng())).collect();
        assert!(vals.iter().any(|v| v.is_some()));
        assert!(vals.iter().any(|v| v.is_none()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_multiple_args(a in 0u64..100, b in 0usize..10) {
            prop_assert!(a < 100);
            prop_assert!(b < 10, "b = {}", b);
            prop_assert_eq!(a + 1, 1 + a);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config_uses_default(v in crate::collection::vec(any::<u64>(), 0..20)) {
            prop_assert!(v.len() < 20);
        }
    }
}
