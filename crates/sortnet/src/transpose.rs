//! Cache-agnostic parallel matrix transposition.
//!
//! Matrix transposition is the glue of the paper's recursive butterfly
//! implementations: REC-ORBA, REC-SORT and the recursive bitonic merge all
//! interleave recursive phases with transposes of (bins-as-cells) matrices
//! (§D.1, §E.1.2). The recursive halving layout below gives the standard
//! cache-agnostic bound `O(RC·chunk/B)` misses and `O(log(RC))` span.
//!
//! Cells are `chunk` consecutive elements (a whole bin when transposing bin
//! matrices, a single element for bitonic merges).

use fj::Ctx;
use metrics::{RawTracked, Tracked};

/// Tile edge below which we transpose with plain loops.
const TILE: usize = 8;

/// Transpose the `rows × cols` matrix of `chunk`-element cells stored
/// row-major in `src` into `dst` (which becomes `cols × rows`, row-major).
pub fn transpose<C: Ctx, T: Copy + Send>(
    c: &C,
    src: &mut Tracked<'_, T>,
    dst: &mut Tracked<'_, T>,
    rows: usize,
    cols: usize,
    chunk: usize,
) {
    assert_eq!(src.len(), rows * cols * chunk, "src shape mismatch");
    assert_eq!(dst.len(), rows * cols * chunk, "dst shape mismatch");
    let s = src.as_raw();
    let d = dst.as_raw();
    // SAFETY: rec splits the (row, col) rectangle into disjoint quadrants;
    // the map (r, c) -> (c, r) is injective, so concurrent tasks write
    // disjoint dst cells and read disjoint src cells.
    rec(c, &s, &d, 0, rows, 0, cols, rows, cols, chunk);
}

#[allow(clippy::too_many_arguments)]
fn rec<C: Ctx, T: Copy + Send>(
    c: &C,
    src: &RawTracked<T>,
    dst: &RawTracked<T>,
    r0: usize,
    r1: usize,
    c0: usize,
    c1: usize,
    rows: usize,
    cols: usize,
    chunk: usize,
) {
    let dr = r1 - r0;
    let dc = c1 - c0;
    if dr <= TILE && dc <= TILE {
        for r in r0..r1 {
            for col in c0..c1 {
                // SAFETY: in-bounds by construction; disjointness per above.
                unsafe {
                    dst.copy_from(
                        c,
                        src,
                        (r * cols + col) * chunk,
                        (col * rows + r) * chunk,
                        chunk,
                    );
                }
            }
        }
        return;
    }
    if dr >= dc {
        let rm = r0 + dr / 2;
        c.join(
            |c| rec(c, src, dst, r0, rm, c0, c1, rows, cols, chunk),
            |c| rec(c, src, dst, rm, r1, c0, c1, rows, cols, chunk),
        );
    } else {
        let cm = c0 + dc / 2;
        c.join(
            |c| rec(c, src, dst, r0, r1, c0, cm, rows, cols, chunk),
            |c| rec(c, src, dst, r0, r1, cm, c1, rows, cols, chunk),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj::{Pool, SeqCtx};
    use metrics::{measure, CacheConfig, TraceMode};

    fn check_transpose(rows: usize, cols: usize, chunk: usize) {
        let c = SeqCtx::new();
        let n = rows * cols * chunk;
        let mut src: Vec<u64> = (0..n as u64).collect();
        let mut dst = vec![0u64; n];
        let mut ts = Tracked::new(&c, &mut src);
        let mut td = Tracked::new(&c, &mut dst);
        transpose(&c, &mut ts, &mut td, rows, cols, chunk);
        for r in 0..rows {
            for col in 0..cols {
                for k in 0..chunk {
                    assert_eq!(
                        dst[(col * rows + r) * chunk + k],
                        ((r * cols + col) * chunk + k) as u64,
                        "cell ({r},{col}) element {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn square_elementwise() {
        check_transpose(16, 16, 1);
    }

    #[test]
    fn rectangular_chunked() {
        check_transpose(8, 32, 4);
        check_transpose(32, 8, 3);
        check_transpose(1, 64, 2);
        check_transpose(64, 1, 2);
    }

    #[test]
    fn parallel_matches_sequential() {
        let pool = Pool::new(4);
        let n = 64 * 32;
        let mut src: Vec<u64> = (0..n as u64).collect();
        let mut expect = vec![0u64; n];
        for r in 0..64 {
            for col in 0..32 {
                expect[col * 64 + r] = src[r * 32 + col];
            }
        }
        let mut dst = vec![0u64; n];
        pool.run(|p| {
            let mut ts = Tracked::new(p, &mut src);
            let mut td = Tracked::new(p, &mut dst);
            transpose(p, &mut ts, &mut td, 64, 32, 1);
        });
        assert_eq!(dst, expect);
    }

    #[test]
    fn transpose_is_scan_bound_in_cache() {
        // A cache-agnostic transpose of n cells must incur O(n·chunk/B)
        // misses when M = Ω(B²); allow a small constant slack.
        let (_, rep) = measure(CacheConfig::new(1 << 12, 16), TraceMode::Off, |c| {
            let n = 64 * 64;
            let mut src = vec![0u64; n];
            let mut dst = vec![0u64; n];
            let mut ts = Tracked::new(c, &mut src);
            let mut td = Tracked::new(c, &mut dst);
            transpose(c, &mut ts, &mut td, 64, 64, 1);
        });
        let n_words = (64 * 64 * 2) as u64; // src + dst
        let scan = n_words / 16;
        assert!(
            rep.cache_misses <= 4 * scan,
            "transpose misses {} exceed 4x scan bound {}",
            rep.cache_misses,
            scan
        );
    }

    #[test]
    fn transpose_span_is_logarithmic() {
        let (_, rep) = measure(CacheConfig::default(), TraceMode::Off, |c| {
            let n = 64 * 64;
            let mut src = vec![0u64; n];
            let mut dst = vec![0u64; n];
            let mut ts = Tracked::new(c, &mut src);
            let mut td = Tracked::new(c, &mut dst);
            transpose(c, &mut ts, &mut td, 64, 64, 1);
        });
        // 4096 cells: span should be O(log n) fork depth + O(TILE²) leaf,
        // far below the O(n) a sequential transpose would show.
        assert!(rep.span < 400, "span {} not logarithmic", rep.span);
        assert!(rep.work >= 4096);
    }
}
