//! Randomized Shellsort (Goodrich, SODA 2010) — a data-oblivious sorting
//! *algorithm* (randomized network) with `O(n log n)` comparisons that
//! sorts with very high probability.
//!
//! ## Role in this reproduction
//!
//! The paper's asymptotically optimal variants invoke the AKS network
//! \[AKS83\] on poly-log-sized instances. AKS has galactic constants and has
//! never been practically implemented; the paper itself swaps it for
//! bitonic sort in the practical variant (§3.4). We provide randomized
//! Shellsort as an honest `O(n log n)`-comparison oblivious alternative:
//! its comparator sequence is chosen by public coins *independent of the
//! data*, so its access pattern is trivially simulatable, exactly like AKS.
//! Callers that need certainty verify sortedness (a fixed-pattern scan) and
//! re-run with fresh coins on failure — the same negligible-failure retry
//! contract as ORBA overflow.

use crate::cx::{cex_raw, KeyFn};
use fj::{counters, grain_for, par_for, Ctx};
use metrics::{ScratchPool, Tracked};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Number of random matchings per region compare (Goodrich uses c = 1 with
/// extra passes; we use 4 for a comfortably low failure rate at small n).
const MATCHINGS: usize = 4;

/// Compare-exchange a random matching between regions `[a, a+len)` and
/// `[b, b+len)`, repeated [`MATCHINGS`] times. The comparators of one
/// matching are wire-disjoint, so they evaluate as one parallel layer.
/// `perm` is caller-provided scratch for the matching (length `len`).
#[allow(clippy::too_many_arguments)]
fn compare_regions<C: Ctx, T: Copy + Send>(
    c: &C,
    t: &mut Tracked<'_, T>,
    key: &impl KeyFn<T>,
    rng: &mut StdRng,
    a: usize,
    b: usize,
    len: usize,
    perm: &mut [usize],
) {
    let perm = &mut perm[..len];
    for (k, p) in perm.iter_mut().enumerate() {
        *p = k;
    }
    let raw = t.as_raw();
    for _ in 0..MATCHINGS {
        perm.shuffle(rng);
        let perm_ref = &*perm;
        par_for(c, 0, len, grain_for(c), &|c, k| {
            // SAFETY: π is a permutation, so the pairs (a+k, b+π(k)) are
            // pairwise disjoint within a matching.
            unsafe { cex_raw(c, &raw, key, a + k, b + perm_ref[k], true) };
        });
    }
}

/// One pass of randomized Shellsort. Sorts `t` (power-of-two length) with
/// all but very small probability; returns nothing — use
/// [`randomized_shellsort`] for the verified retry loop.
fn shellsort_pass<C: Ctx, T: Copy + Send>(
    c: &C,
    scratch: &ScratchPool,
    t: &mut Tracked<'_, T>,
    key: &impl KeyFn<T>,
    rng: &mut StdRng,
) {
    let n = t.len();
    // One lease covers every matching in the pass (gap never exceeds n/2).
    let mut perm = scratch.lease((n / 2).max(1), 0usize);
    let mut gap = n / 2;
    while gap >= 1 {
        let regions = n / gap;
        // Shaker pass: left-to-right then right-to-left over neighbours.
        for i in 0..regions.saturating_sub(1) {
            compare_regions(c, t, key, rng, i * gap, (i + 1) * gap, gap, &mut perm);
        }
        for i in (0..regions.saturating_sub(1)).rev() {
            compare_regions(c, t, key, rng, i * gap, (i + 1) * gap, gap, &mut perm);
        }
        // Extended brick passes: distances 3 and 2.
        for d in [3usize, 2] {
            for i in 0..regions.saturating_sub(d) {
                compare_regions(c, t, key, rng, i * gap, (i + d) * gap, gap, &mut perm);
            }
        }
        // Odd-even passes over neighbours.
        for parity in [1usize, 0] {
            let mut i = parity;
            while i + 1 < regions {
                compare_regions(c, t, key, rng, i * gap, (i + 1) * gap, gap, &mut perm);
                i += 2;
            }
        }
        gap /= 2;
    }
}

/// Oblivious check that `t` is sorted ascending (fixed access pattern).
fn is_sorted_oblivious<C: Ctx, T: Copy + Send>(
    c: &C,
    t: &mut Tracked<'_, T>,
    key: &impl KeyFn<T>,
) -> bool {
    let mut ok = true;
    for i in 1..t.len() {
        let a = t.get(c, i - 1);
        let b = t.get(c, i);
        c.work(1);
        // Accumulate without branching so the scan stays fixed-pattern.
        ok &= key(&a) <= key(&b);
    }
    ok
}

/// Randomized Shellsort with verified retry: sorts `t` (power-of-two
/// length) using `O(n log n)` comparisons per attempt. Returns the number
/// of attempts used (1 in essentially every run).
pub fn randomized_shellsort<C: Ctx, T: Copy + Send>(
    c: &C,
    scratch: &ScratchPool,
    t: &mut Tracked<'_, T>,
    key: &impl KeyFn<T>,
    seed: u64,
) -> usize {
    let n = t.len();
    if n <= 1 {
        return 1;
    }
    assert!(
        n.is_power_of_two(),
        "randomized shellsort requires power-of-two length"
    );
    c.count(counters::SORTS, 1);
    let mut rng = StdRng::seed_from_u64(seed);
    for attempt in 1..=64 {
        shellsort_pass(c, scratch, t, key, &mut rng);
        if is_sorted_oblivious(c, t, key) {
            return attempt;
        }
        c.count(counters::RETRIES, 1);
        // Fresh coins for the retry.
        rng = StdRng::seed_from_u64(rng.gen());
    }
    panic!("randomized shellsort failed 64 consecutive attempts; input length {n}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj::SeqCtx;
    use metrics::{measure, CacheConfig, TraceMode};

    fn key64(x: &u64) -> u128 {
        *x as u128
    }

    #[test]
    fn sorts_scrambled_inputs() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        for n in [2usize, 8, 64, 256, 1024] {
            let mut v: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) >> 13)
                .collect();
            let mut expect = v.clone();
            expect.sort_unstable();
            let mut t = Tracked::new(&c, &mut v);
            let attempts = randomized_shellsort(&c, &sp, &mut t, &key64, 42);
            assert_eq!(v, expect, "n = {n}");
            assert_eq!(attempts, 1, "n = {n} needed retries");
        }
    }

    #[test]
    fn sorts_adversarial_patterns() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let n = 512;
        let patterns: Vec<Vec<u64>> = vec![
            (0..n as u64).rev().collect(),
            (0..n as u64).map(|i| i % 2).collect(),
            vec![7; n],
            (0..n as u64)
                .map(|i| if i < (n / 2) as u64 { i + 1000 } else { i })
                .collect(),
        ];
        for (k, p) in patterns.into_iter().enumerate() {
            let mut v = p;
            let mut expect = v.clone();
            expect.sort_unstable();
            let mut t = Tracked::new(&c, &mut v);
            randomized_shellsort(&c, &sp, &mut t, &key64, 7 + k as u64);
            assert_eq!(v, expect, "pattern {k}");
        }
    }

    #[test]
    fn comparison_count_is_n_log_n() {
        // O(n log n) with the constant from MATCHINGS and the pass count:
        // ~8 region passes per gap level, MATCHINGS matchings each.
        let n = 1 << 12;
        let (_, rep) = measure(CacheConfig::default(), TraceMode::Off, |c| {
            let mut v: Vec<u64> = (0..n as u64).rev().collect();
            let sp = ScratchPool::new();
            let mut t = Tracked::new(c, &mut v);
            randomized_shellsort(c, &sp, &mut t, &key64, 3);
        });
        let nlogn = (n as f64) * (n as f64).log2();
        let cmp = rep.comparisons as f64;
        assert!(
            cmp < 40.0 * nlogn,
            "comparisons {cmp} not O(n log n) ({nlogn})"
        );
        assert!(cmp > nlogn, "suspiciously few comparisons {cmp}");
    }

    #[test]
    fn trace_depends_only_on_seed_and_length() {
        let n = 256;
        let run = |data: Vec<u64>| {
            let (_, rep) = measure(CacheConfig::default(), TraceMode::Hash, |c| {
                let mut v = data.clone();
                let sp = ScratchPool::new();
                let mut t = Tracked::new(c, &mut v);
                randomized_shellsort(c, &sp, &mut t, &key64, 99);
            });
            (rep.trace_hash, rep.trace_len)
        };
        let a = run((0..n as u64).rev().collect());
        let b = run(vec![5u64; n]);
        assert_eq!(a, b, "same seed + length must give identical traces");
    }
}
