//! Oblivious compare-exchange gates.
//!
//! A comparator network touches a *fixed* sequence of addresses regardless
//! of the data, which is what makes it data-oblivious under Definition 1:
//! both inputs are always read and both outputs always written, so the only
//! data-dependence is in register-level values, which the paper's adversary
//! cannot observe. We additionally keep the value selection branch-light
//! (a single well-predicted select) as a best-effort hardening.

use fj::{counters, Ctx};
use metrics::{RawTracked, Tracked};

/// Key extractor used by every sorting network in this crate. `u128` keys
/// are wide enough for every composite key the oblivious algorithms build
/// (flag ‖ group ‖ label ‖ tiebreak).
pub trait KeyFn<T>: Fn(&T) -> u128 + Sync {}
impl<T, F: Fn(&T) -> u128 + Sync> KeyFn<T> for F {}

/// Compare-exchange elements `i` and `j` of `t`: after the call the element
/// with the smaller key is at `i` if `up`, at `j` otherwise. Always performs
/// two reads and two writes.
#[inline]
pub fn cex<C: Ctx, T: Copy>(
    c: &C,
    t: &mut Tracked<'_, T>,
    key: &impl KeyFn<T>,
    i: usize,
    j: usize,
    up: bool,
) {
    let a = t.get(c, i);
    let b = t.get(c, j);
    c.work(1);
    c.count(counters::COMPARISONS, 1);
    let swap = (key(&a) > key(&b)) == up;
    let (x, y) = if swap { (b, a) } else { (a, b) };
    t.set(c, i, x);
    t.set(c, j, y);
}

/// [`cex`] through a raw parallel view.
///
/// # Safety
/// No concurrent task may access indices `i` or `j`.
#[inline]
pub unsafe fn cex_raw<C: Ctx, T: Copy>(
    c: &C,
    t: &RawTracked<T>,
    key: &impl KeyFn<T>,
    i: usize,
    j: usize,
    up: bool,
) {
    let a = t.get(c, i);
    let b = t.get(c, j);
    c.work(1);
    c.count(counters::COMPARISONS, 1);
    let swap = (key(&a) > key(&b)) == up;
    let (x, y) = if swap { (b, a) } else { (a, b) };
    t.set(c, i, x);
    t.set(c, j, y);
}

/// Branchless select for `u64` values: returns `b` if `cond` else `a`,
/// compiling to masking arithmetic (no data-dependent branch).
#[inline(always)]
pub fn select_u64(cond: bool, a: u64, b: u64) -> u64 {
    let mask = (cond as u64).wrapping_neg();
    (a & !mask) | (b & mask)
}

/// Branchless select for `u128` values.
#[inline(always)]
pub fn select_u128(cond: bool, a: u128, b: u128) -> u128 {
    let mask = (cond as u128).wrapping_neg();
    (a & !mask) | (b & mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj::SeqCtx;

    #[test]
    fn cex_orders_ascending_and_descending() {
        let c = SeqCtx::new();
        let key = |x: &u64| *x as u128;
        let mut v = vec![5u64, 3];
        let mut t = Tracked::new(&c, &mut v);
        cex(&c, &mut t, &key, 0, 1, true);
        assert_eq!(v, vec![3, 5]);

        let mut v = vec![3u64, 5];
        let mut t = Tracked::new(&c, &mut v);
        cex(&c, &mut t, &key, 0, 1, false);
        assert_eq!(v, vec![5, 3]);
    }

    #[test]
    fn cex_is_stable_on_equal_keys() {
        let c = SeqCtx::new();
        let key = |x: &(u64, u64)| x.0 as u128;
        let mut v = vec![(7u64, 0u64), (7, 1)];
        let mut t = Tracked::new(&c, &mut v);
        cex(&c, &mut t, &key, 0, 1, true);
        assert_eq!(v, vec![(7, 0), (7, 1)], "equal keys must not swap");
    }

    #[test]
    fn select_picks_correctly() {
        assert_eq!(select_u64(true, 1, 2), 2);
        assert_eq!(select_u64(false, 1, 2), 1);
        assert_eq!(select_u128(true, 10, 20), 20);
        assert_eq!(select_u128(false, 10, 20), 10);
    }
}
