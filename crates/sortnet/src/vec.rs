//! Vectorized oblivious kernels: runtime-dispatched SIMD batched
//! compare-exchange for the comparator slabs, plus the branchless
//! whole-cell selects the compaction/rewrite loops route through.
//!
//! # Dispatch model
//!
//! The backend is chosen **once per process** ([`active_backend`]):
//! AVX2 when `is_x86_feature_detected!("avx2")` says the hardware has it
//! and `DOB_NO_SIMD` is unset, scalar otherwise. Which backend runs is a
//! public *hardware* fact — like the cache-line size or the core count,
//! it is a property of the machine, not of the data — so dispatching on
//! it leaks nothing under Definition 1. Every kernel also has a
//! `_with(Backend, ..)` form so tests and benches can run both backends
//! in one process and compare outputs and traces bit for bit.
//!
//! # Why the trace cannot change
//!
//! A batched kernel differs from its scalar twin only in ALU width. It
//! first replays, pair by pair in the scalar order, the exact
//! [`fj::Ctx::touch`]/[`fj::Ctx::work`]/[`fj::Ctx::count`] sequence the
//! scalar gate emits (free on non-metering executors — the `Ctx` methods
//! are inlined no-ops there), and only then moves the data with a
//! branchless scalar tag verdict + 256-bit masked xor-swap. Same addresses
//! in the same order, same work and comparator counters, no
//! data-dependent branch: the adversary-visible trace and the gated cost
//! model are *identical* across backends, on every input. DESIGN.md §14
//! gives the full argument and the per-kernel coverage table.

use crate::cx::select_u128;
use crate::tag::{cex_cell_raw, TagCell};
use fj::{counters, Access, Ctx};
use metrics::RawTracked;
use std::sync::OnceLock;

/// How many independent cell pairs the AVX2 slab kernel retires per
/// unrolled iteration (each 32-byte [`TagCell`] is one 256-bit vector).
/// Shorter slabs still run vectorized — one pair is one vector — this
/// only bounds the unroll.
pub const LANES: usize = 4;

/// The compare-exchange backend for the cell comparator slabs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Per-pair `select_u128` masks — the portable branchless gate.
    Scalar,
    /// Scalar tag verdict + 256-bit masked xor-swap of whole cells,
    /// four independent pairs per unrolled iteration.
    Avx2,
}

impl Backend {
    /// Short name for bench rows and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
        }
    }
}

fn detect() -> Backend {
    if std::env::var_os("DOB_NO_SIMD").is_some_and(|v| !v.is_empty() && v != "0") {
        return Backend::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    if std::is_x86_feature_detected!("avx2") {
        return Backend::Avx2;
    }
    Backend::Scalar
}

/// The process-wide backend, detected once: AVX2 where the hardware has
/// it, scalar otherwise or under `DOB_NO_SIMD=1`. A public hardware
/// fact — see the module docs for why dispatching on it is oblivious.
pub fn active_backend() -> Backend {
    static ACTIVE: OnceLock<Backend> = OnceLock::new();
    *ACTIVE.get_or_init(detect)
}

/// Replay the accounting of one scalar [`cex_cell_raw`] on `(i, j)`
/// without touching the data: two reads, the comparator charge, two
/// writes. Batched kernels call this per pair, in scalar order, before
/// the vector data movement.
#[inline(always)]
fn account_cex<C: Ctx>(c: &C, t: &RawTracked<TagCell>, i: usize, j: usize) {
    let (buf, off, wpe) = (t.buf(), t.off(), t.wpe());
    c.touch(buf, off + i as u64 * wpe, wpe, Access::Read);
    c.work(1);
    c.touch(buf, off + j as u64 * wpe, wpe, Access::Read);
    c.work(1);
    c.work(1);
    c.count(counters::COMPARISONS, 1);
    c.touch(buf, off + i as u64 * wpe, wpe, Access::Write);
    c.work(1);
    c.touch(buf, off + j as u64 * wpe, wpe, Access::Write);
    c.work(1);
}

/// Compare-exchange a bitonic-level slab: the `stride` independent pairs
/// `(s + k, s + k + stride)` for `k in 0..stride`, all with direction
/// `up`, exactly as the scalar level loop visits them. Dispatches on
/// [`active_backend`].
///
/// # Safety
/// As [`cex_cell_raw`]: no concurrent task may access `s..s + 2*stride`.
#[inline]
pub unsafe fn cex_cells_slab<C: Ctx>(
    c: &C,
    t: &RawTracked<TagCell>,
    s: usize,
    stride: usize,
    up: bool,
) {
    cex_cells_slab_with(active_backend(), c, t, s, stride, up)
}

/// [`cex_cells_slab`] with an explicit backend — the hook equivalence
/// tests and the simd-vs-scalar bench ablation drive both paths through.
///
/// # Safety
/// As [`cex_cells_slab`].
pub unsafe fn cex_cells_slab_with<C: Ctx>(
    backend: Backend,
    c: &C,
    t: &RawTracked<TagCell>,
    s: usize,
    stride: usize,
    up: bool,
) {
    debug_assert!(s + 2 * stride <= t.len());
    #[cfg(target_arch = "x86_64")]
    if backend == Backend::Avx2 {
        for k in 0..stride {
            account_cex(c, t, s + k, s + k + stride);
        }
        // SAFETY: backend is Avx2 only when detection succeeded; the
        // index range is the caller's exclusive slab.
        avx2::cex_slab(t.as_mut_ptr(), s, stride, up);
        return;
    }
    let _ = backend; // non-x86_64 builds have exactly one backend
    for k in 0..stride {
        cex_cell_raw(c, t, s + k, s + k + stride, up);
    }
}

/// Branchless whole-cell select: `b` if `cond` else `a`. Both lanes go
/// through [`select_u128`] masks, which the compiler lowers to vector
/// selects on SSE2+ targets — the rewrite loops (compaction shifts,
/// merge fix-up, LWW projection) route every cell choice through here so
/// no secret-dependent branch reappears at a call site.
#[inline(always)]
pub fn select_cell(cond: bool, a: TagCell, b: TagCell) -> TagCell {
    TagCell {
        tag: select_u128(cond, a.tag, b.tag),
        aux: select_u128(cond, a.aux, b.aux),
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::TagCell;
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::*;

    /// One branchless compare-exchange: `*pa`/`*pb` are 32-byte cells
    /// handled as one 256-bit vector each. The tag verdict is computed
    /// on the scalar side — a u128 compare is one `cmp`/`sbb` pair and
    /// `-(swap as i64)` a flag materialization, all branchless — then
    /// broadcast and applied as a vector masked xor-swap. Keeping the
    /// verdict off the vector unit beats an all-SIMD compare chain: the
    /// cross-lane verdict broadcast it needs is a latency-3,
    /// port-5-only permute, while the scalar compare runs on the ports
    /// the swap leaves idle. Two loads and two stores, exactly like the
    /// scalar gate.
    ///
    /// # Safety
    /// AVX2 must be available; `pa`/`pb` must be valid, disjoint cells.
    #[inline(always)]
    unsafe fn cex1(pa: *mut TagCell, pb: *mut TagCell, up: bool) {
        let ta = (pa as *const u128).read_unaligned();
        let tb = (pb as *const u128).read_unaligned();
        let swap = (ta > tb) == up;
        let m = _mm256_set1_epi64x(-(swap as i64));
        let a = _mm256_loadu_si256(pa as *const __m256i);
        let b = _mm256_loadu_si256(pb as *const __m256i);
        let diff = _mm256_and_si256(_mm256_xor_si256(a, b), m);
        _mm256_storeu_si256(pa as *mut __m256i, _mm256_xor_si256(a, diff));
        _mm256_storeu_si256(pb as *mut __m256i, _mm256_xor_si256(b, diff));
    }

    /// The slab data movement: pairs `(s+k, s+k+stride)`, `k in
    /// 0..stride`, direction `up`, four independent pairs per unrolled
    /// iteration (the pairs of a bitonic level never overlap, so the CPU
    /// pipelines them freely).
    ///
    /// # Safety
    /// AVX2 must be available; `ptr[s..s + 2*stride]` must be valid and
    /// exclusively owned by the caller.
    #[target_feature(enable = "avx2")]
    pub unsafe fn cex_slab(ptr: *mut TagCell, s: usize, stride: usize, up: bool) {
        let lo = ptr.add(s);
        let hi = ptr.add(s + stride);
        let mut k = 0;
        while k + 4 <= stride {
            cex1(lo.add(k), hi.add(k), up);
            cex1(lo.add(k + 1), hi.add(k + 1), up);
            cex1(lo.add(k + 2), hi.add(k + 2), up);
            cex1(lo.add(k + 3), hi.add(k + 3), up);
            k += 4;
        }
        while k < stride {
            cex1(lo.add(k), hi.add(k), up);
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj::SeqCtx;
    use metrics::Tracked;
    use proptest::prelude::*;

    fn run_slab(backend: Backend, cells: &mut [TagCell], stride: usize, up: bool) {
        let c = SeqCtx::new();
        let mut t = Tracked::new(&c, cells);
        let raw = t.as_raw();
        // SAFETY: exclusive access, sequential.
        unsafe { cex_cells_slab_with(backend, &c, &raw, 0, stride, up) };
        let _ = t;
    }

    #[test]
    fn backends_agree_on_fixed_patterns() {
        for stride in [1usize, 2, 4, 8, 16] {
            for up in [true, false] {
                let mk = |salt: u128| -> Vec<TagCell> {
                    (0..2 * stride as u128)
                        .map(|i| {
                            TagCell::new((i * 0x9E37_79B9 + salt) % 7, i.wrapping_mul(salt | 1))
                        })
                        .collect()
                };
                for salt in [0u128, 1, u128::MAX >> 1, 42] {
                    let mut a = mk(salt);
                    let mut b = a.clone();
                    run_slab(Backend::Scalar, &mut a, stride, up);
                    run_slab(Backend::Avx2, &mut b, stride, up);
                    assert_eq!(a, b, "stride {stride} up {up} salt {salt}");
                }
            }
        }
    }

    #[test]
    fn filler_tags_compare_like_scalar() {
        // u128::MAX tags (fillers) exercise the sign-biased unsigned
        // compare at its edge.
        for up in [true, false] {
            let mut a = vec![
                TagCell::filler(),
                TagCell::new(3, 30),
                TagCell::new(u128::MAX - 1, 1),
                TagCell::filler(),
                TagCell::new(0, 0),
                TagCell::new(1 << 64, 2),
                TagCell::filler(),
                TagCell::new(1, 10),
            ];
            let mut b = a.clone();
            run_slab(Backend::Scalar, &mut a, 4, up);
            run_slab(Backend::Avx2, &mut b, 4, up);
            assert_eq!(a, b, "up {up}");
        }
    }

    #[test]
    fn active_backend_is_stable() {
        assert_eq!(active_backend(), active_backend());
    }

    #[test]
    fn select_cell_routes_both_lanes() {
        let a = TagCell::new(1, 2);
        let b = TagCell::new(3, 4);
        assert_eq!(select_cell(false, a, b), a);
        assert_eq!(select_cell(true, a, b), b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_backends_bit_identical(
            his in proptest::collection::vec(any::<u64>(), 32),
            los in proptest::collection::vec(any::<u64>(), 32),
            sel in any::<u64>(),
        ) {
            let up = sel & 1 == 0;
            for stride in [4usize, 8, 16] {
                let mut a: Vec<TagCell> = his[..2 * stride]
                    .iter()
                    .zip(&los)
                    .map(|(&h, &l)| {
                        // Collapse some high lanes to force equal-high ties
                        // through the (hi_eq & lo_gt) path.
                        let h = if sel & 2 == 0 { h % 3 } else { h };
                        TagCell::new(
                            ((h as u128) << 64) | l as u128,
                            ((l as u128) << 64) | h as u128,
                        )
                    })
                    .collect();
                let mut b = a.clone();
                run_slab(Backend::Scalar, &mut a, stride, up);
                run_slab(Backend::Avx2, &mut b, stride, up);
                prop_assert_eq!(&a, &b);
            }
        }
    }
}
