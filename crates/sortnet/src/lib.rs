//! # sortnet — data-oblivious sorting networks for binary fork-join
//!
//! Comparator networks are data-oblivious by construction: the sequence of
//! compared addresses is fixed in advance. This crate supplies every
//! network the paper's constructions need:
//!
//! * [`bitonic`] — Batcher's bitonic network, sequential and naively
//!   parallelized (the strawman with `O(log³ n)` span);
//! * [`bitonic_rec`] — the paper's cache-agnostic recursive bitonic sort
//!   (§E.1, Theorem E.1): span `O(log² n · log log n)`, cache complexity
//!   `O((n/B)·log_M n·log(n/M))`;
//! * [`oddeven`] — Batcher's odd-even mergesort (alternative engine);
//! * [`shellsort`] — Goodrich's randomized Shellsort, the `O(n log n)`-
//!   comparison stand-in for the AKS network (see DESIGN.md §4);
//! * [`network`] — explicit layered networks, used to regenerate Figure 1;
//! * [`tag`] — packed 32-byte tag cells (`key ‖ payload` lanes) and the
//!   branchless recursive bitonic over them: the tag-sort fast path that
//!   keeps wide records out of the comparator layers;
//! * [`vec`](mod@vec) — runtime-dispatched SIMD (AVX2) batched
//!   compare-exchange for the cell comparator slabs, scalar fallback via
//!   `DOB_NO_SIMD=1`, trace-identical to the scalar gates by accounting
//!   replay (DESIGN.md §14);
//! * [`transpose`](mod@transpose) — cache-agnostic parallel matrix transposition, the
//!   shared skeleton of every recursive butterfly in the workspace.

pub mod bitonic;
pub mod bitonic_rec;
pub mod cx;
pub mod network;
pub mod oddeven;
pub mod shellsort;
pub mod tag;
pub mod transpose;
pub mod vec;

pub use bitonic::{bitonic_merge_seq, bitonic_sort_flat_par, bitonic_sort_seq};
pub use bitonic_rec::{
    bitonic_merge_rec, bitonic_sort_rec, par_rows2, sort_slice_rec, sort_slice_rec_in,
};
pub use cx::{cex, cex_raw, select_u128, select_u64, KeyFn};
pub use network::{Comparator, Network};
pub use oddeven::oddeven_sort;
pub use shellsort::randomized_shellsort;
pub use tag::{
    cells_merge_rec, cells_merge_rec_with, cells_sort_rec, cells_sort_rec_with, cex_cell,
    cex_cell_raw, tag_of, TagCell,
};
pub use transpose::transpose;
pub use vec::{active_backend, cex_cells_slab, cex_cells_slab_with, select_cell, Backend};
