//! Cache-agnostic, binary fork-join bitonic sort (§E.1, Theorem E.1).
//!
//! Each bitonic merge is a (reverse) butterfly network. Rather than
//! evaluating it layer by layer — which costs `O((n/B)·log² n)` cache
//! misses and `O(log³ n)` span — the paper evaluates it recursively: view
//! the `m` inputs as an `R × C` matrix (`R = 2^⌈k/2⌉`, `C = m/R`),
//! transpose so the strided first-stage butterflies become contiguous rows,
//! recursively merge the rows, transpose back, and recursively merge the
//! contiguous second-stage rows. This yields
//!
//! * work `O(n log² n)` (unchanged),
//! * span `O(log² n · log log n)`,
//! * cache complexity `O((n/B) · log_M n · log(n/M))` for `n > M ≥ B²`,
//!
//! which is Theorem E.1. The recursion structure mirrors the FFT algorithm
//! of Frigo et al. and is shared with REC-ORBA/REC-SORT in `obliv-core`.

use crate::bitonic::{bitonic_merge_seq, bitonic_sort_seq};
use crate::cx::KeyFn;
use crate::transpose::transpose;
use fj::{counters, Ctx};
use metrics::Tracked;

/// Below this size, fall back to the sequential network (fits in any
/// realistic cache line budget and keeps the recursion shallow). Shared
/// with the cell networks in [`crate::tag`], which must evaluate the
/// *same* comparator schedule (enforced by a parity test there).
pub(crate) const BASE: usize = 32;

/// Run `f(row_index, a_row, b_row)` over matching length-`rowlen` rows of
/// two equally sized tracked slices, forking in a balanced binary tree.
pub fn par_rows2<'t, C, T, F>(
    c: &C,
    mut a: Tracked<'t, T>,
    mut b: Tracked<'t, T>,
    rows: usize,
    rowlen: usize,
    base_row: usize,
    f: &F,
) where
    C: Ctx,
    T: Copy + Send,
    F: Fn(&C, usize, Tracked<'_, T>, Tracked<'_, T>) + Sync,
{
    debug_assert_eq!(a.len(), rows * rowlen);
    debug_assert_eq!(b.len(), rows * rowlen);
    if rows == 1 {
        f(c, base_row, a.borrow_mut(), b.borrow_mut());
        return;
    }
    let half = rows / 2;
    let (a_lo, a_hi) = a.split_at_mut(half * rowlen);
    let (b_lo, b_hi) = b.split_at_mut(half * rowlen);
    c.join(
        move |c| par_rows2(c, a_lo, b_lo, half, rowlen, base_row, f),
        move |c| par_rows2(c, a_hi, b_hi, rows - half, rowlen, base_row + half, f),
    );
}

/// Cache-agnostic recursive bitonic merge (BITONIC-MERGE of §E.1.2).
///
/// `t` must hold a bitonic sequence of power-of-two length; `tmp` is
/// equally sized scratch. On return `t` is sorted (ascending iff `up`) and
/// `tmp` holds garbage.
pub fn bitonic_merge_rec<C: Ctx, T: Copy + Send>(
    c: &C,
    t: &mut Tracked<'_, T>,
    tmp: &mut Tracked<'_, T>,
    key: &impl KeyFn<T>,
    up: bool,
) {
    let m = t.len();
    debug_assert_eq!(tmp.len(), m);
    if m <= BASE {
        bitonic_merge_seq(c, t, key, up);
        return;
    }
    debug_assert!(m.is_power_of_two());
    let k = m.trailing_zeros() as usize;
    let cdim = 1usize << (k / 2); // second-stage (contiguous) row length
    let rdim = m / cdim; // first-stage (strided) row length, ≥ cdim

    // Stage 1: transpose R×C → C×R so each former column (stride C in the
    // original layout, i.e. the butterflies of distance m/2 … C) becomes a
    // contiguous row, then merge the rows recursively.
    transpose(c, t, tmp, rdim, cdim, 1);
    par_rows2(
        c,
        tmp.borrow_mut(),
        t.borrow_mut(),
        cdim,
        rdim,
        0,
        &|c, _, mut row, mut scratch| {
            bitonic_merge_rec(c, &mut row, &mut scratch, key, up);
        },
    );

    // Stage 2: transpose back and merge the contiguous rows of length C
    // (butterflies of distance C/2 … 1).
    transpose(c, tmp, t, cdim, rdim, 1);
    par_rows2(
        c,
        t.borrow_mut(),
        tmp.borrow_mut(),
        rdim,
        cdim,
        0,
        &|c, _, mut row, mut scratch| {
            bitonic_merge_rec(c, &mut row, &mut scratch, key, up);
        },
    );
}

/// Cache-agnostic recursive bitonic sort (BITONIC-SORT of §E.1.1):
/// sorts the two halves in opposite directions in parallel, then runs the
/// recursive bitonic merge.
pub fn bitonic_sort_rec<C: Ctx, T: Copy + Send>(
    c: &C,
    t: &mut Tracked<'_, T>,
    tmp: &mut Tracked<'_, T>,
    key: &impl KeyFn<T>,
    up: bool,
) {
    let n = t.len();
    debug_assert_eq!(tmp.len(), n);
    if n <= 1 {
        return;
    }
    assert!(
        n.is_power_of_two(),
        "bitonic sort requires power-of-two length, got {n}"
    );
    if n <= BASE {
        bitonic_sort_seq(c, t, key, up);
        return;
    }
    c.count(counters::SORTS, 1);
    {
        let (t_lo, t_hi) = t.split_at_mut(n / 2);
        let (s_lo, s_hi) = tmp.split_at_mut(n / 2);
        c.join(
            move |c| {
                let (mut t_lo, mut s_lo) = (t_lo, s_lo);
                bitonic_sort_rec(c, &mut t_lo, &mut s_lo, key, up);
            },
            move |c| {
                let (mut t_hi, mut s_hi) = (t_hi, s_hi);
                bitonic_sort_rec(c, &mut t_hi, &mut s_hi, key, !up);
            },
        );
    }
    bitonic_merge_rec(c, t, tmp, key, up);
}

/// Convenience wrapper: sort a plain slice (power-of-two length) with the
/// cache-agnostic recursive network, allocating scratch internally. Hot
/// paths should prefer [`sort_slice_rec_in`] with a shared pool.
pub fn sort_slice_rec<C: Ctx, T: Copy + Send + Default>(
    c: &C,
    data: &mut [T],
    key: &impl KeyFn<T>,
    up: bool,
) {
    let scratch = metrics::ScratchPool::new();
    sort_slice_rec_in(c, &scratch, data, key, up);
}

/// [`sort_slice_rec`] drawing its merge scratch from a [`ScratchPool`](metrics::ScratchPool)
/// lease instead of a fresh allocation.
pub fn sort_slice_rec_in<C: Ctx, T: Copy + Send + Default>(
    c: &C,
    scratch: &metrics::ScratchPool,
    data: &mut [T],
    key: &impl KeyFn<T>,
    up: bool,
) {
    let mut lease = scratch.lease(data.len(), T::default());
    let mut t = Tracked::new(c, data);
    let mut tmp = Tracked::new(c, &mut lease);
    bitonic_sort_rec(c, &mut t, &mut tmp, key, up);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj::{Pool, SeqCtx};
    use metrics::{measure, CacheConfig, TraceMode};
    use proptest::prelude::*;

    fn key64(x: &u64) -> u128 {
        *x as u128
    }

    fn scrambled(n: usize) -> Vec<u64> {
        (0..n as u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) >> 17)
            .collect()
    }

    #[test]
    fn rec_sort_matches_std_sort() {
        let c = SeqCtx::new();
        for n in [1usize, 2, 4, 32, 64, 128, 1024, 4096] {
            let mut v = scrambled(n);
            let mut expect = v.clone();
            expect.sort_unstable();
            sort_slice_rec(&c, &mut v, &key64, true);
            assert_eq!(v, expect, "n = {n}");
        }
    }

    #[test]
    fn rec_sort_descending() {
        let c = SeqCtx::new();
        let mut v = scrambled(512);
        let mut expect = v.clone();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        sort_slice_rec(&c, &mut v, &key64, false);
        assert_eq!(v, expect);
    }

    #[test]
    fn rec_merge_sorts_bitonic_sequence() {
        let c = SeqCtx::new();
        let mut v: Vec<u64> = (0..512).chain((0..512).rev()).collect();
        let mut tmp = vec![0u64; 1024];
        let mut t = Tracked::new(&c, &mut v);
        let mut s = Tracked::new(&c, &mut tmp);
        bitonic_merge_rec(&c, &mut t, &mut s, &key64, true);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn parallel_rec_sort_matches() {
        let pool = Pool::new(4);
        let mut v = scrambled(1 << 14);
        let mut expect = v.clone();
        expect.sort_unstable();
        pool.run(|p| sort_slice_rec(p, &mut v, &key64, true));
        assert_eq!(v, expect);
    }

    #[test]
    fn rec_beats_flat_on_cache_misses() {
        // Theorem E.1's point: with a small cache, the recursive schedule
        // incurs far fewer misses than layer-by-layer evaluation.
        let n = 1 << 13;
        let cfg = CacheConfig::new(1 << 9, 16); // tiny cache: 32 blocks
        let (_, flat) = measure(cfg, TraceMode::Off, |c| {
            let mut v = scrambled(n);
            let mut t = Tracked::new(c, &mut v);
            crate::bitonic::bitonic_sort_flat_par(c, &mut t, &key64, true);
        });
        let (_, rec) = measure(cfg, TraceMode::Off, |c| {
            let mut v = scrambled(n);
            sort_slice_rec(c, &mut v, &key64, true);
        });
        assert!(
            rec.cache_misses * 2 < flat.cache_misses,
            "rec {} vs flat {}",
            rec.cache_misses,
            flat.cache_misses
        );
    }

    #[test]
    fn rec_beats_flat_on_span() {
        let n = 1 << 13;
        let cfg = CacheConfig::default();
        let (_, flat) = measure(cfg, TraceMode::Off, |c| {
            let mut v = scrambled(n);
            let mut t = Tracked::new(c, &mut v);
            crate::bitonic::bitonic_sort_flat_par(c, &mut t, &key64, true);
        });
        let (_, rec) = measure(cfg, TraceMode::Off, |c| {
            let mut v = scrambled(n);
            sort_slice_rec(c, &mut v, &key64, true);
        });
        assert!(
            rec.span < flat.span,
            "rec span {} vs flat span {}",
            rec.span,
            flat.span
        );
        // Work should agree up to bookkeeping constants (same comparator
        // network evaluated in a different order).
        assert_eq!(rec.comparisons, flat.comparisons);
    }

    #[test]
    fn trace_is_input_independent() {
        // The network's access pattern is fixed: different inputs of equal
        // length must produce identical adversary traces.
        let n = 1 << 10;
        let run = |data: Vec<u64>| {
            let (_, rep) = measure(CacheConfig::default(), TraceMode::Hash, |c| {
                let mut v = data.clone();
                sort_slice_rec(c, &mut v, &key64, true);
            });
            (rep.trace_hash, rep.trace_len)
        };
        let a = run(scrambled(n));
        let b = run((0..n as u64).collect());
        let z = run(vec![0u64; n]);
        assert_eq!(a, b);
        assert_eq!(a, z);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_rec_sorts(v in proptest::collection::vec(any::<u64>(), 0..300)) {
            let n = v.len().next_power_of_two().max(1);
            let mut padded = v.clone();
            padded.resize(n, u64::MAX);
            let c = SeqCtx::new();
            sort_slice_rec(&c, &mut padded, &key64, true);
            let mut expect = v;
            expect.sort_unstable();
            prop_assert_eq!(&padded[..expect.len()], &expect[..]);
        }
    }
}
