//! Explicit comparator-network representation.
//!
//! Used to regenerate **Figure 1** of the paper (the 16-input bitonic
//! sorting network) and to machine-check structural properties: layer
//! counts, comparator counts, and the 0-1 principle.

/// A comparator `(min_to, max_to)`: after evaluation the smaller element is
/// at wire `min_to` and the larger at `max_to`. Descending comparators are
/// expressed by `min_to > max_to`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Comparator {
    pub min_to: u32,
    pub max_to: u32,
}

impl Comparator {
    pub fn lo(&self) -> usize {
        self.min_to.min(self.max_to) as usize
    }

    pub fn hi(&self) -> usize {
        self.min_to.max(self.max_to) as usize
    }

    /// True if the arrow points to the larger wire index (ascending).
    pub fn ascending(&self) -> bool {
        self.max_to > self.min_to
    }
}

/// A layered comparator network on `n` wires. Comparators within a layer
/// are wire-disjoint and can evaluate in parallel.
#[derive(Clone, Debug)]
pub struct Network {
    pub n: usize,
    pub layers: Vec<Vec<Comparator>>,
}

impl Network {
    /// The bitonic sorting network for `n` wires (power of two), layer by
    /// layer — the object Figure 1 draws for `n = 16`.
    pub fn bitonic(n: usize) -> Network {
        assert!(n.is_power_of_two() && n >= 2);
        let mut layers = Vec::new();
        let mut k = 2;
        while k <= n {
            let mut j = k / 2;
            while j >= 1 {
                let mut layer = Vec::with_capacity(n / 2);
                for i in 0..n {
                    let l = i ^ j;
                    if l > i {
                        let asc = (i & k) == 0;
                        layer.push(if asc {
                            Comparator {
                                min_to: i as u32,
                                max_to: l as u32,
                            }
                        } else {
                            Comparator {
                                min_to: l as u32,
                                max_to: i as u32,
                            }
                        });
                    }
                }
                layers.push(layer);
                j /= 2;
            }
            k *= 2;
        }
        Network { n, layers }
    }

    /// Batcher's odd-even mergesort network (power-of-two `n`), flattened
    /// into greedy wire-disjoint layers.
    pub fn oddeven(n: usize) -> Network {
        assert!(n.is_power_of_two() && n >= 2);
        let mut seq: Vec<Comparator> = Vec::new();
        sort(&mut seq, 0, n);
        return Network {
            n,
            layers: layerize(n, seq),
        };

        fn sort(out: &mut Vec<Comparator>, lo: usize, n: usize) {
            if n <= 1 {
                return;
            }
            let m = n / 2;
            sort(out, lo, m);
            sort(out, lo + m, m);
            merge(out, lo, n, 1);
        }

        fn merge(out: &mut Vec<Comparator>, lo: usize, n: usize, r: usize) {
            let step = r * 2;
            if step < n {
                merge(out, lo, n, step);
                merge(out, lo + r, n, step);
                let mut i = lo + r;
                while i + r < lo + n {
                    out.push(Comparator {
                        min_to: i as u32,
                        max_to: (i + r) as u32,
                    });
                    i += step;
                }
            } else {
                out.push(Comparator {
                    min_to: lo as u32,
                    max_to: (lo + r) as u32,
                });
            }
        }

        fn layerize(n: usize, seq: Vec<Comparator>) -> Vec<Vec<Comparator>> {
            // Greedy ASAP layering respecting wire dependencies.
            let mut depth = vec![0usize; n];
            let mut layers: Vec<Vec<Comparator>> = Vec::new();
            for c in seq {
                let d = depth[c.lo()].max(depth[c.hi()]);
                if layers.len() <= d {
                    layers.resize_with(d + 1, Vec::new);
                }
                layers[d].push(c);
                depth[c.lo()] = d + 1;
                depth[c.hi()] = d + 1;
            }
            layers
        }
    }

    /// Total comparator count.
    pub fn size(&self) -> usize {
        self.layers.iter().map(Vec::len).sum()
    }

    /// Depth (number of layers).
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Evaluate the network on a value vector.
    pub fn apply<T: Ord + Copy>(&self, v: &mut [T]) {
        assert_eq!(v.len(), self.n);
        for layer in &self.layers {
            for c in layer {
                let (lo, hi) = (c.min_to as usize, c.max_to as usize);
                let (a, b) = (v[lo], v[hi]);
                v[lo] = a.min(b);
                v[hi] = a.max(b);
            }
        }
    }

    /// Exhaustive 0-1-principle check (exponential in `n`; keep `n ≤ 20`).
    pub fn is_sorting_network(&self) -> bool {
        assert!(self.n <= 20, "0-1 check is exponential; n too large");
        let mut v = vec![0u8; self.n];
        for mask in 0u32..(1u32 << self.n) {
            for (i, slot) in v.iter_mut().enumerate() {
                *slot = ((mask >> i) & 1) as u8;
            }
            self.apply(&mut v);
            if v.windows(2).any(|w| w[0] > w[1]) {
                return false;
            }
        }
        true
    }

    /// ASCII rendering in the style of the paper's Figure 1: one row per
    /// wire, comparators drawn as vertical arrows, one column per layer.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        let cols: Vec<&Vec<Comparator>> = self.layers.iter().collect();
        // Each layer may need several sub-columns if comparators overlap
        // visually; place greedily.
        let mut grid: Vec<Vec<(usize, usize, bool)>> = Vec::new(); // (lo, hi, asc)
        for layer in &cols {
            let mut subcols: Vec<Vec<(usize, usize, bool)>> = vec![Vec::new()];
            for cmp in layer.iter() {
                let (lo, hi, asc) = (cmp.lo(), cmp.hi(), cmp.ascending());
                let mut placed = false;
                for sc in subcols.iter_mut() {
                    if sc.iter().all(|&(l, h, _)| hi < l || lo > h) {
                        sc.push((lo, hi, asc));
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    subcols.push(vec![(lo, hi, asc)]);
                }
            }
            grid.extend(subcols);
        }
        for wire in 0..self.n {
            let mut line = format!("{wire:>2} ─");
            for col in &grid {
                let mut ch = "──";
                for &(lo, hi, asc) in col {
                    if wire == lo {
                        ch = if asc { "─┬" } else { "─▲" };
                    } else if wire == hi {
                        ch = if asc { "─▼" } else { "─┴" };
                    } else if wire > lo && wire < hi {
                        ch = "─│";
                    }
                }
                line.push_str(ch);
                line.push('─');
            }
            line.push('─');
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitonic_16_matches_figure_1_structure() {
        let net = Network::bitonic(16);
        // log2(16) phases of 1..4 layers: 1+2+3+4 = 10 layers,
        // n/2 comparators each.
        assert_eq!(net.depth(), 10);
        assert_eq!(net.size(), 10 * 8);
        assert!(net.layers.iter().all(|l| l.len() == 8));
    }

    #[test]
    fn bitonic_is_a_sorting_network_up_to_16() {
        for n in [2usize, 4, 8, 16] {
            assert!(Network::bitonic(n).is_sorting_network(), "n = {n}");
        }
    }

    #[test]
    fn oddeven_is_a_sorting_network_up_to_16() {
        for n in [2usize, 4, 8, 16] {
            assert!(Network::oddeven(n).is_sorting_network(), "n = {n}");
        }
    }

    #[test]
    fn oddeven_has_fewer_comparators_than_bitonic() {
        let b = Network::bitonic(16).size();
        let o = Network::oddeven(16).size();
        assert!(o < b, "odd-even {o} should beat bitonic {b}");
    }

    #[test]
    fn apply_sorts_values() {
        let net = Network::bitonic(8);
        let mut v = [5u32, 1, 7, 3, 2, 8, 6, 4];
        net.apply(&mut v);
        assert_eq!(v, [1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn render_has_one_row_per_wire() {
        let s = Network::bitonic(16).render_ascii();
        assert_eq!(s.lines().count(), 16);
    }

    #[test]
    fn comparator_orientation() {
        let asc = Comparator {
            min_to: 2,
            max_to: 5,
        };
        assert!(asc.ascending());
        assert_eq!((asc.lo(), asc.hi()), (2, 5));
        let desc = Comparator {
            min_to: 5,
            max_to: 2,
        };
        assert!(!desc.ascending());
        assert_eq!((desc.lo(), desc.hi()), (2, 5));
    }
}
