//! Batcher's odd-even mergesort — the second classical `O(n log² n)`
//! sorting network. Used as an alternative engine for the poly-log-sized
//! oblivious sub-sorts and as a cross-check oracle for bitonic.

use crate::cx::{cex_raw, KeyFn};
use fj::{counters, Ctx};
use metrics::{RawTracked, Tracked};

/// Sort a power-of-two-length tracked slice with odd-even mergesort.
/// Recursion forks the two half-sorts; merges fork their even/odd
/// sub-merges (which interleave, hence the raw view).
pub fn oddeven_sort<C: Ctx, T: Copy + Send>(c: &C, t: &mut Tracked<'_, T>, key: &impl KeyFn<T>) {
    let n = t.len();
    if n <= 1 {
        return;
    }
    assert!(
        n.is_power_of_two(),
        "odd-even mergesort requires power-of-two length"
    );
    c.count(counters::SORTS, 1);
    let raw = t.as_raw();
    // SAFETY: sort_rec partitions index ranges disjointly; merge_rec's
    // even/odd sub-merges touch disjoint index classes.
    sort_rec(c, &raw, key, 0, n);
}

fn sort_rec<C: Ctx, T: Copy + Send>(
    c: &C,
    t: &RawTracked<T>,
    key: &impl KeyFn<T>,
    lo: usize,
    n: usize,
) {
    if n <= 1 {
        return;
    }
    let m = n / 2;
    c.join(
        |c| sort_rec(c, t, key, lo, m),
        |c| sort_rec(c, t, key, lo + m, m),
    );
    merge_rec(c, t, key, lo, n, 1);
}

/// Odd-even merge of the sequence `lo, lo+r, lo+2r, …` (n elements counted
/// in units of `r`).
fn merge_rec<C: Ctx, T: Copy + Send>(
    c: &C,
    t: &RawTracked<T>,
    key: &impl KeyFn<T>,
    lo: usize,
    n: usize,
    r: usize,
) {
    let step = r * 2;
    if step < n {
        c.join(
            |c| merge_rec(c, t, key, lo, n, step),
            |c| merge_rec(c, t, key, lo + r, n, step),
        );
        let mut i = lo + r;
        while i + r < lo + n {
            // SAFETY: this post-pass runs after both sub-merges joined; its
            // pairs are sequential on this task.
            unsafe { cex_raw(c, t, key, i, i + r, true) };
            i += step;
        }
    } else {
        // SAFETY: single comparator, no concurrency at this leaf.
        unsafe { cex_raw(c, t, key, lo, lo + r, true) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj::{Pool, SeqCtx};
    use proptest::prelude::*;

    fn key64(x: &u64) -> u128 {
        *x as u128
    }

    #[test]
    fn sorts_scrambled() {
        let c = SeqCtx::new();
        let mut v: Vec<u64> = (0..256u64)
            .map(|i| i.wrapping_mul(2654435761) % 997)
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        let mut t = Tracked::new(&c, &mut v);
        oddeven_sort(&c, &mut t, &key64);
        assert_eq!(v, expect);
    }

    #[test]
    fn zero_one_principle_exhaustive_n16() {
        let c = SeqCtx::new();
        for mask in 0u32..(1 << 16) {
            if mask % 977 != 0 && mask != 0 {
                continue; // sample the space to keep the test fast
            }
            let mut v: Vec<u64> = (0..16).map(|i| u64::from((mask >> i) & 1)).collect();
            let ones = v.iter().sum::<u64>() as usize;
            let mut t = Tracked::new(&c, &mut v);
            oddeven_sort(&c, &mut t, &key64);
            assert!(v[..16 - ones].iter().all(|&x| x == 0), "mask {mask:#x}");
            assert!(v[16 - ones..].iter().all(|&x| x == 1), "mask {mask:#x}");
        }
    }

    #[test]
    fn parallel_matches() {
        let pool = Pool::new(4);
        let mut v: Vec<u64> = (0..4096u64)
            .map(|i| i.wrapping_mul(48271) % 65537)
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        pool.run(|p| {
            let mut t = Tracked::new(p, &mut v);
            oddeven_sort(p, &mut t, &key64);
        });
        assert_eq!(v, expect);
    }

    proptest! {
        #[test]
        fn prop_sorts(v in proptest::collection::vec(any::<u64>(), 0..200)) {
            let n = v.len().next_power_of_two().max(1);
            let mut padded = v.clone();
            padded.resize(n, u64::MAX);
            let c = SeqCtx::new();
            let mut t = Tracked::new(&c, &mut padded);
            oddeven_sort(&c, &mut t, &key64);
            let mut expect = v;
            expect.sort_unstable();
            prop_assert_eq!(&padded[..expect.len()], &expect[..]);
        }
    }
}
