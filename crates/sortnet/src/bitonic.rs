//! Batcher's bitonic sorting network \[Bat68\]: sequential evaluation and the
//! *naive* fork-join parallelization.
//!
//! The naive variant forks and joins the comparators of each of the
//! `O(log² n)` layers in a binary tree, giving span `O(log³ n)` and cache
//! complexity `O((n/B)·log² n)` — exactly the strawman §E.1 improves on
//! with the recursive implementation in [`crate::bitonic_rec`]. We keep it
//! both as the correctness oracle and as the "prior best" baseline for the
//! `E1.bitonic` experiment.

use crate::cx::{cex, cex_raw, KeyFn};
use fj::{counters, par_for, Ctx, DEFAULT_GRAIN};
use metrics::Tracked;

/// Sequential bitonic sort of a power-of-two-length slice.
pub fn bitonic_sort_seq<C: Ctx, T: Copy>(
    c: &C,
    t: &mut Tracked<'_, T>,
    key: &impl KeyFn<T>,
    up: bool,
) {
    let n = t.len();
    if n <= 1 {
        return;
    }
    assert!(
        n.is_power_of_two(),
        "bitonic sort requires power-of-two length, got {n}"
    );
    c.count(counters::SORTS, 1);
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j >= 1 {
            for i in 0..n {
                let l = i ^ j;
                if l > i {
                    let dir = ((i & k) == 0) == up;
                    cex(c, t, key, i, l, dir);
                }
            }
            j /= 2;
        }
        k *= 2;
    }
}

/// Sequential bitonic *merge*: sorts a bitonic input (ascending then
/// descending half, or any rotation thereof) of power-of-two length.
pub fn bitonic_merge_seq<C: Ctx, T: Copy>(
    c: &C,
    t: &mut Tracked<'_, T>,
    key: &impl KeyFn<T>,
    up: bool,
) {
    let m = t.len();
    if m <= 1 {
        return;
    }
    assert!(m.is_power_of_two());
    let mut d = m / 2;
    while d >= 1 {
        for i in 0..m {
            if i & d == 0 {
                cex(c, t, key, i, i + d, up);
            }
        }
        d /= 2;
    }
}

/// Naive parallel bitonic sort: every layer is a parallel loop over its
/// `n/2` comparators with a barrier (the joins) between layers.
pub fn bitonic_sort_flat_par<C: Ctx, T: Copy + Send>(
    c: &C,
    t: &mut Tracked<'_, T>,
    key: &impl KeyFn<T>,
    up: bool,
) {
    let n = t.len();
    if n <= 1 {
        return;
    }
    assert!(n.is_power_of_two());
    c.count(counters::SORTS, 1);
    let raw = t.as_raw();
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j >= 1 {
            par_for(c, 0, n / 2, DEFAULT_GRAIN, &|c, p| {
                // Comparator p of this layer: indices share all bits except
                // bit j; disjoint across p, so raw access is safe.
                let lo = ((p & !(j - 1)) << 1) | (p & (j - 1));
                let dir = ((lo & k) == 0) == up;
                // SAFETY: distinct p yield disjoint {lo, lo+j} pairs.
                unsafe { cex_raw(c, &raw, key, lo, lo + j, dir) };
            });
            j /= 2;
        }
        k *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj::{Pool, SeqCtx};
    use proptest::prelude::*;

    fn key64(x: &u64) -> u128 {
        *x as u128
    }

    #[test]
    fn sorts_random_input() {
        let c = SeqCtx::new();
        let mut v: Vec<u64> = (0..256).map(|i| (i * 2654435761u64) % 1000).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        let mut t = Tracked::new(&c, &mut v);
        bitonic_sort_seq(&c, &mut t, &key64, true);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_descending() {
        let c = SeqCtx::new();
        let mut v: Vec<u64> = (0..64).collect();
        let mut t = Tracked::new(&c, &mut v);
        bitonic_sort_seq(&c, &mut t, &key64, false);
        let mut expect: Vec<u64> = (0..64).collect();
        expect.reverse();
        assert_eq!(v, expect);
    }

    #[test]
    fn zero_one_principle_exhaustive_n8() {
        // By the 0-1 principle, a network sorting all 2^8 bit vectors sorts
        // everything.
        let c = SeqCtx::new();
        for mask in 0u32..256 {
            let mut v: Vec<u64> = (0..8).map(|i| (mask >> i) & 1).map(u64::from).collect();
            let ones = v.iter().sum::<u64>() as usize;
            let mut t = Tracked::new(&c, &mut v);
            bitonic_sort_seq(&c, &mut t, &key64, true);
            assert!(v[..8 - ones].iter().all(|&x| x == 0));
            assert!(v[8 - ones..].iter().all(|&x| x == 1));
        }
    }

    #[test]
    fn merge_sorts_bitonic_input() {
        let c = SeqCtx::new();
        let mut v: Vec<u64> = (0..32).chain((0..32).rev()).collect();
        let mut t = Tracked::new(&c, &mut v);
        bitonic_merge_seq(&c, &mut t, &key64, true);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn flat_parallel_matches_sequential() {
        let pool = Pool::new(4);
        let mut v: Vec<u64> = (0..1024).map(|i| (i * 40503) % 4096).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        pool.run(|p| {
            let mut t = Tracked::new(p, &mut v);
            bitonic_sort_flat_par(p, &mut t, &key64, true);
        });
        assert_eq!(v, expect);
    }

    proptest! {
        #[test]
        fn prop_sorts_any_input(v in proptest::collection::vec(any::<u64>(), 1..=9)) {
            // Pad to the next power of two with MAX sentinels.
            let n = v.len().next_power_of_two();
            let mut padded = v.clone();
            padded.resize(n, u64::MAX);
            let c = SeqCtx::new();
            let mut t = Tracked::new(&c, &mut padded);
            bitonic_sort_seq(&c, &mut t, &key64, true);
            let mut expect = v;
            expect.sort_unstable();
            prop_assert_eq!(&padded[..expect.len()], &expect[..]);
        }
    }
}
