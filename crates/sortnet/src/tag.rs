//! Packed tag cells: the dense elements of the tag-sort fast path.
//!
//! A comparator network does not care what rides through it — only the
//! keys drive the schedule. The classic tag-sort trick exploits this:
//! instead of pushing a fat record through every compare-exchange layer,
//! callers pack the 128-bit sort key into [`TagCell::tag`] and a 128-bit
//! payload lane into [`TagCell::aux`], sort the dense 32-byte cells, and
//! reconstruct the record from the two lanes afterwards. Relative to the
//! ~96-byte `Slot` records of the store's merge path this cuts the data
//! moved per comparator by 3× and keeps far longer runs L1/L2-resident
//! during the cache-blocked merge layers.
//!
//! Two properties make the cells a drop-in for the `Slot` networks:
//!
//! * **Same schedule.** [`cells_sort_rec`]/[`cells_merge_rec`] evaluate the
//!   §E.1 recursive bitonic network with the same base-case size (the
//!   threshold constant is shared with `bitonic_rec`, not copied) and the
//!   same transpose blocking as the generic `bitonic_sort_rec`, so the
//!   comparator sequence — and hence the adversary trace shape — is the
//!   same function of `n`. A unit test pins comparator-count parity
//!   against the generic network; keep the two drivers in lockstep when
//!   touching either.
//! * **Branchless exchange.** [`cex_cell_raw`] routes both lanes with
//!   [`select_u128`] masks: two reads, one compare, four selects, two
//!   writes, no data-dependent branch — a best-effort hardening the
//!   generic `cex` (which moves `T` through an `if`) cannot offer.
//!
//! Fillers are cells whose tag is `u128::MAX`; real tags must stay below
//! it (every caller packs a key that cannot reach the all-ones pattern).

use crate::bitonic_rec::{par_rows2, BASE};
use crate::cx::select_u128;
use crate::transpose::transpose;
use crate::vec::{active_backend, cex_cells_slab_with, Backend};
use fj::{counters, Ctx};
use metrics::{RawTracked, Tracked};

/// A 32-byte comparator-network element: 16-byte sort tag, 16-byte payload.
///
/// `repr(C)` pins the lane layout (`tag` low, `aux` high) so the
/// [`crate::vec`] kernels can treat a cell as one 256-bit vector of
/// `[tag_lo, tag_hi, aux_lo, aux_hi]` u64 lanes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[repr(C)]
pub struct TagCell {
    /// The sort key. `u128::MAX` is reserved for fillers.
    pub tag: u128,
    /// The payload lane; rides along untouched by comparisons.
    pub aux: u128,
}

impl TagCell {
    #[inline]
    pub fn new(tag: u128, aux: u128) -> Self {
        TagCell { tag, aux }
    }

    /// The padding element `⊥`: sorts after every real cell.
    #[inline]
    pub fn filler() -> Self {
        TagCell {
            tag: u128::MAX,
            aux: 0,
        }
    }

    #[inline]
    pub fn is_filler(&self) -> bool {
        self.tag == u128::MAX
    }
}

/// Key extractor for driving the *generic* networks with cells (the
/// engines without a specialized cell implementation use this).
#[inline]
pub fn tag_of(cell: &TagCell) -> u128 {
    cell.tag
}

/// Branchless compare-exchange of cells `i` and `j`: the smaller tag ends
/// at `i` if `up`. Both lanes are routed with [`select_u128`] masks —
/// always two reads, four selects and two writes, no data-dependent branch.
///
/// # Safety
/// No concurrent task may access indices `i` or `j`.
#[inline]
pub unsafe fn cex_cell_raw<C: Ctx>(c: &C, t: &RawTracked<TagCell>, i: usize, j: usize, up: bool) {
    let a = t.get(c, i);
    let b = t.get(c, j);
    c.work(1);
    c.count(counters::COMPARISONS, 1);
    let swap = (a.tag > b.tag) == up;
    t.set(
        c,
        i,
        TagCell {
            tag: select_u128(swap, a.tag, b.tag),
            aux: select_u128(swap, a.aux, b.aux),
        },
    );
    t.set(
        c,
        j,
        TagCell {
            tag: select_u128(swap, b.tag, a.tag),
            aux: select_u128(swap, b.aux, a.aux),
        },
    );
}

/// [`cex_cell_raw`] through a tracked slice.
#[inline]
pub fn cex_cell<C: Ctx>(c: &C, t: &mut Tracked<'_, TagCell>, i: usize, j: usize, up: bool) {
    // SAFETY: exclusive access via &mut.
    unsafe { cex_cell_raw(c, &t.as_raw(), i, j, up) }
}

/// Sequential bitonic sort of a power-of-two cell slice (the base case).
///
/// Each `(k, j)` level is walked as slabs of `j` consecutive pairs with a
/// constant direction and handed to the batched compare-exchange kernel
/// ([`crate::vec::cex_cells_slab`]), which visits the identical pair
/// sequence the classic `i ^ j` loop visits — the slab decomposition
/// only regroups it.
pub fn cells_sort_seq<C: Ctx>(c: &C, t: &mut Tracked<'_, TagCell>, up: bool) {
    cells_sort_seq_with(active_backend(), c, t, up)
}

/// [`cells_sort_seq`] with an explicit compare-exchange backend.
pub fn cells_sort_seq_with<C: Ctx>(
    backend: Backend,
    c: &C,
    t: &mut Tracked<'_, TagCell>,
    up: bool,
) {
    let n = t.len();
    if n <= 1 {
        return;
    }
    assert!(n.is_power_of_two(), "cell sort needs power-of-two, got {n}");
    c.count(counters::SORTS, 1);
    let raw = t.as_raw();
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j >= 1 {
            // Level (k, j): pairs (i, i ^ j) for every i with bit j clear,
            // i.e. slabs of j consecutive pairs starting at multiples of
            // 2j. Within a slab the direction ((i & k) == 0) == up is
            // constant because i & k is (k ≥ 2j, so bits below bit(j)
            // cannot reach bit(k)).
            let mut s = 0;
            while s < n {
                let dir = ((s & k) == 0) == up;
                // SAFETY: sequential evaluation.
                unsafe { cex_cells_slab_with(backend, c, &raw, s, j, dir) };
                s += 2 * j;
            }
            j /= 2;
        }
        k *= 2;
    }
}

/// Sequential bitonic merge of a bitonic power-of-two cell slice. Like
/// [`cells_sort_seq`], each halving level runs as batched slabs.
pub fn cells_merge_seq<C: Ctx>(c: &C, t: &mut Tracked<'_, TagCell>, up: bool) {
    cells_merge_seq_with(active_backend(), c, t, up)
}

/// [`cells_merge_seq`] with an explicit compare-exchange backend.
pub fn cells_merge_seq_with<C: Ctx>(
    backend: Backend,
    c: &C,
    t: &mut Tracked<'_, TagCell>,
    up: bool,
) {
    let m = t.len();
    if m <= 1 {
        return;
    }
    assert!(m.is_power_of_two());
    let raw = t.as_raw();
    let mut d = m / 2;
    while d >= 1 {
        let mut s = 0;
        while s < m {
            // SAFETY: sequential evaluation.
            unsafe { cex_cells_slab_with(backend, c, &raw, s, d, up) };
            s += 2 * d;
        }
        d /= 2;
    }
}

/// Cache-agnostic recursive bitonic merge over cells — the §E.1.2
/// transpose blocking of [`crate::bitonic_merge_rec`], with the branchless
/// cell base case. `t` must hold a bitonic sequence of power-of-two
/// length; `tmp` is equally sized scratch (garbage on return).
pub fn cells_merge_rec<C: Ctx>(
    c: &C,
    t: &mut Tracked<'_, TagCell>,
    tmp: &mut Tracked<'_, TagCell>,
    up: bool,
) {
    cells_merge_rec_with(active_backend(), c, t, tmp, up)
}

/// [`cells_merge_rec`] with an explicit compare-exchange backend.
pub fn cells_merge_rec_with<C: Ctx>(
    backend: Backend,
    c: &C,
    t: &mut Tracked<'_, TagCell>,
    tmp: &mut Tracked<'_, TagCell>,
    up: bool,
) {
    let m = t.len();
    debug_assert_eq!(tmp.len(), m);
    if m <= BASE {
        cells_merge_seq_with(backend, c, t, up);
        return;
    }
    debug_assert!(m.is_power_of_two());
    let k = m.trailing_zeros() as usize;
    let cdim = 1usize << (k / 2);
    let rdim = m / cdim;

    transpose(c, t, tmp, rdim, cdim, 1);
    par_rows2(
        c,
        tmp.borrow_mut(),
        t.borrow_mut(),
        cdim,
        rdim,
        0,
        &|c, _, mut row, mut scratch| {
            cells_merge_rec_with(backend, c, &mut row, &mut scratch, up);
        },
    );

    transpose(c, tmp, t, cdim, rdim, 1);
    par_rows2(
        c,
        t.borrow_mut(),
        tmp.borrow_mut(),
        rdim,
        cdim,
        0,
        &|c, _, mut row, mut scratch| {
            cells_merge_rec_with(backend, c, &mut row, &mut scratch, up);
        },
    );
}

/// Cache-agnostic recursive bitonic sort over cells (§E.1.1 on the packed
/// representation): same schedule as [`crate::bitonic_sort_rec`], 32-byte
/// elements, branchless exchanges.
pub fn cells_sort_rec<C: Ctx>(
    c: &C,
    t: &mut Tracked<'_, TagCell>,
    tmp: &mut Tracked<'_, TagCell>,
    up: bool,
) {
    cells_sort_rec_with(active_backend(), c, t, tmp, up)
}

/// [`cells_sort_rec`] with an explicit compare-exchange backend.
pub fn cells_sort_rec_with<C: Ctx>(
    backend: Backend,
    c: &C,
    t: &mut Tracked<'_, TagCell>,
    tmp: &mut Tracked<'_, TagCell>,
    up: bool,
) {
    let n = t.len();
    debug_assert_eq!(tmp.len(), n);
    if n <= 1 {
        return;
    }
    assert!(
        n.is_power_of_two(),
        "bitonic cell sort requires power-of-two length, got {n}"
    );
    if n <= BASE {
        cells_sort_seq_with(backend, c, t, up);
        return;
    }
    c.count(counters::SORTS, 1);
    {
        let (t_lo, t_hi) = t.split_at_mut(n / 2);
        let (s_lo, s_hi) = tmp.split_at_mut(n / 2);
        c.join(
            move |c| {
                let (mut t_lo, mut s_lo) = (t_lo, s_lo);
                cells_sort_rec_with(backend, c, &mut t_lo, &mut s_lo, up);
            },
            move |c| {
                let (mut t_hi, mut s_hi) = (t_hi, s_hi);
                cells_sort_rec_with(backend, c, &mut t_hi, &mut s_hi, !up);
            },
        );
    }
    cells_merge_rec_with(backend, c, t, tmp, up);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj::{Pool, SeqCtx};
    use metrics::{measure, CacheConfig, TraceMode};
    use proptest::prelude::*;

    fn cells_of(keys: &[u64]) -> Vec<TagCell> {
        keys.iter()
            .enumerate()
            .map(|(i, &k)| TagCell::new(((k as u128) << 64) | i as u128, k as u128 ^ 0xABCD))
            .collect()
    }

    fn sort_with_scratch(c: &SeqCtx, cells: &mut [TagCell]) {
        let mut tmp = vec![TagCell::filler(); cells.len()];
        let mut t = Tracked::new(c, cells);
        let mut s = Tracked::new(c, &mut tmp);
        cells_sort_rec(c, &mut t, &mut s, true);
    }

    #[test]
    fn rec_cell_sort_matches_std() {
        let c = SeqCtx::new();
        for n in [1usize, 2, 16, 32, 64, 256, 1024, 4096] {
            let keys: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) >> 17)
                .collect();
            let mut cells = cells_of(&keys);
            let mut expect = cells.clone();
            expect.sort_by_key(|cell| cell.tag);
            sort_with_scratch(&c, &mut cells);
            assert_eq!(cells, expect, "n = {n}");
        }
    }

    #[test]
    fn aux_lane_rides_with_its_tag() {
        let c = SeqCtx::new();
        let keys: Vec<u64> = (0..512u64).rev().collect();
        let mut cells = cells_of(&keys);
        sort_with_scratch(&c, &mut cells);
        for cell in &cells {
            let k = (cell.tag >> 64) as u64;
            assert_eq!(cell.aux, (k as u128) ^ 0xABCD, "payload divorced its key");
        }
    }

    #[test]
    fn merge_rec_sorts_bitonic_cells() {
        let c = SeqCtx::new();
        let keys: Vec<u64> = (0..512).chain((0..512).rev()).collect();
        let mut cells: Vec<TagCell> = keys
            .iter()
            .map(|&k| TagCell::new(k as u128, k as u128))
            .collect();
        let mut tmp = vec![TagCell::filler(); 1024];
        let mut t = Tracked::new(&c, &mut cells);
        let mut s = Tracked::new(&c, &mut tmp);
        cells_merge_rec(&c, &mut t, &mut s, true);
        assert!(cells.windows(2).all(|w| w[0].tag <= w[1].tag));
    }

    #[test]
    fn same_comparator_schedule_as_generic_network() {
        // The specialized cell network must evaluate exactly as many
        // comparators as the generic recursive bitonic at every size.
        for n in [32usize, 64, 1024, 4096] {
            let keys: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(40503) >> 3).collect();
            let (_, generic) = measure(CacheConfig::default(), TraceMode::Off, |c| {
                let mut v = keys.clone();
                crate::sort_slice_rec(c, &mut v, &|x: &u64| *x as u128, true);
            });
            let (_, cells) = measure(CacheConfig::default(), TraceMode::Off, |c| {
                let mut cs = cells_of(&keys);
                let mut tmp = vec![TagCell::filler(); n];
                let mut t = Tracked::new(c, &mut cs);
                let mut s = Tracked::new(c, &mut tmp);
                cells_sort_rec(c, &mut t, &mut s, true);
            });
            assert_eq!(generic.comparisons, cells.comparisons, "n = {n}");
        }
    }

    #[test]
    fn trace_is_input_independent() {
        let n = 1 << 10;
        let run = |keys: Vec<u64>| {
            let (_, rep) = measure(CacheConfig::default(), TraceMode::Hash, |c| {
                let mut cs = cells_of(&keys);
                let mut tmp = vec![TagCell::filler(); n];
                let mut t = Tracked::new(c, &mut cs);
                let mut s = Tracked::new(c, &mut tmp);
                cells_sort_rec(c, &mut t, &mut s, true);
            });
            (rep.trace_hash, rep.trace_len)
        };
        let a = run((0..n as u64).collect());
        let b = run((0..n as u64).rev().collect());
        let z = run(vec![7u64; n]);
        assert_eq!(a, b);
        assert_eq!(a, z);
    }

    #[test]
    fn parallel_cell_sort_matches() {
        let pool = Pool::new(4);
        let n = 1 << 13;
        let keys: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(2654435761) >> 5)
            .collect();
        let mut cells = cells_of(&keys);
        let mut expect = cells.clone();
        expect.sort_by_key(|cell| cell.tag);
        let mut tmp = vec![TagCell::filler(); n];
        pool.run(|c| {
            let mut t = Tracked::new(c, &mut cells);
            let mut s = Tracked::new(c, &mut tmp);
            cells_sort_rec(c, &mut t, &mut s, true);
        });
        assert_eq!(cells, expect);
    }

    #[test]
    fn backends_share_outputs_and_traces() {
        // The vectorized sort must be bit-identical to the scalar one in
        // both the sorted cells and the adversary trace.
        let n = 1 << 9;
        let keys: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(40503) >> 3).collect();
        let run = |backend: Backend| {
            let mut cs = cells_of(&keys);
            let (_, rep) = measure(CacheConfig::default(), TraceMode::Hash, |c| {
                let mut tmp = vec![TagCell::filler(); n];
                let mut t = Tracked::new(c, &mut cs);
                let mut s = Tracked::new(c, &mut tmp);
                cells_sort_rec_with(backend, c, &mut t, &mut s, true);
            });
            (cs, rep.trace_hash, rep.trace_len, rep.work, rep.comparisons)
        };
        assert_eq!(run(Backend::Scalar), run(Backend::Avx2));
    }

    #[test]
    fn fillers_sink_to_the_end() {
        let c = SeqCtx::new();
        let mut cells: Vec<TagCell> = (0..8u64)
            .map(|i| {
                if i % 2 == 0 {
                    TagCell::filler()
                } else {
                    TagCell::new(i as u128, i as u128)
                }
            })
            .collect();
        let mut t = Tracked::new(&c, &mut cells);
        cells_sort_seq(&c, &mut t, true);
        assert!(cells[..4].iter().all(|cell| !cell.is_filler()));
        assert!(cells[4..].iter().all(|cell| cell.is_filler()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_cells_sort(keys in proptest::collection::vec(any::<u64>(), 0..300)) {
            let n = keys.len().next_power_of_two().max(1);
            let mut cells = cells_of(&keys);
            cells.resize(n, TagCell::filler());
            let mut expect = cells.clone();
            expect.sort_by_key(|cell| cell.tag);
            let c = SeqCtx::new();
            sort_with_scratch(&c, &mut cells);
            prop_assert_eq!(cells, expect);
        }
    }
}
