//! The metering executor: exact work/span accounting plus cache and trace
//! simulation.

use crate::cache::{CacheConfig, CacheSim};
use crate::report::CostReport;
use crate::trace::{TraceEvent, TraceMode, TraceRec};
use fj::{Access, BufId, Ctx};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cost charged to each fork and to each join (one unit apiece), matching
/// the paper's convention that forks/joins are constant-cost DAG nodes.
const FORK_COST: u64 = 1;
const JOIN_COST: u64 = 1;

/// Semantic counters on top of raw work, used by the constant-factor
/// experiments (§E: "each use of bitonic sort contributing a constant
/// factor of 1/2 to the bounds for the comparisons made").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Comparator evaluations (compare-exchange gates).
    Comparisons,
    /// Element moves (copies between memory slots).
    Moves,
    /// Invocations of a complete sorting subroutine.
    Sorts,
    /// Randomized retries (ORBA overflow, label collision, …).
    Retries,
}

const NCOUNTERS: usize = 4;

struct Inner {
    cache: CacheSim,
    trace: TraceRec,
    next_addr: u64,
}

/// Sequential instrumented executor implementing [`fj::Ctx`].
///
/// * **Work** — every `work(n)` adds `n`; forks and joins add 1 each.
/// * **Span** — computed exactly through the fork-join recursion:
///   `span(join(a, b)) = max(span(a), span(b))` plus fork/join costs. The
///   executor runs `a` then `b` sequentially but tracks the depth counter
///   as if they ran in parallel.
/// * **Cache** — every `touch` feeds an LRU ideal-cache simulation of the
///   *sequential* execution order, which is the `Q` the paper's bounds are
///   stated for (the parallel overhead term `O((M/B)·P·T∞)` is scheduling
///   theory, not a property of the algorithm).
/// * **Trace** — the adversary's view per Definition 1.
pub struct MeterCtx {
    work: AtomicU64,
    depth: AtomicU64,
    counters: [AtomicU64; NCOUNTERS],
    inner: Mutex<Inner>,
}

impl MeterCtx {
    pub fn new(cfg: CacheConfig, mode: TraceMode) -> Self {
        MeterCtx {
            work: AtomicU64::new(0),
            depth: AtomicU64::new(0),
            counters: Default::default(),
            inner: Mutex::new(Inner {
                cache: CacheSim::new(cfg),
                trace: TraceRec::new(mode),
                next_addr: 0,
            }),
        }
    }

    /// Metering context with default cache geometry and hashed tracing.
    pub fn default_hashed() -> Self {
        MeterCtx::new(CacheConfig::default(), TraceMode::Hash)
    }

    /// Bump a semantic counter.
    #[inline]
    pub fn count(&self, which: Counter, n: u64) {
        self.counters[which as usize].fetch_add(n, Ordering::Relaxed);
    }

    pub fn counter(&self, which: Counter) -> u64 {
        self.counters[which as usize].load(Ordering::Relaxed)
    }

    /// Snapshot of all accumulated costs.
    pub fn report(&self) -> CostReport {
        let inner = self.inner.lock();
        CostReport {
            work: self.work.load(Ordering::Relaxed),
            span: self.depth.load(Ordering::Relaxed),
            cache_accesses: inner.cache.accesses(),
            cache_misses: inner.cache.misses(),
            comparisons: self.counter(Counter::Comparisons),
            moves: self.counter(Counter::Moves),
            sorts: self.counter(Counter::Sorts),
            retries: self.counter(Counter::Retries),
            trace_hash: inner.trace.hash(),
            trace_len: inner.trace.count(),
            m_words: inner.cache.config().m_words,
            b_words: inner.cache.config().b_words,
        }
    }

    /// Full trace events (empty unless constructed with `TraceMode::Full`).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.inner.lock().trace.take_events()
    }
}

impl Ctx for MeterCtx {
    fn join<RA, RB>(
        &self,
        a: impl FnOnce(&Self) -> RA + Send,
        b: impl FnOnce(&Self) -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        self.work
            .fetch_add(FORK_COST + JOIN_COST, Ordering::Relaxed);
        let d0 = self.depth.load(Ordering::Relaxed) + FORK_COST;
        self.depth.store(d0, Ordering::Relaxed);
        let ra = a(self);
        let da = self.depth.load(Ordering::Relaxed);
        self.depth.store(d0, Ordering::Relaxed);
        let rb = b(self);
        let db = self.depth.load(Ordering::Relaxed);
        self.depth.store(da.max(db) + JOIN_COST, Ordering::Relaxed);
        (ra, rb)
    }

    #[inline]
    fn work(&self, n: u64) {
        self.work.fetch_add(n, Ordering::Relaxed);
        self.depth.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    fn touch(&self, buf: BufId, off: u64, len: u64, kind: Access) {
        let mut inner = self.inner.lock();
        let addr = buf.0 + off;
        inner.cache.access_range(addr, len);
        inner
            .trace
            .record(addr, len, matches!(kind, Access::Write) as u8);
    }

    #[inline]
    fn count(&self, counter: usize, n: u64) {
        if counter < NCOUNTERS {
            self.counters[counter].fetch_add(n, Ordering::Relaxed);
        }
    }

    #[inline]
    fn charge_par(&self, n: u64) {
        if n == 0 {
            return;
        }
        self.work.fetch_add(n, Ordering::Relaxed);
        // Balanced fork tree over n leaves: 2 units per level of forks and
        // joins, one unit of leaf work.
        let depth = 2 * (64 - n.leading_zeros() as u64) + 1;
        self.depth.fetch_add(depth, Ordering::Relaxed);
    }

    fn register(&self, len: u64) -> BufId {
        let mut inner = self.inner.lock();
        let b = inner.cache.config().b_words;
        // Block-align each buffer so buffers never share a cache line and
        // addresses are reproducible across runs.
        let base = inner.next_addr.next_multiple_of(b);
        inner.next_addr = base + len.max(1);
        BufId(base)
    }

    #[inline]
    fn is_metered(&self) -> bool {
        true
    }
}

/// Run `f` under a fresh meter and return its result plus the cost report.
pub fn measure<R>(
    cfg: CacheConfig,
    mode: TraceMode,
    f: impl FnOnce(&MeterCtx) -> R,
) -> (R, CostReport) {
    let ctx = MeterCtx::new(cfg, mode);
    let r = f(&ctx);
    let report = ctx.report();
    (r, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj::par_for;

    #[test]
    fn span_of_balanced_tree_is_logarithmic() {
        let n = 1024;
        let (_, rep) = measure(CacheConfig::default(), TraceMode::Off, |c| {
            par_for(c, 0, n, 1, &|c, _| c.work(1));
        });
        assert_eq!(rep.work, n as u64 + 2 * (n as u64 - 1)); // leaves + forks/joins

        // Depth: 10 levels of fork+join (2 each) plus one leaf op.
        assert!(rep.span <= 2 * 10 + 1 + 10, "span {} too large", rep.span);
        assert!(rep.span >= 10, "span {} too small", rep.span);
    }

    #[test]
    fn sequential_work_adds_to_span() {
        let (_, rep) = measure(CacheConfig::default(), TraceMode::Off, |c| {
            for _ in 0..100 {
                c.work(1);
            }
        });
        assert_eq!(rep.work, 100);
        assert_eq!(rep.span, 100);
    }

    #[test]
    fn join_takes_max_of_branches() {
        let (_, rep) = measure(CacheConfig::default(), TraceMode::Off, |c| {
            c.join(|c| c.work(100), |c| c.work(5));
        });
        assert_eq!(rep.work, 107);
        assert_eq!(rep.span, 102);
    }

    #[test]
    fn buffers_do_not_share_blocks() {
        let ctx = MeterCtx::new(CacheConfig::new(256, 16), TraceMode::Off);
        let a = ctx.register(10);
        let b = ctx.register(10);
        assert_ne!(a.0 / 16, (b.0 + 9) / 16);
        assert_eq!(a.0 % 16, 0);
        assert_eq!(b.0 % 16, 0);
    }

    #[test]
    fn touch_feeds_cache_and_trace() {
        let ctx = MeterCtx::new(CacheConfig::new(256, 16), TraceMode::Hash);
        let buf = ctx.register(64);
        ctx.touch(buf, 0, 1, Access::Read);
        ctx.touch(buf, 0, 1, Access::Read);
        let rep = ctx.report();
        assert_eq!(rep.cache_accesses, 2);
        assert_eq!(rep.cache_misses, 1);
        assert_eq!(rep.trace_len, 2);
    }

    #[test]
    fn counters_accumulate() {
        let ctx = MeterCtx::default_hashed();
        ctx.count(Counter::Comparisons, 3);
        ctx.count(Counter::Comparisons, 4);
        ctx.count(Counter::Retries, 1);
        assert_eq!(ctx.counter(Counter::Comparisons), 7);
        assert_eq!(ctx.counter(Counter::Retries), 1);
    }
}
