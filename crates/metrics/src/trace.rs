//! Access-pattern trace recording.
//!
//! Definition 1 of the paper lets the adversary observe, besides the
//! fork-join DAG, "the sequence of memory addresses accessed during every
//! CPU step of every thread … and whether each access is a read or write".
//! On the (sequential) metering executor this is exactly the stream of
//! `touch` events, which we either hash on the fly (cheap, for equality
//! checks at large `n`) or record in full (for small-`n` forensics).

/// How much trace to keep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceMode {
    /// Record nothing (cache simulation still runs).
    Off,
    /// Maintain a running 64-bit hash and event count.
    Hash,
    /// Keep every event (plus the hash).
    Full,
}

/// One adversary-visible memory event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// Absolute word address.
    pub addr: u64,
    /// Access length in words.
    pub len: u32,
    /// 0 = read, 1 = write.
    pub kind: u8,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv_step(mut h: u64, v: u64) -> u64 {
    for i in 0..8 {
        h ^= (v >> (8 * i)) & 0xff;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Streaming trace recorder.
pub struct TraceRec {
    mode: TraceMode,
    hash: u64,
    count: u64,
    events: Vec<TraceEvent>,
}

impl TraceRec {
    pub fn new(mode: TraceMode) -> Self {
        TraceRec {
            mode,
            hash: FNV_OFFSET,
            count: 0,
            events: Vec::new(),
        }
    }

    #[inline]
    pub fn record(&mut self, addr: u64, len: u64, kind: u8) {
        if self.mode == TraceMode::Off {
            return;
        }
        self.count += 1;
        self.hash = fnv_step(self.hash, addr);
        self.hash = fnv_step(self.hash, (len << 1) | kind as u64);
        if self.mode == TraceMode::Full {
            self.events.push(TraceEvent {
                addr,
                len: len as u32,
                kind,
            });
        }
    }

    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    pub fn hash(&self) -> u64 {
        self.hash
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_streams_hash_identically() {
        let mut a = TraceRec::new(TraceMode::Hash);
        let mut b = TraceRec::new(TraceMode::Hash);
        for i in 0..100 {
            a.record(i, 1, (i % 2) as u8);
            b.record(i, 1, (i % 2) as u8);
        }
        assert_eq!(a.hash(), b.hash());
        assert_eq!(a.count(), b.count());
    }

    #[test]
    fn different_streams_hash_differently() {
        let mut a = TraceRec::new(TraceMode::Hash);
        let mut b = TraceRec::new(TraceMode::Hash);
        a.record(1, 1, 0);
        b.record(2, 1, 0);
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn read_write_distinguished() {
        let mut a = TraceRec::new(TraceMode::Hash);
        let mut b = TraceRec::new(TraceMode::Hash);
        a.record(7, 1, 0);
        b.record(7, 1, 1);
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn full_mode_keeps_events() {
        let mut t = TraceRec::new(TraceMode::Full);
        t.record(3, 2, 1);
        assert_eq!(
            t.events(),
            &[TraceEvent {
                addr: 3,
                len: 2,
                kind: 1
            }]
        );
    }

    #[test]
    fn off_mode_records_nothing() {
        let mut t = TraceRec::new(TraceMode::Off);
        t.record(3, 2, 1);
        assert_eq!(t.count(), 0);
        assert!(t.events().is_empty());
    }
}
