//! Ideal-cache (LRU) simulator for the cache-agnostic cost model.
//!
//! The paper measures cache complexity `Q` in the two-level I/O model of
//! Aggarwal–Vitter / Frigo et al. (§A.1): a fully associative cache of `M`
//! words organized in blocks (cache lines) of `B` words, with an optimal
//! replacement policy approximated by LRU — the approximation the paper
//! itself endorses ("the assumption of an optimal cache replacement policy
//! can be reasonably approximated by … LRU").
//!
//! Addresses are *word* granular; a word models one 8-byte machine word.

use std::collections::HashMap;

/// Cache geometry. Defaults satisfy the tall-cache assumption `M = Ω(B²)`
/// that the paper requires for optimal cache-agnostic sorting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Cache size in words.
    pub m_words: u64,
    /// Block (cache line) size in words.
    pub b_words: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        // M = 2^14 words (128 KiB of 8-byte words), B = 16 words (128 B).
        // M/B² = 64, comfortably tall.
        CacheConfig {
            m_words: 1 << 14,
            b_words: 16,
        }
    }
}

impl CacheConfig {
    pub fn new(m_words: u64, b_words: u64) -> Self {
        assert!(b_words >= 1 && m_words >= b_words);
        CacheConfig { m_words, b_words }
    }

    /// Number of blocks the cache holds.
    pub fn capacity_blocks(&self) -> u64 {
        (self.m_words / self.b_words).max(1)
    }
}

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy)]
struct Node {
    prev: u32,
    next: u32,
    block: u64,
}

/// Fully associative LRU cache over block ids, with miss counting.
pub struct CacheSim {
    cfg: CacheConfig,
    capacity: usize,
    map: HashMap<u64, u32>,
    nodes: Vec<Node>,
    head: u32,
    tail: u32,
    accesses: u64,
    misses: u64,
}

impl CacheSim {
    pub fn new(cfg: CacheConfig) -> Self {
        let capacity = cfg.capacity_blocks() as usize;
        CacheSim {
            cfg,
            capacity,
            map: HashMap::with_capacity(capacity * 2),
            nodes: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            accesses: 0,
            misses: 0,
        }
    }

    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Touch all blocks overlapping `len` words starting at word address
    /// `addr`.
    pub fn access_range(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let b = self.cfg.b_words;
        let first = addr / b;
        let last = (addr + len - 1) / b;
        for block in first..=last {
            self.access_block(block);
        }
    }

    fn access_block(&mut self, block: u64) {
        self.accesses += 1;
        if let Some(&idx) = self.map.get(&block) {
            self.unlink(idx);
            self.push_front(idx);
            return;
        }
        self.misses += 1;
        let idx = if self.nodes.len() < self.capacity {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                prev: NIL,
                next: NIL,
                block,
            });
            idx
        } else {
            // Evict the least recently used block and reuse its node.
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            let old = self.nodes[victim as usize].block;
            self.map.remove(&old);
            self.nodes[victim as usize].block = block;
            victim
        };
        self.map.insert(block, idx);
        self.push_front(idx);
    }

    fn unlink(&mut self, idx: u32) {
        let Node { prev, next, .. } = self.nodes[idx as usize];
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.nodes[idx as usize].prev = NIL;
        self.nodes[idx as usize].next = NIL;
    }

    fn push_front(&mut self, idx: u32) {
        self.nodes[idx as usize].prev = NIL;
        self.nodes[idx as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_scan_misses_once_per_block() {
        let mut c = CacheSim::new(CacheConfig::new(256, 16));
        for w in 0..1024u64 {
            c.access_range(w, 1);
        }
        assert_eq!(c.misses(), 1024 / 16);
        assert_eq!(c.accesses(), 1024);
    }

    #[test]
    fn working_set_within_cache_hits_on_second_pass() {
        let mut c = CacheSim::new(CacheConfig::new(256, 16)); // 16 blocks
        for w in 0..256u64 {
            c.access_range(w, 1);
        }
        let first = c.misses();
        for w in 0..256u64 {
            c.access_range(w, 1);
        }
        assert_eq!(c.misses(), first, "second pass must be all hits");
    }

    #[test]
    fn working_set_larger_than_cache_thrashes_under_lru() {
        let mut c = CacheSim::new(CacheConfig::new(256, 16)); // 16 blocks

        // 17 blocks in round-robin: LRU evicts exactly the next one needed.
        for _ in 0..3 {
            for blk in 0..17u64 {
                c.access_range(blk * 16, 1);
            }
        }
        assert_eq!(c.misses(), 3 * 17);
    }

    #[test]
    fn range_access_spanning_blocks() {
        let mut c = CacheSim::new(CacheConfig::new(256, 16));
        c.access_range(8, 16); // spans blocks 0 and 1
        assert_eq!(c.misses(), 2);
        c.access_range(0, 32); // blocks 0,1 both resident
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn zero_len_access_is_free() {
        let mut c = CacheSim::new(CacheConfig::default());
        c.access_range(0, 0);
        assert_eq!(c.accesses(), 0);
    }
}
