//! Scratch arena: reusable, size-classed buffer leases for the oblivious
//! kernels.
//!
//! The paper's cost model charges work, span, and cache misses — but a
//! naive implementation pays a hidden fourth cost: heap allocation on every
//! recursive call (a full oblivious sort performed hundreds of `malloc`s
//! per invocation). Cole–Ramachandran's resource-oblivious line gets its
//! cache bounds from disciplined reuse of a bounded scratch footprint;
//! [`ScratchPool`] adopts the same discipline. Kernels lease buffers
//! instead of allocating: a lease draws recycled backing storage from a
//! size-classed freelist and returns it on drop ([`ScratchGuard`]).
//!
//! ## Memory discipline contract
//!
//! * **Leases are filled, not zeroed.** Every lease overwrites all `len`
//!   elements with the caller's `fill` value before the buffer is visible,
//!   so recycled *bytes* never reach safe code (some element types contain
//!   `bool`s — handing out raw recycled bytes would be undefined
//!   behavior). This is the same write the `vec![fill; n]` it replaces
//!   performed; only the allocator round-trip disappears.
//! * **Reuse is adversary-invisible.** The pool hands out *backing
//!   storage*; the logical address space the paper's adversary observes is
//!   defined by [`crate::Tracked::new`]'s registration order, which does
//!   not depend on which physical buffer backs a lease. The trace-equality
//!   tests (`tests/scratch_reuse.rs`) pin this down: a kernel run on a
//!   fresh pool and on a dirty, heavily reused pool produces bit-identical
//!   trace hashes.
//! * **Bounded footprint.** Buffers are size-classed by power-of-two byte
//!   size, so a pool retains at most one high-water-mark set of buffers
//!   per class — the steady-state footprint of the largest kernel run
//!   through it, mirroring the `O(n)`-words auxiliary-space bounds.
//!
//! The pool is `Sync`: kernels lease concurrently from worker threads
//! under [`fj::Pool`] (per-class mutexes, uncontended in the common case).
//!
//! ## Per-core lanes
//!
//! On a multi-threaded pool the single shared freelist becomes a
//! cross-core ping-pong point: worker A frees a buffer whose cache lines
//! sit in A's L2, worker B leases it and pays the coherence misses. The
//! pool therefore keeps **worker-indexed lanes** (one freelist set per
//! [`fj::Pool`] worker index, resolved via [`fj::current_worker_index`]):
//! a lease is served from the calling worker's own lane first, and a
//! returned buffer goes back to the lane of whichever worker drops the
//! guard — so in steady state a buffer circulates within one core. The
//! shared freelist remains as the spill tier (non-worker threads, and
//! lane misses), and a lease *steals from other lanes* before touching the
//! allocator, which keeps [`fresh_allocs`](ScratchPool::fresh_allocs)
//! exact: it grows only when no free buffer of the class exists anywhere
//! in the pool — the invariant the zero-growth alloc-gate asserts, pinned
//! or not. Lane residency affects only *backing identity*, which the
//! adversary trace cannot see (the trace-equality tests cover the lane
//! configuration too).

use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of per-worker lanes; worker `i` uses lane `i % NLANES`. Sixteen
/// covers every pool size the benches run; larger pools just share lanes.
const NLANES: usize = 16;

/// Number of power-of-two size classes. Class `k` holds buffers of
/// `16 << k` bytes; class 47 tops out at 2 PiB, far beyond any real lease.
const NCLASSES: usize = 48;

/// Smallest class: one 16-byte word (keeps every class 16-byte aligned,
/// the maximum alignment of the workspace's element types).
const MIN_BYTES: usize = 16;

/// Backing storage is `Vec<u128>` so every buffer is 16-byte aligned.
type Backing = Vec<u128>;

fn class_of(bytes: usize) -> usize {
    let b = bytes.next_power_of_two().max(MIN_BYTES);
    let class = b.trailing_zeros() as usize - MIN_BYTES.trailing_zeros() as usize;
    assert!(class < NCLASSES, "scratch lease of {bytes} bytes too large");
    class
}

const fn class_words(class: usize) -> usize {
    (MIN_BYTES << class) / std::mem::size_of::<u128>()
}

/// A pool of reusable scratch buffers, size-classed by power-of-two byte
/// size.
///
/// Create one per long-lived computation (a benchmark sweep, a server, a
/// test) and thread `&ScratchPool` through the kernels; after a warm-up
/// call the hot paths stop touching the global allocator entirely (see
/// `tests/alloc_gate.rs` for the enforced budget).
#[derive(Debug)]
pub struct ScratchPool {
    /// Shared spill tier: non-worker threads, plus overflow from lanes.
    classes: [Mutex<Vec<Backing>>; NCLASSES],
    /// Worker-indexed lanes (see module docs, "Per-core lanes").
    lanes: Vec<[Mutex<Vec<Backing>>; NCLASSES]>,
    leases: AtomicU64,
    fresh: AtomicU64,
    resident: AtomicU64,
    lane_hits: AtomicU64,
    spills: AtomicU64,
}

impl Default for ScratchPool {
    fn default() -> Self {
        Self::new()
    }
}

impl ScratchPool {
    pub fn new() -> Self {
        ScratchPool {
            classes: std::array::from_fn(|_| Mutex::new(Vec::new())),
            lanes: (0..NLANES)
                .map(|_| std::array::from_fn(|_| Mutex::new(Vec::new())))
                .collect(),
            leases: AtomicU64::new(0),
            fresh: AtomicU64::new(0),
            resident: AtomicU64::new(0),
            lane_hits: AtomicU64::new(0),
            spills: AtomicU64::new(0),
        }
    }

    /// Lane of the calling thread: its pool worker index, if any.
    fn lane_of_current() -> Option<usize> {
        fj::current_worker_index().map(|w| w % NLANES)
    }

    fn pop_class(slot: &Mutex<Vec<Backing>>) -> Option<Backing> {
        slot.lock().unwrap_or_else(|e| e.into_inner()).pop()
    }

    /// Find a recycled buffer of `class`: own lane, then the shared tier,
    /// then — before ever touching the allocator — every other lane. The
    /// full scan is what keeps `fresh_allocs` an exact "no free buffer of
    /// this class existed anywhere" count even when leases and returns
    /// happen on different workers.
    fn recycle(&self, class: usize, lane: Option<usize>) -> Option<Backing> {
        if let Some(l) = lane {
            if let Some(b) = Self::pop_class(&self.lanes[l][class]) {
                self.lane_hits.fetch_add(1, Ordering::Relaxed);
                return Some(b);
            }
        }
        if let Some(b) = Self::pop_class(&self.classes[class]) {
            if lane.is_some() {
                self.spills.fetch_add(1, Ordering::Relaxed);
            }
            return Some(b);
        }
        for (l, other) in self.lanes.iter().enumerate() {
            if Some(l) == lane {
                continue;
            }
            if let Some(b) = Self::pop_class(&other[class]) {
                if lane.is_some() {
                    self.spills.fetch_add(1, Ordering::Relaxed);
                }
                return Some(b);
            }
        }
        None
    }

    /// Lease a buffer of `len` elements, every one initialized to `fill`.
    ///
    /// The *backing bytes* are recycled from earlier leases (dirty), but
    /// the returned slice is always fully overwritten with `fill` first —
    /// exactly the initialization `vec![fill; len]` would have performed.
    /// The storage returns to the pool when the guard drops.
    pub fn lease<T: Copy + Send>(&self, len: usize, fill: T) -> ScratchGuard<'_, T> {
        assert!(
            std::mem::align_of::<T>() <= MIN_BYTES,
            "scratch elements must have alignment <= 16"
        );
        let bytes = len
            .checked_mul(std::mem::size_of::<T>())
            .expect("scratch lease size overflow")
            .max(1);
        let class = class_of(bytes);
        let recycled = self.recycle(class, Self::lane_of_current());
        let mut store = recycled.unwrap_or_else(|| {
            self.fresh.fetch_add(1, Ordering::Relaxed);
            self.resident
                .fetch_add((MIN_BYTES << class) as u64, Ordering::Relaxed);
            vec![0u128; class_words(class)]
        });
        self.leases.fetch_add(1, Ordering::Relaxed);
        debug_assert_eq!(store.len(), class_words(class));
        let ptr = store.as_mut_ptr().cast::<T>();
        for i in 0..len {
            // SAFETY: `len * size_of::<T>()` bytes fit in the class, the
            // base pointer is 16-byte aligned, and `T: Copy` needs no drop.
            unsafe { ptr.add(i).write(fill) };
        }
        ScratchGuard {
            store,
            len,
            pool: self,
            _elem: PhantomData,
        }
    }

    /// Total leases served (diagnostics).
    pub fn leases(&self) -> u64 {
        self.leases.load(Ordering::Relaxed)
    }

    /// Leases that had to allocate fresh backing storage (pool misses).
    /// In steady state this stops growing — the allocation-gate test
    /// asserts exactly that.
    pub fn fresh_allocs(&self) -> u64 {
        self.fresh.load(Ordering::Relaxed)
    }

    /// Bytes of backing storage owned by this pool (leased or free).
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    /// Leases served from the calling worker's own lane (the no-bounce
    /// fast path).
    pub fn lane_hits(&self) -> u64 {
        self.lane_hits.load(Ordering::Relaxed)
    }

    /// Worker leases served from the shared tier or a foreign lane —
    /// recycled storage that crossed cores. Steady-state affine workloads
    /// should hold this near zero; it never implies a fresh allocation.
    pub fn spill_leases(&self) -> u64 {
        self.spills.load(Ordering::Relaxed)
    }

    /// Returned buffers land in the lane of the worker that *drops* the
    /// guard: the storage stays with the core whose cache last touched it.
    fn give_back(&self, store: Backing) {
        if store.is_empty() {
            return;
        }
        let class = class_of(store.len() * std::mem::size_of::<u128>());
        let slot = match Self::lane_of_current() {
            Some(l) => &self.lanes[l][class],
            None => &self.classes[class],
        };
        slot.lock().unwrap_or_else(|e| e.into_inner()).push(store);
    }
}

/// An exclusive lease on a scratch buffer; derefs to `[T]` and returns the
/// backing storage to its [`ScratchPool`] on drop.
///
/// Pass `&mut guard` anywhere a `&mut [T]` is expected — in particular to
/// [`crate::Tracked::new`], which is how leased scratch enters the metered
/// logical address space.
pub struct ScratchGuard<'p, T: Copy + Send> {
    store: Backing,
    len: usize,
    pool: &'p ScratchPool,
    _elem: PhantomData<fn() -> T>,
}

impl<T: Copy + Send> Deref for ScratchGuard<'_, T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        // SAFETY: lease() initialized self.len elements of T at the base.
        unsafe { std::slice::from_raw_parts(self.store.as_ptr().cast(), self.len) }
    }
}

impl<T: Copy + Send> DerefMut for ScratchGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut [T] {
        // SAFETY: as in Deref; exclusivity via &mut self.
        unsafe { std::slice::from_raw_parts_mut(self.store.as_mut_ptr().cast(), self.len) }
    }
}

impl<T: Copy + Send> Drop for ScratchGuard<'_, T> {
    fn drop(&mut self) {
        self.pool.give_back(std::mem::take(&mut self.store));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_is_filled_and_sized() {
        let sp = ScratchPool::new();
        let g = sp.lease(100, 7u64);
        assert_eq!(g.len(), 100);
        assert!(g.iter().all(|&x| x == 7));
    }

    #[test]
    fn storage_is_recycled_across_leases() {
        let sp = ScratchPool::new();
        {
            let mut g = sp.lease(1000, 0u64);
            g[0] = 0xDEAD;
        }
        assert_eq!(sp.fresh_allocs(), 1);
        {
            // Same size class: must reuse, and must be re-filled.
            let g = sp.lease(1000, 5u64);
            assert!(g.iter().all(|&x| x == 5));
        }
        assert_eq!(sp.fresh_allocs(), 1, "second lease must hit the pool");
        assert_eq!(sp.leases(), 2);
    }

    #[test]
    fn different_classes_do_not_alias() {
        let sp = ScratchPool::new();
        let a = sp.lease(10, 1u64); // 80 B -> 128 B class
        let b = sp.lease(1000, 2u64); // 8 kB class
        assert_eq!(sp.fresh_allocs(), 2);
        assert!(a.iter().all(|&x| x == 1));
        assert!(b.iter().all(|&x| x == 2));
    }

    #[test]
    fn zero_length_lease_is_fine() {
        let sp = ScratchPool::new();
        let g = sp.lease(0, 0u8);
        assert!(g.is_empty());
    }

    #[test]
    fn wide_elements_are_aligned() {
        #[derive(Clone, Copy, Default)]
        struct Fat {
            _a: u128,
            _b: u64,
        }
        let sp = ScratchPool::new();
        let g = sp.lease(33, Fat::default());
        assert_eq!(g.as_ptr() as usize % std::mem::align_of::<Fat>(), 0);
        assert_eq!(g.len(), 33);
    }

    #[test]
    fn concurrent_leases_are_disjoint() {
        use std::sync::Arc;
        let sp = Arc::new(ScratchPool::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let sp = Arc::clone(&sp);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let mut g = sp.lease(64, t as u64);
                        g[0] = t as u64 * 1000 + i;
                        assert_eq!(g[0], t as u64 * 1000 + i);
                        assert!(g[1..].iter().all(|&x| x == t as u64));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sp.leases(), 8 * 200);
    }

    #[test]
    fn worker_leases_use_lanes() {
        use fj::Ctx;
        let sp = ScratchPool::new();
        let pool = fj::Pool::new(1);
        // Warm: lease + drop on worker 0 leaves the buffer in lane 0.
        pool.run(|_| {
            let _g = sp.lease(100, 0u64);
        });
        assert_eq!(sp.fresh_allocs(), 1);
        // Re-lease on the same worker: lane hit, no fresh alloc, no spill.
        pool.run(|_| {
            let g = sp.lease(100, 3u64);
            assert!(g.iter().all(|&x| x == 3));
        });
        assert_eq!(sp.fresh_allocs(), 1);
        assert!(sp.lane_hits() >= 1);
        assert_eq!(sp.spill_leases(), 0);
        let _ = pool.join(|_| (), |_| ());
    }

    #[test]
    fn lane_residency_never_forces_a_fresh_alloc() {
        // A buffer freed into worker 0's lane must still satisfy a lease
        // from a non-worker thread (exact zero-growth accounting): the
        // recycle path scans foreign lanes before allocating.
        let sp = ScratchPool::new();
        let pool = fj::Pool::new(1);
        pool.run(|_| {
            let _g = sp.lease(500, 7u64);
        });
        assert_eq!(sp.fresh_allocs(), 1);
        drop(pool);
        // Main thread has no lane; the buffer lives in lane 0.
        let g = sp.lease(500, 9u64);
        assert!(g.iter().all(|&x| x == 9));
        assert_eq!(sp.fresh_allocs(), 1, "lane-resident buffer must be found");
        assert_eq!(sp.spill_leases(), 0, "non-worker leases are not spills");
    }

    #[test]
    fn cross_lane_steal_counts_as_spill() {
        let sp = ScratchPool::new();
        // Park a buffer in the shared tier from a non-worker thread.
        drop(sp.lease(64, 0u64));
        assert_eq!(sp.fresh_allocs(), 1);
        // A worker lease missing its lane takes the shared buffer: spill.
        let pool = fj::Pool::new(1);
        pool.run(|_| {
            let g = sp.lease(64, 1u64);
            assert!(g.iter().all(|&x| x == 1));
        });
        assert_eq!(sp.fresh_allocs(), 1);
        assert_eq!(sp.spill_leases(), 1);
    }

    #[test]
    fn tracked_integration() {
        use crate::Tracked;
        use fj::SeqCtx;
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let mut g = sp.lease(16, 0u64);
        let mut t = Tracked::new(&c, &mut g);
        t.set(&c, 3, 42);
        assert_eq!(t.get(&c, 3), 42);
    }
}
