//! # metrics — the cost-model executor
//!
//! Measures the three quantities the paper's theorems are stated in —
//! work `W`, span `T∞`, and sequential cache complexity `Q(M, B)` — plus
//! the adversary-visible access trace of Definition 1, for any algorithm
//! written against [`fj::Ctx`].
//!
//! ```
//! use metrics::{measure, CacheConfig, TraceMode, Tracked};
//!
//! let (_, rep) = measure(CacheConfig::default(), TraceMode::Hash, |c| {
//!     let mut v = vec![0u64; 1 << 12];
//!     let mut t = Tracked::new(c, &mut v);
//!     for i in 0..t.len() {
//!         t.set(c, i, i as u64);
//!     }
//! });
//! assert!(rep.cache_misses >= (1 << 12) / rep.b_words);
//! ```

mod cache;
mod meter;
mod report;
pub mod scratch;
mod trace;
mod tracked;

pub use cache::{CacheConfig, CacheSim};
pub use meter::{measure, Counter, MeterCtx};
pub use report::CostReport;
pub use scratch::{ScratchGuard, ScratchPool};
pub use trace::{TraceEvent, TraceMode, TraceRec};
pub use tracked::{par_collect, par_fill, par_tracked_chunks, words_per, RawTracked, Tracked};
