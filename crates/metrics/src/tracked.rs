//! Tracked memory: slices whose every access is visible to the context.
//!
//! All data the paper's adversary can observe accesses to lives in
//! [`Tracked`] buffers. Element accesses report `(buffer, offset, length,
//! kind)` through [`fj::Ctx::touch`]; on the metering executor this drives
//! the cache simulator and the adversary trace, on parallel/sequential
//! executors it compiles to nothing.
//!
//! Each element occupies `ceil(size_of::<T>() / 8)` words of the logical
//! address space so fat records (e.g. the oblivious-sort `Slot`) consume a
//! realistic number of cache lines.

use fj::{Access, BufId, Ctx};

/// Number of 8-byte words one `T` occupies in the logical address space.
pub const fn words_per<T>() -> u64 {
    let bytes = std::mem::size_of::<T>();
    let w = bytes.div_ceil(8);
    if w == 0 {
        1
    } else {
        w as u64
    }
}

/// A mutable slice registered with an execution context.
pub struct Tracked<'a, T> {
    data: &'a mut [T],
    buf: BufId,
    off: u64,
    wpe: u64,
}

impl<'a, T: Copy> Tracked<'a, T> {
    /// Register `data` as a fresh logical buffer.
    pub fn new<C: Ctx>(c: &C, data: &'a mut [T]) -> Self {
        let wpe = words_per::<T>();
        let buf = c.register(data.len() as u64 * wpe);
        Tracked {
            data,
            buf,
            off: 0,
            wpe,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read element `i`, reporting the access.
    #[inline]
    pub fn get<C: Ctx>(&self, c: &C, i: usize) -> T {
        c.touch(
            self.buf,
            self.off + i as u64 * self.wpe,
            self.wpe,
            Access::Read,
        );
        c.work(1);
        self.data[i]
    }

    /// Write element `i`, reporting the access.
    #[inline]
    pub fn set<C: Ctx>(&mut self, c: &C, i: usize, v: T) {
        c.touch(
            self.buf,
            self.off + i as u64 * self.wpe,
            self.wpe,
            Access::Write,
        );
        c.work(1);
        self.data[i] = v;
    }

    /// Reborrow as a shorter-lived tracked slice (same buffer identity).
    #[inline]
    pub fn borrow_mut(&mut self) -> Tracked<'_, T> {
        Tracked {
            data: self.data,
            buf: self.buf,
            off: self.off,
            wpe: self.wpe,
        }
    }

    /// Split into two disjoint tracked slices at `mid`.
    #[inline]
    pub fn split_at_mut(&mut self, mid: usize) -> (Tracked<'_, T>, Tracked<'_, T>) {
        let (lo, hi) = self.data.split_at_mut(mid);
        (
            Tracked {
                data: lo,
                buf: self.buf,
                off: self.off,
                wpe: self.wpe,
            },
            Tracked {
                data: hi,
                buf: self.buf,
                off: self.off + mid as u64 * self.wpe,
                wpe: self.wpe,
            },
        )
    }

    /// Tracked view of `lo..hi`.
    #[inline]
    pub fn range(&mut self, lo: usize, hi: usize) -> Tracked<'_, T> {
        Tracked {
            data: &mut self.data[lo..hi],
            buf: self.buf,
            off: self.off + lo as u64 * self.wpe,
            wpe: self.wpe,
        }
    }

    /// Split into `k` equal chunks (length must be divisible by `k`) —
    /// convenience for bin-structured arrays.
    pub fn chunks_exact_mut(&mut self, chunk: usize) -> Vec<Tracked<'_, T>> {
        assert!(chunk > 0 && self.data.len().is_multiple_of(chunk));
        let buf = self.buf;
        let off = self.off;
        let wpe = self.wpe;
        self.data
            .chunks_exact_mut(chunk)
            .enumerate()
            .map(|(i, data)| Tracked {
                data,
                buf,
                off: off + (i * chunk) as u64 * wpe,
                wpe,
            })
            .collect()
    }

    /// Untracked escape hatch: callers must `touch_all` (or otherwise
    /// account) if they use this on a metered run.
    #[inline]
    pub fn raw(&self) -> &[T] {
        self.data
    }

    /// Untracked mutable escape hatch; see [`Tracked::raw`].
    #[inline]
    pub fn raw_mut(&mut self) -> &mut [T] {
        self.data
    }

    /// Report one access covering the whole slice (bulk sequential pass).
    pub fn touch_all<C: Ctx>(&self, c: &C, kind: Access) {
        c.touch(self.buf, self.off, self.data.len() as u64 * self.wpe, kind);
    }

    /// Copy `len` elements from `src[src_i..]` to `self[dst_i..]`, with
    /// per-element accounting (used by matrix transposition and bin moves).
    pub fn copy_from<C: Ctx>(
        &mut self,
        c: &C,
        src: &Tracked<'_, T>,
        src_i: usize,
        dst_i: usize,
        len: usize,
    ) {
        if len == 0 {
            return;
        }
        c.touch(
            src.buf,
            src.off + src_i as u64 * src.wpe,
            len as u64 * src.wpe,
            Access::Read,
        );
        c.touch(
            self.buf,
            self.off + dst_i as u64 * self.wpe,
            len as u64 * self.wpe,
            Access::Write,
        );
        c.work(len as u64);
        self.data[dst_i..dst_i + len].copy_from_slice(&src.data[src_i..src_i + len]);
    }
}

impl<T: Copy> Tracked<'_, T> {
    /// Buffer identity (for manual `touch` accounting).
    #[inline]
    pub fn buf(&self) -> BufId {
        self.buf
    }

    /// Word offset of element 0 within the buffer.
    #[inline]
    pub fn off(&self) -> u64 {
        self.off
    }

    /// Words per element.
    #[inline]
    pub fn wpe(&self) -> u64 {
        self.wpe
    }

    /// Raw-pointer view for parallel algorithms whose write sets are
    /// provably disjoint but not expressible as slice splits (matrix
    /// transposition, butterfly layers). See [`RawTracked`].
    #[inline]
    pub fn as_raw(&mut self) -> RawTracked<T> {
        RawTracked {
            ptr: self.data.as_mut_ptr(),
            len: self.data.len(),
            buf: self.buf,
            off: self.off,
            wpe: self.wpe,
        }
    }
}

/// Unsafe parallel view of a [`Tracked`] slice.
///
/// Some binary fork-join algorithms (butterfly layers, matrix transposes)
/// partition their index set in ways Rust's slice splitting cannot express.
/// `RawTracked` carries the tracking metadata alongside a raw pointer; the
/// caller promises that concurrent tasks access disjoint index sets.
#[derive(Clone, Copy)]
pub struct RawTracked<T> {
    ptr: *mut T,
    len: usize,
    buf: BufId,
    off: u64,
    wpe: u64,
}

// SAFETY: disjointness of concurrent access is the caller's obligation per
// the get/set safety contracts.
unsafe impl<T: Send> Send for RawTracked<T> {}
unsafe impl<T: Send> Sync for RawTracked<T> {}

impl<T: Copy> RawTracked<T> {
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Buffer identity (for manual `touch` accounting in batched kernels).
    #[inline]
    pub fn buf(&self) -> BufId {
        self.buf
    }

    /// Word offset of element 0 within the buffer.
    #[inline]
    pub fn off(&self) -> u64 {
        self.off
    }

    /// Words per element.
    #[inline]
    pub fn wpe(&self) -> u64 {
        self.wpe
    }

    /// The underlying pointer, for kernels that access several elements
    /// per operation (e.g. vector compare-exchange). Callers doing so on
    /// a metered run must replay the equivalent [`fj::Ctx::touch`] /
    /// [`fj::Ctx::work`] accounting themselves.
    ///
    /// # Safety
    /// Dereferencing inherits the [`RawTracked`] disjointness contract.
    #[inline]
    pub fn as_mut_ptr(&self) -> *mut T {
        self.ptr
    }

    /// Read element `i`.
    ///
    /// # Safety
    /// No concurrent task may be writing element `i`.
    #[inline]
    pub unsafe fn get<C: Ctx>(&self, c: &C, i: usize) -> T {
        debug_assert!(i < self.len);
        c.touch(
            self.buf,
            self.off + i as u64 * self.wpe,
            self.wpe,
            Access::Read,
        );
        c.work(1);
        *self.ptr.add(i)
    }

    /// Write element `i`.
    ///
    /// # Safety
    /// No concurrent task may be accessing element `i`.
    #[inline]
    pub unsafe fn set<C: Ctx>(&self, c: &C, i: usize, v: T) {
        debug_assert!(i < self.len);
        c.touch(
            self.buf,
            self.off + i as u64 * self.wpe,
            self.wpe,
            Access::Write,
        );
        c.work(1);
        *self.ptr.add(i) = v;
    }

    /// Copy `len` contiguous elements from `src[src_i..]` into
    /// `self[dst_i..]`.
    ///
    /// # Safety
    /// The ranges must be in bounds; no concurrent task may overlap them.
    pub unsafe fn copy_from<C: Ctx>(
        &self,
        c: &C,
        src: &RawTracked<T>,
        src_i: usize,
        dst_i: usize,
        len: usize,
    ) {
        if len == 0 {
            return;
        }
        debug_assert!(src_i + len <= src.len && dst_i + len <= self.len);
        c.touch(
            src.buf,
            src.off + src_i as u64 * src.wpe,
            len as u64 * src.wpe,
            Access::Read,
        );
        c.touch(
            self.buf,
            self.off + dst_i as u64 * self.wpe,
            len as u64 * self.wpe,
            Access::Write,
        );
        c.work(len as u64);
        std::ptr::copy_nonoverlapping(src.ptr.add(src_i), self.ptr.add(dst_i), len);
    }
}

/// Build a `len`-element vector in parallel, one tracked write per element
/// (`O(len)` work, `O(log len)` span plus the cost of `f`). The workhorse
/// for the reveal/readout phases whose span would otherwise be linear.
pub fn par_collect<C, T, F>(c: &C, len: usize, f: &F) -> Vec<T>
where
    C: Ctx,
    T: Copy + Default + Send,
    F: Fn(&C, usize) -> T + Sync,
{
    let mut out = vec![T::default(); len];
    {
        let mut t = Tracked::new(c, &mut out);
        par_fill(c, &mut t, f);
    }
    out
}

/// Fill an existing tracked slice in parallel, one tracked write per
/// element — the allocation-free sibling of [`par_collect`] for buffers
/// leased from a [`crate::ScratchPool`].
pub fn par_fill<C, T, F>(c: &C, t: &mut Tracked<'_, T>, f: &F)
where
    C: Ctx,
    T: Copy + Send,
    F: Fn(&C, usize) -> T + Sync,
{
    let r = t.as_raw();
    fj::par_for(c, 0, r.len(), fj::grain_for(c), &|c, i| {
        // SAFETY: each index written exactly once.
        unsafe { r.set(c, i, f(c, i)) };
    });
}

/// Run `f(ctx, chunk_index, chunk)` over the `len/chunk` equal chunks of a
/// tracked slice, forking in a balanced binary tree (length must divide
/// evenly). The tracked analogue of [`fj::par_chunks_mut`].
pub fn par_tracked_chunks<C, T, F>(c: &C, t: Tracked<'_, T>, chunk: usize, f: &F)
where
    C: Ctx,
    T: Copy + Send,
    F: Fn(&C, usize, Tracked<'_, T>) + Sync,
{
    assert!(
        chunk > 0 && t.len().is_multiple_of(chunk),
        "chunk must divide length"
    );
    let count = t.len() / chunk;
    if count == 0 {
        return;
    }
    go(c, t, chunk, 0, count, f);

    fn go<C, T, F>(c: &C, mut t: Tracked<'_, T>, chunk: usize, first: usize, count: usize, f: &F)
    where
        C: Ctx,
        T: Copy + Send,
        F: Fn(&C, usize, Tracked<'_, T>) + Sync,
    {
        if count == 1 {
            f(c, first, t);
            return;
        }
        let left = count / 2;
        let (lo, hi) = t.split_at_mut(left * chunk);
        c.join(
            move |c| go(c, lo, chunk, first, left, f),
            move |c| go(c, hi, chunk, first + left, count - left, f),
        );
    }
}

// SAFETY: Tracked is a &mut slice plus plain-old-data bookkeeping.
unsafe impl<T: Send> Send for Tracked<'_, T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::meter::measure;
    use crate::trace::TraceMode;
    use fj::SeqCtx;

    #[test]
    fn get_set_roundtrip() {
        let c = SeqCtx::new();
        let mut v = vec![0u64; 8];
        let mut t = Tracked::new(&c, &mut v);
        t.set(&c, 3, 42);
        assert_eq!(t.get(&c, 3), 42);
    }

    #[test]
    fn split_preserves_offsets() {
        let (_, rep) = measure(CacheConfig::new(1 << 10, 16), TraceMode::Full, |c| {
            let mut v = vec![0u64; 64];
            let mut t = Tracked::new(c, &mut v);
            let (mut lo, mut hi) = t.split_at_mut(32);
            lo.set(c, 0, 1);
            hi.set(c, 0, 2);
        });
        // Two writes, 32 words apart => different blocks (B = 16 words).
        assert_eq!(rep.cache_misses, 2);
    }

    #[test]
    fn fat_elements_occupy_multiple_words() {
        #[derive(Clone, Copy)]
        #[allow(dead_code)]
        struct Fat([u64; 4]);
        assert_eq!(words_per::<Fat>(), 4);
        assert_eq!(words_per::<u8>(), 1);
        assert_eq!(words_per::<u128>(), 2);
    }

    #[test]
    fn copy_from_moves_data() {
        let c = SeqCtx::new();
        let mut a = vec![1u64, 2, 3, 4];
        let mut b = vec![0u64; 4];
        let ta = Tracked::new(&c, &mut a);
        let mut tb = Tracked::new(&c, &mut b);
        tb.copy_from(&c, &ta, 1, 0, 3);
        assert_eq!(b, vec![2, 3, 4, 0]);
    }

    #[test]
    fn chunks_exact_mut_partitions() {
        let c = SeqCtx::new();
        let mut v: Vec<u64> = (0..12).collect();
        let mut t = Tracked::new(&c, &mut v);
        let mut chunks = t.chunks_exact_mut(4);
        assert_eq!(chunks.len(), 3);
        for (k, ch) in chunks.iter_mut().enumerate() {
            assert_eq!(ch.get(&c, 0), 4 * k as u64);
        }
    }
}

#[cfg(test)]
mod helper_tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::meter::measure;
    use crate::trace::TraceMode;
    use fj::SeqCtx;

    #[test]
    fn par_collect_builds_in_order() {
        let c = SeqCtx::new();
        let v = par_collect(&c, 100, &|_, i| i as u64 * 3);
        assert_eq!(v.len(), 100);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 * 3));
    }

    #[test]
    fn par_collect_has_log_span() {
        let (_, rep) = measure(CacheConfig::default(), TraceMode::Off, |c| {
            par_collect(c, 1 << 12, &|_, i| i as u64);
        });
        assert!(rep.span < 100, "span {} should be O(log n)", rep.span);
        assert!(rep.work >= 1 << 12);
    }

    #[test]
    fn charge_par_adds_work_but_log_depth() {
        use fj::Ctx;
        let (_, rep) = measure(CacheConfig::default(), TraceMode::Off, |c| {
            c.charge_par(1_000_000);
        });
        assert_eq!(rep.work, 1_000_000);
        assert!(rep.span <= 2 * 20 + 1 + 2, "span {}", rep.span);
    }

    #[test]
    fn par_tracked_chunks_visits_each_chunk_once() {
        let c = SeqCtx::new();
        let mut v = vec![0u64; 64];
        let t = Tracked::new(&c, &mut v);
        par_tracked_chunks(&c, t, 8, &|c, idx, mut chunk| {
            for i in 0..chunk.len() {
                chunk.set(c, i, idx as u64);
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, (i / 8) as u64);
        }
    }
}
