//! Cost report produced by a metered run.

use std::fmt;

/// Snapshot of every cost a metered execution accumulates. This is the raw
/// material for the table generators in `dob-bench`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostReport {
    /// Total operations (the paper's `W`).
    pub work: u64,
    /// Critical-path length of the fork-join DAG (the paper's `T∞`).
    pub span: u64,
    /// Word-block accesses observed by the cache simulator.
    pub cache_accesses: u64,
    /// Cache misses under LRU with the configured `(M, B)` (the paper's `Q`).
    pub cache_misses: u64,
    /// Comparator evaluations.
    pub comparisons: u64,
    /// Element moves.
    pub moves: u64,
    /// Complete sorting-subroutine invocations.
    pub sorts: u64,
    /// Randomized retries (overflow, label collision).
    pub retries: u64,
    /// Running hash of the adversary-visible access trace.
    pub trace_hash: u64,
    /// Number of trace events.
    pub trace_len: u64,
    /// Cache size in words used for this run.
    pub m_words: u64,
    /// Block size in words used for this run.
    pub b_words: u64,
}

impl CostReport {
    /// Average parallelism `W / T∞`.
    pub fn parallelism(&self) -> f64 {
        if self.span == 0 {
            return 0.0;
        }
        self.work as f64 / self.span as f64
    }

    /// Work per input element, for normalized scaling plots.
    pub fn work_per(&self, n: usize) -> f64 {
        self.work as f64 / n.max(1) as f64
    }

    /// Cache misses normalized by the compulsory bound `n/B`.
    pub fn misses_over_scan(&self, n: usize) -> f64 {
        let scan = (n as f64 / self.b_words as f64).max(1.0);
        self.cache_misses as f64 / scan
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "work={} span={} par={:.1} Q={} (of {} accesses, M={},B={}) cmp={} trace={}ev/0x{:016x}",
            self.work,
            self.span,
            self.parallelism(),
            self.cache_misses,
            self.cache_accesses,
            self.m_words,
            self.b_words,
            self.comparisons,
            self.trace_len,
            self.trace_hash,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_is_work_over_span() {
        let r = CostReport {
            work: 1000,
            span: 10,
            ..Default::default()
        };
        assert!((r.parallelism() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn zero_span_is_not_a_division_error() {
        let r = CostReport::default();
        assert_eq!(r.parallelism(), 0.0);
    }
}
