//! Minimum spanning forest (§5.3, Table 1 row "MSF†") — oblivious Borůvka.
//!
//! A fixed budget of `⌈log₂ n⌉` Borůvka rounds (component count at least
//! halves per round, so the budget is always sufficient — and being fixed,
//! it keeps the trace data-independent). Each round:
//!
//! 1. flatten the hook forest with `⌈log₂ n⌉` pointer-doubling steps
//!    (send-receive each);
//! 2. fetch both endpoints' component labels (send-receive);
//! 3. every cross edge proposes itself to both components; one oblivious
//!    sort by `(component, weight, edge-id)` finds each component's
//!    minimum incident edge (ties broken by edge id — the same rule the
//!    Kruskal oracle uses);
//! 4. hook each component onto its chosen edge's other endpoint, then
//!    break the 2-cycles mutual hooks create (smaller label becomes root);
//! 5. deduplicate the chosen edges (sort by edge id) and add them to the
//!    forest.
//!
//! Per round `O(sort(n + m))` — total `O(log n · sort(m))`, the Table 1
//! shape `O(m log² n)` work / `Õ(log² n)` span (modulo the practical
//! engine's extra log, as everywhere).

use fj::Ctx;
use metrics::{ScratchPool, Tracked};
use obliv_core::scan::Schedule;
use obliv_core::{send_receive_u64, Engine, TagCell};

const DUMMY: u64 = u64::MAX;

/// Result of the oblivious MSF computation.
#[derive(Clone, Debug)]
pub struct MsfResult {
    /// Total weight of the forest.
    pub total_weight: u64,
    /// Per input edge: is it in the forest?
    pub in_forest: Vec<bool>,
    /// Final component label per vertex.
    pub components: Vec<u64>,
}

/// Oblivious Borůvka MSF over `(u, v, w)` edges.
pub fn msf<C: Ctx>(
    c: &C,
    scratch: &ScratchPool,
    n: usize,
    edges: &[(usize, usize, u64)],
    engine: Engine,
) -> MsfResult {
    let m = edges.len();
    let lg = (usize::BITS - n.max(2).leading_zeros()) as usize;
    let mut d: Vec<u64> = (0..n as u64).collect();
    let mut in_forest = vec![false; m];
    let mut total_weight = 0u64;
    let all_v: Vec<u64> = (0..n as u64).collect();

    for _round in 0..lg {
        // 1. Flatten.
        for _ in 0..lg {
            let sources: Vec<(u64, u64)> = (0..n).map(|v| (v as u64, d[v])).collect();
            d = send_receive_u64(c, scratch, &sources, &d, engine, Schedule::Tree)
                .into_iter()
                .map(|o| o.expect("label in range"))
                .collect();
        }

        // 2. Endpoint components.
        let comp_sources: Vec<(u64, u64)> = (0..n).map(|v| (v as u64, d[v])).collect();
        let ends: Vec<u64> = edges
            .iter()
            .flat_map(|&(u, v, _)| [u as u64, v as u64])
            .collect();
        let end_comp = send_receive_u64(c, scratch, &comp_sources, &ends, engine, Schedule::Tree);

        // 3. Per-component minimum incident edge: both half-edges propose.
        // Proposals ride in packed 32-byte `TagCell`s (the PR-5 fast path):
        // the (component ‖ weight ‖ edge id) composite key is the tag, and
        // (component ‖ other endpoint) packs into the 128-bit aux lane.
        // Distinct edge ids make real tags distinct (same-edge non-cross
        // duplicates are discarded regardless of order), so the unstable
        // cell network is safe.
        let p2 = (2 * m).next_power_of_two().max(1);
        let mut proposals = scratch.lease(p2, TagCell::filler());
        for e in 0..m {
            let (cu, cv) = (
                end_comp[2 * e].expect("endpoint"),
                end_comp[2 * e + 1].expect("endpoint"),
            );
            let w = edges[e].2;
            for (side, &(mine, other)) in [(cu, cv), (cv, cu)].iter().enumerate() {
                let cross = cu != cv;
                let comp = if cross { mine } else { DUMMY };
                // (component ‖ weight ‖ edge id); weights and ids < 2^40.
                let tag = ((comp as u128) << 72) | ((w as u128) << 32) | e as u128;
                proposals[2 * e + side] = TagCell::new(tag, ((comp as u128) << 64) | other as u128);
            }
        }
        c.charge_par(2 * m as u64);
        {
            let mut t = Tracked::new(c, &mut proposals);
            engine.sort_cells(c, scratch, &mut t);
        }

        // Winners: head of each component run.
        let winners: Vec<(u64, (u64, u64))> = (0..2 * m.max(1))
            .map(|i| {
                if i >= proposals.len() {
                    return (DUMMY - 1, (0, 0));
                }
                let s = proposals[i];
                let comp = (s.aux >> 64) as u64;
                let head = i == 0 || (proposals[i - 1].aux >> 64) as u64 != comp;
                if !s.is_filler() && head && comp != DUMMY {
                    let (eid, other) = (s.tag as u32 as u64, s.aux as u64);
                    (comp, (eid, other))
                } else {
                    (DUMMY - 1 - i as u64, (0, 0)) // distinct dummies
                }
            })
            .collect();
        c.charge_par(2 * m.max(1) as u64);

        // 4. Hook each winning component onto the other endpoint.
        let hook_sources: Vec<(u64, u64)> = winners
            .iter()
            .map(|&(comp, (_, other))| (comp, other))
            .collect();
        let hooks = send_receive_u64(c, scratch, &hook_sources, &all_v, engine, Schedule::Tree);
        {
            let mut dt = Tracked::new(c, &mut d);
            let dr = dt.as_raw();
            let hooks_ref = &hooks;
            fj::par_for(c, 0, n, fj::grain_for(c), &|c, v| unsafe {
                // SAFETY: per-vertex slots.
                let cur = dr.get(c, v);
                dr.set(c, v, hooks_ref[v].unwrap_or(cur));
            });
        }
        // Break 2-cycles: if D[D[v]] == v, the smaller id becomes root.
        let sources: Vec<(u64, u64)> = (0..n).map(|v| (v as u64, d[v])).collect();
        let dd = send_receive_u64(c, scratch, &sources, &d, engine, Schedule::Tree);
        {
            let mut dt = Tracked::new(c, &mut d);
            let dr = dt.as_raw();
            let dd_ref = &dd;
            fj::par_for(c, 0, n, fj::grain_for(c), &|c, v| unsafe {
                // SAFETY: per-vertex slots.
                let cur = dr.get(c, v);
                let ddv = dd_ref[v].expect("label in range");
                let two_cycle = ddv == v as u64 && cur != v as u64;
                let fix = two_cycle && (v as u64) < cur;
                dr.set(c, v, if fix { v as u64 } else { cur });
            });
        }

        // 5. Deduplicate chosen edges (oblivious sort by edge id) and route
        // the selection flags back to the edges with send-receive, so the
        // forest bookkeeping never indexes memory by a secret edge id.
        // Chosen-edge dedup also rides in cells: tag = edge id for real
        // winners (duplicates of the same eid are identical cells, so the
        // unstable network is safe), `u128::MAX - 1` for non-winners, and
        // the aux lane carries (real flag ‖ eid) for the readout.
        let mut chosen = scratch.lease(p2, TagCell::filler());
        for (cell, &(comp, (eid, _))) in chosen.iter_mut().zip(winners.iter()) {
            let real = comp < DUMMY - (2 * m.max(1)) as u64; // non-dummy winner
            let tag = if real { eid as u128 } else { u128::MAX - 1 };
            *cell = TagCell::new(tag, ((real as u128) << 64) | eid as u128);
        }
        {
            let mut t = Tracked::new(c, &mut chosen);
            engine.sort_cells(c, scratch, &mut t);
        }
        let flag_sources: Vec<(u64, u64)> = (0..chosen.len())
            .map(|i| {
                let s = chosen[i];
                let (real, eid) = ((s.aux >> 64) == 1, s.aux as u64);
                let head =
                    i == 0 || chosen[i - 1].aux as u64 != eid || (chosen[i - 1].aux >> 64) != 1;
                if real && head {
                    (eid, 1)
                } else {
                    ((1u64 << 48) + i as u64, 0) // distinct dummy keys
                }
            })
            .collect();
        c.charge_par(chosen.len() as u64);
        let edge_ids: Vec<u64> = (0..m as u64).collect();
        let flags = send_receive_u64(c, scratch, &flag_sources, &edge_ids, engine, Schedule::Tree);
        for e in 0..m {
            let newly = flags[e].is_some() && !in_forest[e];
            in_forest[e] |= newly;
            total_weight += edges[e].2 * newly as u64;
        }
        c.charge_par(m as u64); // flag merge + weight reduction
    }

    // Final flatten for clean component labels.
    for _ in 0..lg {
        let sources: Vec<(u64, u64)> = (0..n).map(|v| (v as u64, d[v])).collect();
        d = send_receive_u64(c, scratch, &sources, &d, engine, Schedule::Tree)
            .into_iter()
            .map(|o| o.expect("label in range"))
            .collect();
    }
    MsfResult {
        total_weight,
        in_forest,
        components: d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{kruskal_msf_weight, random_weighted_graph, UnionFind};
    use fj::{Pool, SeqCtx};

    fn check(n: usize, edges: &[(usize, usize, u64)]) {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let res = msf(&c, &sp, n, edges, Engine::BitonicRec);
        assert_eq!(
            res.total_weight,
            kruskal_msf_weight(n, edges),
            "weight mismatch"
        );
        // Selected edges must form a forest spanning each component.
        let mut uf = UnionFind::new(n);
        let mut count = 0;
        for (e, &(u, v, _)) in edges.iter().enumerate() {
            if res.in_forest[e] {
                assert!(uf.union(u, v), "cycle in claimed forest at edge {e}");
                count += 1;
            }
        }
        let mut uf2 = UnionFind::new(n);
        let mut comps = n;
        for &(u, v, _) in edges {
            if uf2.union(u, v) {
                comps -= 1;
            }
        }
        assert_eq!(count, n - comps, "forest edge count");
    }

    #[test]
    fn triangle() {
        check(3, &[(0, 1, 5), (1, 2, 3), (0, 2, 4)]);
    }

    #[test]
    fn random_graphs() {
        for (n, m, seed) in [
            (16usize, 30usize, 1u64),
            (40, 80, 2),
            (64, 64, 3),
            (30, 15, 4),
        ] {
            let edges = random_weighted_graph(n, m, seed);
            check(n, &edges);
        }
    }

    #[test]
    fn disconnected_graph() {
        // Two separate triangles.
        let edges = vec![
            (0usize, 1usize, 1u64),
            (1, 2, 2),
            (0, 2, 3),
            (3, 4, 4),
            (4, 5, 5),
            (3, 5, 6),
        ];
        check(6, &edges);
    }

    #[test]
    fn path_graph_takes_all_edges() {
        let n = 32;
        let edges: Vec<(usize, usize, u64)> = (0..n - 1)
            .map(|i| (i, i + 1, (i * 7 % 13) as u64 + 1))
            .collect();
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let res = msf(&c, &sp, n, &edges, Engine::BitonicRec);
        assert!(
            res.in_forest.iter().all(|&b| b),
            "every path edge is in the MSF"
        );
    }

    #[test]
    fn parallel_matches() {
        let pool = Pool::new(4);
        let edges = random_weighted_graph(50, 100, 9);
        let sp = ScratchPool::new();
        let seq = msf(&SeqCtx::new(), &sp, 50, &edges, Engine::BitonicRec);
        let par = pool.run(|c| msf(c, &sp, 50, &edges, Engine::BitonicRec));
        assert_eq!(seq.total_weight, par.total_weight);
        assert_eq!(seq.in_forest, par.in_forest);
    }
}
