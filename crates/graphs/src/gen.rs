//! Workload generators for the §5 applications and the Table 1 benches.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A random linked list over `0..n` as a successor array; the terminal
/// node points to itself. Returns `(succ, order)` where `order[k]` is the
/// k-th node from the head.
pub fn random_list(n: usize, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(n >= 1);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut succ = vec![0usize; n];
    for w in order.windows(2) {
        succ[w[0]] = w[1];
    }
    succ[order[n - 1]] = order[n - 1];
    (succ, order)
}

/// A uniformly random recursive tree on `n` vertices: vertex `i ≥ 1`
/// attaches to a random earlier vertex. Returns the undirected edge list.
pub fn random_tree(n: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (1..n).map(|i| (rng.gen_range(0..i), i)).collect()
}

/// A random multigraph with `m` edges on `n` vertices (no self-loops).
pub fn random_graph(n: usize, m: usize, seed: u64) -> Vec<(usize, usize)> {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| {
            let u = rng.gen_range(0..n);
            let mut v = rng.gen_range(0..n - 1);
            if v >= u {
                v += 1;
            }
            (u, v)
        })
        .collect()
}

/// A random weighted graph with distinct weights (unique MSF).
pub fn random_weighted_graph(n: usize, m: usize, seed: u64) -> Vec<(usize, usize, u64)> {
    let edges = random_graph(n, m, seed);
    let mut weights: Vec<u64> = (0..m as u64).collect();
    weights.shuffle(&mut StdRng::seed_from_u64(seed ^ 0xABCD));
    edges
        .into_iter()
        .zip(weights)
        .map(|((u, v), w)| (u, v, w))
        .collect()
}

/// A node of a binary expression tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExprNode {
    /// Leaf with a value.
    Leaf(u64),
    /// Internal node: (op, left child, right child). `op` 0 = add, 1 = mul
    /// (wrapping arithmetic).
    Op(u8, usize, usize),
}

/// A rooted binary expression tree in array form; `root` is the root index.
#[derive(Clone, Debug)]
pub struct ExprTree {
    pub nodes: Vec<ExprNode>,
    pub root: usize,
}

impl ExprTree {
    /// Direct iterative evaluation (the correctness oracle).
    pub fn eval(&self) -> u64 {
        // Post-order with an explicit stack.
        let mut val = vec![0u64; self.nodes.len()];
        let mut stack = vec![(self.root, false)];
        while let Some((u, ready)) = stack.pop() {
            match self.nodes[u] {
                ExprNode::Leaf(v) => val[u] = v,
                ExprNode::Op(op, l, r) => {
                    if ready {
                        val[u] = if op == 0 {
                            val[l].wrapping_add(val[r])
                        } else {
                            val[l].wrapping_mul(val[r])
                        };
                    } else {
                        stack.push((u, true));
                        stack.push((l, false));
                        stack.push((r, false));
                    }
                }
            }
        }
        val[self.root]
    }

    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, ExprNode::Leaf(_)))
            .count()
    }
}

/// A random full binary expression tree with `leaves` leaves.
pub fn random_expr_tree(leaves: usize, seed: u64) -> ExprTree {
    assert!(leaves >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes: Vec<ExprNode> = Vec::with_capacity(2 * leaves - 1);
    // Build bottom-up: keep a worklist of subtree roots, repeatedly join
    // two random ones.
    let mut roots: Vec<usize> = (0..leaves)
        .map(|_| {
            nodes.push(ExprNode::Leaf(rng.gen_range(0..1 << 20)));
            nodes.len() - 1
        })
        .collect();
    while roots.len() > 1 {
        let i = rng.gen_range(0..roots.len());
        let a = roots.swap_remove(i);
        let j = rng.gen_range(0..roots.len());
        let b = roots.swap_remove(j);
        nodes.push(ExprNode::Op(rng.gen_range(0..2), a, b));
        roots.push(nodes.len() - 1);
    }
    ExprTree {
        root: roots[0],
        nodes,
    }
}

/// Union-find (path halving + union by size) — the oracle for CC and MSF.
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Returns true if the union merged two components.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        true
    }
}

/// Kruskal's MSF total weight (oracle).
pub fn kruskal_msf_weight(n: usize, edges: &[(usize, usize, u64)]) -> u64 {
    let mut sorted: Vec<_> = edges.to_vec();
    sorted.sort_unstable_by_key(|&(_, _, w)| w);
    let mut uf = UnionFind::new(n);
    let mut total = 0;
    for &(u, v, w) in &sorted {
        if uf.union(u, v) {
            total += w;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_list_is_a_single_chain() {
        let (succ, order) = random_list(100, 5);
        let mut cur = order[0];
        for &expected in &order {
            assert_eq!(cur, expected);
            cur = succ[cur];
        }
        assert_eq!(succ[order[99]], order[99], "terminal self-loop");
    }

    #[test]
    fn random_tree_is_connected_acyclic() {
        let n = 200;
        let edges = random_tree(n, 9);
        assert_eq!(edges.len(), n - 1);
        let mut uf = UnionFind::new(n);
        for &(u, v) in &edges {
            assert!(uf.union(u, v), "cycle detected at ({u},{v})");
        }
    }

    #[test]
    fn expr_tree_eval_small() {
        // (2 + 3) * 4
        let t = ExprTree {
            nodes: vec![
                ExprNode::Leaf(2),
                ExprNode::Leaf(3),
                ExprNode::Leaf(4),
                ExprNode::Op(0, 0, 1),
                ExprNode::Op(1, 3, 2),
            ],
            root: 4,
        };
        assert_eq!(t.eval(), 20);
    }

    #[test]
    fn random_expr_tree_has_right_shape() {
        let t = random_expr_tree(64, 3);
        assert_eq!(t.leaves(), 64);
        assert_eq!(t.nodes.len(), 127);
        let _ = t.eval();
    }

    #[test]
    fn kruskal_on_triangle() {
        let w = kruskal_msf_weight(3, &[(0, 1, 5), (1, 2, 3), (0, 2, 4)]);
        assert_eq!(w, 7);
    }
}
