//! Connected components (§5.3, Table 1 row "CC†").
//!
//! A Shiloach–Vishkin-family algorithm — hook each component onto the
//! minimum neighbouring (grand)label, then pointer-double — run for a
//! *fixed* `2⌈log₂ n⌉ + 4` rounds so the round count (and hence the whole
//! trace) is data-independent. Every data-dependent access of a round is an
//! oblivious primitive:
//!
//! * grand-labels `D[D[v]]` and edge-endpoint labels via **send-receive**;
//! * minimum-hook conflict resolution via one **oblivious sort** over the
//!   per-edge proposals (head of each target-run wins);
//! * label application and two shortcut steps via **send-receive**.
//!
//! Per round: `O(sort(n + m))` work — `O(log n)` rounds total, matching the
//! paper's `O(m log² n)` work and `Õ(log² n)` span shape for CC (our span
//! carries the bitonic engine's extra log factor, as §3.4 licenses).
//!
//! Labels decrease monotonically and hooking is to the component minimum,
//! so the fixed round budget flattens every component to its minimum
//! vertex id (asserted against a union-find oracle in tests, including
//! paths and cycles — the adversarial diameters).

use fj::Ctx;
use metrics::{ScratchPool, Tracked};
use obliv_core::scan::Schedule;
use obliv_core::slot::composite_key;
use obliv_core::{send_receive_u64, Engine, TagCell};

const DUMMY: u64 = u64::MAX;

/// Fixed round budget for `n` vertices.
pub fn cc_rounds(n: usize) -> usize {
    2 * (usize::BITS - n.max(2).leading_zeros()) as usize + 4
}

/// Oblivious connected components: returns the component label of every
/// vertex (the minimum vertex id in its component).
pub fn connected_components<C: Ctx>(
    c: &C,
    scratch: &ScratchPool,
    n: usize,
    edges: &[(usize, usize)],
    engine: Engine,
) -> Vec<u64> {
    let mut d: Vec<u64> = (0..n as u64).collect();
    let all_v: Vec<u64> = (0..n as u64).collect();
    let m = edges.len();

    for _round in 0..cc_rounds(n) {
        // Grand-labels rr[v] = D[D[v]].
        let sources: Vec<(u64, u64)> = (0..n).map(|v| (v as u64, d[v])).collect();
        let rr: Vec<u64> = send_receive_u64(c, scratch, &sources, &d, engine, Schedule::Tree)
            .into_iter()
            .map(|o| o.expect("label in range"))
            .collect();

        // Endpoint grand-labels for every edge.
        let rr_sources: Vec<(u64, u64)> = (0..n).map(|v| (v as u64, rr[v])).collect();
        let ends: Vec<u64> = edges
            .iter()
            .flat_map(|&(u, v)| [u as u64, v as u64])
            .collect();
        let end_rr = send_receive_u64(c, scratch, &rr_sources, &ends, engine, Schedule::Tree);

        // Hook proposals: target = larger grand-label, value = smaller.
        let proposals: Vec<(u64, u64)> = (0..m)
            .map(|e| {
                let (a, b) = (
                    end_rr[2 * e].expect("endpoint label"),
                    end_rr[2 * e + 1].expect("endpoint label"),
                );
                if a == b {
                    (DUMMY, 0)
                } else {
                    (a.max(b), a.min(b))
                }
            })
            .collect();
        c.charge_par(m as u64);

        // Minimum per target via oblivious sort (head of each run wins).
        let winners = min_per_target(c, scratch, &proposals, engine);

        // Apply hooks: D[t] = min(D[t], proposal).
        let hook_res = send_receive_u64(c, scratch, &winners, &all_v, engine, Schedule::Tree);
        {
            let mut dt = Tracked::new(c, &mut d);
            let dr = dt.as_raw();
            let hook_ref = &hook_res;
            fj::par_for(c, 0, n, fj::grain_for(c), &|c, v| unsafe {
                // SAFETY: per-vertex slots.
                let cur = dr.get(c, v);
                let prop = hook_ref[v].unwrap_or(cur);
                dr.set(c, v, cur.min(prop));
            });
        }

        // Two shortcut (pointer-doubling) steps.
        for _ in 0..2 {
            let sources: Vec<(u64, u64)> = (0..n).map(|v| (v as u64, d[v])).collect();
            d = send_receive_u64(c, scratch, &sources, &d, engine, Schedule::Tree)
                .into_iter()
                .map(|o| o.expect("label in range"))
                .collect();
        }
    }
    d
}

/// Keep, for every distinct target, the minimum proposed value. Output has
/// one entry per input (fixed size); losers are blinded to dummies.
fn min_per_target<C: Ctx>(
    c: &C,
    scratch: &ScratchPool,
    proposals: &[(u64, u64)],
    engine: Engine,
) -> Vec<(u64, u64)> {
    let m = proposals.len().next_power_of_two().max(1);
    // The whole (target, value) pair fits in the 128-bit tag, so the sort
    // moves packed 32-byte `TagCell`s instead of ~96-byte slots (the PR-5
    // fast path). Fillers carry tag `u128::MAX`, strictly above every real
    // composite key (values are labels `< n`), so reals occupy a prefix;
    // equal tags are identical pairs, so the unstable network is safe.
    let mut cells = scratch.lease(m, TagCell::filler());
    for (cell, &(t, v)) in cells.iter_mut().zip(proposals.iter()) {
        *cell = TagCell::new(composite_key(t, v), 0);
    }
    {
        let mut t = Tracked::new(c, &mut cells);
        engine.sort_cells(c, scratch, &mut t);
    }
    let out: Vec<(u64, u64)> = (0..proposals.len())
        .map(|i| {
            let (t, v) = ((cells[i].tag >> 64) as u64, cells[i].tag as u64);
            let head = i == 0 || (cells[i - 1].tag >> 64) as u64 != t;
            if head && t != DUMMY {
                (t, v)
            } else {
                (DUMMY, 0)
            }
        })
        .collect();
    c.charge_par(proposals.len() as u64);
    out
}

/// Insecure baseline: the same hook-to-min/shortcut rounds with direct
/// (leaky) array accesses.
pub fn connected_components_insecure<C: Ctx>(
    c: &C,
    n: usize,
    edges: &[(usize, usize)],
) -> Vec<u64> {
    let mut d: Vec<u64> = (0..n as u64).collect();
    for _ in 0..cc_rounds(n) {
        let rr: Vec<u64> = (0..n).map(|v| d[d[v] as usize]).collect();
        let mut best: Vec<u64> = rr.clone();
        for &(u, v) in edges {
            let (a, b) = (rr[u], rr[v]);
            if a != b {
                let t = a.max(b) as usize;
                best[t] = best[t].min(a.min(b));
            }
        }
        for v in 0..n {
            d[v] = d[v].min(best[d[v] as usize]).min(best[v]);
        }
        for _ in 0..2 {
            d = (0..n).map(|v| d[d[v] as usize]).collect();
        }
        c.work((n + edges.len()) as u64);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_graph, UnionFind};
    use fj::{Pool, SeqCtx};
    use metrics::{measure, CacheConfig, TraceMode};

    fn oracle_labels(n: usize, edges: &[(usize, usize)]) -> Vec<u64> {
        let mut uf = UnionFind::new(n);
        for &(u, v) in edges {
            uf.union(u, v);
        }
        // Canonical label: minimum vertex id per component.
        let mut min_label = vec![u64::MAX; n];
        for v in 0..n {
            let r = uf.find(v);
            min_label[r] = min_label[r].min(v as u64);
        }
        (0..n).map(|v| min_label[uf.find(v)]).collect()
    }

    #[test]
    fn handles_path_and_cycle_adversarial_diameter() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let n = 64;
        let path: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        assert_eq!(
            connected_components(&c, &sp, n, &path, Engine::BitonicRec),
            vec![0u64; n]
        );
        let cycle: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        assert_eq!(
            connected_components(&c, &sp, n, &cycle, Engine::BitonicRec),
            vec![0u64; n]
        );
    }

    #[test]
    fn matches_union_find_on_random_graphs() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        for (n, m, seed) in [
            (20usize, 12usize, 1u64),
            (50, 40, 2),
            (100, 160, 3),
            (64, 20, 4),
        ] {
            let edges = random_graph(n, m, seed);
            let got = connected_components(&c, &sp, n, &edges, Engine::BitonicRec);
            assert_eq!(got, oracle_labels(n, &edges), "n={n} m={m} seed={seed}");
        }
    }

    #[test]
    fn insecure_baseline_matches_oracle() {
        let c = SeqCtx::new();
        for (n, m, seed) in [(40usize, 30usize, 5u64), (80, 120, 6)] {
            let edges = random_graph(n, m, seed);
            let got = connected_components_insecure(&c, n, &edges);
            assert_eq!(got, oracle_labels(n, &edges));
        }
    }

    #[test]
    fn isolated_vertices_and_empty_graph() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let got = connected_components(&c, &sp, 8, &[], Engine::BitonicRec);
        assert_eq!(got, (0..8u64).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches() {
        let pool = Pool::new(4);
        let edges = random_graph(120, 200, 9);
        let sp = ScratchPool::new();
        let seq = connected_components(&SeqCtx::new(), &sp, 120, &edges, Engine::BitonicRec);
        let par = pool.run(|c| connected_components(c, &sp, 120, &edges, Engine::BitonicRec));
        assert_eq!(seq, par);
    }

    #[test]
    fn trace_depends_only_on_shape() {
        // Same (n, m): different topologies must give identical traces.
        let run = |edges: Vec<(usize, usize)>| {
            let (_, rep) = measure(CacheConfig::default(), TraceMode::Hash, |c| {
                let sp = ScratchPool::new();
                connected_components(c, &sp, 32, &edges, Engine::BitonicRec);
            });
            (rep.trace_hash, rep.trace_len)
        };
        let a = run((0..31).map(|i| (i, i + 1)).collect()); // path
        let b = run(random_graph(32, 31, 7)); // random, same m
        assert_eq!(a, b, "CC trace leaked the topology");
    }
}
