//! Euler tour and rooted-tree computations (§5.2).
//!
//! Input: the edge list of an unrooted tree. Every edge is doubled into two
//! arcs; sorting arcs by (tail, head) materializes the circular adjacency
//! lists; a fixed-pattern neighbour scan plus oblivious *propagation* gives
//! each arc its successor within its tail's adjacency list; and one
//! oblivious *send-receive* applies the classic rule
//! `τ(x → y) = Adjsucc(y → x)`, producing the Euler tour as a linked list
//! of arcs. Everything fits in the sorting bound.
//!
//! Rooting the tour at `r` and list-ranking it (with ±1 / indicator
//! weights) yields parent, depth, preorder, postorder, and subtree size —
//! the "tree computations with Euler tour" of §5.2, with the list-ranking
//! step dominating.

use crate::listrank::list_rank_oblivious;
use fj::Ctx;
use metrics::{ScratchPool, Tracked};
use obliv_core::scan::{seg_propagate_in, Schedule, Seg};
use obliv_core::{send_receive, send_receive_u64, Engine, OrbaParams, TagCell};

fn arc_key(u: usize, v: usize) -> u64 {
    ((u as u64) << 32) | v as u64
}

/// An Euler tour: arcs in sorted (tail, head) order plus the successor
/// permutation over arc indices.
#[derive(Clone, Debug)]
pub struct EulerTour {
    pub arcs: Vec<(u32, u32)>,
    pub succ: Vec<usize>,
}

/// Build the Euler tour of the tree given by `edges`, obliviously.
pub fn euler_tour<C: Ctx>(
    c: &C,
    scratch: &ScratchPool,
    edges: &[(usize, usize)],
    engine: Engine,
) -> EulerTour {
    let l = 2 * edges.len();
    assert!(l >= 2, "tree must have at least one edge");
    let m = l.next_power_of_two();

    // Both directions of every edge, as packed cells keyed by (tail, head):
    // the arc fits the 16-byte aux lane, so the sort moves 32-byte
    // `TagCell`s instead of ~96-byte slots (the PR-5 fast path, applied to
    // the Euler-tour keys). Arc keys are distinct in a tree, so the
    // unstable cell network needs no tiebreak.
    let mut cells = scratch.lease(m, TagCell::filler());
    for (cell, (u, v)) in cells
        .iter_mut()
        .zip(edges.iter().flat_map(|&(u, v)| [(u, v), (v, u)]))
    {
        *cell = TagCell::new(arc_key(u, v) as u128, ((u as u128) << 32) | v as u128);
    }
    {
        let mut t = Tracked::new(c, &mut cells);
        engine.sort_cells(c, scratch, &mut t);
    }
    let arcs: Vec<(u32, u32)> = cells[..l]
        .iter()
        .map(|s| ((s.aux >> 32) as u32, s.aux as u32))
        .collect();

    // Successor within each tail's circular adjacency list: next arc with
    // the same tail, wrapping to the group head (obliviously propagated).
    let mut heads: Vec<Seg<u64>> = (0..l)
        .map(|i| {
            let head = i == 0 || arcs[i - 1].0 != arcs[i].0;
            Seg::new(head, i as u64)
        })
        .collect();
    {
        let mut t = Tracked::new(c, &mut heads);
        seg_propagate_in(c, scratch, &mut t, Schedule::Tree);
    }
    let adj_succ: Vec<u64> = (0..l)
        .map(|i| {
            let last = i + 1 == l || arcs[i + 1].0 != arcs[i].0;
            if last {
                heads[i].v
            } else {
                (i + 1) as u64
            }
        })
        .collect();
    c.charge_par(2 * l as u64);

    // τ(x → y) = Adjsucc(y → x) via oblivious send-receive.
    let sources: Vec<(u64, u64)> = (0..l)
        .map(|i| (arc_key(arcs[i].0 as usize, arcs[i].1 as usize), adj_succ[i]))
        .collect();
    let dests: Vec<u64> = arcs
        .iter()
        .map(|&(u, v)| arc_key(v as usize, u as usize))
        .collect();
    let succ = send_receive_u64(c, scratch, &sources, &dests, engine, Schedule::Tree)
        .into_iter()
        .map(|o| o.expect("reverse arc exists in a tree") as usize)
        .collect();

    EulerTour { arcs, succ }
}

/// Per-vertex results of the rooted tree computations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeStats {
    /// Parent in the tree rooted at `root` (root maps to itself).
    pub parent: Vec<usize>,
    /// Depth (root = 0).
    pub depth: Vec<u64>,
    /// Preorder number (root = 0, then 1..n-1).
    pub preorder: Vec<u64>,
    /// Postorder number (root = n-1).
    pub postorder: Vec<u64>,
    /// Subtree size (root = n).
    pub subtree: Vec<u64>,
}

/// Rooted tree computations via Euler tour + three weighted list rankings
/// (§5.2), all obliviously.
pub fn rooted_tree_stats<C: Ctx>(
    c: &C,
    scratch: &ScratchPool,
    n: usize,
    edges: &[(usize, usize)],
    root: usize,
    engine: Engine,
    seed: u64,
) -> TreeStats {
    assert_eq!(edges.len(), n - 1, "not a tree");
    let tour = euler_tour(c, scratch, edges, engine);
    let l = tour.arcs.len();
    let params = OrbaParams::for_n(l);

    // Start arc: the first arc leaving the root in sorted order
    // (fixed-pattern min scan).
    let mut start = usize::MAX;
    for i in 0..l {
        if tour.arcs[i].0 as usize == root && start == usize::MAX {
            start = i;
        }
    }
    c.charge_par(l as u64); // min-index reduction

    // Break the circle: the arc whose successor is `start` becomes the
    // terminal (fixed-pattern pass).
    let succ_list: Vec<usize> = tour
        .succ
        .iter()
        .map(|&s| if s == start { usize::MAX } else { s })
        .collect();
    let succ_list: Vec<usize> = succ_list
        .iter()
        .enumerate()
        .map(|(i, &s)| if s == usize::MAX { i } else { s })
        .collect();
    c.charge_par(2 * l as u64);

    // Tour positions from an (unweighted) oblivious list ranking.
    let unit = vec![1u64; l];
    let rank = list_rank_oblivious(c, scratch, &succ_list, &unit, params, engine, seed);
    let pos: Vec<u64> = rank
        .iter()
        .map(|&r| (l as u64 - 1).wrapping_sub(r))
        .collect();

    // Position of each reverse arc (send-receive keyed by arc id).
    let pos_sources: Vec<(u64, u64)> = (0..l)
        .map(|i| {
            (
                arc_key(tour.arcs[i].0 as usize, tour.arcs[i].1 as usize),
                pos[i],
            )
        })
        .collect();
    let rev_dests: Vec<u64> = tour
        .arcs
        .iter()
        .map(|&(u, v)| arc_key(v as usize, u as usize))
        .collect();
    let rev_pos: Vec<u64> =
        send_receive_u64(c, scratch, &pos_sources, &rev_dests, engine, Schedule::Tree)
            .into_iter()
            .map(|o| o.expect("reverse arc"))
            .collect();

    // Advance arcs descend from parent to child.
    let advance: Vec<bool> = (0..l).map(|i| pos[i] < rev_pos[i]).collect();

    // Weighted rankings: depth uses +1/−1, preorder counts advances,
    // postorder counts retreats.
    let w_depth: Vec<u64> = advance
        .iter()
        .map(|&a| if a { 1u64 } else { 1u64.wrapping_neg() })
        .collect();
    let w_pre: Vec<u64> = advance.iter().map(|&a| a as u64).collect();
    let w_post: Vec<u64> = advance.iter().map(|&a| !a as u64).collect();
    let r_depth = list_rank_oblivious(c, scratch, &succ_list, &w_depth, params, engine, seed ^ 1);
    let r_pre = list_rank_oblivious(c, scratch, &succ_list, &w_pre, params, engine, seed ^ 2);
    let r_post = list_rank_oblivious(c, scratch, &succ_list, &w_post, params, engine, seed ^ 3);

    // Per-arc prefix-inclusive values (totals minus strict suffixes; the
    // terminal arc is a retreat, so the +1/−1 total needs its weight back).
    let n_adv = (n - 1) as u64;
    let depth_at = |i: usize| {
        0u64.wrapping_sub(r_depth[i])
            .wrapping_add(w_depth[i])
            .wrapping_add(1)
    };
    let pre_at = |i: usize| n_adv - r_pre[i] + w_pre[i];
    // 1-based retreat count inclusive, shifted to 0-based postorder.
    // Wrapping like depth_at: for advance arcs the expression underflows,
    // but those values travel under dummy keys and are never delivered.
    let post_at = |i: usize| (n_adv - r_post[i] + w_post[i]).wrapping_sub(2);

    // Scatter per-vertex results: each advance arc (u → v) describes v.
    let mut parent = vec![root; n];
    let mut depth = vec![0u64; n];
    let mut preorder = vec![0u64; n];
    // The root closes last: postorder n−1 (every other vertex is overwritten).
    let mut postorder = vec![(n - 1) as u64; n];
    let mut subtree = vec![n as u64; n];

    // Advance arc (u → v) describes v's parent/depth/preorder/subtree; the
    // matching *retreat* arc (v → u) carries v's postorder.
    let vert_sources: Vec<(u64, (u64, u64, u64, u64))> = (0..l)
        .map(|i| {
            let (u, v) = tour.arcs[i];
            // Non-advance arcs use a dummy key (> any vertex id).
            let key = if advance[i] {
                v as u64
            } else {
                (1u64 << 32) + i as u64
            };
            let size = rev_pos[i].wrapping_sub(pos[i]).div_ceil(2);
            (key, (u as u64, depth_at(i), pre_at(i), size))
        })
        .collect();
    let post_sources: Vec<(u64, u64)> = (0..l)
        .map(|i| {
            let key = if advance[i] {
                (1u64 << 32) + i as u64
            } else {
                tour.arcs[i].0 as u64
            };
            (key, post_at(i))
        })
        .collect();
    let vert_dests: Vec<u64> = (0..n as u64).collect();
    let results = send_receive(
        c,
        scratch,
        &vert_sources,
        &vert_dests,
        engine,
        Schedule::Tree,
    );
    let post_results = send_receive_u64(
        c,
        scratch,
        &post_sources,
        &vert_dests,
        engine,
        Schedule::Tree,
    );
    for (v, res) in results.into_iter().enumerate() {
        if let Some((p, d, pre, size)) = res {
            parent[v] = p as usize;
            depth[v] = d;
            preorder[v] = pre;
            subtree[v] = size;
        }
    }
    for (v, res) in post_results.into_iter().enumerate() {
        if let Some(post) = res {
            postorder[v] = post;
        }
    }
    c.charge_par(2 * n as u64);

    TreeStats {
        parent,
        depth,
        preorder,
        postorder,
        subtree,
    }
}

/// Sequential DFS oracle for the same statistics.
///
/// The Euler tour enters each vertex's adjacency list in *circular order
/// starting after the arrival edge* (the `τ(x→y) = Adjsucc(y→x)` rule), so
/// the oracle replicates exactly that child order: neighbours greater than
/// the parent in ascending order, then those smaller (the root, entered
/// "from nowhere", uses plain ascending order).
pub fn tree_stats_dfs(n: usize, edges: &[(usize, usize)], root: usize) -> TreeStats {
    let mut adj = vec![Vec::new(); n];
    for &(u, v) in edges {
        adj[u].push(v);
        adj[v].push(u);
    }
    for a in adj.iter_mut() {
        a.sort_unstable();
    }
    let mut stats = TreeStats {
        parent: vec![root; n],
        depth: vec![0; n],
        preorder: vec![0; n],
        postorder: vec![0; n],
        subtree: vec![1; n],
    };
    let mut pre_ctr = 0u64;
    let mut post_ctr = 0u64;
    let mut stack = vec![(root, usize::MAX, false)];
    while let Some((u, par, ready)) = stack.pop() {
        if ready {
            stats.postorder[u] = post_ctr;
            post_ctr += 1;
            continue;
        }
        stats.parent[u] = if par == usize::MAX { root } else { par };
        stats.preorder[u] = pre_ctr;
        pre_ctr += 1;
        stack.push((u, par, true));
        // Circular order after `par`: (> par) ascending, then (< par)
        // ascending. Pushed reversed so the stack pops them in order.
        let children: Vec<usize> = if par == usize::MAX {
            adj[u].clone()
        } else {
            adj[u]
                .iter()
                .copied()
                .filter(|&v| v > par)
                .chain(adj[u].iter().copied().filter(|&v| v < par))
                .collect()
        };
        for &v in children.iter().rev() {
            if v != par {
                stats.depth[v] = stats.depth[u] + 1;
                stack.push((v, u, false));
            }
        }
    }
    // Subtree sizes bottom-up in postorder.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&v| stats.postorder[v]);
    let mut subtree = vec![1u64; n];
    for &v in &order {
        if v != root {
            subtree[stats.parent[v]] += subtree[v];
        }
    }
    stats.subtree = subtree;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_tree;
    use fj::SeqCtx;

    #[test]
    fn tour_is_a_single_cycle_visiting_every_arc() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let edges = random_tree(40, 8);
        let tour = euler_tour(&c, &sp, &edges, Engine::BitonicRec);
        let l = tour.arcs.len();
        assert_eq!(l, 2 * edges.len());
        let mut seen = vec![false; l];
        let mut cur = 0usize;
        for _ in 0..l {
            assert!(!seen[cur], "tour revisited arc {cur}");
            seen[cur] = true;
            cur = tour.succ[cur];
        }
        assert_eq!(cur, 0, "tour must be a single cycle");
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn stats_match_dfs_on_path_and_star() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        // Path 0-1-2-3-4.
        let path: Vec<(usize, usize)> = (0..4).map(|i| (i, i + 1)).collect();
        let got = rooted_tree_stats(&c, &sp, 5, &path, 0, Engine::BitonicRec, 3);
        let expect = tree_stats_dfs(5, &path, 0);
        assert_eq!(got, expect);
        // Star centered at 0.
        let star: Vec<(usize, usize)> = (1..6).map(|v| (0, v)).collect();
        let got = rooted_tree_stats(&c, &sp, 6, &star, 0, Engine::BitonicRec, 4);
        let expect = tree_stats_dfs(6, &star, 0);
        assert_eq!(got, expect);
    }

    #[test]
    fn stats_match_dfs_on_random_trees() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        for (n, seed) in [(17usize, 1u64), (64, 2), (150, 3)] {
            let edges = random_tree(n, seed);
            let root = (seed as usize * 7) % n;
            let got = rooted_tree_stats(&c, &sp, n, &edges, root, Engine::BitonicRec, seed);
            let expect = tree_stats_dfs(n, &edges, root);
            assert_eq!(got.parent, expect.parent, "parent n={n}");
            assert_eq!(got.depth, expect.depth, "depth n={n}");
            assert_eq!(got.preorder, expect.preorder, "preorder n={n}");
            assert_eq!(got.postorder, expect.postorder, "postorder n={n}");
            assert_eq!(got.subtree, expect.subtree, "subtree n={n}");
        }
    }
}
