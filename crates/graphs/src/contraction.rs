//! Tree contraction (§5.3): evaluating a rooted binary expression tree in
//! `O(log n)` oblivious rounds of geometrically shrinking work.
//!
//! The algorithm is Kosaraju–Delcher-style SHUNT raking in the work-time
//! framework, realized with oblivious primitives as Theorem 4.1 is applied
//! "in a slightly non-blackbox fashion":
//!
//! * every round rakes all odd-labelled leaves — first those that are left
//!   children, then right children — maintaining linear edge functions
//!   `f(x) = a·x + b` (closed under `+` and `×` with constants, wrapping);
//! * all pointer chasing (parent records, sibling updates, grandparent
//!   child pointers, kill flags) goes through **oblivious send-receive**
//!   with fixed-size channels (non-participants emit dummy keys);
//! * after each round the dead nodes are compacted away with an oblivious
//!   sort, shrinking the live array to the *publicly known* size
//!   `2·⌊L/2⌋ − 1` — the geometric decrease that gives `O(W_sort(n))`
//!   total work and `O(log n · T_sort(n))` span, the Table 1 "TC†" row;
//! * the initial in-order leaf labels are themselves computed obliviously,
//!   with a local-rule Euler tour over the (parent, left, right) records
//!   and one oblivious list ranking.
//!
//! The per-round sequence of sizes depends only on the leaf count, so the
//! whole trace is a function of `(n, seed)` — checked by the trace test.

use crate::gen::{ExprNode, ExprTree};
use crate::listrank::list_rank_oblivious;
use fj::Ctx;
use metrics::{ScratchPool, Tracked};
use obliv_core::scan::Schedule;
use obliv_core::slot::{Item, Slot};
use obliv_core::{send_receive, send_receive_u64, Engine, OrbaParams, TagCell};

const NONE: u64 = u64::MAX;
/// Dummy-key base for send-receive channels (above any node id).
const DUMMY: u64 = 1 << 48;

/// Working record for one tree node.
#[derive(Clone, Copy, Debug, Default)]
struct CNode {
    id: u64,
    parent: u64,
    left: u64,
    right: u64,
    /// 0 = this node is its parent's left child, 1 = right.
    side: u8,
    /// 0 = add, 1 = mul (internal nodes only).
    op: u8,
    is_leaf: bool,
    alive: bool,
    /// Edge function to the parent: f(x) = a·x + b (wrapping).
    a: u64,
    b: u64,
    /// Leaf value.
    val: u64,
    /// In-order leaf label (1-based; 0 for internal nodes).
    label: u64,
}

/// Obliviously evaluate `tree` (wrapping arithmetic). Matches
/// [`ExprTree::eval`].
pub fn contract_eval<C: Ctx>(
    c: &C,
    scratch: &ScratchPool,
    tree: &ExprTree,
    engine: Engine,
    seed: u64,
) -> u64 {
    let n = tree.nodes.len();
    if n == 1 {
        if let ExprNode::Leaf(v) = tree.nodes[0] {
            return v;
        }
        unreachable!("single-node tree must be a leaf");
    }

    // Build records.
    let mut nodes: Vec<CNode> = (0..n)
        .map(|i| {
            let mut r = CNode {
                id: i as u64,
                parent: NONE,
                left: NONE,
                right: NONE,
                side: 0,
                op: 0,
                is_leaf: true,
                alive: true,
                a: 1,
                b: 0,
                val: 0,
                label: 0,
            };
            match tree.nodes[i] {
                ExprNode::Leaf(v) => r.val = v,
                ExprNode::Op(op, l, rgt) => {
                    r.is_leaf = false;
                    r.op = op;
                    r.left = l as u64;
                    r.right = rgt as u64;
                }
            }
            r
        })
        .collect();
    for i in 0..n {
        if let ExprNode::Op(_, l, rgt) = tree.nodes[i] {
            nodes[l].parent = i as u64;
            nodes[l].side = 0;
            nodes[rgt].parent = i as u64;
            nodes[rgt].side = 1;
        }
    }

    // In-order leaf labels via a local-rule Euler tour + oblivious LR.
    assign_leaf_labels(c, scratch, &mut nodes, engine, seed);

    let mut leaves = nodes.iter().filter(|r| r.is_leaf).count();
    let mut round = 0u64;
    while leaves > 1 {
        for side in [0u8, 1] {
            rake_substep(
                c,
                scratch,
                &mut nodes,
                side,
                engine,
                seed ^ (round << 8 | side as u64),
            );
        }
        // Relabel the surviving (even-labelled) leaves and compact to the
        // public size 2⌊L/2⌋ − 1.
        for r in nodes.iter_mut() {
            if r.alive && r.is_leaf {
                debug_assert_eq!(r.label % 2, 0, "odd leaf survived a round");
                r.label /= 2;
            }
        }
        c.charge_par(nodes.len() as u64);
        leaves /= 2;
        compact_nodes(c, scratch, &mut nodes, 2 * leaves - 1, engine);
        round += 1;
    }

    let last = nodes
        .iter()
        .find(|r| r.alive)
        .expect("one live node remains");
    debug_assert!(last.is_leaf);
    last.a.wrapping_mul(last.val).wrapping_add(last.b)
}

/// One rake substep: every live odd-labelled leaf on the given `side`
/// shunts itself and its parent out of the tree.
fn rake_substep<C: Ctx>(
    c: &C,
    scratch: &ScratchPool,
    nodes: &mut [CNode],
    side: u8,
    engine: Engine,
    _seed: u64,
) {
    let live = nodes.len();

    // Fetch parent records (all per-round working arrays are leased: the
    // contraction performs O(log n) rounds and must not malloc per round).
    let mut recs = scratch.lease(live, (0u64, CNode::default()));
    let mut parent_q = scratch.lease(live, 0u64);
    for (i, r) in nodes.iter().enumerate() {
        recs[i] = (r.id, *r);
        parent_q[i] = if r.parent == NONE {
            DUMMY + r.id
        } else {
            r.parent
        };
    }
    let parents = send_receive(c, scratch, &recs, &parent_q, engine, Schedule::Tree);

    // Decide rakes and emit the three update channels (dummies keep every
    // channel at the fixed size `live`).
    let mut sib_src = scratch.lease(live, (0u64, (0u64, 0u64, 0u64, 0u64)));
    let mut child_src = scratch.lease(live, (0u64, 0u64));
    let mut kill_src = scratch.lease(live, (0u64, 0u64));
    let mut self_rake = scratch.lease(live, false);

    for (i, r) in nodes.iter().enumerate() {
        let mut sib = (DUMMY + r.id, (0, 0, 0, 0));
        let mut child = (DUMMY + r.id, 0);
        let mut kill = (DUMMY + r.id, 0);
        if let Some(p) = parents[i] {
            let rake = r.alive && r.is_leaf && r.label % 2 == 1 && r.side == side;
            if rake {
                self_rake[i] = true;
                let s_id = if r.side == 0 { p.right } else { p.left };
                // The raked constant: c = f_u(val_u). The sibling applies
                // val_p = op(c, f_s(x)) composed with f_p on its side of
                // the channel.
                let c_val = r.a.wrapping_mul(r.val).wrapping_add(r.b);
                kill = (p.id, 1);
                child = if p.parent == NONE {
                    (DUMMY + r.id, 0)
                } else {
                    (p.parent * 2 + p.side as u64, s_id)
                };
                sib = (s_id, (c_val, p.op as u64, p.a, p.b));
            }
        }
        sib_src[i] = sib;
        child_src[i] = child;
        kill_src[i] = kill;
    }
    c.charge_par(live as u64);

    // Route the channels.
    let mut ids = scratch.lease(live, 0u64);
    let mut left_q = scratch.lease(live, 0u64);
    let mut right_q = scratch.lease(live, 0u64);
    for (i, r) in nodes.iter().enumerate() {
        ids[i] = r.id;
        left_q[i] = r.id * 2;
        right_q[i] = r.id * 2 + 1;
    }
    let sib_res = send_receive(c, scratch, &sib_src, &ids, engine, Schedule::Tree);
    let left_res = send_receive_u64(c, scratch, &child_src, &left_q, engine, Schedule::Tree);
    let right_res = send_receive_u64(c, scratch, &child_src, &right_q, engine, Schedule::Tree);
    let kill_res = send_receive_u64(c, scratch, &kill_src, &ids, engine, Schedule::Tree);

    // Apply updates. The sibling channel carries (c_val, op, p.a, p.b) and
    // the new parent/side arrive via the parent record we already fetched.
    for i in 0..nodes.len() {
        if self_rake[i] {
            nodes[i].alive = false;
        }
        if kill_res[i].is_some() {
            nodes[i].alive = false;
        }
        if let Some((c_val, op, pa, pb)) = sib_res[i] {
            // s's combined function: first its own f_s, then the parent op
            // with the raked constant, then p's edge function.
            let (na, nb) = if op == 0 {
                (nodes[i].a, nodes[i].b.wrapping_add(c_val))
            } else {
                (
                    c_val.wrapping_mul(nodes[i].a),
                    c_val.wrapping_mul(nodes[i].b),
                )
            };
            nodes[i].a = pa.wrapping_mul(na);
            nodes[i].b = pa.wrapping_mul(nb).wrapping_add(pb);
            // Reattach: the raker knew p.parent/p.side; recover them from
            // the parent we fetched for the sibling? No — the sibling's own
            // parent record IS p, fetched above.
            if let Some(p) = parents[i] {
                nodes[i].parent = p.parent;
                nodes[i].side = p.side;
            }
        }
        if let Some(new_child) = left_res[i] {
            nodes[i].left = new_child;
        }
        if let Some(new_child) = right_res[i] {
            nodes[i].right = new_child;
        }
    }
    c.charge_par(nodes.len() as u64);
}

/// Oblivious compaction of dead nodes down to `target` live records.
fn compact_nodes<C: Ctx>(
    c: &C,
    scratch: &ScratchPool,
    nodes: &mut Vec<CNode>,
    target: usize,
    engine: Engine,
) {
    let m = nodes.len().next_power_of_two();
    let mut slots = scratch.lease(
        m,
        Slot {
            sk: u128::MAX,
            ..Slot::<CNode>::filler()
        },
    );
    for (slot, (i, r)) in slots.iter_mut().zip(nodes.iter().enumerate()) {
        *slot = Slot::real(Item::new(0, *r), 0);
        slot.sk = if r.alive { i as u128 } else { u128::MAX - 1 };
    }
    {
        let mut t = Tracked::new(c, &mut slots);
        engine.sort_slots(c, scratch, &mut t);
    }
    let live: Vec<CNode> = slots[..target].iter().map(|s| s.item.val).collect();
    debug_assert!(live.iter().all(|r| r.alive), "compaction target too large");
    *nodes = live;
}

/// In-order leaf labels (1-based) via a local-rule Euler tour:
/// `down(v) = 2v`, `up(v) = 2v+1`; successors follow the classic binary
/// tree traversal rules, each computable from the node's own record.
fn assign_leaf_labels<C: Ctx>(
    c: &C,
    scratch: &ScratchPool,
    nodes: &mut [CNode],
    engine: Engine,
    seed: u64,
) {
    let n = nodes.len();
    let l = 2 * n;
    let mut succ = scratch.lease(l, 0usize);
    for r in nodes.iter() {
        let v = r.id as usize;
        // down(v): enter v from its parent.
        succ[2 * v] = if r.is_leaf {
            2 * v + 1
        } else {
            2 * (r.left as usize)
        };
        // up(v): leave v toward its parent.
        succ[2 * v + 1] = if r.parent == NONE {
            2 * v + 1 // terminal: the tour ends when the root closes
        } else {
            let p = r.parent as usize;
            if r.side == 0 {
                // From the left child, descend into the right sibling. The
                // sibling id is not local, so route through the parent's
                // down-arc? No: store it — we know only ids here, so fetch
                // via the parent pointer below.
                usize::MAX // patched in the fix-up pass
            } else {
                2 * p + 1
            }
        };
    }
    c.charge_par(n as u64);
    // Fix-up: successors of left-children's up-arcs need the sibling id —
    // one oblivious send-receive (sources: parent id -> right child id).
    let sib_sources: Vec<(u64, u64)> = nodes.iter().map(|r| (r.id, r.right)).collect();
    let sib_q: Vec<u64> = nodes
        .iter()
        .map(|r| {
            if r.parent == NONE {
                DUMMY + r.id
            } else {
                r.parent
            }
        })
        .collect();
    let sib_res = send_receive_u64(c, scratch, &sib_sources, &sib_q, engine, Schedule::Tree);
    for (i, r) in nodes.iter().enumerate() {
        let v = r.id as usize;
        if succ[2 * v + 1] == usize::MAX {
            let right_sib = sib_res[i].expect("left child has a parent") as usize;
            succ[2 * v + 1] = 2 * right_sib;
        }
    }

    // Rank the tour; smaller rank = later in the tour.
    let params = OrbaParams::for_n(l);
    let rank = list_rank_oblivious(c, scratch, &succ, &vec![1u64; l], params, engine, seed);
    let pos: Vec<u64> = rank
        .iter()
        .map(|&r| (l as u64 - 1).wrapping_sub(r))
        .collect();

    // Leaves sorted by entry position get labels 1..L; route back by id.
    // The sort rides in packed 32-byte `TagCell`s (the PR-5 fast path):
    // tag = tour position for leaves (distinct) / `u128::MAX - 1` for
    // internal nodes (order among them is irrelevant — their labels are
    // never read), aux = node id.
    let m = n.next_power_of_two();
    let mut cells = scratch.lease(m, TagCell::filler());
    for (cell, r) in cells.iter_mut().zip(nodes.iter()) {
        let tag = if r.is_leaf {
            pos[2 * r.id as usize] as u128
        } else {
            u128::MAX - 1
        };
        *cell = TagCell::new(tag, r.id as u128);
    }
    {
        let mut t = Tracked::new(c, &mut cells);
        engine.sort_cells(c, scratch, &mut t);
    }
    let label_sources: Vec<(u64, u64)> = cells
        .iter()
        .take(n)
        .enumerate()
        .map(|(k, s)| (s.aux as u64, k as u64 + 1))
        .collect();
    let ids: Vec<u64> = nodes.iter().map(|r| r.id).collect();
    let labels = send_receive_u64(c, scratch, &label_sources, &ids, engine, Schedule::Tree);
    let leaf_count = nodes.iter().filter(|r| r.is_leaf).count() as u64;
    for (i, r) in nodes.iter_mut().enumerate() {
        if r.is_leaf {
            let lab = labels[i].expect("leaf labelled");
            debug_assert!(lab >= 1 && lab <= leaf_count);
            r.label = lab;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_expr_tree;
    use fj::{Pool, SeqCtx};
    use metrics::{measure, CacheConfig, TraceMode};

    #[test]
    fn evaluates_tiny_trees() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        // (2 + 3) * 4 = 20
        let t = ExprTree {
            nodes: vec![
                ExprNode::Leaf(2),
                ExprNode::Leaf(3),
                ExprNode::Leaf(4),
                ExprNode::Op(0, 0, 1),
                ExprNode::Op(1, 3, 2),
            ],
            root: 4,
        };
        assert_eq!(contract_eval(&c, &sp, &t, Engine::BitonicRec, 1), 20);
        // Single leaf.
        let single = ExprTree {
            nodes: vec![ExprNode::Leaf(7)],
            root: 0,
        };
        assert_eq!(contract_eval(&c, &sp, &single, Engine::BitonicRec, 1), 7);
    }

    #[test]
    fn matches_direct_eval_on_random_trees() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        for (leaves, seed) in [(2usize, 1u64), (3, 2), (8, 3), (17, 4), (64, 5), (100, 6)] {
            let t = random_expr_tree(leaves, seed);
            let got = contract_eval(&c, &sp, &t, Engine::BitonicRec, seed);
            assert_eq!(got, t.eval(), "leaves = {leaves}, seed = {seed}");
        }
    }

    #[test]
    fn parallel_matches() {
        let pool = Pool::new(4);
        let t = random_expr_tree(80, 11);
        let sp = ScratchPool::new();
        let got = pool.run(|c| contract_eval(c, &sp, &t, Engine::BitonicRec, 2));
        assert_eq!(got, t.eval());
    }

    #[test]
    fn trace_length_depends_only_on_leaf_count() {
        // Tree contraction embeds list ranking on an ORP-permuted array, so
        // (exactly as §5.1 argues) the *distribution* of the trace — not a
        // single trace — is input-independent. Finite checks: the trace
        // length is a function of the leaf count alone, the trace is
        // deterministic for a fixed (input, seed), and leaf *values* never
        // influence the trace.
        let run = |t: &ExprTree, seed: u64| {
            let (_, rep) = measure(CacheConfig::default(), TraceMode::Hash, |c| {
                let sp = ScratchPool::new();
                contract_eval(c, &sp, t, Engine::BitonicRec, seed);
            });
            (rep.trace_hash, rep.trace_len)
        };
        let t1 = random_expr_tree(32, 100);
        let t2 = random_expr_tree(32, 200);
        assert_eq!(
            run(&t1, 77).1,
            run(&t2, 77).1,
            "trace length leaked the shape"
        );
        assert_eq!(run(&t1, 77), run(&t1, 77), "trace not deterministic");
        // Same shape, different leaf values: traces must be identical.
        let mut t3 = t1.clone();
        for node in t3.nodes.iter_mut() {
            if let ExprNode::Leaf(v) = node {
                *v = v.wrapping_mul(31).wrapping_add(17);
            }
        }
        assert_eq!(
            run(&t1, 77),
            run(&t3, 77),
            "leaf values leaked into the trace"
        );
    }
}
