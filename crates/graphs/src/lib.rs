//! # graphs — the §5 applications
//!
//! Data-oblivious binary fork-join algorithms built on `obliv-core`'s
//! sorting, routing, and scan primitives, each paired with an insecure
//! baseline and a reference oracle:
//!
//! * [`listrank`] — list ranking (§5.1): ORP + oblivious routing +
//!   pointer jumping on the hidden permutation;
//! * [`euler`] — Euler tour and rooted-tree computations (§5.2): parent,
//!   depth, preorder, postorder, subtree size;
//! * [`contraction`] — tree contraction (§5.3): oblivious SHUNT raking
//!   with geometrically shrinking compacted phases (Table 1 "TC†");
//! * [`cc`] — connected components (Table 1 "CC†"): fixed-round
//!   hook-to-minimum + pointer doubling, one oblivious sort per round;
//! * [`msf()`] — minimum spanning forest (Table 1 "MSF†"): oblivious
//!   Borůvka;
//! * [`gen`] — workload generators and oracles (union-find, Kruskal, DFS).

pub mod cc;
pub mod contraction;
pub mod euler;
pub mod gen;
pub mod listrank;
pub mod msf;

pub use cc::{cc_rounds, connected_components, connected_components_insecure};
pub use contraction::contract_eval;
pub use euler::{euler_tour, rooted_tree_stats, tree_stats_dfs, EulerTour, TreeStats};
pub use gen::{
    kruskal_msf_weight, random_expr_tree, random_graph, random_list, random_tree,
    random_weighted_graph, ExprNode, ExprTree, UnionFind,
};
pub use listrank::{
    list_rank_insecure, list_rank_insecure_unit, list_rank_oblivious, list_rank_oblivious_unit,
};
pub use msf::{msf, MsfResult};
