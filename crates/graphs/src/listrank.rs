//! List ranking (§5.1): distance of every node to the end of a linked
//! list (and its weighted generalization).
//!
//! * **Insecure baseline** — classic pointer jumping: `O(n log n)` work,
//!   `⌈log n⌉` rounds of parallel loops. Its access pattern leaks the list
//!   topology.
//! * **Oblivious** (§5.1) — obliviously permute the entries with ORP, learn
//!   each entry's successor's *permuted* position with oblivious
//!   send-receive, pointer-jump directly on the permuted array (safe: the
//!   hidden random permutation makes the pattern simulatable), and route
//!   the answers back with send-receive. Matches the insecure bounds:
//!   `O(n log n)` work, `O((n/B) log_M n)` cache, span `Õ(log² n)`.

use fj::{grain_for, par_for, Ctx};
use metrics::{ScratchPool, Tracked};
use obliv_core::scan::Schedule;
use obliv_core::slot::Item;
use obliv_core::{orp, send_receive_u64, Engine, OrbaParams};

/// Pointer-jumping list ranking (weighted): `rank[i]` = sum of `weight`
/// over the nodes strictly after `i` plus `weight[i]`… concretely the sum
/// of `weight[j]` over every `j` on the path from `i` (inclusive) to the
/// terminal (exclusive of the terminal's self-loop repetition). With unit
/// weights this is the distance to the terminal.
pub fn list_rank_insecure<C: Ctx>(
    c: &C,
    scratch: &ScratchPool,
    succ: &[usize],
    weight: &[u64],
) -> Vec<u64> {
    let n = succ.len();
    assert_eq!(weight.len(), n);
    let mut s = scratch.lease(n, 0u64);
    let mut r = scratch.lease(n, 0u64);
    for i in 0..n {
        s[i] = succ[i] as u64;
        r[i] = if succ[i] == i { 0 } else { weight[i] };
    }
    let rounds = (usize::BITS - n.max(2).leading_zeros()) as usize;
    let mut s2 = scratch.lease(n, 0u64);
    let mut r2 = scratch.lease(n, 0u64);
    for _ in 0..rounds {
        {
            let mut st = Tracked::new(c, &mut s);
            let sr = st.as_raw();
            let mut rt = Tracked::new(c, &mut r);
            let rr = rt.as_raw();
            let mut s2t = Tracked::new(c, &mut s2);
            let s2r = s2t.as_raw();
            let mut r2t = Tracked::new(c, &mut r2);
            let r2r = r2t.as_raw();
            par_for(c, 0, n, grain_for(c), &|c, i| unsafe {
                // SAFETY: reads of the old arrays, disjoint writes of new.
                let si = sr.get(c, i) as usize;
                let add = if si == i { 0 } else { rr.get(c, si) };
                r2r.set(c, i, rr.get(c, i).wrapping_add(add));
                s2r.set(c, i, sr.get(c, si));
            });
        }
        std::mem::swap(&mut s, &mut s2);
        std::mem::swap(&mut r, &mut r2);
    }
    r.to_vec()
}

/// Unit-weight convenience wrapper.
pub fn list_rank_insecure_unit<C: Ctx>(c: &C, scratch: &ScratchPool, succ: &[usize]) -> Vec<u64> {
    list_rank_insecure(c, scratch, succ, &vec![1u64; succ.len()])
}

/// Entry carried through the oblivious pipeline.
#[derive(Clone, Copy, Debug, Default)]
struct Entry {
    orig: u64,
    succ: u64,
    weight: u64,
}

/// Oblivious (weighted) list ranking per §5.1.
pub fn list_rank_oblivious<C: Ctx>(
    c: &C,
    scratch: &ScratchPool,
    succ: &[usize],
    weight: &[u64],
    params: OrbaParams,
    engine: Engine,
    seed: u64,
) -> Vec<u64> {
    let n = succ.len();
    assert_eq!(weight.len(), n);
    if n == 0 {
        return Vec::new();
    }

    // 1. Obliviously randomly permute the entries.
    let items: Vec<Item<Entry>> = (0..n)
        .map(|i| {
            Item::new(
                i as u128,
                Entry {
                    orig: i as u64,
                    succ: succ[i] as u64,
                    weight: weight[i],
                },
            )
        })
        .collect();
    let (permuted, _) = orp(c, scratch, &items, params, seed);

    // 2. Each entry learns its successor's permuted position via oblivious
    //    send-receive (sources: original id -> permuted position).
    let sources: Vec<(u64, u64)> = permuted
        .iter()
        .enumerate()
        .map(|(j, it)| (it.val.orig, j as u64))
        .collect();
    let dests: Vec<u64> = permuted.iter().map(|it| it.val.succ).collect();
    let succ_pos = send_receive_u64(c, scratch, &sources, &dests, engine, Schedule::Tree);

    // 3. Pointer jumping directly on the permuted array. The permutation is
    //    hidden and uniformly random, so these data-dependent accesses are
    //    simulatable (the paper's argument for using a non-oblivious list
    //    ranker after ORP).
    let perm_succ: Vec<usize> = (0..n)
        .map(|j| {
            let is_terminal = permuted[j].val.succ == permuted[j].val.orig;
            if is_terminal {
                j
            } else {
                succ_pos[j].expect("successor present") as usize
            }
        })
        .collect();
    let perm_weight: Vec<u64> = permuted.iter().map(|it| it.val.weight).collect();
    let perm_rank = list_rank_insecure(c, scratch, &perm_succ, &perm_weight);

    // 4. Route the answers back to original positions.
    let back_sources: Vec<(u64, u64)> = (0..n)
        .map(|j| (permuted[j].val.orig, perm_rank[j]))
        .collect();
    let back_dests: Vec<u64> = (0..n as u64).collect();
    send_receive_u64(
        c,
        scratch,
        &back_sources,
        &back_dests,
        engine,
        Schedule::Tree,
    )
    .into_iter()
    .map(|o| o.expect("every node ranked"))
    .collect()
}

/// Unit-weight oblivious wrapper.
pub fn list_rank_oblivious_unit<C: Ctx>(
    c: &C,
    scratch: &ScratchPool,
    succ: &[usize],
    seed: u64,
) -> Vec<u64> {
    let params = OrbaParams::for_n(succ.len().max(2));
    list_rank_oblivious(
        c,
        scratch,
        succ,
        &vec![1u64; succ.len()],
        params,
        Engine::BitonicRec,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_list;
    use fj::{Pool, SeqCtx};

    fn reference_ranks(succ: &[usize], order: &[usize]) -> Vec<u64> {
        let n = succ.len();
        let mut r = vec![0u64; n];
        for (k, &node) in order.iter().enumerate() {
            r[node] = (n - 1 - k) as u64;
        }
        r
    }

    #[test]
    fn insecure_matches_reference() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        for n in [1usize, 2, 3, 10, 257, 1000] {
            let (succ, order) = random_list(n, n as u64);
            let got = list_rank_insecure_unit(&c, &sp, &succ);
            assert_eq!(got, reference_ranks(&succ, &order), "n = {n}");
        }
    }

    #[test]
    fn oblivious_matches_insecure() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        for n in [1usize, 2, 50, 300, 1200] {
            let (succ, _) = random_list(n, 7 + n as u64);
            let a = list_rank_insecure_unit(&c, &sp, &succ);
            let b = list_rank_oblivious_unit(&c, &sp, &succ, 99);
            assert_eq!(a, b, "n = {n}");
        }
    }

    #[test]
    fn weighted_ranking() {
        let c = SeqCtx::new();
        let (succ, order) = random_list(64, 3);
        let weight: Vec<u64> = (0..64u64).map(|i| i + 1).collect();
        let sp = ScratchPool::new();
        let got = list_rank_oblivious(
            &c,
            &sp,
            &succ,
            &weight,
            OrbaParams::for_n(64),
            Engine::BitonicRec,
            5,
        );
        // Reference: rank[i] = sum of weights from i (inclusive) along the
        // list, excluding the terminal node's weight.
        let pos: Vec<usize> = {
            let mut p = vec![0usize; 64];
            for (k, &node) in order.iter().enumerate() {
                p[node] = k;
            }
            p
        };
        let mut suffix = vec![0u64; 65];
        for k in (0..63).rev() {
            suffix[k] = suffix[k + 1] + weight[order[k]];
        }
        let expect: Vec<u64> = (0..64)
            .map(|i| suffix[pos[i]].min(suffix[pos[i]]))
            .collect();
        let expect: Vec<u64> = (0..64)
            .map(|i| if pos[i] == 63 { 0 } else { expect[i] })
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn parallel_matches() {
        let pool = Pool::new(4);
        let (succ, _) = random_list(2000, 21);
        let sp = ScratchPool::new();
        let seq = list_rank_insecure_unit(&SeqCtx::new(), &sp, &succ);
        let par = pool.run(|c| list_rank_oblivious_unit(c, &sp, &succ, 13));
        assert_eq!(seq, par);
    }
}
