//! Wall-clock sorting benches (Table 1 "Sort" row, real execution on the
//! work-stealing pool): oblivious practical sort vs the insecure REC-SORT
//! baseline vs parallel mergesort vs std.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fj::Pool;
use obliv_core::{
    composite_key, oblivious_sort_u64, par_merge_sort, rec_sort_items, with_retries, Engine, Item,
    OSortParams, ScratchPool,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn scrambled(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) >> 11)
        .collect()
}

fn bench_sorts(cr: &mut Criterion) {
    let pool = Pool::with_default_threads();
    // Shared arena: iterations after the first run allocation-free.
    let scratch = ScratchPool::new();
    let mut g = cr.benchmark_group("sort");
    g.sample_size(10);

    for &n in &[1usize << 14, 1 << 16] {
        let data = scrambled(n);

        g.bench_with_input(BenchmarkId::new("oblivious_practical", n), &n, |b, _| {
            b.iter(|| {
                let mut v = data.clone();
                pool.run(|c| {
                    oblivious_sort_u64(c, &scratch, &mut v, OSortParams::practical(n), 42)
                });
                v
            })
        });

        g.bench_with_input(BenchmarkId::new("insecure_rec_sort", n), &n, |b, _| {
            b.iter(|| {
                let mut items: Vec<Item<u64>> = data
                    .iter()
                    .enumerate()
                    .map(|(i, &k)| Item::new(composite_key(k, i as u64), k))
                    .collect();
                items.shuffle(&mut StdRng::seed_from_u64(1));
                pool.run(|c| {
                    with_retries(16, |a| {
                        rec_sort_items(
                            c,
                            &scratch,
                            &mut items,
                            Engine::BitonicRec,
                            16,
                            5 + a as u64,
                        )
                    })
                });
                items
            })
        });

        g.bench_with_input(BenchmarkId::new("insecure_par_merge", n), &n, |b, _| {
            b.iter(|| {
                let mut items: Vec<Item<u64>> =
                    data.iter().map(|&k| Item::new(k as u128, k)).collect();
                pool.run(|c| par_merge_sort(c, &mut items));
                items
            })
        });

        g.bench_with_input(BenchmarkId::new("std_sort_unstable", n), &n, |b, _| {
            b.iter(|| {
                let mut v = data.clone();
                v.sort_unstable();
                v
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sorts);
criterion_main!(benches);
