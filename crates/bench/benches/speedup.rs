//! `E5`: work-stealing speedup. Blumofe–Leiserson predicts runtime
//! `O(W/P + T∞)`; the oblivious sort has `T∞ ≪ W`, so wall-clock should
//! fall near-linearly with the worker count until memory bandwidth binds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fj::Pool;
use obliv_core::{oblivious_sort_u64, OSortParams, ScratchPool};

fn bench_speedup(cr: &mut Criterion) {
    let mut g = cr.benchmark_group("speedup");
    g.sample_size(10);
    let n = 1usize << 15;
    let data: Vec<u64> = (0..n as u64)
        .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
        .collect();
    let max_threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(2);

    let mut threads = vec![1usize];
    let mut t = 2;
    while t <= max_threads {
        threads.push(t);
        t *= 2;
    }

    for &p in &threads {
        let pool = Pool::new(p);
        let scratch = ScratchPool::new();
        g.bench_with_input(BenchmarkId::new("oblivious_sort_32k", p), &p, |b, _| {
            b.iter(|| {
                let mut v = data.clone();
                pool.run(|c| {
                    oblivious_sort_u64(c, &scratch, &mut v, OSortParams::practical(n), 42)
                });
                v
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_speedup);
criterion_main!(benches);
