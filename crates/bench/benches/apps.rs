//! Wall-clock application benches (Table 1 rows LR / ET / TC / CC / MSF).

use criterion::{criterion_group, criterion_main, Criterion};
use fj::Pool;
use graphs::{
    connected_components, connected_components_insecure, contract_eval, list_rank_insecure_unit,
    list_rank_oblivious_unit, msf, random_expr_tree, random_graph, random_list, random_tree,
    random_weighted_graph, rooted_tree_stats,
};
use obliv_core::{Engine, ScratchPool};

fn bench_apps(cr: &mut Criterion) {
    let pool = Pool::with_default_threads();
    let scratch = ScratchPool::new();
    let mut g = cr.benchmark_group("apps");
    g.sample_size(10);

    let n = 1usize << 12;
    let (succ, _) = random_list(n, 3);
    g.bench_function("lr_oblivious_4096", |b| {
        b.iter(|| pool.run(|c| list_rank_oblivious_unit(c, &scratch, &succ, 7)))
    });
    g.bench_function("lr_insecure_4096", |b| {
        b.iter(|| pool.run(|c| list_rank_insecure_unit(c, &scratch, &succ)))
    });

    let tn = 1usize << 9;
    let tree = random_tree(tn, 5);
    g.bench_function("et_stats_oblivious_512", |b| {
        b.iter(|| pool.run(|c| rooted_tree_stats(c, &scratch, tn, &tree, 0, Engine::BitonicRec, 5)))
    });

    let expr = random_expr_tree(256, 7);
    g.bench_function("tc_oblivious_256_leaves", |b| {
        b.iter(|| pool.run(|c| contract_eval(c, &scratch, &expr, Engine::BitonicRec, 11)))
    });

    let gn = 1usize << 8;
    let edges = random_graph(gn, 2 * gn, 9);
    g.bench_function("cc_oblivious_256v_512e", |b| {
        b.iter(|| pool.run(|c| connected_components(c, &scratch, gn, &edges, Engine::BitonicRec)))
    });
    g.bench_function("cc_insecure_256v_512e", |b| {
        b.iter(|| pool.run(|c| connected_components_insecure(c, gn, &edges)))
    });

    let wedges = random_weighted_graph(gn, 2 * gn, 13);
    g.bench_function("msf_oblivious_256v_512e", |b| {
        b.iter(|| pool.run(|c| msf(c, &scratch, gn, &wedges, Engine::BitonicRec)))
    });

    g.finish();
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);
