//! Wall-clock PRAM simulation benches (Table 2 "PRAM" rows): direct
//! executor vs the Theorem 4.1 oblivious simulation, plus batched accesses
//! through the Theorem 4.2 tree-ORAM substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use fj::Pool;
use obliv_core::{Engine, ScratchPool};
use pram::{run_direct, run_oblivious_sb, HistogramProgram, MaxProgram, Opram, OramConfig};

fn bench_pram(cr: &mut Criterion) {
    let pool = Pool::with_default_threads();
    let scratch = ScratchPool::new();
    let mut g = cr.benchmark_group("pram");
    g.sample_size(10);

    let p = 256usize;
    let vals: Vec<u64> = (0..p as u64).map(|i| i % 16).collect();

    let hist = HistogramProgram::new(p, 16);
    g.bench_function("direct_histogram_p256", |b| {
        b.iter(|| pool.run(|c| run_direct(c, &hist, &vals)))
    });
    g.bench_function("oblivious_histogram_p256", |b| {
        b.iter(|| pool.run(|c| run_oblivious_sb(c, &scratch, &hist, &vals, Engine::BitonicRec)))
    });

    let maxp = MaxProgram::new(p);
    g.bench_function("oblivious_max_p256", |b| {
        b.iter(|| pool.run(|c| run_oblivious_sb(c, &scratch, &maxp, &vals, Engine::BitonicRec)))
    });

    g.bench_function("opram_batch32_s4096", |b| {
        b.iter(|| {
            pool.run(|c| {
                let mut o = Opram::new(4096, OramConfig::default(), Engine::BitonicRec, 7);
                let reqs: Vec<(u64, Option<u64>)> =
                    (0..32u64).map(|i| ((i * 37) % 4096, Some(i))).collect();
                o.access_batch(c, &reqs)
            })
        })
    });

    g.finish();
}

criterion_group!(benches, bench_pram);
criterion_main!(benches);
