//! Wall-clock Theorem E.1 bench: recursive cache-agnostic bitonic vs the
//! naive flat evaluation, on the real pool (the cache effect shows up as
//! time here; the model-level Q separation is in `ablations`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fj::Pool;
use metrics::Tracked;
use sortnet::{bitonic_sort_flat_par, oddeven_sort, sort_slice_rec};

fn key64(x: &u64) -> u128 {
    *x as u128
}

fn scrambled(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) >> 13)
        .collect()
}

fn bench_bitonic(cr: &mut Criterion) {
    let pool = Pool::with_default_threads();
    let mut g = cr.benchmark_group("bitonic");
    g.sample_size(10);

    for &n in &[1usize << 14, 1 << 17] {
        let data = scrambled(n);
        g.bench_with_input(BenchmarkId::new("recursive", n), &n, |b, _| {
            b.iter(|| {
                let mut v = data.clone();
                pool.run(|c| sort_slice_rec(c, &mut v, &key64, true));
                v
            })
        });
        g.bench_with_input(BenchmarkId::new("flat", n), &n, |b, _| {
            b.iter(|| {
                let mut v = data.clone();
                pool.run(|c| {
                    let mut t = Tracked::new(c, &mut v);
                    bitonic_sort_flat_par(c, &mut t, &key64, true);
                });
                v
            })
        });
        g.bench_with_input(BenchmarkId::new("oddeven", n), &n, |b, _| {
            b.iter(|| {
                let mut v = data.clone();
                pool.run(|c| {
                    let mut t = Tracked::new(c, &mut v);
                    oddeven_sort(c, &mut t, &key64);
                });
                v
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bitonic);
criterion_main!(benches);
