//! Shared harness for the table/figure generators and Criterion benches.
//!
//! Every generator measures the model quantities the paper's tables are
//! stated in — work `W`, span `T∞`, cache misses `Q(M,B)` — through the
//! metering executor, prints one row per (task, algorithm, n), and reports
//! normalized columns so the asymptotic *shape* (the reproduction target)
//! is visible at a glance: `W / (n·log n)`, `T∞ / log² n`, and
//! `Q / ((n/B)·log_M n)`.

use metrics::{measure, CacheConfig, CostReport, MeterCtx, TraceMode};

pub mod diff;

/// One measured table row.
#[derive(Clone, Debug)]
pub struct Row {
    pub task: &'static str,
    pub algo: &'static str,
    pub n: usize,
    pub rep: CostReport,
}

/// Measure a workload under the default cache geometry, trace off.
pub fn meter<F: FnOnce(&MeterCtx)>(f: F) -> CostReport {
    measure(CacheConfig::default(), TraceMode::Off, f).1
}

/// [`meter`] plus host wall-clock time of the metered run (nanoseconds) —
/// the raw material for the machine-readable `BENCH_*.json` artifacts.
pub fn meter_timed<F: FnOnce(&MeterCtx)>(f: F) -> (CostReport, u128) {
    let t0 = std::time::Instant::now();
    let rep = meter(f);
    (rep, t0.elapsed().as_nanos())
}

/// Measure under an explicit cache geometry.
pub fn meter_with<F: FnOnce(&MeterCtx)>(cfg: CacheConfig, f: F) -> CostReport {
    measure(cfg, TraceMode::Off, f).1
}

/// Host wall-clock (nanoseconds) of `f` run *unmetered* on the sequential
/// executor — the min over `reps` runs. Use this for rows whose point is
/// real data movement: under the metering executor the per-access
/// simulation overhead is width-independent, so wall-clock there hides
/// exactly the effect (e.g. tag cells vs wide records) being measured.
pub fn wall_unmetered<F: FnMut(&fj::SeqCtx)>(reps: u32, mut f: F) -> u128 {
    let c = fj::SeqCtx::new();
    let mut best = u128::MAX;
    for _ in 0..reps.max(1) {
        let t0 = std::time::Instant::now();
        f(&c);
        best = best.min(t0.elapsed().as_nanos());
    }
    best
}

pub fn lg(n: usize) -> f64 {
    (n.max(2) as f64).log2()
}

/// `log_M n` with the row's cache size (≥ 1).
fn log_m(n: usize, m_words: u64) -> f64 {
    (lg(n) / (m_words.max(2) as f64).log2()).max(1.0)
}

/// The optimal sorting cache bound `(n/B)·log_M n` (≥ 1).
pub fn q_sort_bound(n: usize, rep: &CostReport) -> f64 {
    ((n as f64 / rep.b_words as f64) * log_m(n, rep.m_words)).max(1.0)
}

pub fn header() {
    println!(
        "{:<10} {:<28} {:>9} {:>14} {:>10} {:>12} {:>9} {:>9} {:>9}",
        "task", "algorithm", "n", "work", "span", "Q(M,B)", "W/nlogn", "T/log^2", "Q/Qsort"
    );
    println!("{}", "-".repeat(118));
}

pub fn print_row(r: &Row) {
    let n = r.n.max(2) as f64;
    let nlogn = n * lg(r.n);
    let log2sq = lg(r.n) * lg(r.n);
    println!(
        "{:<10} {:<28} {:>9} {:>14} {:>10} {:>12} {:>9.2} {:>9.1} {:>9.2}",
        r.task,
        r.algo,
        r.n,
        r.rep.work,
        r.rep.span,
        r.rep.cache_misses,
        r.rep.work as f64 / nlogn,
        r.rep.span as f64 / log2sq,
        r.rep.cache_misses as f64 / q_sort_bound(r.n, &r.rep),
    );
}

/// Collects measured rows and, when `--json` was passed, writes them as a
/// machine-readable `BENCH_<bin>.json` next to the working directory so CI
/// can archive the perf trajectory of every push.
pub struct BenchSink {
    bin: &'static str,
    rows: Vec<(Row, u128, u64)>,
    json: bool,
}

impl BenchSink {
    /// `--json` on the command line enables the JSON artifact.
    pub fn from_args(bin: &'static str) -> Self {
        BenchSink {
            bin,
            rows: Vec::new(),
            json: std::env::args().any(|a| a == "--json"),
        }
    }

    /// Print the row (human table) and retain it for the JSON artifact.
    /// `wall_ns` is the host wall-clock time of the measured closure.
    pub fn record(&mut self, row: Row, wall_ns: u128) {
        self.record_alloc(row, wall_ns, 0);
    }

    /// [`BenchSink::record`] with an explicit fresh-allocation count (the
    /// scratch-arena `fresh_allocs` delta of the measured closure) so the
    /// CI regression gate can also watch allocator behaviour.
    pub fn record_alloc(&mut self, row: Row, wall_ns: u128, allocs: u64) {
        print_row(&row);
        self.rows.push((row, wall_ns, allocs));
    }

    /// Retain a row for the JSON artifact without printing it — for
    /// sections that render their own custom table.
    pub fn rows_push_quiet(
        &mut self,
        task: &'static str,
        algo: &'static str,
        n: usize,
        rep: CostReport,
        wall_ns: u128,
    ) {
        self.rows.push((Row { task, algo, n, rep }, wall_ns, 0));
    }

    /// Write `BENCH_<bin>.json` when `--json` was requested. Hand-rolled
    /// serialization: every field is numeric or a plain string, and the
    /// container has no serde.
    pub fn finish(&self) -> std::io::Result<()> {
        if !self.json {
            return Ok(());
        }
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"bin\": \"{}\",\n  \"rows\": [\n", self.bin));
        for (i, (r, wall_ns, allocs)) in self.rows.iter().enumerate() {
            // The regression gate's parser (`diff::parse_bench_json`) reads
            // plain quoted strings; keep names free of escape sequences so
            // `{:?}` serialization stays a verbatim quote.
            assert!(
                !r.task.contains(['"', '\\']) && !r.algo.contains(['"', '\\']),
                "bench row names must not contain quotes or backslashes: {:?}/{:?}",
                r.task,
                r.algo,
            );
            out.push_str(&format!(
                "    {{\"task\": {:?}, \"algo\": {:?}, \"n\": {}, \"work\": {}, \"span\": {}, \
                 \"cache_misses\": {}, \"cache_accesses\": {}, \"comparisons\": {}, \
                 \"moves\": {}, \"retries\": {}, \"allocs\": {}, \"m_words\": {}, \
                 \"b_words\": {}, \"wall_ns\": {}}}{}\n",
                r.task,
                r.algo,
                r.n,
                r.rep.work,
                r.rep.span,
                r.rep.cache_misses,
                r.rep.cache_accesses,
                r.rep.comparisons,
                r.rep.moves,
                r.rep.retries,
                allocs,
                r.rep.m_words,
                r.rep.b_words,
                wall_ns,
                if i + 1 == self.rows.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        let path = format!("BENCH_{}.json", self.bin);
        std::fs::write(&path, out)?;
        eprintln!("wrote {path}");
        Ok(())
    }
}

/// Default sweep, doubled twice at the top with `--full`.
pub fn sweep_from_args(default: &[usize]) -> Vec<usize> {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--full") {
        let mut v = default.to_vec();
        if let Some(&top) = v.last() {
            v.push(top * 2);
            v.push(top * 4);
        }
        v
    } else {
        default.to_vec()
    }
}

/// Least-squares growth exponent of `y` against `x` on log-log axes —
/// a quick check that a measured curve scales like the claimed bound.
pub fn growth_exponent(points: &[(usize, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(_, y)| y > 0.0)
        .map(|&(x, y)| ((x as f64).ln(), y.ln()))
        .collect();
    let k = pts.len() as f64;
    if pts.len() < 2 {
        return 0.0;
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (k * sxy - sx * sy) / (k * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_exponent_recovers_slope() {
        let pts: Vec<(usize, f64)> = (1..=6)
            .map(|k| {
                let n = 1usize << (10 + k);
                (n, (n as f64).powf(1.5))
            })
            .collect();
        let g = growth_exponent(&pts);
        assert!((g - 1.5).abs() < 0.01, "got {g}");
    }

    #[test]
    fn meter_runs_workloads() {
        use fj::Ctx as _;
        let rep = meter(|c| {
            fj::par_for(c, 0, 100, 1, &|c, _| c.work(1));
        });
        assert!(rep.work >= 100);
    }
}
