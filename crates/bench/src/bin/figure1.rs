//! Regenerates **Figure 1**: the bitonic sorting network for n = 16,
//! drawn layer by layer, plus machine-checked structural properties
//! (depth 10 = 1+2+3+4 merge layers, 8 comparators per layer, and the
//! 0-1-principle certificate that it sorts).

use sortnet::Network;

fn main() {
    let net = Network::bitonic(16);
    println!("== Figure 1: bitonic sorting network, n = 16 ==\n");
    println!("{}", net.render_ascii());
    println!("wires:        {}", net.n);
    println!(
        "layers:       {} (= 1 + 2 + 3 + 4 bitonic-merge stages)",
        net.depth()
    );
    println!("comparators:  {} (= n/2 per layer)", net.size());
    println!(
        "sorting net:  {} (exhaustive 0-1 principle over 2^16 inputs)",
        if net.is_sorting_network() {
            "verified"
        } else {
            "FAILED"
        }
    );

    let oe = Network::oddeven(16);
    println!("\nfor contrast, Batcher odd-even mergesort on 16 wires:");
    println!("layers:       {}", oe.depth());
    println!("comparators:  {}", oe.size());
    println!(
        "sorting net:  {}",
        if oe.is_sorting_network() {
            "verified"
        } else {
            "FAILED"
        }
    );
}
