//! Regenerates **Figure 1**: the bitonic sorting network for n = 16,
//! drawn layer by layer, plus machine-checked structural properties
//! (depth 10 = 1+2+3+4 merge layers, 8 comparators per layer, and the
//! 0-1-principle certificate that it sorts).
//!
//! With `--json`, also writes `BENCH_figure1.json` rows for the CI
//! regression gate: the figure's network executed through the metering
//! executor, so its comparator count (and the rest of the deterministic
//! cost profile) is pinned by `bench_diff` — the figure cannot silently
//! drift from the implementation.

use dob_bench::{header, meter_timed, BenchSink, Row};
use metrics::Tracked;
use sortnet::{bitonic_sort_flat_par, oddeven_sort, sort_slice_rec, Network};

fn key64(x: &u64) -> u128 {
    *x as u128
}

fn scrambled16() -> Vec<u64> {
    (0..16u64)
        .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) >> 17)
        .collect()
}

fn main() {
    let mut sink = BenchSink::from_args("figure1");
    let net = Network::bitonic(16);
    println!("== Figure 1: bitonic sorting network, n = 16 ==\n");
    println!("{}", net.render_ascii());
    println!("wires:        {}", net.n);
    println!(
        "layers:       {} (= 1 + 2 + 3 + 4 bitonic-merge stages)",
        net.depth()
    );
    println!("comparators:  {} (= n/2 per layer)", net.size());
    println!(
        "sorting net:  {} (exhaustive 0-1 principle over 2^16 inputs)",
        if net.is_sorting_network() {
            "verified"
        } else {
            "FAILED"
        }
    );

    let oe = Network::oddeven(16);
    println!("\nfor contrast, Batcher odd-even mergesort on 16 wires:");
    println!("layers:       {}", oe.depth());
    println!("comparators:  {}", oe.size());
    println!(
        "sorting net:  {}",
        if oe.is_sorting_network() {
            "verified"
        } else {
            "FAILED"
        }
    );

    // The figure's networks, executed: deterministic metered rows tying
    // the drawing to the code paths that actually run it. The bitonic
    // rows must spend exactly `net.size()` comparisons; the odd-even row
    // exactly `oe.size()` — asserted here and gated in CI.
    println!("\n== metered executions of the figure's networks (n = 16) ==\n");
    header();
    let (rep, wall) = meter_timed(|c| {
        let mut v = scrambled16();
        sort_slice_rec(c, &mut v, &key64, true);
    });
    assert_eq!(rep.comparisons as usize, net.size(), "fig.1 drifted");
    sink.record(
        Row {
            task: "figure1",
            algo: "bitonic recursive (fig. 1)",
            n: 16,
            rep,
        },
        wall,
    );
    let (rep, wall) = meter_timed(|c| {
        let mut v = scrambled16();
        let mut t = Tracked::new(c, &mut v);
        bitonic_sort_flat_par(c, &mut t, &key64, true);
    });
    assert_eq!(rep.comparisons as usize, net.size(), "fig.1 drifted");
    sink.record(
        Row {
            task: "figure1",
            algo: "bitonic flat (strawman)",
            n: 16,
            rep,
        },
        wall,
    );
    let (rep, wall) = meter_timed(|c| {
        let mut v = scrambled16();
        let mut t = Tracked::new(c, &mut v);
        oddeven_sort(c, &mut t, &key64);
    });
    assert_eq!(rep.comparisons as usize, oe.size(), "odd-even drifted");
    sink.record(
        Row {
            task: "figure1",
            algo: "odd-even merge (contrast)",
            n: 16,
            rep,
        },
        wall,
    );

    sink.finish().expect("failed to write BENCH_figure1.json");
}
