//! Ablations for the design choices DESIGN.md calls out:
//!
//! * `E1` — Theorem E.1: recursive cache-agnostic bitonic vs naive flat
//!   evaluation (span and cache separations);
//! * `E2` — Lemma 3.1 / §C.2: REC-ORBA scaling, bin-load concentration and
//!   empirical overflow rates at aggressive parameters;
//! * `E4` — §4.2: van Emde Boas vs level-order ORAM tree layout;
//! * `E6` — §3.4/§E: practical vs theory sorting variant constants
//!   (comparisons per n·log n).
//!
//! With `--json`, writes the deterministic E1/E2/E6 rows to
//! `BENCH_ablations.json` for the CI regression gate (`bench_diff`), so
//! the separations the ablations demonstrate are pinned, not just
//! printed.

use dob_bench::{header, lg, meter, meter_with, sweep_from_args, BenchSink, Row};
use metrics::{CacheConfig, Tracked};
use obliv_core::{
    oblivious_sort_u64, rec_orba, with_retries, Engine, Item, OSortParams, OrbaParams, ScratchPool,
};
use pram::{Opram, OramConfig, TreeLayout};
use sortnet::{bitonic_sort_flat_par, sort_slice_rec};

fn scrambled(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) >> 17)
        .collect()
}

fn key64(x: &u64) -> u128 {
    *x as u128
}

fn main() {
    let scratch = ScratchPool::new();
    let mut sink = BenchSink::from_args("ablations");
    println!("== E1: Theorem E.1 — recursive vs flat bitonic ==\n");
    header();
    for n in sweep_from_args(&[1 << 11, 1 << 12, 1 << 13, 1 << 14]) {
        let cfg = CacheConfig::new(1 << 10, 16); // small cache stresses Q
        let t0 = std::time::Instant::now();
        let rep = meter_with(cfg, |c| {
            let mut v = scrambled(n);
            sort_slice_rec(c, &mut v, &key64, true);
        });
        sink.record(
            Row {
                task: "E1",
                algo: "bitonic recursive (ours)",
                n,
                rep,
            },
            t0.elapsed().as_nanos(),
        );
        let t0 = std::time::Instant::now();
        let rep = meter_with(cfg, |c| {
            let mut v = scrambled(n);
            let mut t = Tracked::new(c, &mut v);
            bitonic_sort_flat_par(c, &mut t, &key64, true);
        });
        sink.record(
            Row {
                task: "E1",
                algo: "bitonic flat (naive)",
                n,
                rep,
            },
            t0.elapsed().as_nanos(),
        );
    }
    println!("(same comparator count; recursive wins on span and on Q — Thm E.1)\n");

    println!("== E2: REC-ORBA scaling, loads, and overflow ==\n");
    header();
    for n in sweep_from_args(&[1 << 11, 1 << 12, 1 << 13]) {
        let p = OrbaParams::for_n(n);
        let items: Vec<Item<u64>> = (0..n as u64).map(|i| Item::new(i as u128, i)).collect();
        let t0 = std::time::Instant::now();
        let rep = meter(|c| {
            let _ = with_retries(64, |a| rec_orba(c, &scratch, &items, p, 77 + a as u64));
        });
        sink.record(
            Row {
                task: "E2",
                algo: "REC-ORBA (paper params)",
                n,
                rep,
            },
            t0.elapsed().as_nanos(),
        );
    }
    // Load concentration & overflow frequency at paper vs aggressive Z.
    let n = 1 << 12;
    let items: Vec<Item<u64>> = (0..n as u64).map(|i| Item::new(i as u128, i)).collect();
    for (label, z) in [
        ("paper Z=log^2 n", 0usize),
        ("aggressive Z=16", 16),
        ("hostile Z=8", 8),
    ] {
        let p = if z == 0 {
            OrbaParams::for_n(n)
        } else {
            OrbaParams {
                z,
                gamma: 8,
                engine: Engine::BitonicRec,
            }
        };
        let trials = 40;
        let mut overflows = 0;
        let mut max_load = 0usize;
        let c = fj::SeqCtx::new();
        for s in 0..trials {
            match rec_orba(&c, &scratch, &items, p, 1000 + s) {
                Ok(layout) => {
                    max_load = max_load.max(*layout.loads().iter().max().unwrap());
                }
                Err(_) => overflows += 1,
            }
        }
        println!(
            "ORBA n={n} {label:<18} Z={:<4} overflow {}/{} trials, max bin load {} (cap {})",
            p.z, overflows, trials, max_load, p.z
        );
    }
    println!("(§C.2: overflow probability falls off steeply in Z — negligible at Z = log² n)\n");

    println!("== E4: van Emde Boas vs level-order ORAM layout ==\n");
    // Pure layout effect first: blocks touched by a root-to-leaf path.
    println!("root-to-leaf path, blocks touched (B = 8 tree nodes/block):");
    for h in [12usize, 16, 20] {
        let leaves = 1usize << (h - 1);
        let sample: Vec<usize> = (0..64).map(|i| i * (leaves / 64)).collect();
        let avg = |layout| {
            sample
                .iter()
                .map(|&l| pram::path_blocks(layout, h, l, 8))
                .sum::<usize>() as f64
                / sample.len() as f64
        };
        println!(
            "  height {h:>2}: vEB {:>5.1} vs level-order {:>5.1}  (log_B n = {:.1}, log n = {})",
            avg(TreeLayout::Veb),
            avg(TreeLayout::Level),
            h as f64 / 3.0,
            h
        );
    }
    println!("\nend-to-end OPRAM miss counts (effect diluted by eviction/stash scans):");
    for s in sweep_from_args(&[1 << 10, 1 << 12]) {
        for (label, layout) in [("vEB", TreeLayout::Veb), ("level", TreeLayout::Level)] {
            let rep = meter_with(CacheConfig::new(512, 8), |c| {
                let cfg = OramConfig {
                    layout,
                    ..OramConfig::default()
                };
                let mut o = Opram::new(s, cfg, Engine::BitonicRec, 11);
                for i in 0..48u64 {
                    o.access(c, (i * 37) % s as u64, Some(i));
                }
            });
            println!(
                "opram s={s:<6} layout={label:<6} Q={:<8} (48 accesses, M=512,B=8 words)",
                rep.cache_misses
            );
        }
    }
    println!("(§4.2: vEB paths cost O(log_B s) blocks instead of O(log s))\n");

    println!("== E6: practical vs theory variant constants ==\n");
    header();
    for n in sweep_from_args(&[1 << 10, 1 << 11, 1 << 12]) {
        for (algo, params) in [
            ("practical (bitonic+recsort)", OSortParams::practical(n)),
            ("theory (shellsort+merge)", OSortParams::theory(n)),
        ] {
            let t0 = std::time::Instant::now();
            let rep = meter(|c| {
                let mut v = scrambled(n);
                oblivious_sort_u64(c, &scratch, &mut v, params, 5);
            });
            let cmp_per = rep.comparisons as f64 / (n as f64 * lg(n));
            sink.record(
                Row {
                    task: "E6",
                    algo,
                    n,
                    rep,
                },
                t0.elapsed().as_nanos(),
            );
            println!("    -> comparisons / (n log n) = {cmp_per:.2}");
        }
    }
    println!("(the practical variant trades a log log n work factor for small constants — §3.4)");
    sink.finish().expect("failed to write BENCH_ablations.json");
}
