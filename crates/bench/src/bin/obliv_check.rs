//! `E3`: Definition 1 spot-checks — for fixed public coins, the adversary
//! trace (address sequence, lengths, read/write kinds) of every oblivious
//! routine must be identical across same-length inputs. Prints a PASS/FAIL
//! matrix; exits non-zero on any FAIL.
//!
//! Routines whose obliviousness is *distributional* (the post-ORP
//! comparison phases) are checked for the finite consequences that do hold
//! exactly: value-independence and trace-length invariance.

use metrics::{measure, CacheConfig, TraceMode};
use obliv_core::scan::{seg_propagate, Schedule, Seg};
use obliv_core::{
    bin_place, compact_cells, oblivious_sort_kv, oblivious_sort_u64, orp_once, send_receive,
    Engine, Item, OSortParams, OrbaParams, ScratchPool, Slot, TagCell,
};
use pram::{run_oblivious_sb, HistogramProgram};
use sortnet::sort_slice_rec;
use store::{Op, PipelinedStore, ShardConfig, ShardedStore, Store, StoreConfig};

fn trace<F: FnOnce(&metrics::MeterCtx)>(f: F) -> (u64, u64) {
    let (_, rep) = measure(CacheConfig::default(), TraceMode::Hash, f);
    (rep.trace_hash, rep.trace_len)
}

fn check(name: &str, traces: &[(u64, u64)]) -> bool {
    let ok = traces.windows(2).all(|w| w[0] == w[1]);
    println!("{:<44} {}", name, if ok { "PASS" } else { "FAIL" });
    ok
}

/// Durable-path results carry typed errors now; the check harness has no
/// recovery story, so name the step and bail.
fn or_die<T>(r: Result<T, store::StoreError>, what: &str) -> T {
    match r {
        Ok(v) => v,
        Err(e) => {
            eprintln!("obliv_check: {what}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let scratch = ScratchPool::new();
    println!("== E3: trace-equality checks (Definition 1, fixed coins) ==\n");
    let mut all_ok = true;
    let n = 512usize;

    let inputs: Vec<Vec<u64>> = vec![
        (0..n as u64).collect(),
        (0..n as u64).rev().collect(),
        vec![7; n],
        (0..n as u64).map(|i| i.wrapping_mul(0x9E3779B9)).collect(),
    ];

    // Bitonic network.
    let t: Vec<_> = inputs
        .iter()
        .map(|v| {
            trace(|c| {
                let mut v = v.clone();
                sort_slice_rec(c, &mut v, &|x: &u64| *x as u128, true);
            })
        })
        .collect();
    all_ok &= check("bitonic sort (recursive)", &t);

    // Bin placement.
    let t: Vec<_> = inputs
        .iter()
        .map(|v| {
            trace(|c| {
                let mut slots: Vec<Slot<u64>> = v
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| Slot::real(Item::new(x as u128, x), (i % 16) as u64))
                    .collect();
                slots.resize(16 * 64, Slot::filler());
                let mut tr = metrics::Tracked::new(c, &mut slots);
                let _ = bin_place(c, &scratch, &mut tr, 16, 64, 0, Engine::BitonicRec);
            })
        })
        .collect();
    all_ok &= check("oblivious bin placement", &t);

    // ORBA + ORP (one attempt, fixed seed).
    let t: Vec<_> = inputs
        .iter()
        .map(|v| {
            trace(|c| {
                let items: Vec<Item<u64>> = v.iter().map(|&x| Item::new(x as u128, x)).collect();
                let _ = orp_once(c, &scratch, &items, OrbaParams::for_n(n), 1234);
            })
        })
        .collect();
    all_ok &= check("oblivious random permutation", &t);

    // Scans.
    let t: Vec<_> = inputs
        .iter()
        .map(|v| {
            trace(|c| {
                let mut segs: Vec<Seg<u64>> = v
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| Seg::new(i % 4 == 0, x))
                    .collect();
                let mut tr = metrics::Tracked::new(c, &mut segs);
                seg_propagate(c, &mut tr, Schedule::Tree);
            })
        })
        .collect();
    all_ok &= check("oblivious propagation", &t);

    // Send-receive.
    let t: Vec<_> = inputs
        .iter()
        .map(|v| {
            trace(|c| {
                let sources: Vec<(u64, u64)> = v
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| (i as u64 * 3 + x % 2, x))
                    .collect();
                let dests: Vec<u64> = v.iter().map(|&x| x % 600).collect();
                send_receive(
                    c,
                    &scratch,
                    &sources,
                    &dests,
                    Engine::BitonicRec,
                    Schedule::Tree,
                );
            })
        })
        .collect();
    all_ok &= check("oblivious send-receive", &t);

    // Tag-sort fast path: a pure comparator network over packed cells, so
    // — unlike the post-ORP phases below — equality holds unconditionally,
    // duplicate keys included.
    let t: Vec<_> = inputs
        .iter()
        .map(|v| {
            trace(|c| {
                let mut kv: Vec<(u64, u64)> =
                    v.iter().enumerate().map(|(i, &x)| (x, i as u64)).collect();
                oblivious_sort_kv(c, &scratch, &mut kv, Engine::BitonicRec);
            })
        })
        .collect();
    all_ok &= check("tag-sort (packed key-value cells)", &t);

    // Tag-cell tight compaction: flag positions and flag count must both be
    // invisible (the fixed shift schedule reads every level fully).
    let t: Vec<_> = inputs
        .iter()
        .map(|v| {
            trace(|c| {
                let mut cells: Vec<TagCell> = v
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| {
                        if x % 3 == 0 {
                            TagCell::new(i as u128, x as u128)
                        } else {
                            TagCell::filler()
                        }
                    })
                    .collect();
                let mut tr = metrics::Tracked::new(c, &mut cells);
                compact_cells(c, &scratch, &mut tr);
            })
        })
        .collect();
    all_ok &= check("tag-cell tight compaction", &t);

    // Vectorized compare-exchange: the AVX2 backend must leave the very
    // same trace as the scalar gates (accounting replay, DESIGN.md §14) —
    // across backends AND across same-length inputs, so all 2×|inputs|
    // traces collapse to one.
    let t: Vec<_> = inputs
        .iter()
        .flat_map(|v| {
            [sortnet::Backend::Scalar, sortnet::Backend::Avx2].map(|backend| {
                trace(|c| {
                    let mut cells: Vec<TagCell> = v
                        .iter()
                        .enumerate()
                        .map(|(i, &x)| TagCell::new(((x as u128) << 64) | i as u128, x as u128))
                        .collect();
                    let mut lease = scratch.lease(cells.len(), TagCell::filler());
                    let mut tr = metrics::Tracked::new(c, &mut cells);
                    let mut tmp = metrics::Tracked::new(c, &mut lease);
                    sortnet::cells_sort_rec_with(backend, c, &mut tr, &mut tmp, true);
                })
            })
        })
        .collect();
    all_ok &= check("vectorized compare-exchange (simd vs scalar)", &t);

    // Full oblivious sort — distinct-key inputs (see DESIGN.md: the rank
    // pattern after ORP is seed-determined for distinct keys).
    let distinct: Vec<Vec<u64>> = vec![
        (0..n as u64).collect(),
        (0..n as u64).rev().collect(),
        (0..n as u64).map(|i| i * 3 + 1).collect(),
    ];
    let t: Vec<_> = distinct
        .iter()
        .map(|v| {
            trace(|c| {
                let mut v = v.clone();
                oblivious_sort_u64(c, &scratch, &mut v, OSortParams::practical(n), 999);
            })
        })
        .collect();
    all_ok &= check("oblivious sort (uniform distinct keys)", &t);

    // dob-store epochs (merge path): same batch *shapes*, entirely
    // different keys/values/op-kinds.
    let t: Vec<_> = inputs
        .iter()
        .map(|v| {
            trace(|c| {
                let sp = ScratchPool::new();
                let mut s = Store::new(StoreConfig::default());
                let e1: Vec<Op> = v
                    .iter()
                    .take(48)
                    .enumerate()
                    .map(|(i, &x)| match i % 3 {
                        0 => Op::Put { key: x, val: x * 3 },
                        1 => Op::Get { key: x / 2 },
                        _ => Op::Delete { key: x },
                    })
                    .collect();
                s.execute_epoch(c, &sp, &e1).unwrap();
                let e2: Vec<Op> = v
                    .iter()
                    .take(16)
                    .map(|&x| {
                        if x % 2 == 0 {
                            Op::Get { key: x }
                        } else {
                            Op::Aggregate
                        }
                    })
                    .collect();
                s.execute_epoch(c, &sp, &e2).unwrap();
            })
        })
        .collect();
    all_ok &= check("oblivious KV store (batched epochs)", &t);

    // Sharded store epochs: for fixed (batch size, shard count) the whole
    // pipeline — oblivious routing, all four shard commits, result gather
    // — must be byte-identical across distinct key/value workloads.
    let t: Vec<_> = inputs
        .iter()
        .map(|v| {
            trace(|c| {
                let sp = ScratchPool::new();
                let mut s = ShardedStore::new(ShardConfig::with_shards(4));
                let e1: Vec<Op> = v
                    .iter()
                    .take(48)
                    .enumerate()
                    .map(|(i, &x)| match i % 3 {
                        0 => Op::Put { key: x, val: x * 3 },
                        1 => Op::Get { key: x / 2 },
                        _ => Op::Delete { key: x },
                    })
                    .collect();
                s.execute_epoch(c, &sp, &e1).unwrap();
                let e2: Vec<Op> = v
                    .iter()
                    .take(16)
                    .map(|&x| {
                        if x % 2 == 0 {
                            Op::Get { key: x }
                        } else {
                            Op::Aggregate
                        }
                    })
                    .collect();
                s.execute_epoch(c, &sp, &e2).unwrap();
            })
        })
        .collect();
    all_ok &= check("sharded-store (route + commits + gather)", &t);

    // Pipelined store: the double-buffered front end. Handoff cadence,
    // the in-flight epoch's padded log, and the read-your-writes consult
    // must all be shape-only — same trace for same (epoch sizes, query
    // count) across entirely different keys/values/op-kinds. Under the
    // metered executor the detached merge resolves inline but stays "in
    // flight" until joined, so the consult deterministically exercises
    // the snapshot ++ in-flight-log ++ open-buffer path.
    let t: Vec<_> = inputs
        .iter()
        .map(|v| {
            trace(|c| {
                let sp = std::sync::Arc::new(ScratchPool::new());
                let mut p = PipelinedStore::with_scratch(Store::new(StoreConfig::default()), sp);
                for (i, &x) in v.iter().take(48).enumerate() {
                    p.submit(match i % 3 {
                        0 => Op::Put { key: x, val: x * 3 },
                        1 => Op::Get { key: x / 2 },
                        _ => Op::Delete { key: x },
                    });
                }
                let h = p.commit_async(c);
                for &x in v.iter().take(16) {
                    p.submit(if x % 2 == 0 {
                        Op::Get { key: x }
                    } else {
                        Op::Put { key: x, val: x }
                    });
                }
                let keys: Vec<u64> = v.iter().take(8).map(|&x| x / 3).collect();
                let _ = p.read_now(c, &keys);
                let _ = p.wait(&h);
                let h2 = p.commit_async(c);
                let _ = p.wait(&h2);
            })
        })
        .collect();
    all_ok &= check("pipelined store (handoff + consult)", &t);

    // Durable store: WAL append + recovery replay. Build four durable
    // crash images with the same epoch shapes but entirely different
    // keys/values, then recover each under the meter. The WAL appends
    // are host-side I/O whose record sizes are fixed by the public
    // classes; the replay feeds the logged batches through the normal
    // merge path — both the build trace and the recovery trace must be
    // bit-identical across datasets.
    let t: Vec<_> = inputs
        .iter()
        .enumerate()
        .map(|(k, v)| {
            let dir =
                std::env::temp_dir().join(format!("dob_obliv_wal_{}_{k}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let cfg = StoreConfig {
                durability: store::Durability::epoch(),
                ..StoreConfig::default()
            };
            let build = trace(|c| {
                let mut s = or_die(Store::recover(c, &scratch, &dir, cfg), "open durable store");
                for chunk in v.chunks(64) {
                    let ops: Vec<Op> = chunk
                        .iter()
                        .map(|&x| Op::Put {
                            key: x % 97,
                            val: x,
                        })
                        .collect();
                    or_die(s.execute_epoch(c, &scratch, &ops), "durable epoch");
                }
            });
            let replay = trace(|c| {
                or_die(
                    Store::recover(c, &scratch, &dir, StoreConfig::default()),
                    "recover store",
                );
            });
            let _ = std::fs::remove_dir_all(&dir);
            (build.0 ^ replay.0.rotate_left(1), build.1 + replay.1)
        })
        .collect();
    all_ok &= check("WAL append + recovery replay", &t);

    // Fault-injected WAL: now inject faults. Four different seeded fault
    // schedules, four different datasets, one set of epoch shapes. Fault
    // coins are a pure function of (seed, I/O-op index) and the retry
    // policy consults only the I/O outcome, so the engine trace — which
    // never sees host I/O — must stay bit-identical across both the
    // schedule *and* the data. Every retry the faults provoke happens
    // outside the metered address stream.
    let t: Vec<_> = inputs
        .iter()
        .enumerate()
        .map(|(k, v)| {
            use std::sync::Arc;
            let plan = store::vfs::FaultPlan {
                seed: 0xFA17 + k as u64,
                write_fault: 24,
                torn: 128,
                sync_fault: 24,
                ..store::vfs::FaultPlan::default()
            };
            let cfg = StoreConfig {
                durability: store::Durability::epoch(),
                retry: store::RetryPolicy {
                    attempts: 12,
                    backoff: std::time::Duration::ZERO,
                },
                ..StoreConfig::default()
            };
            trace(|c| {
                let vfs = Arc::new(store::vfs::FaultVfs::new(plan));
                let mut s = or_die(
                    Store::recover_with(c, &scratch, "/obliv/faulty", cfg, vfs),
                    "open fault-injected store",
                );
                for chunk in v.chunks(64) {
                    let ops: Vec<Op> = chunk
                        .iter()
                        .map(|&x| Op::Put {
                            key: x % 97,
                            val: x,
                        })
                        .collect();
                    or_die(s.execute_epoch(c, &scratch, &ops), "fault-injected epoch");
                }
            })
        })
        .collect();
    all_ok &= check("fault-injected WAL (schedule-public trace)", &t);

    // PRAM simulation with data-dependent write addresses.
    let t: Vec<_> = inputs
        .iter()
        .map(|v| {
            trace(|c| {
                let vals: Vec<u64> = v.iter().take(32).map(|&x| x % 8).collect();
                let prog = HistogramProgram::new(vals.len(), 8);
                run_oblivious_sb(c, &scratch, &prog, &vals, Engine::BitonicRec);
            })
        })
        .collect();
    all_ok &= check("oblivious PRAM step (Thm 4.1)", &t);

    // --- Hardware-shaped runtime rows ---

    // Pinned pool: the trace must be independent of the pin layout. Three
    // executors (unpinned, pinned round-robin, pinned via an explicit
    // affinity list) dirty three scratch pools with the same workload —
    // their per-worker lanes end up holding different physical buffers —
    // and the adversary trace of a sort + store epoch on each pool must be
    // bit-identical.
    {
        use fj::{Pool, PoolConfig};
        let layouts: Vec<Pool> = vec![
            Pool::new(4),
            Pool::with_config(PoolConfig {
                threads: Some(4),
                pin: true,
                affinity: None,
            }),
            Pool::with_config(PoolConfig {
                threads: Some(4),
                pin: true,
                affinity: Some(vec![0, 0, 0, 0]),
            }),
        ];
        let t: Vec<_> = layouts
            .iter()
            .map(|exec| {
                let sp = ScratchPool::new();
                exec.run(|c| {
                    let mut v: Vec<u64> =
                        (0..1024u64).map(|i| i.wrapping_mul(0x9E37) | 1).collect();
                    oblivious_sort_u64(c, &sp, &mut v, OSortParams::practical(1024), 7);
                });
                trace(|c| {
                    let mut v: Vec<u64> = (0..n as u64).collect();
                    oblivious_sort_u64(c, &sp, &mut v, OSortParams::practical(n), 999);
                    let mut s = Store::new(StoreConfig::default());
                    let ops: Vec<Op> = (0..32u64).map(|k| Op::Put { key: k, val: k }).collect();
                    s.execute_epoch(c, &sp, &ops).unwrap();
                })
            })
            .collect();
        all_ok &= check("pinned pool (pin-layout invariance)", &t);
    }

    // Cell send-receive (the u64 fast path): same shapes, different data.
    let t: Vec<_> = inputs
        .iter()
        .map(|v| {
            trace(|c| {
                let sources: Vec<(u64, u64)> = v
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| (i as u64 * 3 + x % 2, x))
                    .collect();
                let dests: Vec<u64> = v.iter().map(|&x| x % 600).collect();
                obliv_core::send_receive_u64(
                    c,
                    &scratch,
                    &sources,
                    &dests,
                    Engine::BitonicRec,
                    Schedule::Tree,
                );
            })
        })
        .collect();
    all_ok &= check("cell send-receive (u64 fast path)", &t);

    // List ranking on packed cells. The pointer-jumping phase walks the
    // hidden random permutation (distributionally oblivious), so exact
    // equality holds for *value*-independence: same list topology,
    // different weights.
    let (lr_succ, _) = graphs::random_list(96, 5);
    let t: Vec<_> = (0..4u64)
        .map(|salt| {
            trace(|c| {
                let weights: Vec<u64> = (0..96u64).map(|i| i * 31 + salt * 7 + 1).collect();
                let _ = graphs::list_rank_oblivious(
                    c,
                    &scratch,
                    &lr_succ,
                    &weights,
                    OrbaParams::for_n(96),
                    Engine::BitonicRec,
                    31,
                );
            })
        })
        .collect();
    all_ok &= check("list ranking (packed cells, value-indep)", &t);

    // ...and trace-*length* invariance across different list topologies.
    let t: Vec<_> = (0..4u64)
        .map(|seed| {
            let (succ, _) = graphs::random_list(96, seed);
            let (h, len) = trace(|c| {
                let _ = graphs::list_rank_oblivious_unit(c, &scratch, &succ, 31);
            });
            let _ = h;
            (0, len) // compare lengths only
        })
        .collect();
    all_ok &= check("list ranking (packed cells, trace-len)", &t);

    // Euler tour on packed arc cells: four random trees, same vertex count.
    let t: Vec<_> = (0..4u64)
        .map(|seed| {
            trace(|c| {
                let edges = graphs::random_tree(48, seed);
                let _ = graphs::euler_tour(c, &scratch, &edges, Engine::BitonicRec);
            })
        })
        .collect();
    all_ok &= check("Euler tour (packed arc cells)", &t);

    // CC min-hook on packed cells: same (n, m), different graphs.
    let t: Vec<_> = (0..4u64)
        .map(|seed| {
            trace(|c| {
                let edges = graphs::random_graph(40, 64, seed);
                let _ = graphs::connected_components(c, &scratch, 40, &edges, Engine::BitonicRec);
            })
        })
        .collect();
    all_ok &= check("CC min-hook (packed cells)", &t);

    // MSF proposal/chosen cells: same (n, m), different graphs/weights.
    let t: Vec<_> = (0..4u64)
        .map(|seed| {
            trace(|c| {
                let edges: Vec<(usize, usize, u64)> = graphs::random_graph(32, 48, seed)
                    .into_iter()
                    .enumerate()
                    .map(|(i, (u, v))| (u, v, (i as u64 * 7 + seed) % 97 + 1))
                    .collect();
                let _ = graphs::msf(c, &scratch, 32, &edges, Engine::BitonicRec);
            })
        })
        .collect();
    all_ok &= check("MSF proposal/chosen cells", &t);

    // ORAM batched fetch on packed cells. Tree walks follow random leaves
    // (distributionally oblivious), so exact equality holds for value-
    // independence: same address sequence, different written values.
    let t: Vec<_> = (0..4u64)
        .map(|salt| {
            trace(|c| {
                let mut o =
                    pram::Opram::new(64, pram::OramConfig::default(), Engine::BitonicRec, 9);
                let reqs: Vec<(u64, Option<u64>)> = (0..24u64)
                    .map(|j| ((j * 13) % 64, (j % 2 == 0).then_some(j * 1000 + salt)))
                    .collect();
                let _ = o.access_batch(c, &reqs);
            })
        })
        .collect();
    all_ok &= check("ORAM batched fetch (packed cells)", &t);

    println!(
        "\n{}",
        if all_ok {
            "all oblivious routines passed trace equality"
        } else {
            "FAILURES detected"
        }
    );
    std::process::exit(if all_ok { 0 } else { 1 });
}
