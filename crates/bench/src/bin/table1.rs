//! Regenerates **Table 1**: work / span / cache complexity of our
//! data-oblivious algorithms against their insecure (or naive-schedule)
//! baselines, for Sort, LR, ET-Tree, TC, CC, and MSF.
//!
//! Absolute constants differ from the paper's testbed (our substrate is a
//! cost-model simulator and the AKS/SPMS substitutions of DESIGN.md §4
//! apply); the reproduction target is the *shape*: matching work and cache
//! columns between the oblivious algorithm and its baseline, and the span
//! separations Table 1 claims. Run with `--full` for two more doublings.

use dob_bench::{
    growth_exponent, header, lg, meter_timed, sweep_from_args, wall_unmetered, BenchSink, Row,
};
use fj::{Pool, PoolConfig};
use graphs::{
    connected_components, connected_components_insecure, contract_eval, list_rank_insecure_unit,
    list_rank_oblivious_unit, msf, random_expr_tree, random_list, random_tree,
    random_weighted_graph, rooted_tree_stats,
};
use metrics::Tracked;
use obliv_core::{
    composite_key, oblivious_sort_kv, oblivious_sort_u64, rec_sort_items, with_retries, Engine,
    Item, OSortParams, ScratchPool, Slot,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sortnet::{cells_sort_rec_with, Backend, TagCell};

fn scrambled(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) >> 17)
        .collect()
}

/// Tag-sort side of the sort ablation: the records as packed 32-byte
/// cells through `oblivious_sort_kv`.
fn ablation_tag_sort<C: fj::Ctx>(c: &C, scratch: &ScratchPool, records: &[(u64, u64)]) {
    let mut v = records.to_vec();
    oblivious_sort_kv(c, scratch, &mut v, Engine::BitonicRec);
}

/// Record-sort side: the same records Slot-wrapped through the same
/// BitonicRec schedule — how every sort site carried records before the
/// tag-sort fast path landed.
fn ablation_record_sort<C: fj::Ctx>(c: &C, scratch: &ScratchPool, records: &[(u64, u64)]) {
    let mut slots = scratch.lease(records.len(), Slot::<(u64, u64)>::filler());
    for (i, (slot, &(k, v))) in slots.iter_mut().zip(records.iter()).enumerate() {
        *slot = Slot {
            sk: composite_key(k, i as u64),
            ..Slot::real(Item::new(composite_key(k, i as u64), (k, v)), 0)
        };
    }
    let mut t = Tracked::new(c, &mut slots);
    Engine::BitonicRec.sort_slots(c, scratch, &mut t);
}

fn main() {
    let scratch = ScratchPool::new();
    let mut sink = BenchSink::from_args("table1");
    println!("== Table 1: oblivious vs insecure, binary fork-join, cache-agnostic ==\n");
    header();
    let mut shapes: Vec<(&str, Vec<(usize, f64)>)> = Vec::new();

    // ---- Sort ----------------------------------------------------------
    let mut ours = Vec::new();
    for n in sweep_from_args(&[1 << 10, 1 << 11, 1 << 12, 1 << 13]) {
        let (rep, wall) = meter_timed(|c| {
            let mut v = scrambled(n);
            oblivious_sort_u64(c, &scratch, &mut v, OSortParams::practical(n), 42);
        });
        sink.record(
            Row {
                task: "sort",
                algo: "ours: oblivious practical",
                n,
                rep,
            },
            wall,
        );
        ours.push((n, rep.work as f64));

        let (rep, wall) = meter_timed(|c| {
            // Insecure baseline: REC-SORT after a (free) random shuffle —
            // the SPMS substitute of DESIGN.md §4.
            let mut items: Vec<Item<u64>> = scrambled(n)
                .into_iter()
                .enumerate()
                .map(|(i, k)| Item::new(obliv_core::composite_key(k, i as u64), k))
                .collect();
            items.shuffle(&mut StdRng::seed_from_u64(1));
            with_retries(16, |a| {
                rec_sort_items(
                    c,
                    &scratch,
                    &mut items,
                    Engine::BitonicRec,
                    16,
                    5 + a as u64,
                )
            });
        });
        sink.record(
            Row {
                task: "sort",
                algo: "insecure: rec-sort",
                n,
                rep,
            },
            wall,
        );
    }
    shapes.push(("sort work", ours));

    // ---- Sort ablation: tag-sort vs record-sort --------------------------
    // The same (u64 key, u64 val) records through the same BitonicRec
    // comparator schedule, once as packed 32-byte tag cells
    // (`oblivious_sort_kv`, the store's fast path) and once Slot-wrapped
    // the way every sort site carried records before the fast path. Both
    // are deterministic, so the gate tracks the gain row by row.
    let mut tag_rows = Vec::new();
    let mut rec_rows = Vec::new();
    for n in sweep_from_args(&[1 << 10, 1 << 12, 1 << 14]) {
        let records: Vec<(u64, u64)> = scrambled(n)
            .into_iter()
            .enumerate()
            .map(|(i, k)| (k, i as u64))
            .collect();
        // Counters come from one metered run; wall-clock from unmetered
        // runs — the simulator's per-access overhead is width-independent
        // and would mask exactly the movement win being measured.
        let (rep, _) = meter_timed(|c| ablation_tag_sort(c, &scratch, &records));
        let wall = wall_unmetered(3, |c| ablation_tag_sort(c, &scratch, &records));
        sink.record(
            Row {
                task: "sort",
                algo: "ours: tag-sort",
                n,
                rep,
            },
            wall,
        );
        tag_rows.push((rep, wall));

        let (rep, _) = meter_timed(|c| ablation_record_sort(c, &scratch, &records));
        let wall = wall_unmetered(3, |c| ablation_record_sort(c, &scratch, &records));
        sink.record(
            Row {
                task: "sort",
                algo: "ours: record-sort",
                n,
                rep,
            },
            wall,
        );
        rec_rows.push((rep, wall));
    }
    if let (Some(&(tag_rep, tag_wall)), Some(&(rec_rep, rec_wall))) =
        (tag_rows.last(), rec_rows.last())
    {
        println!(
            "tag-sort vs record-sort headline (largest n): {:.2}x wall, {:.2}x cache misses, \
             same {} comparators",
            rec_wall as f64 / tag_wall.max(1) as f64,
            rec_rep.cache_misses as f64 / tag_rep.cache_misses.max(1) as f64,
            tag_rep.comparisons,
        );
    }

    // ---- Sort ablation: SIMD vs scalar compare-exchange ------------------
    // The same packed cells through the *identical* comparator schedule,
    // trace, and counters (accounting replay, DESIGN.md §14) — only the
    // compare-exchange ALU width differs. The gate pins the shared
    // counters; the wall columns carry the measured vector win.
    let mut simd_rows = Vec::new();
    let mut scalar_rows = Vec::new();
    for n in sweep_from_args(&[1 << 12, 1 << 14, 1 << 16]) {
        let cells: Vec<TagCell> = scrambled(n)
            .into_iter()
            .enumerate()
            .map(|(i, k)| TagCell::new(((k as u128) << 64) | i as u128, i as u128))
            .collect();
        for (backend, algo, rows) in [
            (Backend::Avx2, "sort: simd cells", &mut simd_rows),
            (Backend::Scalar, "sort: scalar cells", &mut scalar_rows),
        ] {
            let (rep, _) = meter_timed(|c| {
                let mut v = cells.clone();
                let mut lease = scratch.lease(n, TagCell::filler());
                let mut t = Tracked::new(c, &mut v);
                let mut tmp = Tracked::new(c, &mut lease);
                cells_sort_rec_with(backend, c, &mut t, &mut tmp, true);
            });
            let wall = wall_unmetered(3, |c| {
                let mut v = cells.clone();
                let mut lease = scratch.lease(n, TagCell::filler());
                let mut t = Tracked::new(c, &mut v);
                let mut tmp = Tracked::new(c, &mut lease);
                cells_sort_rec_with(backend, c, &mut t, &mut tmp, true);
            });
            sink.record(
                Row {
                    task: "sort",
                    algo,
                    n,
                    rep,
                },
                wall,
            );
            rows.push((rep, wall));
        }
    }
    if let (Some(&(simd_rep, simd_wall)), Some(&(scalar_rep, scalar_wall))) =
        (simd_rows.last(), scalar_rows.last())
    {
        assert_eq!(
            (simd_rep.work, simd_rep.comparisons, simd_rep.trace_len),
            (
                scalar_rep.work,
                scalar_rep.comparisons,
                scalar_rep.trace_len
            ),
            "SIMD and scalar backends must share every deterministic counter"
        );
        println!(
            "simd vs scalar cells headline (largest n): {:.2}x wall, identical {} comparators \
             (backend: {})",
            scalar_wall as f64 / simd_wall.max(1) as f64,
            simd_rep.comparisons,
            sortnet::active_backend().name(),
        );
    }

    // ---- Thread scaling: pool size x pinning on the sort -----------------
    // The hardware-shaped runtime family: the practical oblivious sort
    // under every DOB_THREADS ∈ {1,2,4} pool size, unpinned and pinned.
    // The model counters are executor-independent (one metered run backs
    // the whole family and is what the gate tracks); walls are interleaved
    // min-of-3 host measurements per config.
    const SORT_SCALE: [(usize, bool, &str); 6] = [
        (1, false, "sort scaling t=1 unpinned wall"),
        (1, true, "sort scaling t=1 pinned wall"),
        (2, false, "sort scaling t=2 unpinned wall"),
        (2, true, "sort scaling t=2 pinned wall"),
        (4, false, "sort scaling t=4 unpinned wall"),
        (4, true, "sort scaling t=4 pinned wall"),
    ];
    let scale_n = 1 << 12;
    let (scale_rep, _) = meter_timed(|c| {
        let mut v = scrambled(scale_n);
        oblivious_sort_u64(c, &scratch, &mut v, OSortParams::practical(scale_n), 42);
    });
    let scale_pools: Vec<Pool> = SORT_SCALE
        .iter()
        .map(|&(threads, pin, _)| {
            Pool::with_config(PoolConfig {
                threads: Some(threads),
                pin,
                affinity: None,
            })
        })
        .collect();
    // One warm run per pool primes its per-worker scratch lanes.
    for pool in &scale_pools {
        let mut v = scrambled(scale_n);
        pool.run(|c| oblivious_sort_u64(c, &scratch, &mut v, OSortParams::practical(scale_n), 42));
    }
    let mut scale_mins = [u128::MAX; SORT_SCALE.len()];
    for _ in 0..3 {
        for (k, pool) in scale_pools.iter().enumerate() {
            let mut v = scrambled(scale_n);
            let t0 = std::time::Instant::now();
            pool.run(|c| {
                oblivious_sort_u64(c, &scratch, &mut v, OSortParams::practical(scale_n), 42)
            });
            scale_mins[k] = scale_mins[k].min(t0.elapsed().as_nanos());
        }
    }
    for (k, &(_, _, algo)) in SORT_SCALE.iter().enumerate() {
        sink.rows_push_quiet("sort", algo, scale_n, scale_rep, scale_mins[k]);
    }

    // ---- List ranking ----------------------------------------------------
    let mut ours = Vec::new();
    for n in sweep_from_args(&[1 << 10, 1 << 11, 1 << 12]) {
        let (succ, _) = random_list(n, n as u64);
        let (rep, wall) = meter_timed(|c| {
            list_rank_oblivious_unit(c, &scratch, &succ, 7);
        });
        sink.record(
            Row {
                task: "LR",
                algo: "ours: oblivious",
                n,
                rep,
            },
            wall,
        );
        ours.push((n, rep.work as f64));
        let (rep, wall) = meter_timed(|c| {
            list_rank_insecure_unit(c, &scratch, &succ);
        });
        sink.record(
            Row {
                task: "LR",
                algo: "insecure: pointer jumping",
                n,
                rep,
            },
            wall,
        );
    }
    shapes.push(("LR work", ours));

    // ---- Euler tour / tree computations ---------------------------------
    for n in sweep_from_args(&[1 << 8, 1 << 9, 1 << 10]) {
        let edges = random_tree(n, 3);
        let (rep, wall) = meter_timed(|c| {
            rooted_tree_stats(c, &scratch, n, &edges, 0, Engine::BitonicRec, 5);
        });
        sink.record(
            Row {
                task: "ET-Tree",
                algo: "ours: oblivious",
                n,
                rep,
            },
            wall,
        );
        let (succ, _) = random_list(2 * (n - 1), 4);
        let (rep, wall) = meter_timed(|c| {
            // The insecure bound is dominated by list ranking the tour.
            list_rank_insecure_unit(c, &scratch, &succ);
        });
        sink.record(
            Row {
                task: "ET-Tree",
                algo: "insecure: LR on tour",
                n,
                rep,
            },
            wall,
        );
    }

    // ---- Tree contraction -----------------------------------------------
    for leaves in sweep_from_args(&[1 << 6, 1 << 7, 1 << 8]) {
        let t = random_expr_tree(leaves, 5);
        let n = t.nodes.len();
        let (rep, wall) = meter_timed(|c| {
            contract_eval(c, &scratch, &t, Engine::BitonicRec, 11);
        });
        sink.record(
            Row {
                task: "TC",
                algo: "ours: oblivious shunt",
                n,
                rep,
            },
            wall,
        );
        let (rep, wall) = meter_timed(|c| {
            // Prior-best schedule: the same contraction driven by the naive
            // flat network (the per-PRAM-step forking strawman).
            contract_eval(c, &scratch, &t, Engine::BitonicFlat, 11);
        });
        sink.record(
            Row {
                task: "TC",
                algo: "naive: flat-network shunt",
                n,
                rep,
            },
            wall,
        );
    }

    // ---- Connected components -------------------------------------------
    for n in sweep_from_args(&[1 << 7, 1 << 8, 1 << 9]) {
        let m = 2 * n;
        let edges = graphs::random_graph(n, m, 9);
        let (rep, wall) = meter_timed(|c| {
            connected_components(c, &scratch, n, &edges, Engine::BitonicRec);
        });
        sink.record(
            Row {
                task: "CC",
                algo: "ours: oblivious SV-style",
                n: m,
                rep,
            },
            wall,
        );
        let (rep, wall) = meter_timed(|c| {
            connected_components_insecure(c, n, &edges);
        });
        sink.record(
            Row {
                task: "CC",
                algo: "insecure: direct SV-style",
                n: m,
                rep,
            },
            wall,
        );
    }

    // ---- Minimum spanning forest ----------------------------------------
    for n in sweep_from_args(&[1 << 6, 1 << 7, 1 << 8]) {
        let m = 2 * n;
        let edges = random_weighted_graph(n, m, 13);
        let (rep, wall) = meter_timed(|c| {
            msf(c, &scratch, n, &edges, Engine::BitonicRec);
        });
        sink.record(
            Row {
                task: "MSF",
                algo: "ours: oblivious Boruvka",
                n: m,
                rep,
            },
            wall,
        );
    }

    sink.finish().expect("failed to write BENCH_table1.json");
    println!("\n== growth exponents (expect ≈1 for W = Θ(n·polylog)) ==");
    for (name, pts) in shapes {
        let norm: Vec<(usize, f64)> = pts
            .iter()
            .map(|&(n, w)| (n, w / (n as f64 * lg(n))))
            .collect();
        println!(
            "{name}: raw {:+.2}, normalized by n·log n {:+.2} (≈0 ⇒ matches n·log n up to log-factors)",
            growth_exponent(&pts),
            growth_exponent(&norm)
        );
    }
}
