//! Regenerates **Table 2**: the oblivious building blocks — aggregation,
//! propagation, send-receive, and one simulated PRAM step — comparing our
//! binary fork-join constructions against the "prior best" (the best
//! oblivious PRAM algorithm with every PRAM step forked naively).
//!
//! Expected shapes per the table:
//! * Aggr/Prop: same `O(n)` work, span `O(log n)` (ours) vs `O(log² n)`;
//! * S-R: sorting-bound work and cache (ours) vs flat-network evaluation;
//! * PRAM: per-step `O(sort(s))` via the space-bounded simulation, and the
//!   `p log² s` OPRAM alternative that wins once `s ≫ p` (crossover).

use dob_bench::{header, meter_timed, sweep_from_args, BenchSink, Row};
use metrics::{ScratchPool, Tracked};
use obliv_core::scan::{seg_propagate_in, seg_sum_right_in, Schedule, Seg};
use obliv_core::{send_receive, Engine};
use pram::{run_oblivious_sb, HistogramProgram, Opram, OramConfig};

fn main() {
    let scratch = ScratchPool::new();
    let mut sink = BenchSink::from_args("table2");
    println!("== Table 2: oblivious building blocks, ours vs naive-forked prior best ==\n");
    header();

    // ---- Aggregation (segmented suffix sums) -----------------------------
    for n in sweep_from_args(&[1 << 12, 1 << 14, 1 << 16]) {
        for (algo, sched) in [
            ("ours: tree schedule", Schedule::Tree),
            ("prior: level-by-level", Schedule::Levels),
        ] {
            let (rep, wall) = meter_timed(|c| {
                let mut v: Vec<Seg<u64>> = (0..n)
                    .map(|i| Seg::new(i % 8 == 7, (i % 5) as u64))
                    .collect();
                let mut t = Tracked::new(c, &mut v);
                seg_sum_right_in(c, &scratch, &mut t, sched);
            });
            sink.record(
                Row {
                    task: "Aggr",
                    algo,
                    n,
                    rep,
                },
                wall,
            );
        }
    }

    // ---- Propagation ------------------------------------------------------
    for n in sweep_from_args(&[1 << 12, 1 << 14, 1 << 16]) {
        for (algo, sched) in [
            ("ours: tree schedule", Schedule::Tree),
            ("prior: level-by-level", Schedule::Levels),
        ] {
            let (rep, wall) = meter_timed(|c| {
                let mut v: Vec<Seg<u64>> = (0..n).map(|i| Seg::new(i % 8 == 0, i as u64)).collect();
                let mut t = Tracked::new(c, &mut v);
                seg_propagate_in(c, &scratch, &mut t, sched);
            });
            sink.record(
                Row {
                    task: "Prop",
                    algo,
                    n,
                    rep,
                },
                wall,
            );
        }
    }

    // ---- Send-receive -----------------------------------------------------
    for n in sweep_from_args(&[1 << 9, 1 << 10, 1 << 11]) {
        let sources: Vec<(u64, u64)> = (0..n as u64).map(|i| (i * 3, i)).collect();
        let dests: Vec<u64> = (0..n as u64).map(|j| (j * 7) % (3 * n as u64)).collect();
        for (algo, engine, sched) in [
            (
                "ours: cache-agnostic nets",
                Engine::BitonicRec,
                Schedule::Tree,
            ),
            (
                "prior: flat nets + forks",
                Engine::BitonicFlat,
                Schedule::Levels,
            ),
        ] {
            let (rep, wall) = meter_timed(|c| {
                send_receive(c, &scratch, &sources, &dests, engine, sched);
            });
            sink.record(
                Row {
                    task: "S-R",
                    algo,
                    n: 2 * n,
                    rep,
                },
                wall,
            );
        }
    }

    // ---- One PRAM step ----------------------------------------------------
    // Space-bounded (Thm 4.1): p = s, one step of a concurrent-write
    // histogram (value-dependent write addresses — the adversarial case).
    for p in sweep_from_args(&[1 << 6, 1 << 7, 1 << 8]) {
        let vals: Vec<u64> = (0..p as u64).map(|i| i % 16).collect();
        let prog = HistogramProgram::new(p, 16);
        for (algo, engine) in [
            ("ours: Thm 4.1 (s≈p)", Engine::BitonicRec),
            ("prior: flat networks", Engine::BitonicFlat),
        ] {
            let (rep, wall) = meter_timed(|c| {
                run_oblivious_sb(c, &scratch, &prog, &vals, engine);
            });
            sink.record(
                Row {
                    task: "PRAM",
                    algo,
                    n: p,
                    rep,
                },
                wall,
            );
        }
    }

    // Large-space regime (Thm 4.2): fixed p, growing s — the tree-ORAM
    // simulation's per-batch cost must grow polylog(s) while the
    // space-bounded simulation pays Θ(s log s) per step; report both and
    // find the crossover.
    println!("\n== PRAM large-space crossover (fixed p = 32 requests/step) ==");
    println!(
        "{:<10} {:>9} {:>14} {:>14} {:>10}",
        "s", "p", "W sb/step", "W opram/step", "winner"
    );
    let p = 32usize;
    for s in sweep_from_args(&[1 << 7, 1 << 9, 1 << 11]) {
        // One read step of p processors against s cells via Thm 4.1.
        let (sb, sb_wall) = meter_timed(|c| {
            let sources: Vec<(u64, u64)> = (0..s as u64).map(|i| (i, i * 2)).collect();
            let dests: Vec<u64> = (0..p as u64).map(|i| (i * 37) % s as u64).collect();
            send_receive(
                c,
                &scratch,
                &sources,
                &dests,
                Engine::BitonicRec,
                Schedule::Tree,
            );
        });
        // The same batch through the recursive tree ORAM.
        let (op, op_wall) = meter_timed(|c| {
            let mut o = Opram::new(s, OramConfig::default(), Engine::BitonicRec, 7);
            let reqs: Vec<(u64, Option<u64>)> =
                (0..p as u64).map(|i| ((i * 37) % s as u64, None)).collect();
            o.access_batch(c, &reqs);
        });
        sink.rows_push_quiet("PRAM-xover", "space-bounded", s, sb, sb_wall);
        sink.rows_push_quiet("PRAM-xover", "opram", s, op, op_wall);
        let winner = if op.work < sb.work {
            "opram"
        } else {
            "space-bounded"
        };
        println!(
            "{:<10} {:>9} {:>14} {:>14} {:>10}",
            s, p, sb.work, op.work, winner
        );
    }
    println!("\n(expected: space-bounded wins at small s, opram wins once s ≫ p —");
    println!(" the Table 2 'PRAM' rows' two regimes; opram setup cost excluded in paper,");
    println!(" included here, shifting the crossover right)");
    sink.finish().expect("failed to write BENCH_table2.json");
}
