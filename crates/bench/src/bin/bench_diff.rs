//! CI perf-regression gate: compare fresh `BENCH_*.json` artifacts against
//! the committed baselines in `benches/baseline/`, write a markdown
//! comparison table to `$GITHUB_STEP_SUMMARY` (stdout when unset), and
//! exit non-zero on any >10% regression in a deterministic counter or any
//! lost row.
//!
//! ```sh
//! bench_diff [--baseline <dir>] [--fresh <dir>]
//! ```
//!
//! To accept an intentional perf change, regenerate and commit the
//! baseline: `cargo run --release -p dob-bench --bin <bin> -- --json &&
//! cp BENCH_<bin>.json benches/baseline/`.

use dob_bench::diff::{diff_benches, parse_bench_json};
use std::io::Write;
use std::path::{Path, PathBuf};

fn arg_value(args: &[String], flag: &str, default: &str) -> PathBuf {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(default))
}

fn load(path: &Path) -> Result<dob_bench::diff::BenchFile, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    parse_bench_json(&text).map_err(|e| format!("parse {}: {e}", path.display()))
}

/// The tag-vs-record ratio from the fresh ablation rows ("ours: tag-sort"
/// vs "ours: record-sort" at the largest common `n`), rendered for the
/// step summary. `None` when the rows are absent (older artifacts).
fn tag_sort_headline(files: &[dob_bench::diff::BenchFile]) -> Option<String> {
    let row = |algo: &str| {
        files
            .iter()
            .flat_map(|f| f.rows.iter())
            .filter(|r| r.algo == algo)
            .max_by_key(|r| r.n)
    };
    let tag = row("ours: tag-sort")?;
    let rec = row("ours: record-sort")?;
    if tag.n != rec.n {
        return None;
    }
    let ratio = |counter: &str| -> Option<f64> {
        let t = *tag.counters.get(counter)?;
        let r = *rec.counters.get(counter)?;
        (t > 0).then(|| r as f64 / t as f64)
    };
    Some(format!(
        "**Tag-sort headline** (n = {}): record-sort / tag-sort = {:.2}× cache misses, \
         {:.2}× wall (same comparator schedule).",
        tag.n,
        ratio("cache_misses").unwrap_or(f64::NAN),
        ratio("wall_ns").unwrap_or(f64::NAN),
    ))
}

/// The SIMD-vs-scalar compare-exchange wall ratio from the fresh sort
/// ablation rows ("sort: simd cells" vs "sort: scalar cells" at the
/// largest common `n`), rendered for the step summary. The deterministic
/// counters of the two rows are identical by construction (accounting
/// replay); only the wall moves. `None` when the rows are absent (older
/// artifacts).
fn simd_cells_headline(files: &[dob_bench::diff::BenchFile]) -> Option<String> {
    let row = |algo: &str| {
        files
            .iter()
            .flat_map(|f| f.rows.iter())
            .filter(|r| r.algo == algo)
            .max_by_key(|r| r.n)
    };
    let simd = row("sort: simd cells")?;
    let scalar = row("sort: scalar cells")?;
    if simd.n != scalar.n {
        return None;
    }
    let ws = *simd.counters.get("wall_ns")?;
    let wc = *scalar.counters.get("wall_ns")?;
    (ws > 0).then(|| {
        format!(
            "**SIMD-kernel headline** (n = {}): scalar / simd = {:.2}× wall on the packed-cell \
             sort (batched AVX2 compare-exchange, identical comparator schedule, trace, and \
             counters).",
            simd.n,
            wc as f64 / ws as f64,
        )
    })
}

/// The pipelined-vs-synchronous stream throughput ratio from the fresh
/// store rows, rendered for the step summary. `None` when the rows are
/// absent (older artifacts).
fn pipelined_headline(files: &[dob_bench::diff::BenchFile]) -> Option<String> {
    let row = |algo: &str| {
        files
            .iter()
            .flat_map(|f| f.rows.iter())
            .find(|r| r.algo == algo)
    };
    let sync = row("sync: stream pool4 wall")?;
    let pipe = row("pipelined: stream pool4 wall")?;
    if sync.n != pipe.n {
        return None;
    }
    let ws = *sync.counters.get("wall_ns")?;
    let wp = *pipe.counters.get("wall_ns")?;
    (wp > 0).then(|| {
        format!(
            "**Pipelined-epoch headline** (n = {}): pipelined / synchronous = {:.2}× \
             client-batch throughput (double-buffered group commit, same padded shapes).",
            sync.n,
            ws as f64 / wp as f64,
        )
    })
}

/// The pinned-vs-unpinned epoch wall ratio at the largest pool of the
/// thread-scaling family, rendered for the step summary. `None` when the
/// rows are absent (older artifacts).
fn pinned_pool_headline(files: &[dob_bench::diff::BenchFile]) -> Option<String> {
    let row = |algo: &str| {
        files
            .iter()
            .flat_map(|f| f.rows.iter())
            .find(|r| r.algo == algo)
    };
    let unpinned = row("scaling t=4 unpinned: epoch wall")?;
    let pinned = row("scaling t=4 pinned: epoch wall")?;
    if unpinned.n != pinned.n {
        return None;
    }
    let wu = *unpinned.counters.get("wall_ns")?;
    let wp = *pinned.counters.get("wall_ns")?;
    (wp > 0).then(|| {
        format!(
            "**Pinned-pool headline** (n = {}, t = 4): unpinned / pinned = {:.2}× epoch wall \
             (locality-aware pinned workers, same oblivious schedule; ≈1.0× on runners where \
             pinning degrades).",
            unpinned.n,
            wu as f64 / wp as f64,
        )
    })
}

/// The graphs tag-cell-vs-record-slot ratio from the migrated CC min-hook
/// sort site, rendered for the step summary. `None` when the rows are
/// absent (older artifacts).
fn graphs_cell_headline(files: &[dob_bench::diff::BenchFile]) -> Option<String> {
    let row = |algo: &str| {
        files
            .iter()
            .flat_map(|f| f.rows.iter())
            .find(|r| r.algo == algo)
    };
    let tag = row("graphs cc: tag cells")?;
    let slot = row("graphs cc: record slots")?;
    if tag.n != slot.n {
        return None;
    }
    let ratio = |counter: &str| -> Option<f64> {
        let t = *tag.counters.get(counter)?;
        let s = *slot.counters.get(counter)?;
        (t > 0).then(|| s as f64 / t as f64)
    };
    Some(format!(
        "**Graphs tag-cell headline** (CC min-hook sort, n = {}): record-slot / tag-cell = \
         {:.2}× cache misses, {:.2}× wall (same comparator schedule).",
        tag.n,
        ratio("cache_misses").unwrap_or(f64::NAN),
        ratio("wall_ns").unwrap_or(f64::NAN),
    ))
}

/// The durable-recovery cost at the largest snapshot of the recovery
/// family, rendered for the step summary. `None` when the rows are absent
/// (older artifacts).
fn recovery_headline(files: &[dob_bench::diff::BenchFile]) -> Option<String> {
    let recov = files
        .iter()
        .flat_map(|f| f.rows.iter())
        .filter(|r| r.algo == "recovery: snapshot + replay")
        .max_by_key(|r| r.n)?;
    let snap = files
        .iter()
        .flat_map(|f| f.rows.iter())
        .find(|r| r.algo == "recovery: checkpoint write" && r.n == recov.n)?;
    let wr = *recov.counters.get("wall_ns")?;
    let ws = *snap.counters.get("wall_ns")?;
    (wr > 0).then(|| {
        format!(
            "**Recovery headline** (n = {}): snapshot load + 4×256-op WAL replay in \
             {:.1} ms ({:.0} keys/s); checkpoint write {:.1} ms. Replay runs the \
             normal merge path, so the recovered trace is the fresh-run trace.",
            recov.n,
            wr as f64 / 1e6,
            recov.n as f64 * 1e9 / wr as f64,
            ws as f64 / 1e6,
        )
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline_dir = arg_value(&args, "--baseline", "benches/baseline");
    let fresh_dir = arg_value(&args, "--fresh", ".");

    let mut baselines: Vec<PathBuf> = std::fs::read_dir(&baseline_dir)
        .unwrap_or_else(|e| panic!("read baseline dir {}: {e}", baseline_dir.display()))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    baselines.sort();
    assert!(
        !baselines.is_empty(),
        "no BENCH_*.json baselines in {}",
        baseline_dir.display()
    );

    let mut summary = String::from("## Bench regression gate\n\n");
    let mut failures: Vec<String> = Vec::new();
    let mut fresh_files: Vec<dob_bench::diff::BenchFile> = Vec::new();

    for base_path in &baselines {
        let name = base_path.file_name().unwrap().to_str().unwrap();
        let fresh_path = fresh_dir.join(name);
        let base = match load(base_path) {
            Ok(b) => b,
            Err(e) => {
                failures.push(e.clone());
                summary.push_str(&format!("### `{name}`\n\n❌ {e}\n\n"));
                continue;
            }
        };
        if !fresh_path.exists() {
            failures.push(format!(
                "{name}: fresh artifact missing — bench bin not run?"
            ));
            summary.push_str(&format!(
                "### `{}`\n\n❌ fresh artifact missing\n\n",
                base.bin
            ));
            continue;
        }
        let fresh = match load(&fresh_path) {
            Ok(f) => f,
            Err(e) => {
                failures.push(e.clone());
                summary.push_str(&format!("### `{}`\n\n❌ {e}\n\n", base.bin));
                continue;
            }
        };
        let d = diff_benches(&base, &fresh);
        fresh_files.push(fresh);
        summary.push_str(&d.markdown);
        for r in &d.regressions {
            failures.push(format!(
                "{name}: {} — {} regressed {} → {} (>{:.0}%)",
                r.row,
                r.counter,
                r.baseline,
                r.fresh,
                100.0 * dob_bench::diff::THRESHOLD,
            ));
        }
        for m in &d.missing {
            failures.push(format!("{name}: row lost from fresh run: {m}"));
        }
        for a in &d.added {
            eprintln!("note: {name}: unbaselined new row: {a}");
        }
    }

    // Tag-vs-record headline: the ablation rows measure the same records
    // through the same comparator schedule, packed vs Slot-wrapped — the
    // ratio is the tracked payoff of the tag-sort fast path.
    if let Some(line) = tag_sort_headline(&fresh_files) {
        summary.push_str(&format!("\n{line}\n\n"));
        println!("{line}");
    }

    // SIMD-vs-scalar headline: the same cells, schedule, and trace —
    // only the compare-exchange ALU width differs, so the wall ratio is
    // the vectorization win in isolation.
    if let Some(line) = simd_cells_headline(&fresh_files) {
        summary.push_str(&format!("\n{line}\n\n"));
        println!("{line}");
    }

    // Pipelined-vs-synchronous headline: same client stream, double
    // buffering turns per-batch merges into group commits.
    if let Some(line) = pipelined_headline(&fresh_files) {
        summary.push_str(&format!("\n{line}\n\n"));
        println!("{line}");
    }

    // Pinned-pool headline: the hardware-shaped runtime's t=4 epoch wall,
    // pinned vs unpinned workers on the same oblivious schedule.
    if let Some(line) = pinned_pool_headline(&fresh_files) {
        summary.push_str(&format!("\n{line}\n\n"));
        println!("{line}");
    }

    // Graphs tag-cell headline: the migrated CC min-hook sort site, packed
    // cells vs the retired record slots.
    if let Some(line) = graphs_cell_headline(&fresh_files) {
        summary.push_str(&format!("\n{line}\n\n"));
        println!("{line}");
    }

    // Recovery headline: the durable store's crash-recovery cost at the
    // largest snapshot of the family.
    if let Some(line) = recovery_headline(&fresh_files) {
        summary.push_str(&format!("\n{line}\n\n"));
        println!("{line}");
    }

    if failures.is_empty() {
        summary.push_str("**All deterministic counters within the gate.** ✅\n");
    } else {
        summary.push_str("**Regressions detected:**\n\n");
        for f in &failures {
            summary.push_str(&format!("- ❌ {f}\n"));
        }
        summary.push_str(
            "\nIntentional? Regenerate with `--json` and commit the new \
             baseline under `benches/baseline/`.\n",
        );
    }

    match std::env::var("GITHUB_STEP_SUMMARY") {
        Ok(path) => {
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .unwrap_or_else(|e| panic!("open $GITHUB_STEP_SUMMARY {path}: {e}"));
            f.write_all(summary.as_bytes()).expect("write step summary");
            eprintln!("wrote comparison table to $GITHUB_STEP_SUMMARY");
        }
        Err(_) => print!("{summary}"),
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "bench_diff: {} artifact(s) within the {:.0}% gate",
        baselines.len(),
        100.0 * dob_bench::diff::THRESHOLD
    );
}
