//! `dob-store` throughput/complexity sweep: one row per (path, size
//! class), measuring the model costs (work, span, cache) and host ops/s of
//! whole epochs. With `--json`, writes `BENCH_store.json` for the CI
//! perf-regression gate (`bench_diff`), including the scratch-arena
//! fresh-allocation delta of every measured epoch.
//!
//! The merge and ORAM paths are reported at overlapping batch sizes so the
//! crossover the size-class dispatcher exploits (per-op merge cost falls
//! with batch size; per-op ORAM cost is flat) is visible in the table.

use dob_bench::{header, meter_timed, sweep_from_args, BenchSink, Row};
use fj::SeqCtx;
use metrics::ScratchPool;
use store::{Op, Store, StoreConfig};

/// A deterministic mixed workload: ~half gets, ~3/8 puts, the rest
/// deletes, with one aggregate, over a `key_space`-bounded key set.
fn mixed_ops(n: usize, key_space: u64, salt: u64) -> Vec<Op> {
    (0..n as u64)
        .map(|i| {
            let key = i.wrapping_mul(0x9E3779B9).wrapping_add(salt) % key_space;
            match i % 8 {
                0..=3 => Op::Get { key },
                4..=6 => Op::Put { key, val: i * 10 },
                7 if i % 16 == 7 => Op::Delete { key },
                _ => Op::Aggregate,
            }
        })
        .collect()
}

fn puts(n: usize, key_space: u64) -> Vec<Op> {
    (0..n as u64)
        .map(|i| Op::Put {
            key: i.wrapping_mul(31) % key_space,
            val: i,
        })
        .collect()
}

fn main() {
    let scratch = ScratchPool::new();
    let mut sink = BenchSink::from_args("store");
    let mut rates: Vec<(&'static str, usize, f64)> = Vec::new();
    println!("== dob-store: oblivious batched KV epochs, per size class ==\n");
    header();

    // ---- Merge path (arbitrary u64 keys, every epoch merges) -------------
    for n in sweep_from_args(&[64, 256, 1024]) {
        let key_space = (2 * n) as u64;
        let mut store = Store::new(StoreConfig::default());
        let load = puts(n, key_space);
        let a0 = scratch.fresh_allocs();
        let (rep, wall) = meter_timed(|c| {
            store.execute_epoch(c, &scratch, &load);
        });
        sink.record_alloc(
            Row {
                task: "store",
                algo: "merge: bulk load",
                n,
                rep,
            },
            wall,
            scratch.fresh_allocs() - a0,
        );
        rates.push(("merge: bulk load", n, n as f64 * 1e9 / wall as f64));

        let steady = mixed_ops(n, key_space, 7);
        let a0 = scratch.fresh_allocs();
        let (rep, wall) = meter_timed(|c| {
            store.execute_epoch(c, &scratch, &steady);
        });
        sink.record_alloc(
            Row {
                task: "store",
                algo: "merge: steady mixed",
                n,
                rep,
            },
            wall,
            scratch.fresh_allocs() - a0,
        );
        rates.push(("merge: steady mixed", n, n as f64 * 1e9 / wall as f64));
    }

    // ---- ORAM path (bounded key space, sub-threshold batches) ------------
    let key_space = 2048usize;
    let mut cfg = StoreConfig::with_oram(key_space);
    cfg.oram_threshold = 128;
    cfg.pending_limit = 1 << 20; // keep the sweep on the ORAM path
    let mut store = Store::new(cfg);
    // Populate through one merge epoch (unmetered setup).
    {
        let c = SeqCtx::new();
        store.execute_epoch(&c, &scratch, &puts(512, key_space as u64));
    }
    for n in [8usize, 16, 64] {
        let steady = mixed_ops(n, key_space as u64, 13);
        let a0 = scratch.fresh_allocs();
        let (rep, wall) = meter_timed(|c| {
            store.execute_epoch(c, &scratch, &steady);
        });
        sink.record_alloc(
            Row {
                task: "store",
                algo: "oram: steady mixed",
                n,
                rep,
            },
            wall,
            scratch.fresh_allocs() - a0,
        );
        rates.push(("oram: steady mixed", n, n as f64 * 1e9 / wall as f64));
    }

    sink.finish().expect("failed to write BENCH_store.json");

    println!("\n== host throughput (ops per second, epoch wall-clock) ==");
    for (algo, n, rate) in &rates {
        println!("{algo:<22} n={n:<6} {rate:>12.0} ops/s");
    }
    println!(
        "\ncrossover: compare per-op work of 'merge: steady mixed' vs \
         'oram: steady mixed' at n=64 — the size-class dispatcher picks \
         the cheaper side of this line."
    );
}
