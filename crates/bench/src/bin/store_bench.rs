//! `dob-store` throughput/complexity sweep: one row per (path, size
//! class), measuring the model costs (work, span, cache) and host ops/s of
//! whole epochs. With `--json`, writes `BENCH_store.json` for the CI
//! perf-regression gate (`bench_diff`), including the scratch-arena
//! fresh-allocation delta of every measured epoch.
//!
//! The merge and ORAM paths are reported at overlapping batch sizes so the
//! crossover the size-class dispatcher exploits (per-op merge cost falls
//! with batch size; per-op ORAM cost is flat) is visible in the table.
//!
//! `DOB_BENCH_REPS` bounds the interleaved min-of-reps wall-clock loop of
//! the sharded scenario (default 7; CI uses a smaller count to cut the
//! bench job). Only host wall rows are affected — every gated
//! deterministic counter comes from single metered runs.

use dob_bench::{header, meter_timed, sweep_from_args, BenchSink, Row};
use fj::{Pool, PoolConfig, SeqCtx};
use metrics::{ScratchPool, Tracked};
use obliv_core::{composite_key, Engine, Item, Slot, TagCell};
use std::sync::Arc;
use store::vfs::FaultVfs;
use store::{
    shard_of, Durability, Op, PipelinedStore, RetryPolicy, ShardConfig, ShardedStore, ShrinkPolicy,
    Store, StoreConfig, StoreError,
};

/// Unwrap a durable-store result or exit with its typed diagnosis — a
/// bench run on a broken disk should fail loudly, not measure garbage.
fn or_die<T>(r: Result<T, StoreError>, what: &str) -> T {
    match r {
        Ok(v) => v,
        Err(e) => {
            eprintln!("store_bench: {what}: {e}");
            std::process::exit(1);
        }
    }
}

/// A deterministic mixed workload: ~half gets, ~3/8 puts, the rest
/// deletes, with one aggregate, over a `key_space`-bounded key set.
fn mixed_ops(n: usize, key_space: u64, salt: u64) -> Vec<Op> {
    (0..n as u64)
        .map(|i| {
            let key = i.wrapping_mul(0x9E3779B9).wrapping_add(salt) % key_space;
            match i % 8 {
                0..=3 => Op::Get { key },
                4..=6 => Op::Put { key, val: i * 10 },
                7 if i % 16 == 7 => Op::Delete { key },
                _ => Op::Aggregate,
            }
        })
        .collect()
}

fn puts(n: usize, key_space: u64) -> Vec<Op> {
    (0..n as u64)
        .map(|i| Op::Put {
            key: i.wrapping_mul(31) % key_space,
            val: i,
        })
        .collect()
}

/// Resident-table size of the sharded scenario (the "large size class"):
/// sized so the monolithic merge's working set (~2·cap slots) falls well
/// outside a commodity L2 while each of 4 shards' stays inside it.
const SHARD_TABLE: usize = 32768;
/// Steady-epoch batch size of the sharded scenario.
const SHARD_BATCH: usize = 1024;

/// Resident-table size of the pipelined scenario (shrink-pinned).
const PIPE_TABLE: usize = 8192;
/// Client batch size of the pipelined stream.
const PIPE_BATCH: usize = 256;
/// Client batches per pipelined stream.
const PIPE_STREAM: usize = 24;
/// Open-buffer cap: up to 4 client batches coalesce into one merge while
/// the engine is busy. `size_class(PIPE_TABLE + PIPE_OPEN_LIMIT)` equals
/// `size_class(PIPE_TABLE + PIPE_BATCH)`, so a coalesced merge touches
/// the *same* array size as a per-batch merge — the win is merge count.
const PIPE_OPEN_LIMIT: usize = 4 * PIPE_BATCH;

/// A `PIPE_TABLE`-key store with capacity pinned by a shrink policy,
/// bulk-loaded through unmetered epochs.
fn pipe_store(scratch: &ScratchPool) -> Store {
    let cfg = StoreConfig {
        shrink: Some(ShrinkPolicy {
            every: 1,
            live_bound: PIPE_TABLE,
            snapshot: 0,
        }),
        ..StoreConfig::default()
    };
    let mut st = Store::new(cfg);
    let c = SeqCtx::new();
    for chunk in (0..PIPE_TABLE as u64).collect::<Vec<_>>().chunks(4096) {
        let puts: Vec<Op> = chunk.iter().map(|&k| Op::Put { key: k, val: k }).collect();
        st.execute_epoch(&c, scratch, &puts).unwrap();
    }
    assert_eq!(st.capacity(), PIPE_TABLE, "shrink policy pins capacity");
    st
}

/// Interleaved wall-clock repetitions, overridable with `DOB_BENCH_REPS`
/// (CI sets a smaller count to cut bench-job time; the deterministic
/// counter rows are untouched — they come from single metered runs).
fn reps_from_env() -> u64 {
    std::env::var("DOB_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(7)
}

/// The ~96-byte payload shape the merge path's comparator layers carried
/// before the tag-sort fast path (`Slot<[u64; 6]>` mirrors the retired
/// `Slot<MergeVal>` footprint) — the record-sort side of the headline.
type WideVal = [u64; 6];

/// Headline, tag side: sort `m` packed 32-byte cells.
fn headline_tag_sort<C: fj::Ctx>(c: &C, scratch: &ScratchPool, m: usize) {
    let mut cells = scratch.lease(m, TagCell::filler());
    for (i, cell) in cells.iter_mut().enumerate() {
        let k = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 16;
        *cell = TagCell::new(composite_key(k, i as u64), i as u128);
    }
    let mut t = Tracked::new(c, &mut cells);
    Engine::BitonicRec.sort_cells(c, scratch, &mut t);
}

/// Headline, record side: the same keys through the same network wrapped
/// in merge-record-sized slots.
fn headline_record_sort<C: fj::Ctx>(c: &C, scratch: &ScratchPool, m: usize) {
    let mut slots = scratch.lease(m, Slot::<WideVal>::filler());
    for (i, slot) in slots.iter_mut().enumerate() {
        let k = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 16;
        *slot = Slot {
            sk: composite_key(k, i as u64),
            ..Slot::real(Item::new(composite_key(k, i as u64), [i as u64; 6]), 0)
        };
    }
    let mut t = Tracked::new(c, &mut slots);
    Engine::BitonicRec.sort_slots(c, scratch, &mut t);
}

/// The thread-scaling family: every `DOB_THREADS ∈ {1,2,4}` pool size the
/// CI test matrix exercises, unpinned and pinned. Names are static so the
/// JSON rows keep stable identities for the regression gate.
const SCALE_CONFIGS: [(usize, bool, &str); 6] = [
    (1, false, "scaling t=1 unpinned: epoch wall"),
    (1, true, "scaling t=1 pinned: epoch wall"),
    (2, false, "scaling t=2 unpinned: epoch wall"),
    (2, true, "scaling t=2 pinned: epoch wall"),
    (4, false, "scaling t=4 unpinned: epoch wall"),
    (4, true, "scaling t=4 pinned: epoch wall"),
];

/// Graphs headline, tag side: the CC min-hook proposal sort — per-edge
/// `(target, value)` proposals ride as packed 32-byte cells with the
/// composite pair in the tag, exactly as `min_per_target` packs them
/// since the cell migration.
fn graphs_cc_tag_sort<C: fj::Ctx>(c: &C, scratch: &ScratchPool, props: &[(u64, u64)]) {
    let mut cells = scratch.lease(props.len(), TagCell::filler());
    for (cell, &(t, v)) in cells.iter_mut().zip(props.iter()) {
        *cell = TagCell::new(composite_key(t, v), 0);
    }
    let mut tr = Tracked::new(c, &mut cells);
    Engine::BitonicRec.sort_cells(c, scratch, &mut tr);
}

/// Graphs headline, slot side: the same proposals Slot-wrapped through the
/// same BitonicRec schedule — how `min_per_target` carried them before the
/// migration.
fn graphs_cc_slot_sort<C: fj::Ctx>(c: &C, scratch: &ScratchPool, props: &[(u64, u64)]) {
    let mut slots = scratch.lease(props.len(), Slot::<(u64, u64)>::filler());
    for (slot, &(t, v)) in slots.iter_mut().zip(props.iter()) {
        *slot = Slot {
            sk: composite_key(t, v),
            ..Slot::real(Item::new(composite_key(t, v), (t, v)), 0)
        };
    }
    let mut tr = Tracked::new(c, &mut slots);
    Engine::BitonicRec.sort_slots(c, scratch, &mut tr);
}

/// A key universe of `total` keys loading every one of `shards` shards
/// with exactly `total / shards` keys, so the per-shard declared live
/// bound can be tight (`shard_of` is a public hash; the filter below just
/// removes its sampling noise from the benchmark).
fn balanced_keys(total: usize, shards: usize) -> Vec<u64> {
    let per = total / shards;
    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); shards];
    let mut k = 0u64;
    while buckets.iter().any(|b| b.len() < per) {
        let s = shard_of(k, shards);
        if buckets[s].len() < per {
            buckets[s].push(k);
        }
        k += 1;
    }
    buckets.concat()
}

/// The steady mixed workload of the sharded scenario, drawn from the
/// resident key set so the live bound stays pinned.
fn sharded_mixed(keys: &[u64], n: usize, salt: u64) -> Vec<Op> {
    (0..n as u64)
        .map(|i| {
            let key = keys[(i.wrapping_mul(0x9E37_79B9).wrapping_add(salt) as usize) % keys.len()];
            match i % 8 {
                0..=3 => Op::Get { key },
                4..=6 => Op::Put { key, val: i * 10 },
                _ => Op::Aggregate,
            }
        })
        .collect()
}

fn main() {
    let scratch = ScratchPool::new();
    let mut sink = BenchSink::from_args("store");
    let mut rates: Vec<(&'static str, usize, f64)> = Vec::new();
    println!("== dob-store: oblivious batched KV epochs, per size class ==\n");
    header();

    // ---- Merge path (arbitrary u64 keys, every epoch merges) -------------
    for n in sweep_from_args(&[64, 256, 1024]) {
        let key_space = (2 * n) as u64;
        let mut store = Store::new(StoreConfig::default());
        let load = puts(n, key_space);
        let a0 = scratch.fresh_allocs();
        let (rep, wall) = meter_timed(|c| {
            store.execute_epoch(c, &scratch, &load).unwrap();
        });
        sink.record_alloc(
            Row {
                task: "store",
                algo: "merge: bulk load",
                n,
                rep,
            },
            wall,
            scratch.fresh_allocs() - a0,
        );
        rates.push(("merge: bulk load", n, n as f64 * 1e9 / wall as f64));

        let steady = mixed_ops(n, key_space, 7);
        let a0 = scratch.fresh_allocs();
        let (rep, wall) = meter_timed(|c| {
            store.execute_epoch(c, &scratch, &steady).unwrap();
        });
        sink.record_alloc(
            Row {
                task: "store",
                algo: "merge: steady mixed",
                n,
                rep,
            },
            wall,
            scratch.fresh_allocs() - a0,
        );
        rates.push(("merge: steady mixed", n, n as f64 * 1e9 / wall as f64));
    }

    // ---- ORAM path (bounded key space, sub-threshold batches) ------------
    let key_space = 2048usize;
    let mut cfg = StoreConfig::with_oram(key_space);
    cfg.oram_threshold = 128;
    cfg.pending_limit = 1 << 20; // keep the sweep on the ORAM path
    let mut store = Store::new(cfg);
    // Populate through one merge epoch (unmetered setup).
    {
        let c = SeqCtx::new();
        store
            .execute_epoch(&c, &scratch, &puts(512, key_space as u64))
            .unwrap();
    }
    for n in [8usize, 16, 64] {
        let steady = mixed_ops(n, key_space as u64, 13);
        let a0 = scratch.fresh_allocs();
        let (rep, wall) = meter_timed(|c| {
            store.execute_epoch(c, &scratch, &steady).unwrap();
        });
        sink.record_alloc(
            Row {
                task: "store",
                algo: "oram: steady mixed",
                n,
                rep,
            },
            wall,
            scratch.fresh_allocs() - a0,
        );
        rates.push(("oram: steady mixed", n, n as f64 * 1e9 / wall as f64));
    }

    // ---- Sharded epoch engine --------------------------------------------
    // The scaling scenario: a pinned resident table of SHARD_TABLE keys
    // (shrink policy compacts every merge, so capacity is stable in steady
    // state) served with SHARD_BATCH-op mixed epochs, at 1 shard vs 4
    // shards. The 4-shard runs pay the oblivious routing (scatter + gather
    // on O(batch)-sized arrays) and win it back on the commits: each shard
    // sorts a 4x smaller table slice (two log factors smaller networks,
    // L2-resident working sets) and all four commit in parallel on the
    // fj pool.
    println!("\n== sharded epochs: {SHARD_TABLE}-key table, {SHARD_BATCH}-op steady epochs ==\n");
    header();
    let keys = balanced_keys(SHARD_TABLE, 4);
    let configs = [
        (
            1usize,
            "sharded s=1: steady mixed",
            "sharded s=1: pool4 wall",
        ),
        (
            4usize,
            "sharded s=4: steady mixed",
            "sharded s=4: pool4 wall",
        ),
    ];
    let mut stores: Vec<ShardedStore> = configs
        .iter()
        .map(|&(shards, _, _)| {
            let mut cfg = ShardConfig::with_shards(shards);
            cfg.route_slack = 2;
            cfg.store.shrink = Some(ShrinkPolicy {
                every: 1,
                live_bound: SHARD_TABLE / shards,
                snapshot: 0,
            });
            let mut st = ShardedStore::new(cfg);
            // Load the table (unmetered setup).
            let c = SeqCtx::new();
            for chunk in keys.chunks(4096) {
                let puts: Vec<Op> = chunk.iter().map(|&k| Op::Put { key: k, val: k }).collect();
                st.execute_epoch(&c, &scratch, &puts).unwrap();
            }
            assert_eq!(st.capacity(), SHARD_TABLE, "shrink policy pins capacity");
            st
        })
        .collect();

    // Model costs (deterministic, gated) under the metering executor.
    let mut model_reps = Vec::new();
    for (st, &(_, algo, _)) in stores.iter_mut().zip(configs.iter()) {
        let steady = sharded_mixed(&keys, SHARD_BATCH, 7);
        let a0 = scratch.fresh_allocs();
        let (rep, wall) = meter_timed(|c| {
            st.execute_epoch(c, &scratch, &steady).unwrap();
        });
        sink.record_alloc(
            Row {
                task: "store",
                algo,
                n: SHARD_BATCH,
                rep,
            },
            wall,
            scratch.fresh_allocs() - a0,
        );
        model_reps.push(rep);
    }

    // Host wall-clock of real (unmetered) epochs on a 4-thread pool. The
    // configs' reps are interleaved so transient host noise hits both
    // equally, and each config reports its min — every rep runs the same
    // public shapes, so the fastest one is the least noise-contaminated
    // estimate of the true epoch cost.
    let pool = Pool::new(4);
    for st in stores.iter_mut() {
        let warm = sharded_mixed(&keys, SHARD_BATCH, 11);
        pool.run(|c| st.execute_epoch(c, &scratch, &warm).unwrap());
    }
    let mut wall_mins = [u128::MAX; 2];
    for r in 0..reps_from_env() {
        let ops = sharded_mixed(&keys, SHARD_BATCH, 13 + r);
        for (k, st) in stores.iter_mut().enumerate() {
            let t0 = std::time::Instant::now();
            pool.run(|c| {
                st.execute_epoch(c, &scratch, &ops).unwrap();
            });
            wall_mins[k] = wall_mins[k].min(t0.elapsed().as_nanos());
        }
    }
    let mut pool_walls: Vec<(usize, u128)> = Vec::new();
    for (k, &(shards, _, algo_pool)) in configs.iter().enumerate() {
        sink.rows_push_quiet("store", algo_pool, SHARD_BATCH, model_reps[k], wall_mins[k]);
        pool_walls.push((shards, wall_mins[k]));
        rates.push((
            algo_pool,
            SHARD_BATCH,
            SHARD_BATCH as f64 * 1e9 / wall_mins[k] as f64,
        ));
    }

    // ---- Pipelined epochs: double-buffered commit vs synchronous ---------
    // The steady-state scenario: a shrink-pinned PIPE_TABLE-key store
    // served a stream of PIPE_STREAM client batches of PIPE_BATCH mixed
    // ops. The synchronous driver merges once per batch; the pipelined
    // driver submits into the open buffer and `try_commit`s, so batches
    // coalesce (group commit) while a merge is in flight — fewer merges
    // over the *same* padded array size (see PIPE_OPEN_LIMIT), which is
    // where the throughput headline comes from.
    println!(
        "\n== pipelined epochs: {PIPE_TABLE}-key table, {PIPE_STREAM}x{PIPE_BATCH}-op stream ==\n"
    );
    header();
    let pipe_scratch = Arc::new(ScratchPool::new());

    // Deterministic, gated counters: one per-batch merge vs one fully
    // coalesced merge, both against the pinned table.
    let mut sync_store = pipe_store(&scratch);
    let steady = mixed_ops(PIPE_BATCH, PIPE_TABLE as u64, 7);
    let a0 = scratch.fresh_allocs();
    let (rep_sync, wall) = meter_timed(|c| {
        sync_store.execute_epoch(c, &scratch, &steady).unwrap();
    });
    sink.record_alloc(
        Row {
            task: "store",
            algo: "sync: per-batch commit",
            n: PIPE_BATCH,
            rep: rep_sync,
        },
        wall,
        scratch.fresh_allocs() - a0,
    );
    rates.push((
        "sync: per-batch commit",
        PIPE_BATCH,
        PIPE_BATCH as f64 * 1e9 / wall as f64,
    ));

    let mut coalesced =
        PipelinedStore::with_scratch(pipe_store(&pipe_scratch), Arc::clone(&pipe_scratch));
    for op in mixed_ops(PIPE_OPEN_LIMIT, PIPE_TABLE as u64, 7) {
        coalesced.submit(op);
    }
    let a0 = pipe_scratch.fresh_allocs();
    let (rep_pipe, wall) = meter_timed(|c| {
        let h = coalesced.commit_async(c);
        let _ = coalesced.wait(&h).unwrap();
    });
    sink.record_alloc(
        Row {
            task: "store",
            algo: "pipelined: coalesced commit",
            n: PIPE_OPEN_LIMIT,
            rep: rep_pipe,
        },
        wall,
        pipe_scratch.fresh_allocs() - a0,
    );
    rates.push((
        "pipelined: coalesced",
        PIPE_OPEN_LIMIT,
        PIPE_OPEN_LIMIT as f64 * 1e9 / wall as f64,
    ));

    // The read-your-writes consult, measured with a full batch in flight
    // and a partial batch open (also deterministic and gated).
    let mut consult =
        PipelinedStore::with_scratch(pipe_store(&pipe_scratch), Arc::clone(&pipe_scratch));
    {
        let seq = SeqCtx::new();
        for op in mixed_ops(PIPE_BATCH, PIPE_TABLE as u64, 19) {
            consult.submit(op);
        }
        let _ = consult.commit_async(&seq);
        for op in mixed_ops(64, PIPE_TABLE as u64, 23) {
            consult.submit(op);
        }
    }
    let probe: Vec<u64> = (0..64u64).map(|i| (i * 127) % PIPE_TABLE as u64).collect();
    let a0 = pipe_scratch.fresh_allocs();
    let (rep, wall) = meter_timed(|c| {
        let _ = consult.read_now(c, &probe);
    });
    sink.record_alloc(
        Row {
            task: "store",
            algo: "pipelined: read_now consult",
            n: probe.len(),
            rep,
        },
        wall,
        pipe_scratch.fresh_allocs() - a0,
    );
    rates.push((
        "pipelined: consult",
        probe.len(),
        probe.len() as f64 * 1e9 / wall as f64,
    ));

    // Host wall-clock of the two stream drivers on the 4-thread pool,
    // interleaved min-of-reps like the sharded scenario. Each rep replays
    // the same public shapes; the pipelined driver's merge count is a
    // public function of those shapes (handoff cadence), asserted stable
    // across reps below.
    let mut stream_mins = [u128::MAX; 2];
    let mut pipe_merges = 0u64;
    for r in 0..reps_from_env().min(3) {
        let batches: Vec<Vec<Op>> = (0..PIPE_STREAM as u64)
            .map(|b| mixed_ops(PIPE_BATCH, PIPE_TABLE as u64, 100 + r * 37 + b))
            .collect();

        let mut s = pipe_store(&scratch);
        let t0 = std::time::Instant::now();
        for ops in &batches {
            pool.run(|c| {
                s.execute_epoch(c, &scratch, ops).unwrap();
            });
        }
        stream_mins[0] = stream_mins[0].min(t0.elapsed().as_nanos());

        let mut p =
            PipelinedStore::with_scratch(pipe_store(&pipe_scratch), Arc::clone(&pipe_scratch))
                .with_open_limit(PIPE_OPEN_LIMIT);
        let t0 = std::time::Instant::now();
        for ops in &batches {
            for op in ops {
                p.submit(*op);
            }
            let _ = p.try_commit(&pool);
        }
        p.drain(&pool);
        stream_mins[1] = stream_mins[1].min(t0.elapsed().as_nanos());
        pipe_merges = p.epoch_counts().1;
    }
    let stream_ops = PIPE_STREAM * PIPE_BATCH;
    sink.rows_push_quiet(
        "store",
        "sync: stream pool4 wall",
        stream_ops,
        rep_sync,
        stream_mins[0],
    );
    sink.rows_push_quiet(
        "store",
        "pipelined: stream pool4 wall",
        stream_ops,
        rep_pipe,
        stream_mins[1],
    );
    rates.push((
        "sync: stream pool4",
        stream_ops,
        stream_ops as f64 * 1e9 / stream_mins[0] as f64,
    ));
    rates.push((
        "pipelined: stream pool4",
        stream_ops,
        stream_ops as f64 * 1e9 / stream_mins[1] as f64,
    ));

    // ---- Thread scaling: pool size x pinning on the steady epoch ---------
    // The hardware-shaped runtime family: the same shrink-pinned steady
    // epoch (PIPE_TABLE-key table, PIPE_BATCH mixed ops) under every
    // DOB_THREADS ∈ {1,2,4} pool size, unpinned and pinned. The model
    // counters are executor-independent by construction (the trace-equality
    // suite asserts it), so one metered run backs every row of the family
    // and is what the gate tracks; the per-config walls are interleaved
    // min-of-reps host measurements.
    println!("\n== thread scaling: {PIPE_TABLE}-key table, {PIPE_BATCH}-op epochs, t x pin ==\n");
    header();
    let mut scale_store = pipe_store(&scratch);
    let steady = mixed_ops(PIPE_BATCH, PIPE_TABLE as u64, 29);
    let a0 = scratch.fresh_allocs();
    let (rep_scale, wall) = meter_timed(|c| {
        scale_store.execute_epoch(c, &scratch, &steady).unwrap();
    });
    sink.record_alloc(
        Row {
            task: "store",
            algo: "scaling: steady mixed",
            n: PIPE_BATCH,
            rep: rep_scale,
        },
        wall,
        scratch.fresh_allocs() - a0,
    );

    let scale_pools: Vec<Pool> = SCALE_CONFIGS
        .iter()
        .map(|&(threads, pin, _)| {
            Pool::with_config(PoolConfig {
                threads: Some(threads),
                pin,
                affinity: None,
            })
        })
        .collect();
    let mut scale_stores: Vec<Store> = SCALE_CONFIGS.iter().map(|_| pipe_store(&scratch)).collect();
    // One warm epoch per config primes each pool's per-worker scratch lanes.
    for (pool, st) in scale_pools.iter().zip(scale_stores.iter_mut()) {
        let warm = mixed_ops(PIPE_BATCH, PIPE_TABLE as u64, 31);
        pool.run(|c| st.execute_epoch(c, &scratch, &warm).unwrap());
    }
    let mut scale_mins = [u128::MAX; SCALE_CONFIGS.len()];
    for r in 0..reps_from_env() {
        let ops = mixed_ops(PIPE_BATCH, PIPE_TABLE as u64, 37 + r);
        for (k, (pool, st)) in scale_pools.iter().zip(scale_stores.iter_mut()).enumerate() {
            let t0 = std::time::Instant::now();
            pool.run(|c| {
                st.execute_epoch(c, &scratch, &ops).unwrap();
            });
            scale_mins[k] = scale_mins[k].min(t0.elapsed().as_nanos());
        }
    }
    for (k, &(_, _, algo)) in SCALE_CONFIGS.iter().enumerate() {
        sink.rows_push_quiet("store", algo, PIPE_BATCH, rep_scale, scale_mins[k]);
        rates.push((
            algo,
            PIPE_BATCH,
            PIPE_BATCH as f64 * 1e9 / scale_mins[k] as f64,
        ));
    }

    // ---- Graphs kernel: tag cells vs record slots ------------------------
    // The migrated-kernel ablation: the CC min-hook proposal sort at a
    // graph-scale working set, packed 32-byte cells vs the Slot records
    // the kernel carried before the migration. Same comparator schedule —
    // the cache-miss ratio is the tracked payoff on the graphs side.
    let gm = 8192usize;
    let props: Vec<(u64, u64)> = (0..gm as u64)
        .map(|i| (i.wrapping_mul(0x9E3779B9) % 1024, i))
        .collect();
    let (rep_gtag, _) = meter_timed(|c| graphs_cc_tag_sort(c, &scratch, &props));
    let wall_gtag = dob_bench::wall_unmetered(3, |c| graphs_cc_tag_sort(c, &scratch, &props));
    sink.record(
        Row {
            task: "store",
            algo: "graphs cc: tag cells",
            n: gm,
            rep: rep_gtag,
        },
        wall_gtag,
    );
    let (rep_gslot, _) = meter_timed(|c| graphs_cc_slot_sort(c, &scratch, &props));
    let wall_gslot = dob_bench::wall_unmetered(3, |c| graphs_cc_slot_sort(c, &scratch, &props));
    sink.record(
        Row {
            task: "store",
            algo: "graphs cc: record slots",
            n: gm,
            rep: rep_gslot,
        },
        wall_gslot,
    );

    // ---- Tag-sort vs record-sort, on the merge path's working set --------
    // The ablation behind the epoch rows above: one comparator network of
    // the merge working-set size, once over packed 32-byte tag cells and
    // once over the ~96-byte Slot records the pipeline used to push through
    // every layer. Same schedule, same comparator count — the difference is
    // pure data movement, which is exactly what the fast path removes.
    // Counters are metered (gated); walls come from unmetered runs, since
    // the simulator's per-access overhead is width-independent.
    println!(
        "\n== tag-sort vs record-sort ({} comparator slots) ==\n",
        2 * SHARD_TABLE
    );
    header();
    let m = 2 * SHARD_TABLE;
    let (rep_tag, _) = meter_timed(|c| headline_tag_sort(c, &scratch, m));
    let wall_tag = dob_bench::wall_unmetered(3, |c| headline_tag_sort(c, &scratch, m));
    sink.record(
        Row {
            task: "store",
            algo: "sort: tag cells",
            n: m,
            rep: rep_tag,
        },
        wall_tag,
    );
    let (rep_rec, _) = meter_timed(|c| headline_record_sort(c, &scratch, m));
    let wall_rec = dob_bench::wall_unmetered(3, |c| headline_record_sort(c, &scratch, m));
    sink.record(
        Row {
            task: "store",
            algo: "sort: record slots",
            n: m,
            rep: rep_rec,
        },
        wall_rec,
    );

    // ---- Durable recovery: snapshot load + WAL replay --------------------
    // The durability family: a shrink-pinned table checkpointed to disk,
    // then four more merge epochs left in the WAL — exactly the crash
    // image `Store::recover` is built for. The metered run is recovery
    // itself: read the snapshot, rebuild the table, and replay the logged
    // epochs through the normal merge path, so the gated counters are the
    // same public function of the logged batch classes as a fresh run (the
    // trace-equality suite asserts this). The checkpoint rows are host
    // I/O only — their counters are zero by construction and the wall is
    // the cost of writing `cap` packed cells plus the fsync.
    println!("\n== durable recovery: snapshot + 4x256-op WAL replay ==\n");
    header();
    for size in [4096usize, 8192, 16384] {
        let dir =
            std::env::temp_dir().join(format!("dob_bench_recovery_{}_{size}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let seq = SeqCtx::new();
        let cfg = StoreConfig {
            durability: Durability::epoch(),
            shrink: Some(ShrinkPolicy {
                every: 1,
                live_bound: size,
                snapshot: 0,
            }),
            ..StoreConfig::default()
        };
        let mut st = or_die(
            Store::recover(&seq, &scratch, &dir, cfg),
            "open durable store",
        );
        for chunk in (0..size as u64).collect::<Vec<_>>().chunks(4096) {
            let ops: Vec<Op> = chunk.iter().map(|&k| Op::Put { key: k, val: k }).collect();
            or_die(st.execute_epoch(&seq, &scratch, &ops), "durable load epoch");
        }
        let (rep, wall) = meter_timed(|_| or_die(st.checkpoint(), "checkpoint"));
        sink.record(
            Row {
                task: "store",
                algo: "recovery: checkpoint write",
                n: size,
                rep,
            },
            wall,
        );
        for r in 0..4u64 {
            let ops = mixed_ops(256, size as u64, 41 + r);
            or_die(
                st.execute_epoch(&seq, &scratch, &ops),
                "durable steady epoch",
            );
        }
        drop(st);
        let (rep, wall) = meter_timed(|c| {
            let _ = or_die(Store::recover(c, &scratch, &dir, cfg), "recover store");
        });
        sink.record(
            Row {
                task: "store",
                algo: "recovery: snapshot + replay",
                n: size,
                rep,
            },
            wall,
        );
        rates.push((
            "recovery: snap+replay",
            size,
            size as f64 * 1e9 / wall as f64,
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    // ---- Retry machinery on the no-fault durable path --------------------
    // The robustness-layer ablation: the same durable steady epoch (WAL
    // append + fsync per commit, on an in-memory fault-free `FaultVfs` so
    // the counters are host-independent) under `RetryPolicy::none()` vs
    // the default 4-attempt policy. Retry decisions read only the I/O
    // outcome, so on a healthy disk the policies must be byte-identical:
    // the gated rows pin both counter sets, the alloc assertion proves the
    // retry plumbing allocates nothing, and the wall headline below tracks
    // its (sub-1%) time cost.
    println!("\n== durable commits: retry machinery on the no-fault path ==\n");
    header();
    let retry_cfgs = [
        (RetryPolicy::none(), "durable: commit retry=1"),
        (RetryPolicy::default(), "durable: commit retry=4"),
    ];
    let mut retry_allocs = [0u64; 2];
    let mut retry_walls = [0u128; 2];
    for (k, &(retry, algo)) in retry_cfgs.iter().enumerate() {
        let vfs = Arc::new(FaultVfs::unfaulted()); // fault-free schedule
        let seq = SeqCtx::new();
        let cfg = StoreConfig {
            durability: Durability::epoch(),
            retry,
            ..StoreConfig::default()
        };
        let dir = std::path::Path::new("/bench/retry");
        let mut st = or_die(
            Store::recover_with(&seq, &scratch, dir, cfg, vfs),
            "open durable store (fault vfs)",
        );
        or_die(
            st.execute_epoch(&seq, &scratch, &puts(512, 1024)),
            "durable warm epoch",
        );
        let steady = mixed_ops(256, 1024, 43);
        // One steady-shape epoch outside the meter: a mixed epoch leases
        // scratch classes the put-only warm epoch never touches, and that
        // one-time cost would land on whichever config runs first. Both
        // configs must measure steady state.
        or_die(
            st.execute_epoch(&seq, &scratch, &mixed_ops(256, 1024, 41)),
            "durable steady-shape warm epoch",
        );
        let a0 = scratch.fresh_allocs();
        let (rep, wall) = meter_timed(|c| {
            or_die(
                st.execute_epoch(c, &scratch, &steady),
                "durable steady epoch",
            );
        });
        sink.record_alloc(
            Row {
                task: "store",
                algo,
                n: 256,
                rep,
            },
            wall,
            scratch.fresh_allocs() - a0,
        );
        retry_allocs[k] = scratch.fresh_allocs() - a0;
        retry_walls[k] = dob_bench::wall_unmetered(5, |c| {
            let ops = mixed_ops(256, 1024, 47);
            or_die(st.execute_epoch(c, &scratch, &ops), "durable wall epoch");
        });
    }
    assert_eq!(
        retry_allocs[0], retry_allocs[1],
        "retry machinery must be alloc-free on the no-fault durable path"
    );

    sink.finish().expect("failed to write BENCH_store.json");

    println!(
        "\nretry headline (no-fault durable commit, n=256): retry=4 / retry=1 \
         wall = {:.3}x ({} fresh allocs each — the policy itself allocates nothing)",
        retry_walls[1] as f64 / retry_walls[0].max(1) as f64,
        retry_allocs[0],
    );

    println!(
        "\ntag-sort vs record-sort headline ({} slots): {:.2}x wall, {:.2}x cache misses \
         (identical {} comparators)",
        m,
        wall_rec as f64 / wall_tag.max(1) as f64,
        rep_rec.cache_misses as f64 / rep_tag.cache_misses.max(1) as f64,
        rep_tag.comparisons,
    );

    println!("\n== host throughput (ops per second, epoch wall-clock) ==");
    for (algo, n, rate) in &rates {
        println!("{algo:<22} n={n:<6} {rate:>12.0} ops/s");
    }
    println!(
        "\ncrossover: compare per-op work of 'merge: steady mixed' vs \
         'oram: steady mixed' at n=64 — the size-class dispatcher picks \
         the cheaper side of this line."
    );

    let w1 = pool_walls.iter().find(|&&(s, _)| s == 1).unwrap().1;
    let w4 = pool_walls.iter().find(|&&(s, _)| s == 4).unwrap().1;
    println!(
        "\nsharded epoch speedup (4 shards / 4 threads vs 1 shard, \
         {SHARD_TABLE}-key table, n={SHARD_BATCH}): {:.2}x",
        w1 as f64 / w4 as f64
    );

    let batches_per_sec = |wall: u128| PIPE_STREAM as f64 * 1e9 / wall as f64;
    println!(
        "\npipelined epoch headline ({PIPE_TABLE}-key table, {PIPE_STREAM}x{PIPE_BATCH}-op \
         stream, open limit {PIPE_OPEN_LIMIT}): {:.2}x client-batch throughput vs \
         synchronous ({:.1} vs {:.1} batches/s; {pipe_merges} merges vs {PIPE_STREAM})",
        stream_mins[0] as f64 / stream_mins[1] as f64,
        batches_per_sec(stream_mins[1]),
        batches_per_sec(stream_mins[0]),
    );

    // Pinned-vs-unpinned at the largest pool of the scaling family. On a
    // CI runner without that many cores (or with pinning denied) the pool
    // degrades to unpinned and this ratio reads ≈1.0 — the wall rows are
    // context, never gated.
    let unpinned4 = scale_mins[4];
    let pinned4 = scale_mins[5];
    println!(
        "\npinned-pool headline ({PIPE_TABLE}-key table, n={PIPE_BATCH}, t=4): \
         unpinned / pinned = {:.2}x epoch wall",
        unpinned4 as f64 / pinned4 as f64,
    );

    println!(
        "\ngraphs tag-cell headline (CC min-hook sort, {gm} proposals): {:.2}x wall, \
         {:.2}x cache misses (identical {} comparators)",
        wall_gslot as f64 / wall_gtag.max(1) as f64,
        rep_gslot.cache_misses as f64 / rep_gtag.cache_misses.max(1) as f64,
        rep_gtag.comparisons,
    );

    let recov = rates
        .iter()
        .filter(|&&(a, _, _)| a == "recovery: snap+replay")
        .max_by_key(|&&(_, n, _)| n);
    if let Some(&(_, n, rate)) = recov {
        println!(
            "\nrecovery headline ({n}-key snapshot + 4x256-op WAL replay): \
             {rate:.0} recovered keys/s"
        );
    }
}
