//! Bench-JSON comparison for the CI perf-regression gate.
//!
//! The `BENCH_*.json` artifacts are produced by [`crate::BenchSink`] under
//! the metering executor, so every gated counter (work, span, cache,
//! comparisons, moves, allocs) is **deterministic** for a given source tree
//! — any drift is a real change, not noise. Wall-clock is reported for
//! context but never gated. The parser below reads exactly the flat shape
//! `BenchSink::finish` writes (the container has no serde; see DESIGN.md
//! §6).

use std::collections::BTreeMap;

/// Counters gated at the >10% threshold. `wall_ns` is intentionally
/// absent (host noise); `retries` is absent because a seed change
/// legitimately moves it between small integers.
pub const GATED: &[&str] = &[
    "work",
    "span",
    "cache_misses",
    "cache_accesses",
    "comparisons",
    "moves",
    "allocs",
];

/// Relative regression threshold (fractional): fail above +10%.
pub const THRESHOLD: f64 = 0.10;
/// Absolute slack so tiny counters (0 or near-0 baselines) don't trip the
/// relative gate on ±a-few-units drift.
pub const ABS_SLACK: u64 = 8;

/// One measured row: identity plus its numeric counters.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRow {
    pub task: String,
    pub algo: String,
    pub n: u64,
    pub counters: BTreeMap<String, u64>,
}

impl BenchRow {
    fn id(&self) -> String {
        format!("{} / {} / n={}", self.task, self.algo, self.n)
    }
}

/// A parsed `BENCH_*.json` artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchFile {
    pub bin: String,
    pub rows: Vec<BenchRow>,
}

/// Parse the `BenchSink` JSON shape: one `"bin"` string and a `"rows"`
/// array of flat objects whose values are strings or non-negative
/// integers. Strings are read verbatim between quotes — no escape
/// handling — which `BenchSink::finish` guarantees by rejecting row names
/// containing `"` or `\`.
pub fn parse_bench_json(text: &str) -> Result<BenchFile, String> {
    let bin = find_string_field(text, "bin").ok_or("missing \"bin\" field")?;
    let rows_at = text.find("\"rows\"").ok_or("missing \"rows\" field")?;
    let mut rows = Vec::new();
    let mut rest = &text[rows_at..];
    while let Some(open) = rest.find('{') {
        let close = rest[open..].find('}').ok_or("unterminated row object")? + open;
        let obj = &rest[open + 1..close];
        rows.push(parse_row(obj)?);
        rest = &rest[close + 1..];
    }
    Ok(BenchFile { bin, rows })
}

fn parse_row(obj: &str) -> Result<BenchRow, String> {
    let mut task = None;
    let mut algo = None;
    let mut counters = BTreeMap::new();
    for field in split_fields(obj) {
        let (key, value) = field
            .split_once(':')
            .ok_or_else(|| format!("malformed field {field:?}"))?;
        let key = key.trim().trim_matches('"').to_string();
        let value = value.trim();
        if let Some(s) = value.strip_prefix('"') {
            let s = s.strip_suffix('"').ok_or("unterminated string")?;
            match key.as_str() {
                "task" => task = Some(s.to_string()),
                "algo" => algo = Some(s.to_string()),
                _ => {}
            }
        } else {
            let v: u64 = value
                .parse()
                .map_err(|_| format!("non-numeric value for {key:?}: {value:?}"))?;
            counters.insert(key, v);
        }
    }
    Ok(BenchRow {
        task: task.ok_or("row missing task")?,
        algo: algo.ok_or("row missing algo")?,
        n: counters.get("n").copied().unwrap_or(0),
        counters,
    })
}

/// Split a flat object body on commas that sit outside string literals.
fn split_fields(obj: &str) -> Vec<&str> {
    let mut fields = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, ch) in obj.char_indices() {
        match ch {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                fields.push(&obj[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < obj.len() {
        fields.push(&obj[start..]);
    }
    fields.retain(|f| !f.trim().is_empty());
    fields
}

fn find_string_field(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// One counter regression beyond the gate.
#[derive(Clone, Debug)]
pub struct Regression {
    pub row: String,
    pub counter: String,
    pub baseline: u64,
    pub fresh: u64,
}

/// Result of comparing a fresh artifact against its committed baseline.
#[derive(Clone, Debug, Default)]
pub struct DiffOutcome {
    /// Markdown comparison table (one line per baseline row).
    pub markdown: String,
    /// Gated counters that regressed by more than the threshold.
    pub regressions: Vec<Regression>,
    /// Baseline rows absent from the fresh artifact (coverage loss — also
    /// a failure).
    pub missing: Vec<String>,
    /// Fresh rows absent from the baseline (new coverage — fine; commit a
    /// new baseline to start gating them).
    pub added: Vec<String>,
}

/// Did `fresh` regress past the gate relative to `baseline`?
pub fn is_regression(baseline: u64, fresh: u64) -> bool {
    fresh > baseline.saturating_add(ABS_SLACK)
        && (fresh as f64) > (baseline as f64) * (1.0 + THRESHOLD)
}

fn pct(baseline: u64, fresh: u64) -> String {
    if baseline == 0 {
        return if fresh == 0 {
            "±0%".into()
        } else {
            "new".into()
        };
    }
    let d = 100.0 * (fresh as f64 - baseline as f64) / baseline as f64;
    format!("{d:+.1}%")
}

/// Compare two parsed artifacts row by row (keyed on task/algo/n) and
/// render the markdown table for `$GITHUB_STEP_SUMMARY`.
pub fn diff_benches(baseline: &BenchFile, fresh: &BenchFile) -> DiffOutcome {
    let mut out = DiffOutcome::default();
    let fresh_by_id: BTreeMap<String, &BenchRow> = fresh.rows.iter().map(|r| (r.id(), r)).collect();
    let base_ids: std::collections::BTreeSet<String> =
        baseline.rows.iter().map(|r| r.id()).collect();

    let mut md = String::new();
    md.push_str(&format!("### `{}`\n\n", baseline.bin));
    md.push_str("| row | work | span | cache misses | allocs | wall | status |\n");
    md.push_str("|---|---|---|---|---|---|---|\n");
    for brow in &baseline.rows {
        let id = brow.id();
        let Some(frow) = fresh_by_id.get(&id) else {
            md.push_str(&format!("| {id} | — | — | — | — | — | ❌ missing |\n"));
            out.missing.push(id);
            continue;
        };
        let mut row_regressed = false;
        for &counter in GATED {
            // A counter the baseline gates but the fresh artifact no
            // longer emits means the instrumentation broke — fail hard
            // rather than fail open on an implicit 0. (A counter absent
            // from the *baseline* is simply not gated yet: old artifacts
            // predate e.g. the `allocs` column.)
            match (brow.counters.get(counter), frow.counters.get(counter)) {
                (Some(&b), Some(&f)) => {
                    if is_regression(b, f) {
                        row_regressed = true;
                        out.regressions.push(Regression {
                            row: id.clone(),
                            counter: counter.to_string(),
                            baseline: b,
                            fresh: f,
                        });
                    }
                }
                (Some(_), None) => {
                    row_regressed = true;
                    out.missing.push(format!("{id} — counter {counter:?}"));
                }
                (None, _) => {}
            }
        }
        let cell = |name: &str| {
            let b = brow.counters.get(name).copied().unwrap_or(0);
            let f = frow.counters.get(name).copied().unwrap_or(0);
            format!("{f} ({})", pct(b, f))
        };
        md.push_str(&format!(
            "| {id} | {} | {} | {} | {} | {} | {} |\n",
            cell("work"),
            cell("span"),
            cell("cache_misses"),
            cell("allocs"),
            cell("wall_ns"),
            if row_regressed {
                "❌ regressed"
            } else {
                "✅"
            },
        ));
    }
    for frow in &fresh.rows {
        let id = frow.id();
        if !base_ids.contains(&id) {
            md.push_str(&format!("| {id} | — | — | — | — | — | 🆕 unbaselined |\n"));
            out.added.push(id);
        }
    }
    md.push('\n');
    out.markdown = md;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(work: u64, allocs: u64) -> String {
        format!(
            "{{\n  \"bin\": \"store\",\n  \"rows\": [\n    \
             {{\"task\": \"store\", \"algo\": \"merge path\", \"n\": 256, \"work\": {work}, \
             \"span\": 120, \"cache_misses\": 300, \"cache_accesses\": 900, \
             \"comparisons\": 50, \"moves\": 60, \"retries\": 0, \"allocs\": {allocs}, \
             \"m_words\": 32768, \"b_words\": 8, \"wall_ns\": 1234}}\n  ]\n}}\n"
        )
    }

    #[test]
    fn parses_the_sink_shape() {
        let f = parse_bench_json(&sample(1000, 4)).unwrap();
        assert_eq!(f.bin, "store");
        assert_eq!(f.rows.len(), 1);
        let r = &f.rows[0];
        assert_eq!(
            (r.task.as_str(), r.algo.as_str(), r.n),
            ("store", "merge path", 256)
        );
        assert_eq!(r.counters["work"], 1000);
        assert_eq!(r.counters["allocs"], 4);
    }

    #[test]
    fn parses_artifacts_without_the_allocs_field() {
        // Pre-allocs artifacts (older baselines) must still parse; the
        // missing counter reads as 0.
        let text = sample(10, 0).replace("\"allocs\": 0, ", "");
        let f = parse_bench_json(&text).unwrap();
        assert_eq!(f.rows[0].counters.get("allocs"), None);
    }

    #[test]
    fn identical_files_pass() {
        let f = parse_bench_json(&sample(1000, 4)).unwrap();
        let d = diff_benches(&f, &f);
        assert!(d.regressions.is_empty() && d.missing.is_empty() && d.added.is_empty());
        assert!(d.markdown.contains("✅"));
    }

    #[test]
    fn ten_percent_gate_trips_on_work_and_allocs() {
        let base = parse_bench_json(&sample(1000, 100)).unwrap();
        let ok = parse_bench_json(&sample(1090, 100)).unwrap();
        assert!(diff_benches(&base, &ok).regressions.is_empty());
        let bad = parse_bench_json(&sample(1200, 100)).unwrap();
        let d = diff_benches(&base, &bad);
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.regressions[0].counter, "work");
        let bad_allocs = parse_bench_json(&sample(1000, 150)).unwrap();
        assert_eq!(
            diff_benches(&base, &bad_allocs).regressions[0].counter,
            "allocs"
        );
    }

    #[test]
    fn gated_counter_vanishing_from_fresh_fails_hard() {
        // Fresh artifact stopped emitting a gated counter (instrumentation
        // broke): must fail, not read as 0 and pass.
        let base = parse_bench_json(&sample(1000, 4)).unwrap();
        let fresh =
            parse_bench_json(&sample(1000, 4).replace("\"comparisons\": 50, ", "")).unwrap();
        let d = diff_benches(&base, &fresh);
        assert_eq!(d.missing.len(), 1);
        assert!(d.missing[0].contains("comparisons"), "{:?}", d.missing);
        // The converse — a counter the baseline predates — is fine.
        let old_base = parse_bench_json(&sample(1000, 0).replace("\"allocs\": 0, ", "")).unwrap();
        let new_fresh = parse_bench_json(&sample(1000, 4)).unwrap();
        let d = diff_benches(&old_base, &new_fresh);
        assert!(d.missing.is_empty() && d.regressions.is_empty());
    }

    #[test]
    fn absolute_slack_spares_tiny_counters() {
        assert!(!is_regression(0, 8));
        assert!(is_regression(0, 9));
        assert!(!is_regression(4, 8));
        assert!(is_regression(100, 120));
        assert!(!is_regression(100, 108));
    }

    #[test]
    fn missing_rows_fail_and_new_rows_inform() {
        let base = parse_bench_json(&sample(1000, 4)).unwrap();
        let mut fresh = base.clone();
        fresh.rows[0].n = 512; // same row measured at a different size
        let d = diff_benches(&base, &fresh);
        assert_eq!(d.missing.len(), 1);
        assert_eq!(d.added.len(), 1);
        assert!(d.markdown.contains("❌ missing"));
        assert!(d.markdown.contains("🆕 unbaselined"));
    }

    #[test]
    fn wall_clock_is_reported_but_never_gated() {
        let base = parse_bench_json(&sample(1000, 4)).unwrap();
        let noisy = parse_bench_json(&sample(1000, 4).replace("1234", "999999")).unwrap();
        assert!(diff_benches(&base, &noisy).regressions.is_empty());
    }
}
