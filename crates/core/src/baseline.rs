//! Insecure baseline: classic parallel mergesort (CLRS ch. 27 style).
//!
//! Stands in for SPMS \[CR17b\] as the comparison-based, non-oblivious sorter
//! (see DESIGN.md §4): optimal `O(n log n)` work, polylog span (`O(log³ n)`
//! vs SPMS's `Õ(log n)`), and `O((n/B)·log(n/M))` cache complexity. Every
//! oblivious-vs-insecure comparison in the benches uses the same substitute
//! on both sides, so the paper's headline shape — privacy at matching
//! asymptotics — is preserved.

use crate::slot::{Item, Val};
use fj::{counters, Ctx};
use metrics::Tracked;

const SORT_BASE: usize = 64;
const MERGE_BASE: usize = 64;

/// Sort `items` ascending by key with parallel mergesort.
pub fn par_merge_sort<C: Ctx, V: Val>(c: &C, items: &mut [Item<V>]) {
    let n = items.len();
    if n <= 1 {
        return;
    }
    c.count(counters::SORTS, 1);
    let mut scratch = vec![Item::<V>::default(); n];
    let t = Tracked::new(c, items);
    let s = Tracked::new(c, &mut scratch);
    msort(c, t, s, false);
}

/// Sort the data in `a`; leave the result in `b` if `to_b`, else in `a`.
fn msort<'x, C: Ctx, V: Val>(
    c: &C,
    mut a: Tracked<'x, Item<V>>,
    mut b: Tracked<'x, Item<V>>,
    to_b: bool,
) {
    let n = a.len();
    if n <= SORT_BASE {
        // Leaf: local insertion-style sort through tracked accesses.
        for i in 1..n {
            let x = a.get(c, i);
            let mut j = i;
            while j > 0 {
                let y = a.get(c, j - 1);
                c.count(counters::COMPARISONS, 1);
                c.work(1);
                if y.key <= x.key {
                    break;
                }
                a.set(c, j, y);
                j -= 1;
            }
            a.set(c, j, x);
        }
        if to_b {
            let ar = a.as_raw();
            let br = b.as_raw();
            // SAFETY: leaf owns both ranges exclusively.
            unsafe { br.copy_from(c, &ar, 0, 0, n) };
        }
        return;
    }
    let half = n / 2;
    {
        let (a_lo, a_hi) = a.split_at_mut(half);
        let (b_lo, b_hi) = b.split_at_mut(half);
        c.join(
            move |c| msort(c, a_lo, b_lo, !to_b),
            move |c| msort(c, a_hi, b_hi, !to_b),
        );
    }
    // Children left their results in the buffer opposite the target.
    if to_b {
        let (a_lo, a_hi) = a.split_at_mut(half);
        par_merge(c, a_lo, a_hi, b);
    } else {
        let (b_lo, b_hi) = b.split_at_mut(half);
        par_merge(c, b_lo, b_hi, a);
    }
}

/// Merge sorted `x` and `y` into `dst` (parallel divide and conquer).
fn par_merge<'x, C: Ctx, V: Val>(
    c: &C,
    mut x: Tracked<'x, Item<V>>,
    mut y: Tracked<'x, Item<V>>,
    mut dst: Tracked<'x, Item<V>>,
) {
    debug_assert_eq!(x.len() + y.len(), dst.len());
    if x.len() + y.len() <= MERGE_BASE {
        let (mut i, mut j) = (0, 0);
        for k in 0..dst.len() {
            let take_x = if i == x.len() {
                false
            } else if j == y.len() {
                true
            } else {
                c.count(counters::COMPARISONS, 1);
                c.work(1);
                x.get(c, i).key <= y.get(c, j).key
            };
            if take_x {
                dst.set(c, k, x.get(c, i));
                i += 1;
            } else {
                dst.set(c, k, y.get(c, j));
                j += 1;
            }
        }
        return;
    }
    if x.len() < y.len() {
        std::mem::swap(&mut x, &mut y);
    }
    let i = x.len() / 2;
    let pivot = x.get(c, i).key;
    // First position in y with key >= pivot.
    let mut lo = 0;
    let mut hi = y.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        c.count(counters::COMPARISONS, 1);
        c.work(1);
        if y.get(c, mid).key < pivot {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    let j = lo;
    let (x_lo, x_hi) = x.split_at_mut(i);
    let (y_lo, y_hi) = y.split_at_mut(j);
    let (d_lo, d_hi) = dst.split_at_mut(i + j);
    c.join(
        move |c| par_merge(c, x_lo, y_lo, d_lo),
        move |c| par_merge(c, x_hi, y_hi, d_hi),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj::{Pool, SeqCtx};
    use metrics::{measure, CacheConfig, TraceMode};
    use proptest::prelude::*;

    fn items_from(keys: &[u64]) -> Vec<Item<u64>> {
        keys.iter().map(|&k| Item::new(k as u128, k)).collect()
    }

    #[test]
    fn sorts_various_sizes() {
        let c = SeqCtx::new();
        for n in [0usize, 1, 2, 63, 64, 65, 1000, 10_000] {
            let keys: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(48271) % 65537)
                .collect();
            let mut items = items_from(&keys);
            par_merge_sort(&c, &mut items);
            assert!(items.windows(2).all(|w| w[0].key <= w[1].key), "n = {n}");
        }
    }

    #[test]
    fn parallel_matches() {
        let pool = Pool::new(4);
        let keys: Vec<u64> = (0..50_000u64).map(|i| i.wrapping_mul(2654435761)).collect();
        let mut items = items_from(&keys);
        pool.run(|c| par_merge_sort(c, &mut items));
        assert!(items.windows(2).all(|w| w[0].key <= w[1].key));
    }

    #[test]
    fn work_is_n_log_n() {
        let n = 1 << 14;
        let (_, rep) = measure(CacheConfig::default(), TraceMode::Off, |c| {
            let keys: Vec<u64> = (0..n as u64).rev().collect();
            let mut items = items_from(&keys);
            par_merge_sort(c, &mut items);
        });
        let nlogn = (n as f64) * (n as f64).log2();
        assert!(
            (rep.comparisons as f64) < 3.0 * nlogn,
            "comparisons {}",
            rep.comparisons
        );
        assert!((rep.work as f64) < 40.0 * nlogn, "work {}", rep.work);
    }

    proptest! {
        #[test]
        fn prop_sorts(keys in proptest::collection::vec(any::<u64>(), 0..500)) {
            let c = SeqCtx::new();
            let mut items = items_from(&keys);
            par_merge_sort(&c, &mut items);
            let mut expect = keys;
            expect.sort_unstable();
            let got: Vec<u64> = items.iter().map(|i| i.val).collect();
            prop_assert_eq!(got, expect);
        }
    }
}
