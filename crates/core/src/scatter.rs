//! Padded multi-way oblivious scatter — the §F routing step as a
//! reusable kernel.
//!
//! Functionality: given up to `nbins · Z` slots whose real elements carry
//! a destination bin in `label` (`0..nbins`), produce the concatenation of
//! `nbins` bins of exactly `Z` slots, with every real element in its bin,
//! reals packed in front, and fillers padding each bin to `Z`. Unlike
//! [`crate::bin_place`], the placement is **stable**: within a bin, reals
//! appear in ascending `item.key` order (callers use the input position as
//! the key), which is what lets `dob-store` route operations to shards
//! while preserving submission order — the sequential within-epoch
//! semantics of its merge path depend on it.
//!
//! The algorithm is the Chan–Shi bin-placement pattern (§C.1) with
//! order-carrying sort keys: append `Z` temp placeholders per bin, sort by
//! `(bin, real-before-temp, item.key)`, compute each element's offset in
//! its bin via oblivious propagation, tag offsets `≥ Z` as excess, sort
//! again moving excess/fillers to the end, truncate. Every step is an
//! oblivious sort, a fixed-pattern scan, or a parallel map, so the
//! adversary trace is a function of `(|items|, nbins, Z)` only — in
//! particular it does not depend on how full each bin is (the send-receive
//! routing guarantee of §F).
//!
//! A real element tagged excess means some bin was wanted by more than `Z`
//! elements. The pass still completes with its fixed trace and reports
//! [`OblivError::BinOverflow`]; callers either provision `Z` so overflow
//! is impossible (`Z ≥ |items|`) or treat the retry-with-larger-`Z` as a
//! deliberate public signal (see `dob-store`'s routing fallback).

use crate::binplace::set_keys;
use crate::engine::Engine;
use crate::error::{OblivError, Result};
use crate::scan::{seg_propagate_in, Schedule, Seg};
use crate::slot::{flags, Slot, Val};
use fj::{grain_for, par_for, Ctx};
use metrics::{ScratchPool, Tracked};

/// Bin id used for ordering; fillers get the past-the-end bin.
#[inline]
fn bin_of<V: Val>(s: &Slot<V>, nbins: u64) -> u64 {
    if s.is_filler() {
        nbins
    } else {
        s.label & (nbins - 1)
    }
}

/// Sort key `(bin ‖ real-before-temp ‖ stable tiebreak)`, fillers last.
/// The tiebreak is the low 64 bits of `item.key`, so reals keep their
/// caller-assigned order within a bin; temps carry tiebreak 0 but sort
/// after every real of their bin via the class bit.
#[inline]
fn key_stable<V: Val>(s: &Slot<V>, nbins: u64) -> u128 {
    if s.is_excess() {
        u128::MAX - 1
    } else if s.is_filler() {
        u128::MAX
    } else {
        let tb = if s.is_temp() { 0 } else { s.item.key as u64 };
        ((bin_of(s, nbins) as u128) << 65) | ((s.is_temp() as u128) << 64) | tb as u128
    }
}

/// Padded multi-way oblivious scatter over `items` (at most `nbins · zcap`
/// slots; `nbins` and `zcap` powers of two). Returns the `nbins · zcap`
/// output array: bin `g` occupies `[g·zcap, (g+1)·zcap)`, reals first in
/// ascending `item.key` order, fillers after.
pub fn oblivious_scatter<C: Ctx, V: Val>(
    c: &C,
    scratch: &ScratchPool,
    items: &[Slot<V>],
    nbins: usize,
    zcap: usize,
    engine: Engine,
) -> Result<Vec<Slot<V>>> {
    assert!(nbins.is_power_of_two() && zcap.is_power_of_two());
    let n_io = nbins * zcap;
    assert!(items.len() <= n_io, "scatter input exceeds nbins * zcap");
    let nb64 = nbins as u64;

    // Step 1: working array = items ++ filler pad ++ Z temps per bin.
    let mut w_store = scratch.lease(2 * n_io, Slot::<V>::filler());
    let mut w = Tracked::new(c, &mut w_store);
    {
        let wr = w.as_raw();
        par_for(c, 0, 2 * n_io, grain_for(c), &|c, i| unsafe {
            // `items.len()` is public; the branch selects what to write,
            // every slot is written exactly once.
            let s = if i < items.len() {
                items[i]
            } else if i < n_io {
                Slot::filler()
            } else {
                Slot::temp(((i - n_io) / zcap) as u64)
            };
            wr.set(c, i, s);
        });
    }

    // Step 2: stable sort by (bin, real-before-temp, caller order).
    set_keys(c, &mut w, &|s| key_stable(s, nb64));
    engine.sort_slots(c, scratch, &mut w);

    // Step 3: offset within bin via propagation of the leftmost index,
    // then tag offsets ≥ Z as excess. Overflow iff a *real* slot is excess.
    let mut seg_store = scratch.lease(2 * n_io, Seg::new(false, 0u64));
    let mut seg = Tracked::new(c, &mut seg_store);
    {
        let sr = seg.as_raw();
        let wr = w.as_raw();
        par_for(c, 0, 2 * n_io, grain_for(c), &|c, i| unsafe {
            let g = bin_of(&wr.get(c, i), nb64);
            let head = if i == 0 {
                true
            } else {
                g != bin_of(&wr.get(c, i - 1), nb64)
            };
            sr.set(c, i, Seg::new(head, i as u64));
        });
    }
    seg_propagate_in(c, scratch, &mut seg, Schedule::Tree);
    let overflow = {
        let sr = seg.as_raw();
        let wr = w.as_raw();
        fj::par_reduce(
            c,
            0,
            2 * n_io,
            grain_for(c),
            &|c, i| unsafe {
                let start = sr.get(c, i).v;
                let mut s = wr.get(c, i);
                let excess = (i as u64 - start) >= zcap as u64;
                s.flags |= flags::EXCESS * excess as u8;
                wr.set(c, i, s);
                s.is_real() && excess
            },
            &|a, b| a | b,
        )
        .unwrap_or(false)
    };

    // Step 4: sort survivors back by (bin, class, caller order); excess and
    // fillers to the end. `key_stable` already routes them there.
    set_keys(c, &mut w, &|s| key_stable(s, nb64));
    engine.sort_slots(c, scratch, &mut w);

    // Steps 5–6: truncate to nbins·Z, convert temps to fillers, clear tags.
    let out = {
        let wr = w.as_raw();
        metrics::par_collect(c, n_io, &|c, i| {
            // SAFETY: read-only phase.
            let s = unsafe { wr.get(c, i) };
            if s.is_real() && !s.is_excess() {
                Slot { sk: 0, ..s }
            } else {
                Slot::filler()
            }
        })
    };

    if overflow {
        Err(OblivError::BinOverflow)
    } else {
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slot::Item;
    use fj::{Pool, SeqCtx};
    use metrics::{measure, CacheConfig, TraceMode};

    /// Slots for the given (bin, value) pairs, keyed by input position.
    fn input(elems: &[(u64, u64)]) -> Vec<Slot<u64>> {
        elems
            .iter()
            .enumerate()
            .map(|(i, &(g, v))| Slot::real(Item::new(i as u128, v), g))
            .collect()
    }

    fn run(nbins: usize, zcap: usize, elems: &[(u64, u64)]) -> Result<Vec<Slot<u64>>> {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        oblivious_scatter(&c, &sp, &input(elems), nbins, zcap, Engine::BitonicRec)
    }

    #[test]
    fn routes_to_bins_preserving_input_order() {
        let elems: Vec<(u64, u64)> = vec![(3, 30), (1, 10), (0, 100), (1, 11), (1, 12), (0, 101)];
        let out = run(4, 4, &elems).unwrap();
        let bin = |b: usize| -> Vec<u64> {
            out[b * 4..(b + 1) * 4]
                .iter()
                .filter(|s| s.is_real())
                .map(|s| s.item.val)
                .collect()
        };
        // Within each bin, values appear in submission order — not sorted,
        // not shuffled.
        assert_eq!(bin(0), vec![100, 101]);
        assert_eq!(bin(1), vec![10, 11, 12]);
        assert_eq!(bin(2), Vec::<u64>::new());
        assert_eq!(bin(3), vec![30]);
        // Reals packed before fillers in every bin.
        for b in 0..4 {
            let slots = &out[b * 4..(b + 1) * 4];
            let first_filler = slots.iter().position(|s| !s.is_real()).unwrap_or(4);
            assert!(slots[first_filler..].iter().all(|s| s.is_filler()));
        }
    }

    #[test]
    fn fillers_in_input_consume_no_capacity() {
        // 4 reals for bin 0 (exactly Z) plus interleaved fillers: fits.
        let mut items = input(&[(0, 1), (0, 2), (0, 3), (0, 4)]);
        items.insert(1, Slot::filler());
        items.push(Slot::filler());
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let out = oblivious_scatter(&c, &sp, &items, 2, 4, Engine::BitonicRec).unwrap();
        let vals: Vec<u64> = out[0..4].iter().map(|s| s.item.val).collect();
        assert_eq!(vals, vec![1, 2, 3, 4]);
    }

    #[test]
    fn overflow_is_detected() {
        let elems: Vec<(u64, u64)> = (0..5).map(|v| (0, v)).collect();
        assert_eq!(run(2, 4, &elems).unwrap_err(), OblivError::BinOverflow);
    }

    #[test]
    fn zcap_equal_to_input_len_never_overflows() {
        // All elements to one bin with Z = |items|: the safe provisioning.
        let elems: Vec<(u64, u64)> = (0..8).map(|v| (3, v)).collect();
        let out = run(4, 8, &elems).unwrap();
        let vals: Vec<u64> = out[24..32]
            .iter()
            .filter(|s| s.is_real())
            .map(|s| s.item.val)
            .collect();
        assert_eq!(vals, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn no_temps_or_excess_survive() {
        let out = run(4, 4, &[(0, 1), (3, 2)]).unwrap();
        assert!(out.iter().all(|s| !s.is_temp() && !s.is_excess()));
        assert_eq!(out.iter().filter(|s| s.is_real()).count(), 2);
    }

    #[test]
    fn parallel_matches_sequential() {
        let elems: Vec<(u64, u64)> = (0..300).map(|v| (v % 8, v * 7)).collect();
        let seq = run(8, 64, &elems).unwrap();
        let pool = Pool::new(4);
        let sp = ScratchPool::new();
        let par = pool
            .run(|c| oblivious_scatter(c, &sp, &input(&elems), 8, 64, Engine::BitonicRec))
            .unwrap();
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!((a.is_real(), a.item.val), (b.is_real(), b.item.val));
        }
    }

    #[test]
    fn trace_is_input_independent() {
        let run_trace = |elems: Vec<(u64, u64)>, n_items: usize| {
            let (_, rep) = measure(CacheConfig::default(), TraceMode::Hash, |c| {
                let sp = ScratchPool::new();
                let mut items = input(&elems);
                items.resize(n_items, Slot::filler());
                let _ = oblivious_scatter(c, &sp, &items, 8, 8, Engine::BitonicRec);
            });
            (rep.trace_hash, rep.trace_len)
        };
        let spread = run_trace((0..32).map(|i| (i % 8, i)).collect(), 32);
        let skewed = run_trace((0..32).map(|i| (0, i * 3)).collect(), 32);
        let sparse = run_trace(vec![(7, 1)], 32);
        assert_eq!(spread, skewed, "bin loads leaked into the scatter trace");
        assert_eq!(spread, sparse, "real count leaked into the scatter trace");
    }
}
