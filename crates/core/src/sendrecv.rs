//! Oblivious send-receive (§F) — "oblivious routing" elsewhere in the
//! literature.
//!
//! `n` senders hold `(key, value)` with distinct keys; `n'` receivers each
//! request a key and must learn the matching value, or `⊥` if absent.
//! Realized with O(1) oblivious sorts plus one oblivious propagation
//! (Chan–Shi): concatenate senders and receivers, sort by (key,
//! sender-first), propagate each key-run's head (which is the sender if one
//! exists), let receivers compare the propagated key against their own, and
//! sort receivers back to input order. All steps are networks/scans, so the
//! access pattern depends only on `(n, n')`.

use crate::binplace::set_keys;
use crate::engine::Engine;
use crate::scan::{seg_propagate_in, Schedule, Seg};
use crate::slot::{Item, Slot, Val};
use fj::{grain_for, par_for, Ctx};
use metrics::{ScratchPool, Tracked};

/// Record carried through the routing network.
#[derive(Clone, Copy, Debug, Default)]
struct Route<V> {
    key: u64,
    val: V,
    /// Receiver's input position (senders: undefined).
    idx: u64,
    /// 0 = sender, 1 = receiver.
    tag: u8,
    /// Receiver result flag.
    found: bool,
}

/// Value propagated along each key-run.
#[derive(Clone, Copy, Debug, Default)]
struct Head<V> {
    key: u64,
    is_sender: bool,
    val: V,
}

/// Oblivious send-receive: `out[j] = Some(value of the sender with key
/// dests[j])`, or `None` if no such sender. Sender keys must be distinct.
///
/// With the network engines this costs one/two `O(m log² m)` sorts on
/// `m = |sources| + |dests|`; plugged into the full oblivious sort it meets
/// the paper's `O(m log m)`-work sorting bound (Table 2 row "S-R").
pub fn send_receive<C: Ctx, V: Val>(
    c: &C,
    scratch: &ScratchPool,
    sources: &[(u64, V)],
    dests: &[u64],
    engine: Engine,
    sched: Schedule,
) -> Vec<Option<V>> {
    let total = sources.len() + dests.len();
    if dests.is_empty() {
        return Vec::new();
    }
    let m = total.next_power_of_two();

    // Build the combined slot array (filler-filled lease, prefix rewritten).
    let mut slots = scratch.lease(m, Slot::<Route<V>>::filler());
    for (slot, &(k, v)) in slots.iter_mut().zip(sources.iter()) {
        let r = Route {
            key: k,
            val: v,
            idx: 0,
            tag: 0,
            found: false,
        };
        *slot = Slot::real(Item::new(0, r), k);
    }
    for (slot, (j, &k)) in slots[sources.len()..]
        .iter_mut()
        .zip(dests.iter().enumerate())
    {
        let r = Route {
            key: k,
            val: V::default(),
            idx: j as u64,
            tag: 1,
            found: false,
        };
        *slot = Slot::real(Item::new(0, r), k);
    }
    c.charge_par(total as u64);

    let mut t = Tracked::new(c, &mut slots);

    // Sort by (key, sender-before-receiver); fillers last.
    set_keys(c, &mut t, &|s: &Slot<Route<V>>| {
        if s.is_real() {
            ((s.item.val.key as u128) << 1) | s.item.val.tag as u128
        } else {
            u128::MAX
        }
    });
    engine.sort_slots(c, scratch, &mut t);

    // Propagate each key-run's head to the whole run.
    let mut seg_store = scratch.lease(m, Seg::<Head<V>>::default());
    let mut seg = Tracked::new(c, &mut seg_store);
    {
        let sr = seg.as_raw();
        let tr = t.as_raw();
        par_for(c, 0, m, grain_for(c), &|c, i| unsafe {
            let s = tr.get(c, i);
            let head = if i == 0 {
                true
            } else {
                let prev = tr.get(c, i - 1);
                c.work(1);
                prev.is_filler() != s.is_filler() || prev.item.val.key != s.item.val.key
            };
            let h = Head {
                key: s.item.val.key,
                is_sender: s.is_real() && s.item.val.tag == 0,
                val: s.item.val.val,
            };
            sr.set(c, i, Seg::new(head, h));
        });
    }
    seg_propagate_in(c, scratch, &mut seg, sched);

    // Receivers compare the propagated head against their own key.
    {
        let sr = seg.as_raw();
        let tr = t.as_raw();
        par_for(c, 0, m, grain_for(c), &|c, i| unsafe {
            let mut s = tr.get(c, i);
            let h = sr.get(c, i).v;
            let hit = s.is_real() && s.item.val.tag == 1 && h.is_sender && h.key == s.item.val.key;
            // Unconditional writes keep the pattern fixed.
            s.item.val.found = hit;
            s.item.val.val = if hit { h.val } else { s.item.val.val };
            tr.set(c, i, s);
        });
    }

    // Sort receivers back to input order; everything else to the end.
    set_keys(c, &mut t, &|s: &Slot<Route<V>>| {
        if s.is_real() && s.item.val.tag == 1 {
            s.item.val.idx as u128
        } else {
            u128::MAX
        }
    });
    engine.sort_slots(c, scratch, &mut t);

    // Parallel readout (keeps the span at O(log n)).
    let tr = t.as_raw();
    metrics::par_collect(c, dests.len(), &|c, j| {
        // SAFETY: read-only phase.
        let s = unsafe { tr.get(c, j) };
        debug_assert_eq!(s.item.val.idx as usize, j);
        if s.item.val.found {
            OptSlot {
                some: true,
                v: s.item.val.val,
            }
        } else {
            OptSlot::default()
        }
    })
    .into_iter()
    .map(|o| o.some.then_some(o.v))
    .collect()
}

/// `Option<V>` flattened to a `Copy + Default` pair for parallel collection.
#[derive(Clone, Copy, Default)]
struct OptSlot<V> {
    some: bool,
    v: V,
}

/// [`send_receive`] specialized to `u64` values on packed [`TagCell`](crate::TagCell)s —
/// the tag-sort fast path for the routing step that dominates the graph
/// and PRAM kernels.
///
/// Identical phase structure and head-propagation as the generic path, but
/// both sorts move 32-byte cells instead of ~96-byte `Slot<Route<u64>>`
/// records. Packing (all lanes are functions of public position or ride
/// the network unread):
///
/// * phase 1 — `tag = key·2 + (0 sender | 1 receiver)`, fillers
///   `u128::MAX`; `aux = value` (senders) or input position (receivers);
/// * phase 2 — one fixed pass re-tags receivers by input position while
///   folding the propagated hit into `aux = found·2⁶⁴ | value`.
///
/// Equal phase-1 tags only arise between receivers requesting the same
/// key; the phase-2 position sort makes their order canonical again, so
/// the unstable cell network is safe here for the same reason it is in the
/// generic path.
pub fn send_receive_u64<C: Ctx>(
    c: &C,
    scratch: &ScratchPool,
    sources: &[(u64, u64)],
    dests: &[u64],
    engine: Engine,
    sched: Schedule,
) -> Vec<Option<u64>> {
    use sortnet::TagCell;

    let total = sources.len() + dests.len();
    if dests.is_empty() {
        return Vec::new();
    }
    let m = total.next_power_of_two();

    let mut cells = scratch.lease(m, TagCell::filler());
    for (cell, &(k, v)) in cells.iter_mut().zip(sources.iter()) {
        *cell = TagCell::new((k as u128) << 1, v as u128);
    }
    for (cell, (j, &k)) in cells[sources.len()..]
        .iter_mut()
        .zip(dests.iter().enumerate())
    {
        *cell = TagCell::new(((k as u128) << 1) | 1, j as u128);
    }
    c.charge_par(total as u64);

    let mut t = Tracked::new(c, &mut cells);

    // Sort by (key, sender-before-receiver); fillers last.
    engine.sort_cells(c, scratch, &mut t);

    // Propagate each key-run's head to the whole run.
    let mut seg_store = scratch.lease(m, Seg::<Head<u64>>::default());
    let mut seg = Tracked::new(c, &mut seg_store);
    {
        let sr = seg.as_raw();
        let tr = t.as_raw();
        par_for(c, 0, m, grain_for(c), &|c, i| unsafe {
            let s = tr.get(c, i);
            let head = if i == 0 {
                true
            } else {
                let prev = tr.get(c, i - 1);
                c.work(1);
                prev.tag >> 1 != s.tag >> 1
            };
            let h = Head {
                key: (s.tag >> 1) as u64,
                is_sender: !s.is_filler() && s.tag & 1 == 0,
                val: s.aux as u64,
            };
            sr.set(c, i, Seg::new(head, h));
        });
    }
    seg_propagate_in(c, scratch, &mut seg, sched);

    // One fixed pass: receivers compare the propagated head against their
    // own key, fold the outcome into `aux`, and move their input position
    // into the tag for the order-restoring sort. Writes are unconditional;
    // only the selected *values* depend on the data.
    {
        let sr = seg.as_raw();
        let tr = t.as_raw();
        par_for(c, 0, m, grain_for(c), &|c, i| unsafe {
            let s = tr.get(c, i);
            let h = sr.get(c, i).v;
            let is_recv = !s.is_filler() && s.tag & 1 == 1;
            let hit = is_recv && h.is_sender && (h.key as u128) == s.tag >> 1;
            let tag = if is_recv { s.aux } else { u128::MAX };
            let aux = ((hit as u128) << 64) | if hit { h.val as u128 } else { 0 };
            tr.set(c, i, TagCell::new(tag, aux));
        });
    }

    // Sort receivers back to input order; everything else to the end.
    engine.sort_cells(c, scratch, &mut t);

    // Parallel readout (keeps the span at O(log n)).
    let tr = t.as_raw();
    metrics::par_collect(c, dests.len(), &|c, j| {
        // SAFETY: read-only phase.
        let s = unsafe { tr.get(c, j) };
        debug_assert_eq!(s.tag, j as u128);
        OptSlot {
            some: s.aux >> 64 != 0,
            v: s.aux as u64,
        }
    })
    .into_iter()
    .map(|o| o.some.then_some(o.v))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj::{Pool, SeqCtx};
    use metrics::{measure, CacheConfig, TraceMode};
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn run_sr(sources: &[(u64, u64)], dests: &[u64]) -> Vec<Option<u64>> {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        send_receive(&c, &sp, sources, dests, Engine::BitonicRec, Schedule::Tree)
    }

    #[test]
    fn routes_values_to_receivers() {
        let sources = vec![(10, 100u64), (20, 200), (30, 300)];
        let dests = vec![20, 10, 99, 30, 20];
        assert_eq!(
            run_sr(&sources, &dests),
            vec![Some(200), Some(100), None, Some(300), Some(200)]
        );
    }

    #[test]
    fn one_sender_many_receivers() {
        let sources = vec![(5, 55u64)];
        let dests = vec![5; 20];
        assert_eq!(run_sr(&sources, &dests), vec![Some(55); 20]);
    }

    #[test]
    fn empty_sources_yield_all_bottom() {
        assert_eq!(run_sr(&[], &[1, 2, 3]), vec![None, None, None]);
    }

    #[test]
    fn empty_dests_yield_empty() {
        assert_eq!(run_sr(&[(1, 2)], &[]), vec![]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let pool = Pool::new(4);
        let sources: Vec<(u64, u64)> = (0..500).map(|i| (i * 3, i)).collect();
        let dests: Vec<u64> = (0..800).map(|j| (j * 7) % 1600).collect();
        let seq = run_sr(&sources, &dests);
        let sp = ScratchPool::new();
        let par = pool
            .run(|c| send_receive(c, &sp, &sources, &dests, Engine::BitonicRec, Schedule::Tree));
        assert_eq!(seq, par);
    }

    #[test]
    fn trace_is_input_independent() {
        let run = |sources: Vec<(u64, u64)>, dests: Vec<u64>| {
            let (_, rep) = measure(CacheConfig::default(), TraceMode::Hash, |c| {
                let sp = ScratchPool::new();
                send_receive(c, &sp, &sources, &dests, Engine::BitonicRec, Schedule::Tree);
            });
            (rep.trace_hash, rep.trace_len)
        };
        let a = run((0..100).map(|i| (i, i)).collect(), (0..50).collect());
        let b = run(
            (0..100).map(|i| (i * 97, i + 4)).collect(),
            (0..50).map(|j| j * 13).collect(),
        );
        assert_eq!(a, b, "send-receive must not leak keys through its trace");
    }

    #[test]
    fn cell_path_matches_generic_path() {
        let sources: Vec<(u64, u64)> = (0..300).map(|i| (i * 5 + 1, i * i)).collect();
        let dests: Vec<u64> = (0..450).map(|j| (j * 11) % 1700).collect();
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let generic = send_receive(
            &c,
            &sp,
            &sources,
            &dests,
            Engine::BitonicRec,
            Schedule::Tree,
        );
        let cells = send_receive_u64(
            &c,
            &sp,
            &sources,
            &dests,
            Engine::BitonicRec,
            Schedule::Tree,
        );
        assert_eq!(generic, cells);
    }

    #[test]
    fn cell_path_duplicate_receivers_and_missing_keys() {
        let sources = vec![(10, 100u64), (u64::MAX, 7)];
        let dests = vec![10, 10, 3, u64::MAX, 10];
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let got = send_receive_u64(
            &c,
            &sp,
            &sources,
            &dests,
            Engine::BitonicRec,
            Schedule::Tree,
        );
        assert_eq!(got, vec![Some(100), Some(100), None, Some(7), Some(100)]);
    }

    #[test]
    fn cell_path_trace_is_input_independent() {
        let run = |sources: Vec<(u64, u64)>, dests: Vec<u64>| {
            let (_, rep) = measure(CacheConfig::default(), TraceMode::Hash, |c| {
                let sp = ScratchPool::new();
                send_receive_u64(c, &sp, &sources, &dests, Engine::BitonicRec, Schedule::Tree);
            });
            (rep.trace_hash, rep.trace_len)
        };
        let a = run((0..100).map(|i| (i, i)).collect(), (0..50).collect());
        let b = run(
            (0..100).map(|i| (i * 97, i + 4)).collect(),
            (0..50).map(|j| j * 13).collect(),
        );
        assert_eq!(a, b, "cell send-receive must not leak keys via its trace");
    }

    #[test]
    fn cell_path_parallel_matches_sequential() {
        let pool = Pool::pinned(4);
        let sources: Vec<(u64, u64)> = (0..500).map(|i| (i * 3, i)).collect();
        let dests: Vec<u64> = (0..800).map(|j| (j * 7) % 1600).collect();
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let seq = send_receive_u64(
            &c,
            &sp,
            &sources,
            &dests,
            Engine::BitonicRec,
            Schedule::Tree,
        );
        let sp2 = ScratchPool::new();
        let par = pool.run(|c| {
            send_receive_u64(
                c,
                &sp2,
                &sources,
                &dests,
                Engine::BitonicRec,
                Schedule::Tree,
            )
        });
        assert_eq!(seq, par);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_cell_path_matches_hashmap_semantics(
            src_keys in proptest::collection::hash_set(0u64..500, 0..40),
            dests in proptest::collection::vec(0u64..500, 0..60),
        ) {
            let sources: Vec<(u64, u64)> =
                src_keys.iter().map(|&k| (k, k.wrapping_mul(31))).collect();
            let map: HashMap<u64, u64> = sources.iter().copied().collect();
            let c = SeqCtx::new();
            let sp = ScratchPool::new();
            let got = send_receive_u64(&c, &sp, &sources, &dests, Engine::BitonicRec, Schedule::Tree);
            let expect: Vec<Option<u64>> = dests.iter().map(|k| map.get(k).copied()).collect();
            prop_assert_eq!(got, expect);
        }

        #[test]
        fn prop_matches_hashmap_semantics(
            src_keys in proptest::collection::hash_set(0u64..500, 0..40),
            dests in proptest::collection::vec(0u64..500, 0..60),
        ) {
            let sources: Vec<(u64, u64)> =
                src_keys.iter().map(|&k| (k, k.wrapping_mul(31))).collect();
            let map: HashMap<u64, u64> = sources.iter().copied().collect();
            let got = run_sr(&sources, &dests);
            let expect: Vec<Option<u64>> = dests.iter().map(|k| map.get(k).copied()).collect();
            prop_assert_eq!(got, expect);
        }
    }
}
