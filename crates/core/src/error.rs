//! Failure events of the randomized oblivious algorithms.
//!
//! The paper's constructions are allowed a *negligible* failure probability
//! (o(1/n^k) for every k). Where the paper's functionality would silently
//! truncate (ORBA bin overflow) or mis-permute (label collision), this
//! implementation detects the event — with a fixed-pattern check, so
//! detection itself leaks nothing — and the caller retries with fresh
//! randomness. The number of retries is part of the public output
//! distribution, exactly like the failure event in the paper's definition.

use std::fmt;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OblivError {
    /// A bin received more real elements than its capacity `Z` during bin
    /// placement (§C.1 promise violated; probability exp(−Ω(log² n)) at
    /// the paper's parameters).
    BinOverflow,
    /// Two elements drew the same random permutation label (§C.3;
    /// probability ≤ n²/2⁶⁵ with 64-bit labels).
    LabelCollision,
    /// A REC-SORT bin exceeded its capacity (§E.2 overflow analysis).
    PivotOverflow,
}

impl fmt::Display for OblivError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OblivError::BinOverflow => write!(f, "ORBA bin overflow (retry with fresh labels)"),
            OblivError::LabelCollision => write!(f, "random permutation label collision"),
            OblivError::PivotOverflow => {
                write!(f, "REC-SORT bin overflow (retry with fresh pivots)")
            }
        }
    }
}

impl std::error::Error for OblivError {}

pub type Result<T> = std::result::Result<T, OblivError>;

/// Retry `attempt -> Result` with derived seeds until success, panicking
/// after `limit` consecutive failures (which at sane parameters indicates a
/// bug, not bad luck). Returns the value and the attempt count.
pub fn with_retries<T>(limit: u32, mut f: impl FnMut(u32) -> Result<T>) -> (T, u32) {
    for attempt in 0..limit {
        match f(attempt) {
            Ok(v) => return (v, attempt + 1),
            Err(_) if attempt + 1 < limit => continue,
            Err(e) => panic!("oblivious algorithm failed {limit} consecutive attempts: {e}"),
        }
    }
    unreachable!()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_retries_returns_attempt_count() {
        let (v, attempts) = with_retries(5, |a| {
            if a < 2 {
                Err(OblivError::BinOverflow)
            } else {
                Ok(a * 10)
            }
        });
        assert_eq!(v, 20);
        assert_eq!(attempts, 3);
    }

    #[test]
    #[should_panic(expected = "consecutive attempts")]
    fn with_retries_panics_at_limit() {
        with_retries::<()>(3, |_| Err(OblivError::LabelCollision));
    }
}
