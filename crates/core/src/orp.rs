//! Oblivious random permutation (§C.3, §D.2).
//!
//! ORBA followed by a per-bin shake-out: every slot (real or filler) draws
//! a fresh 64-bit label, fillers are forced to `u64::MAX`, each bin is
//! sorted by label with the oblivious engine, and the fillers are removed.
//! The final removal is allowed to be non-oblivious: the revealed per-bin
//! loads are simulatable from `(n, Z)` alone, as argued in
//! [CGLS18, ACN+20] (the loads are a balls-into-bins pattern independent of
//! the input *values*).
//!
//! Label collisions between reals in one bin would bias the permutation;
//! they are detected with a fixed-pattern scan and surface as
//! [`OblivError::LabelCollision`] (probability ≤ Z²·β/2⁶⁴ — negligible).

use crate::binplace::set_keys;
use crate::error::{with_retries, OblivError, Result};
use crate::rec_orba::{bins_for, rec_orba_into, OrbaParams};
use crate::scan::{prefix_sum_in, Schedule};
use crate::slot::{Item, Slot, Val};
use fj::{grain_for, par_for, Ctx};
use metrics::{par_tracked_chunks, ScratchPool, Tracked};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};

const PERM_SALT: u64 = 0x5bd1_e995_7b93_babd;

/// One attempt at an oblivious random permutation of `items`.
pub fn orp_once<C: Ctx, V: Val>(
    c: &C,
    scratch: &ScratchPool,
    items: &[Item<V>],
    p: OrbaParams,
    seed: u64,
) -> Result<Vec<Item<V>>> {
    let mut out = vec![Item::<V>::default(); items.len()];
    orp_once_into(c, scratch, items, p, seed, &mut out)?;
    Ok(out)
}

/// [`orp_once`] writing the permuted items into caller-provided storage
/// (typically a [`ScratchPool`] lease); every intermediate — the bin
/// layout, butterfly scratch, permutation labels, loads — is leased, so a
/// warm pool makes the whole attempt allocation-free.
pub fn orp_once_into<C: Ctx, V: Val>(
    c: &C,
    scratch: &ScratchPool,
    items: &[Item<V>],
    p: OrbaParams,
    seed: u64,
    out: &mut [Item<V>],
) -> Result<()> {
    assert_eq!(out.len(), items.len());
    let nbins = bins_for(items.len(), p.z);
    let z = p.z;
    let mut slots = scratch.lease(nbins * z, Slot::<V>::filler());
    rec_orba_into(c, scratch, items, p, seed, &mut slots)?;

    // Fresh permutation labels for every slot; the draw order is fixed, so
    // the stream depends only on (n, seed). Fillers are forced to MAX.
    let mut rng = StdRng::seed_from_u64(seed ^ PERM_SALT);
    let mut perm_labels = scratch.lease(nbins * z, 0u64);
    for l in perm_labels.iter_mut() {
        *l = rng.gen();
    }
    let mut t = Tracked::new(c, &mut slots);
    {
        let tr = t.as_raw();
        let perm_labels = &*perm_labels;
        par_for(c, 0, tr.len(), grain_for(c), &|c, i| unsafe {
            let mut s = tr.get(c, i);
            let lbl = if s.is_real() {
                perm_labels[i]
            } else {
                u64::MAX
            };
            s.label = lbl;
            tr.set(c, i, s);
        });
    }
    set_keys(c, &mut t, &|s: &Slot<V>| {
        if s.is_real() {
            s.label as u128
        } else {
            u128::MAX
        }
    });

    // Sort each bin by permutation label (fillers sink to the end).
    let engine = p.engine;
    par_tracked_chunks(c, t.borrow_mut(), z, &|c, _, mut bin| {
        engine.sort_slots(c, scratch, &mut bin);
    });

    // Detect label collisions among adjacent reals (fixed-pattern scan).
    let collision = AtomicBool::new(false);
    {
        let tr = t.as_raw();
        par_for(c, 0, tr.len(), grain_for(c), &|c, i| {
            if i % z == 0 {
                return;
            }
            // SAFETY: read-only phase.
            let (a, b) = unsafe { (tr.get(c, i - 1), tr.get(c, i)) };
            c.work(1);
            if a.is_real() && b.is_real() && a.label == b.label {
                collision.store(true, Ordering::Relaxed);
            }
        });
    }
    if collision.load(Ordering::Relaxed) {
        return Err(OblivError::LabelCollision);
    }

    // Remove fillers. This step may be non-oblivious: per-bin loads are
    // public. Loads -> exclusive prefix sum -> parallel bin copy-out.
    let mut loads = scratch.lease(nbins, 0u64);
    {
        let tr = t.as_raw();
        let mut lt = Tracked::new(c, &mut loads);
        metrics::par_fill(c, &mut lt, &|c, b| {
            (0..z)
                .map(|i| {
                    // SAFETY: read-only phase.
                    let s = unsafe { tr.get(c, b * z + i) };
                    u64::from(s.is_real())
                })
                .sum()
        });
    }
    let total: u64 = loads.iter().sum();
    debug_assert_eq!(total as usize, items.len());
    {
        let mut offsets = Tracked::new(c, &mut loads);
        prefix_sum_in(c, scratch, &mut offsets, false, Schedule::Tree);
    }
    let offsets = &*loads;

    {
        let mut out_t = Tracked::new(c, out);
        let or = out_t.as_raw();
        let tr = t.as_raw();
        par_for(c, 0, nbins, grain_for(c), &|c, b| {
            let mut at = offsets[b] as usize;
            for i in 0..z {
                // SAFETY: bins write disjoint output ranges
                // [offsets[b], offsets[b] + load_b).
                let s = unsafe { tr.get(c, b * z + i) };
                if s.is_real() {
                    unsafe { or.set(c, at, s.item) };
                    at += 1;
                }
            }
        });
    }
    Ok(())
}

/// Oblivious random permutation with the retry loop: returns the permuted
/// items and the number of attempts (1 in essentially every run at the
/// paper's parameters).
pub fn orp<C: Ctx, V: Val>(
    c: &C,
    scratch: &ScratchPool,
    items: &[Item<V>],
    p: OrbaParams,
    seed: u64,
) -> (Vec<Item<V>>, u32) {
    let mut out = vec![Item::<V>::default(); items.len()];
    let attempts = orp_into(c, scratch, items, p, seed, &mut out);
    (out, attempts)
}

/// [`orp`] writing into caller-provided storage; retries share one output
/// buffer, so the retry loop itself allocates nothing. Returns the number
/// of attempts.
pub fn orp_into<C: Ctx, V: Val>(
    c: &C,
    scratch: &ScratchPool,
    items: &[Item<V>],
    p: OrbaParams,
    seed: u64,
    out: &mut [Item<V>],
) -> u32 {
    let ((), attempts) = with_retries(64, |attempt| {
        if attempt > 0 {
            c.count(fj::counters::RETRIES, 1);
        }
        orp_once_into(
            c,
            scratch,
            items,
            p,
            seed.wrapping_add(0x9E37_79B9 * attempt as u64),
            out,
        )
    });
    attempts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use fj::{Pool, SeqCtx};
    use metrics::{measure, CacheConfig, TraceMode};
    use std::collections::HashMap;

    fn small_params() -> OrbaParams {
        OrbaParams {
            z: 16,
            gamma: 4,
            engine: Engine::BitonicRec,
        }
    }

    fn items(n: usize) -> Vec<Item<u64>> {
        (0..n as u64).map(|i| Item::new(i as u128, i)).collect()
    }

    #[test]
    fn output_is_a_permutation() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        for n in [1usize, 2, 10, 100, 500] {
            let (out, _) = orp(&c, &sp, &items(n), small_params(), 77);
            assert_eq!(out.len(), n);
            let mut vals: Vec<u64> = out.iter().map(|i| i.val).collect();
            vals.sort_unstable();
            assert_eq!(vals, (0..n as u64).collect::<Vec<_>>(), "n = {n}");
        }
    }

    #[test]
    fn different_seeds_give_different_permutations() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let its = items(64);
        let (a, _) = orp(&c, &sp, &its, small_params(), 1);
        let (b, _) = orp(&c, &sp, &its, small_params(), 2);
        assert_ne!(
            a.iter().map(|i| i.val).collect::<Vec<_>>(),
            b.iter().map(|i| i.val).collect::<Vec<_>>()
        );
    }

    #[test]
    fn permutation_is_roughly_uniform() {
        // Element 0's final position should be close to uniform over [0, n).
        // χ²-style sanity check with generous tolerance.
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let n = 16;
        let trials = 2000;
        let its = items(n);
        let mut counts = vec![0usize; n];
        for s in 0..trials {
            let (out, _) = orp(&c, &sp, &its, small_params(), 10_000 + s as u64);
            let pos = out.iter().position(|i| i.val == 0).unwrap();
            counts[pos] += 1;
        }
        let expect = trials as f64 / n as f64; // 125
        for (pos, &ct) in counts.iter().enumerate() {
            assert!(
                (ct as f64) > 0.4 * expect && (ct as f64) < 1.8 * expect,
                "position {pos} hit {ct} times (expected ≈{expect})"
            );
        }
    }

    #[test]
    fn trace_depends_only_on_length_and_seed() {
        // Definition 1 check: for fixed coins, inputs of equal length are
        // indistinguishable by access pattern (values never influence it).
        let run = |vals: Vec<u64>| {
            let (_, rep) = measure(CacheConfig::default(), TraceMode::Hash, |c| {
                let its: Vec<Item<u64>> = vals.iter().map(|&v| Item::new(v as u128, v)).collect();
                let sp = ScratchPool::new();
                let _ = orp_once(c, &sp, &its, small_params(), 4242);
            });
            (rep.trace_hash, rep.trace_len)
        };
        let a = run((0..300).collect());
        let b = run((0..300).rev().collect());
        let z = run(vec![0; 300]);
        assert_eq!(a, b);
        assert_eq!(a, z);
    }

    #[test]
    fn parallel_orp_is_a_permutation() {
        let pool = Pool::new(4);
        let its = items(300);
        let sp = ScratchPool::new();
        let (out, _) = pool.run(|c| orp(c, &sp, &its, small_params(), 5));
        let mut vals: Vec<u64> = out.iter().map(|i| i.val).collect();
        vals.sort_unstable();
        assert_eq!(vals, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn no_duplicate_outputs_across_bins() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let (out, _) = orp(&c, &sp, &items(200), small_params(), 31);
        let mut seen = HashMap::new();
        for i in &out {
            *seen.entry(i.val).or_insert(0) += 1;
        }
        assert!(seen.values().all(|&ct| ct == 1));
    }
}
