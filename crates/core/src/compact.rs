//! Oblivious (stable) tight compaction via sorting.
//!
//! Moves all marked elements to the front, preserving order, without
//! revealing *which* positions were marked — only how many (the output
//! length, which is the functionality's public output). The paper notes
//! optimal-work compaction exists [AKL+20b]; sorting-based compaction is
//! what its own pool-cleanup steps use ("this can be accomplished through
//! oblivious sorting"), and it meets the sorting bound.

use crate::binplace::set_keys;
use crate::engine::Engine;
use crate::slot::{Item, Slot, Val};
use fj::Ctx;
use metrics::{ScratchPool, Tracked};

/// Stable oblivious compaction: returns the values flagged `true`, in
/// input order. The access pattern depends only on `flagged.len()`.
pub fn oblivious_compact<C: Ctx, V: Val>(
    c: &C,
    scratch: &ScratchPool,
    flagged: &[(bool, V)],
    engine: Engine,
) -> Vec<V> {
    let n = flagged.len();
    if n == 0 {
        return Vec::new();
    }
    let m = n.next_power_of_two();
    let mut slots = scratch.lease(
        m,
        Slot {
            sk: u128::MAX,
            ..Slot::<V>::filler()
        },
    );
    for (s, (i, &(keep, v))) in slots.iter_mut().zip(flagged.iter().enumerate()) {
        *s = Slot::real(Item::new(i as u128, v), keep as u64);
        // Kept elements sort by position; dropped ones sink to the end.
        s.sk = if keep { i as u128 } else { u128::MAX };
    }
    c.charge_par(n as u64);

    let mut t = Tracked::new(c, &mut slots);
    set_keys(c, &mut t, &|s: &Slot<V>| {
        s.sk.max(if s.is_filler() { u128::MAX } else { 0 })
    });
    engine.sort_slots(c, scratch, &mut t);

    // Fixed-pattern count, then reveal exactly the kept prefix.
    let mut kept = 0usize;
    for i in 0..m {
        let s = t.get(c, i);
        c.work(1);
        kept += (s.is_real() && s.label == 1) as usize;
    }
    (0..kept).map(|i| t.get(c, i).item.val).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj::SeqCtx;
    use metrics::{measure, CacheConfig, TraceMode};
    use proptest::prelude::*;

    #[test]
    fn keeps_marked_in_order() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let input: Vec<(bool, u64)> = vec![
            (true, 1),
            (false, 2),
            (true, 3),
            (true, 4),
            (false, 5),
            (true, 6),
        ];
        assert_eq!(
            oblivious_compact(&c, &sp, &input, Engine::BitonicRec),
            vec![1, 3, 4, 6]
        );
    }

    #[test]
    fn all_dropped_and_all_kept() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let none: Vec<(bool, u64)> = (0..10).map(|i| (false, i)).collect();
        assert!(oblivious_compact(&c, &sp, &none, Engine::BitonicRec).is_empty());
        let all: Vec<(bool, u64)> = (0..10).map(|i| (true, i)).collect();
        assert_eq!(
            oblivious_compact(&c, &sp, &all, Engine::BitonicRec),
            (0..10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn trace_independent_of_flags_up_to_count() {
        // Two inputs with the SAME number of kept elements but different
        // positions must produce identical traces.
        let run = |flags: Vec<bool>| {
            let (_, rep) = measure(CacheConfig::default(), TraceMode::Hash, |c| {
                let input: Vec<(bool, u64)> = flags
                    .iter()
                    .enumerate()
                    .map(|(i, &f)| (f, i as u64))
                    .collect();
                oblivious_compact(c, &ScratchPool::new(), &input, Engine::BitonicRec);
            });
            (rep.trace_hash, rep.trace_len)
        };
        let a = run((0..64).map(|i| i % 2 == 0).collect());
        let b = run((0..64).map(|i| i < 32).collect());
        assert_eq!(a, b);
    }

    #[test]
    fn compact_degenerate_sizes() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        // n = 0.
        assert!(oblivious_compact::<_, u64>(&c, &sp, &[], Engine::BitonicRec).is_empty());
        // n = 1, both flag values.
        assert_eq!(
            oblivious_compact(&c, &sp, &[(true, 7u64)], Engine::BitonicRec),
            vec![7]
        );
        assert!(oblivious_compact(&c, &sp, &[(false, 7u64)], Engine::BitonicRec).is_empty());
        // n = 2, every flag pattern.
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let input = vec![(a, 1u64), (b, 2u64)];
            let expect: Vec<u64> = input.iter().filter(|&&(f, _)| f).map(|&(_, v)| v).collect();
            assert_eq!(
                oblivious_compact(&c, &sp, &input, Engine::BitonicRec),
                expect,
                "flags ({a}, {b})"
            );
        }
    }

    #[test]
    fn compact_n_1000_preserves_multiset_and_order() {
        // 1000 is not a power of two, so the sort pads to 1024 fillers.
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let input: Vec<(bool, u64)> = (0..1000u64)
            .map(|i| (i % 3 == 0, i.wrapping_mul(2654435761)))
            .collect();
        let got = oblivious_compact(&c, &sp, &input, Engine::BitonicRec);
        let expect: Vec<u64> = input.iter().filter(|&&(f, _)| f).map(|&(_, v)| v).collect();
        assert_eq!(got, expect, "kept values in input order");
        // Multiset check against the input (order-insensitive).
        let mut got_sorted = got;
        let mut expect_sorted = expect;
        got_sorted.sort_unstable();
        expect_sorted.sort_unstable();
        assert_eq!(got_sorted, expect_sorted);
    }

    #[test]
    fn compact_output_is_sorted_when_keys_are_positions() {
        // Sorted-oracle check: kept elements carry their input index, so the
        // compacted output must be strictly increasing.
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        for n in [2usize, 37, 1000] {
            let input: Vec<(bool, u64)> = (0..n as u64).map(|i| (i % 2 == 1, i)).collect();
            let got = oblivious_compact(&c, &sp, &input, Engine::BitonicRec);
            assert!(got.windows(2).all(|w| w[0] < w[1]), "n = {n}: {got:?}");
            assert_eq!(got.len(), n / 2, "n = {n}");
        }
    }

    proptest! {
        #[test]
        fn prop_matches_filter(flags in proptest::collection::vec(any::<bool>(), 0..200)) {
            let c = SeqCtx::new();
            let sp = ScratchPool::new();
            let input: Vec<(bool, u64)> =
                flags.iter().enumerate().map(|(i, &f)| (f, i as u64)).collect();
            let expect: Vec<u64> =
                input.iter().filter(|&&(f, _)| f).map(|&(_, v)| v).collect();
            prop_assert_eq!(oblivious_compact(&c, &sp, &input, Engine::BitonicRec), expect);
        }
    }
}
