//! Oblivious (stable) tight compaction via sorting.
//!
//! Moves all marked elements to the front, preserving order, without
//! revealing *which* positions were marked — only how many (the output
//! length, which is the functionality's public output). The paper notes
//! optimal-work compaction exists [AKL+20b]; sorting-based compaction is
//! what its own pool-cleanup steps use ("this can be accomplished through
//! oblivious sorting"), and it meets the sorting bound.

use crate::binplace::set_keys;
use crate::engine::Engine;
use crate::slot::{Item, Slot, Val};
use fj::Ctx;
use metrics::Tracked;

/// Stable oblivious compaction: returns the values flagged `true`, in
/// input order. The access pattern depends only on `flagged.len()`.
pub fn oblivious_compact<C: Ctx, V: Val>(
    c: &C,
    flagged: &[(bool, V)],
    engine: Engine,
) -> Vec<V> {
    let n = flagged.len();
    if n == 0 {
        return Vec::new();
    }
    let m = n.next_power_of_two();
    let mut slots: Vec<Slot<V>> = flagged
        .iter()
        .enumerate()
        .map(|(i, &(keep, v))| {
            let mut s = Slot::real(Item::new(i as u128, v), keep as u64);
            // Kept elements sort by position; dropped ones sink to the end.
            s.sk = if keep { i as u128 } else { u128::MAX };
            s
        })
        .collect();
    slots.resize(m, Slot { sk: u128::MAX, ..Slot::filler() });

    let mut t = Tracked::new(c, &mut slots);
    set_keys(c, &mut t, &|s: &Slot<V>| s.sk.max(if s.is_filler() { u128::MAX } else { 0 }));
    engine.sort_slots(c, &mut t);

    // Fixed-pattern count, then reveal exactly the kept prefix.
    let mut kept = 0usize;
    for i in 0..m {
        let s = t.get(c, i);
        c.work(1);
        kept += (s.is_real() && s.label == 1) as usize;
    }
    (0..kept).map(|i| t.get(c, i).item.val).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj::SeqCtx;
    use metrics::{measure, CacheConfig, TraceMode};
    use proptest::prelude::*;

    #[test]
    fn keeps_marked_in_order() {
        let c = SeqCtx::new();
        let input: Vec<(bool, u64)> =
            vec![(true, 1), (false, 2), (true, 3), (true, 4), (false, 5), (true, 6)];
        assert_eq!(oblivious_compact(&c, &input, Engine::BitonicRec), vec![1, 3, 4, 6]);
    }

    #[test]
    fn all_dropped_and_all_kept() {
        let c = SeqCtx::new();
        let none: Vec<(bool, u64)> = (0..10).map(|i| (false, i)).collect();
        assert!(oblivious_compact(&c, &none, Engine::BitonicRec).is_empty());
        let all: Vec<(bool, u64)> = (0..10).map(|i| (true, i)).collect();
        assert_eq!(oblivious_compact(&c, &all, Engine::BitonicRec), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn trace_independent_of_flags_up_to_count() {
        // Two inputs with the SAME number of kept elements but different
        // positions must produce identical traces.
        let run = |flags: Vec<bool>| {
            let (_, rep) = measure(CacheConfig::default(), TraceMode::Hash, |c| {
                let input: Vec<(bool, u64)> =
                    flags.iter().enumerate().map(|(i, &f)| (f, i as u64)).collect();
                oblivious_compact(c, &input, Engine::BitonicRec);
            });
            (rep.trace_hash, rep.trace_len)
        };
        let a = run((0..64).map(|i| i % 2 == 0).collect());
        let b = run((0..64).map(|i| i < 32).collect());
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn prop_matches_filter(flags in proptest::collection::vec(any::<bool>(), 0..200)) {
            let c = SeqCtx::new();
            let input: Vec<(bool, u64)> =
                flags.iter().enumerate().map(|(i, &f)| (f, i as u64)).collect();
            let expect: Vec<u64> =
                input.iter().filter(|&&(f, _)| f).map(|&(_, v)| v).collect();
            prop_assert_eq!(oblivious_compact(&c, &input, Engine::BitonicRec), expect);
        }
    }
}
