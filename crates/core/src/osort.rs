//! Full oblivious sorting pipelines (§3.3, §3.4).
//!
//! The paper's blueprint: obliviously *randomly permute* the input (ORP =
//! REC-ORBA + per-bin shake-out), then sort the permuted array with any
//! comparison-based algorithm — the random permutation decorrelates the
//! comparison pattern from the input (made airtight by composite tiebreak
//! keys so all comparisons are strict).
//!
//! Two configurations are exposed:
//!
//! * [`OSortParams::practical`] — §3.4: bitonic engine inside ORBA and
//!   REC-SORT as the final sorter. Work `O(n log n log log n)`, span
//!   `Õ(log² n)`, optimal cache complexity. Self-contained and fast in
//!   practice.
//! * [`OSortParams::theory`] — §3.3 with the documented substitutions:
//!   randomized Shellsort stands in for AKS (`O(n log n)` work for the
//!   ORBA phase) and parallel mergesort stands in for SPMS.

use crate::baseline::par_merge_sort;
use crate::engine::Engine;
use crate::error::with_retries;
use crate::orp::orp_into;
use crate::rec_orba::OrbaParams;
use crate::rec_sort::rec_sort_items;
use crate::slot::{composite_key, Item, Val};
use fj::Ctx;
use metrics::ScratchPool;

/// Which comparison sort runs on the permuted array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FinalSorter {
    /// REC-SORT (§E.2) — the paper's practical, butterfly-structured,
    /// cache-optimal choice.
    RecSort,
    /// Parallel mergesort — the SPMS substitute (DESIGN.md §4).
    MergeSort,
}

/// Configuration of the full oblivious sort.
#[derive(Clone, Copy, Debug)]
pub struct OSortParams {
    pub orba: OrbaParams,
    pub final_sorter: FinalSorter,
}

impl OSortParams {
    /// The practical variant (§3.4) for inputs of size `n`.
    pub fn practical(n: usize) -> Self {
        OSortParams {
            orba: OrbaParams::for_n(n),
            final_sorter: FinalSorter::RecSort,
        }
    }

    /// The theory variant (§3.3) with the AKS → randomized-Shellsort and
    /// SPMS → mergesort substitutions.
    pub fn theory(n: usize) -> Self {
        OSortParams {
            orba: OrbaParams::for_n(n).with_engine(Engine::Shellsort { seed: 0x5eed }),
            final_sorter: FinalSorter::MergeSort,
        }
    }
}

/// Retry statistics of one oblivious sort (all public outputs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SortOutcome {
    /// ORP attempts (bin overflow / label collision retries + 1).
    pub orp_attempts: u32,
    /// Final-phase attempts (REC-SORT pivot overflow retries + 1).
    pub sort_attempts: u32,
}

/// Data-obliviously sort `(key, value)` records ascending by key (stable:
/// equal keys keep their input order, thanks to the index tiebreak).
///
/// This is Theorem 3.2 instantiated with the substitutions of DESIGN.md §4.
/// All working storage is leased from `scratch`: after one warm-up call on
/// a given pool the steady state performs an order of magnitude fewer heap
/// allocations (enforced by `tests/alloc_gate.rs`).
pub fn oblivious_sort<C: Ctx, V: Val>(
    c: &C,
    scratch: &ScratchPool,
    data: &mut [(u64, V)],
    p: OSortParams,
    seed: u64,
) -> SortOutcome {
    // Composite keys (key ‖ input index): strict total order for REC-SORT's
    // load balance and stability for callers.
    let mut items = scratch.lease(data.len(), Item::<(u64, V)>::default());
    for (it, (i, &(k, v))) in items.iter_mut().zip(data.iter().enumerate()) {
        *it = Item::new(composite_key(k, i as u64), (k, v));
    }
    c.charge_par(data.len() as u64);

    let mut permuted = scratch.lease(data.len(), Item::<(u64, V)>::default());
    let orp_attempts = orp_into(c, scratch, &items, p.orba, seed, &mut permuted);

    let sort_attempts = match p.final_sorter {
        FinalSorter::MergeSort => {
            par_merge_sort(c, &mut permuted);
            1
        }
        FinalSorter::RecSort => {
            // REC-SORT leaves its input untouched on pivot overflow, so the
            // retry loop sorts in place — no per-attempt clone.
            let (_, attempts) = with_retries(64, |a| {
                if a > 0 {
                    c.count(fj::counters::RETRIES, 1);
                }
                rec_sort_items(
                    c,
                    scratch,
                    &mut permuted,
                    p.orba.engine,
                    p.orba.gamma,
                    seed ^ 0xfeed_beef_u64.wrapping_add(a as u64),
                )
            });
            attempts
        }
    };

    for (out, it) in data.iter_mut().zip(permuted.iter()) {
        *out = it.val;
    }
    c.charge_par(data.len() as u64);
    SortOutcome {
        orp_attempts,
        sort_attempts,
    }
}

/// Convenience: obliviously sort plain `u64` keys.
pub fn oblivious_sort_u64<C: Ctx>(
    c: &C,
    scratch: &ScratchPool,
    keys: &mut [u64],
    p: OSortParams,
    seed: u64,
) -> SortOutcome {
    let mut data = scratch.lease(keys.len(), (0u64, ()));
    for (d, &k) in data.iter_mut().zip(keys.iter()) {
        *d = (k, ());
    }
    let outcome = oblivious_sort(c, scratch, &mut data, p, seed);
    for (k, (nk, ())) in keys.iter_mut().zip(data.iter()) {
        *k = *nk;
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj::{Pool, SeqCtx};
    use metrics::{measure, CacheConfig, TraceMode};
    use proptest::prelude::*;

    fn scrambled(n: usize) -> Vec<u64> {
        (0..n as u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) >> 20)
            .collect()
    }

    #[test]
    fn practical_variant_sorts() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        for n in [0usize, 1, 2, 100, 1000, 5000] {
            let mut v = scrambled(n);
            let mut expect = v.clone();
            expect.sort_unstable();
            oblivious_sort_u64(&c, &sp, &mut v, OSortParams::practical(n), 42);
            assert_eq!(v, expect, "n = {n}");
        }
    }

    #[test]
    fn theory_variant_sorts() {
        let c = SeqCtx::new();
        let n = 3000;
        let mut v = scrambled(n);
        let mut expect = v.clone();
        expect.sort_unstable();
        let sp = ScratchPool::new();
        oblivious_sort_u64(&c, &sp, &mut v, OSortParams::theory(n), 7);
        assert_eq!(v, expect);
    }

    #[test]
    fn is_stable_on_duplicate_keys() {
        let c = SeqCtx::new();
        let n = 2000usize;
        let sp = ScratchPool::new();
        let mut data: Vec<(u64, u64)> = (0..n as u64).map(|i| (i % 8, i)).collect();
        oblivious_sort(&c, &sp, &mut data, OSortParams::practical(n), 3);
        assert!(data
            .windows(2)
            .all(|w| w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1)));
    }

    #[test]
    fn parallel_sort_matches() {
        let pool = Pool::new(4);
        let n = 20_000;
        let mut v = scrambled(n);
        let mut expect = v.clone();
        expect.sort_unstable();
        let sp = ScratchPool::new();
        pool.run(|c| oblivious_sort_u64(c, &sp, &mut v, OSortParams::practical(n), 11));
        assert_eq!(v, expect);
    }

    #[test]
    fn trace_is_input_independent_for_distinct_keys() {
        // For fixed coins, any two inputs with distinct keys yield the same
        // trace: after ORP the comparison pattern is a function of the
        // (seed-determined) permutation and the rank order, which the
        // composite tiebreaks make identical across such inputs... for the
        // ORP phase unconditionally, and for the comparison phase because
        // the rank pattern of the permuted array depends only on the seed.
        let n = 1500;
        let run = |keys: Vec<u64>| {
            let (_, rep) = measure(CacheConfig::default(), TraceMode::Hash, |c| {
                let sp = ScratchPool::new();
                let mut v = keys.clone();
                oblivious_sort_u64(c, &sp, &mut v, OSortParams::practical(n), 999);
            });
            (rep.trace_hash, rep.trace_len)
        };
        // Distinct-key inputs: identity, reversed, affine-scrambled.
        let a = run((0..n as u64).collect());
        let b = run((0..n as u64).rev().collect());
        let d = run((0..n as u64).map(|i| i * 3 + 1).collect());
        assert_eq!(a, b);
        assert_eq!(a, d);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_oblivious_sort_matches_std(keys in proptest::collection::vec(any::<u64>(), 0..600)) {
            let c = SeqCtx::new();
            let mut v = keys.clone();
            let mut expect = keys;
            expect.sort_unstable();
            let sp = ScratchPool::new();
            let params = OSortParams::practical(v.len());
            oblivious_sort_u64(&c, &sp, &mut v, params, 17);
            prop_assert_eq!(v, expect);
        }
    }
}
