//! The small-sort engine: which oblivious network sorts the
//! poly-log-sized subproblems.
//!
//! The paper's theory variant invokes the AKS network here; its practical
//! variant (§3.4) uses bitonic sort, paying a `log log n` work factor. We
//! offer both trade-offs (see DESIGN.md §4 for the AKS substitution):
//!
//! * [`Engine::BitonicRec`] — the cache-agnostic recursive bitonic sort of
//!   §E.1 (the paper's practical choice, and our default);
//! * [`Engine::BitonicFlat`] — naive layer-parallel bitonic (strawman);
//! * [`Engine::OddEven`] — Batcher's odd-even mergesort;
//! * [`Engine::Shellsort`] — Goodrich's randomized Shellsort with
//!   `O(n log n)` comparisons, the honest stand-in for AKS.

use crate::slot::{sk_of, Slot, Val};
use fj::Ctx;
use metrics::{ScratchPool, Tracked};
use sortnet::{
    bitonic_sort_flat_par, bitonic_sort_rec, cells_merge_rec, cells_sort_rec, oddeven_sort,
    randomized_shellsort, tag_of, TagCell,
};

/// Selects the data-oblivious network used for small sorts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Engine {
    /// Cache-agnostic recursive bitonic (§E.1) — the practical default.
    #[default]
    BitonicRec,
    /// Layer-by-layer parallel bitonic — the naive baseline.
    BitonicFlat,
    /// Batcher's odd-even mergesort.
    OddEven,
    /// Randomized Shellsort with the given public coin seed (AKS stand-in,
    /// `O(n log n)` comparisons).
    Shellsort { seed: u64 },
}

impl Engine {
    /// Sort `t` ascending by the slots' scratch key `sk`. Length must be a
    /// power of two (callers pad with fillers whose `sk` is `u128::MAX`).
    ///
    /// Merge scratch is leased from `scratch` rather than allocated; lease
    /// contents start dirty at the byte level but are filled before use,
    /// and the networks write every scratch position before reading it.
    pub fn sort_slots<C: Ctx, V: Val>(
        &self,
        c: &C,
        scratch: &ScratchPool,
        t: &mut Tracked<'_, Slot<V>>,
    ) {
        match *self {
            Engine::BitonicRec => {
                let mut lease = scratch.lease(t.len(), Slot::<V>::filler());
                let mut tmp = Tracked::new(c, &mut lease);
                bitonic_sort_rec(c, t, &mut tmp, &sk_of, true);
            }
            Engine::BitonicFlat => bitonic_sort_flat_par(c, t, &sk_of, true),
            Engine::OddEven => oddeven_sort(c, t, &sk_of),
            Engine::Shellsort { seed } => {
                // Mix in the length so different call sites draw different
                // coins while staying deterministic per (seed, n).
                randomized_shellsort(
                    c,
                    scratch,
                    t,
                    &sk_of,
                    seed ^ (t.len() as u64).wrapping_mul(0x9E37),
                );
            }
        }
    }

    /// Sort packed [`TagCell`]s ascending by tag (the tag-sort fast path).
    /// Length must be a power of two; callers pad with [`TagCell::filler`]
    /// (tag `u128::MAX`, sorts last).
    ///
    /// The bitonic engines run the dedicated branchless cell network (same
    /// comparator schedule, 32-byte elements, `select_u128` exchanges);
    /// the remaining engines drive their generic networks with the cell's
    /// tag extractor. Either way the trace is the engine's fixed function
    /// of `n`.
    pub fn sort_cells<C: Ctx>(&self, c: &C, scratch: &ScratchPool, t: &mut Tracked<'_, TagCell>) {
        match *self {
            Engine::BitonicRec => {
                let mut lease = scratch.lease(t.len(), TagCell::filler());
                let mut tmp = Tracked::new(c, &mut lease);
                cells_sort_rec(c, t, &mut tmp, true);
            }
            Engine::BitonicFlat => bitonic_sort_flat_par(c, t, &tag_of, true),
            Engine::OddEven => oddeven_sort(c, t, &tag_of),
            Engine::Shellsort { seed } => {
                randomized_shellsort(
                    c,
                    scratch,
                    t,
                    &tag_of,
                    seed ^ (t.len() as u64).wrapping_mul(0x9E37),
                );
            }
        }
    }

    /// Merge an already *bitonic* cell sequence (e.g. an ascending sorted
    /// run followed by a descending one) into ascending order. With the
    /// recursive bitonic engine this is one cache-blocked merge butterfly —
    /// `O(n log n)` comparators instead of a full `O(n log² n)` sort; the
    /// engines without a merge primitive publicly fall back to a full
    /// [`Engine::sort_cells`] (correct on any input, merge included).
    pub fn merge_cells<C: Ctx>(&self, c: &C, scratch: &ScratchPool, t: &mut Tracked<'_, TagCell>) {
        match *self {
            Engine::BitonicRec => {
                let mut lease = scratch.lease(t.len(), TagCell::filler());
                let mut tmp = Tracked::new(c, &mut lease);
                cells_merge_rec(c, t, &mut tmp, true);
            }
            _ => self.sort_cells(c, scratch, t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slot::Item;
    use fj::SeqCtx;

    fn slots_with_keys(keys: &[u64]) -> Vec<Slot<u64>> {
        keys.iter()
            .map(|&k| {
                let mut s = Slot::real(Item::new(k as u128, k), 0);
                s.sk = k as u128;
                s
            })
            .collect()
    }

    #[test]
    fn all_engines_sort_cells_by_tag() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let keys: Vec<u64> = (0..256u64)
            .map(|i| i.wrapping_mul(2654435761) % 509)
            .collect();
        let mut expect: Vec<u64> = keys.clone();
        expect.sort_unstable();
        for engine in [
            Engine::BitonicRec,
            Engine::BitonicFlat,
            Engine::OddEven,
            Engine::Shellsort { seed: 11 },
        ] {
            let mut cells: Vec<TagCell> = keys
                .iter()
                .enumerate()
                .map(|(i, &k)| TagCell::new(((k as u128) << 64) | i as u128, k as u128))
                .collect();
            let mut t = Tracked::new(&c, &mut cells);
            engine.sort_cells(&c, &sp, &mut t);
            let got: Vec<u64> = cells.iter().map(|cell| (cell.tag >> 64) as u64).collect();
            assert_eq!(got, expect, "engine {engine:?}");
            // Payload lanes travel with their tags.
            assert!(cells.iter().all(|cell| cell.aux == (cell.tag >> 64)));
        }
    }

    #[test]
    fn all_engines_merge_bitonic_cells() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        for engine in [
            Engine::BitonicRec,
            Engine::BitonicFlat,
            Engine::OddEven,
            Engine::Shellsort { seed: 3 },
        ] {
            let mut cells: Vec<TagCell> = (0..64u128)
                .chain((0..64u128).rev())
                .map(|k| TagCell::new(k, k))
                .collect();
            let mut t = Tracked::new(&c, &mut cells);
            engine.merge_cells(&c, &sp, &mut t);
            assert!(
                cells.windows(2).all(|w| w[0].tag <= w[1].tag),
                "engine {engine:?}"
            );
        }
    }

    #[test]
    fn all_engines_sort_by_sk() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let keys: Vec<u64> = (0..128u64)
            .map(|i| i.wrapping_mul(2654435761) % 251)
            .collect();
        let mut expect: Vec<u64> = keys.clone();
        expect.sort_unstable();
        for engine in [
            Engine::BitonicRec,
            Engine::BitonicFlat,
            Engine::OddEven,
            Engine::Shellsort { seed: 11 },
        ] {
            let mut slots = slots_with_keys(&keys);
            let mut t = Tracked::new(&c, &mut slots);
            engine.sort_slots(&c, &sp, &mut t);
            let got: Vec<u64> = slots.iter().map(|s| s.sk as u64).collect();
            assert_eq!(got, expect, "engine {engine:?}");
        }
    }
}
