//! META-ORBA: the flat (level-by-level) γ-way butterfly for oblivious
//! random bin assignment (§C.2).
//!
//! This is the paper's *meta-algorithm*: `log_γ β` levels, where level `i`
//! groups the `β` bins by stride `γ^i` and obliviously distributes each
//! group of `γ` bins into `γ` output bins using the next unconsumed
//! `log₂ γ` label bits. It is work-optimal but — evaluated level by level —
//! neither cache-efficient nor low-span; REC-ORBA (§D.1,
//! [`crate::rec_orba`](mod@crate::rec_orba)) is the efficient schedule of the *same* butterfly.
//! We keep META-ORBA as the correctness reference, as the strawman for the
//! scheduling ablations, and because the paper presents both.

use crate::binplace::bin_place;
use crate::engine::Engine;
use crate::error::{OblivError, Result};
use crate::rec_orba::{bins_for, BinLayout, OrbaParams};
use crate::slot::{Item, Slot, Val};
use fj::{grain_for, par_for, Ctx};
use metrics::{ScratchPool, Tracked};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};

/// One attempt of META-ORBA with the same functionality (and failure
/// contract) as [`crate::rec_orba::rec_orba`].
pub fn meta_orba<C: Ctx, V: Val>(
    c: &C,
    scratch: &ScratchPool,
    items: &[Item<V>],
    p: OrbaParams,
    seed: u64,
) -> Result<BinLayout<V>> {
    let n = items.len();
    let nbins = bins_for(n, p.z);
    let mut rng = StdRng::seed_from_u64(seed);
    let labels: Vec<u64> = (0..n).map(|_| rng.gen_range(0..nbins as u64)).collect();

    // Initial layout: β bins of Z slots, half-filled (as in REC-ORBA).
    let half = p.z / 2;
    let mut slots = vec![Slot::<V>::filler(); nbins * p.z];
    for (idx, slot) in slots.iter_mut().enumerate() {
        let (b, i) = (idx / p.z, idx % p.z);
        let pos = b * half + i;
        if i < half && pos < n {
            *slot = Slot::real(items[pos], labels[pos]);
        }
    }

    let overflow = AtomicBool::new(false);
    {
        let mut t = Tracked::new(c, &mut slots);
        let total_bits = nbins.trailing_zeros();
        let mut s = 0u32; // label bits consumed so far (LSB-first)
        while s < total_bits {
            let g_bits = (total_bits - s).min(p.gamma.trailing_zeros().max(1));
            level(
                c, scratch, &mut t, nbins, p.z, s, g_bits, p.engine, &overflow,
            );
            s += g_bits;
        }
    }
    if overflow.load(Ordering::Relaxed) {
        return Err(OblivError::BinOverflow);
    }
    Ok(BinLayout {
        slots,
        nbins,
        z: p.z,
    })
}

/// One butterfly level: bins that agree on every index bit outside
/// `[s, s+g_bits)` form a group; each group is gathered, bin-placed on the
/// window bits, and scattered back.
#[allow(clippy::too_many_arguments)]
fn level<C: Ctx, V: Val>(
    c: &C,
    scratch: &ScratchPool,
    t: &mut Tracked<'_, Slot<V>>,
    nbins: usize,
    z: usize,
    s: u32,
    g_bits: u32,
    engine: Engine,
    overflow: &AtomicBool,
) {
    let g = 1usize << g_bits;
    let stride = 1usize << s;
    let groups = nbins / g;
    let tr = t.as_raw();
    par_for(c, 0, groups, grain_for(c), &|c, gi| {
        // Decompose the group id into (high, low) around the window.
        let low = gi % stride;
        let high = gi / stride;
        let base = high * (stride << g_bits) + low;

        // Gather the γ member bins (stride 2^s apart) into leased scratch
        // (concurrent leases from worker threads are fine: the pool is
        // Sync, and every gathered slot is written before it is read).
        let mut buf = scratch.lease(g * z, Slot::<V>::filler());
        let mut local = Tracked::new(c, &mut buf);
        {
            let lr = local.as_raw();
            for k in 0..g {
                let bin = base + k * stride;
                // SAFETY: groups are disjoint; member bins are disjoint.
                unsafe { lr.copy_from(c, &tr, bin * z, k * z, z) };
            }
        }
        if bin_place(c, scratch, &mut local, g, z, s, engine).is_err() {
            overflow.store(true, Ordering::Relaxed);
        }
        // Scatter back.
        let lr = local.as_raw();
        for k in 0..g {
            let bin = base + k * stride;
            // SAFETY: same disjointness as the gather.
            unsafe { tr.copy_from(c, &lr, k * z, bin * z, z) };
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::with_retries;
    use fj::SeqCtx;

    fn items(n: usize) -> Vec<Item<u64>> {
        (0..n as u64).map(|i| Item::new(i as u128, i)).collect()
    }

    #[test]
    fn routes_every_element_to_its_label_bin() {
        let c = SeqCtx::new();
        let p = OrbaParams {
            z: 16,
            gamma: 4,
            engine: Engine::BitonicRec,
        };
        let its = items(120);
        let sp = ScratchPool::new();
        let (layout, _) = with_retries(64, |a| meta_orba(&c, &sp, &its, p, 10 + a as u64));
        for (b, bin) in layout.slots.chunks(layout.z).enumerate() {
            for s in bin.iter().filter(|s| s.is_real()) {
                assert_eq!(s.label as usize, b);
            }
        }
        let total: usize = layout.loads().iter().sum();
        assert_eq!(total, 120);
    }

    #[test]
    fn meta_and_rec_orba_agree_on_bin_contents() {
        // Same seed ⇒ same labels ⇒ identical bin contents (as multisets).
        let c = SeqCtx::new();
        let p = OrbaParams {
            z: 16,
            gamma: 4,
            engine: Engine::BitonicRec,
        };
        let its = items(90);
        let sp = ScratchPool::new();
        for seed in [3u64, 17, 2024] {
            let m = meta_orba(&c, &sp, &its, p, seed);
            let r = crate::rec_orba::rec_orba(&c, &sp, &its, p, seed);
            match (m, r) {
                (Ok(m), Ok(r)) => {
                    for b in 0..m.nbins {
                        let mut mv: Vec<u64> = m.slots[b * m.z..(b + 1) * m.z]
                            .iter()
                            .filter(|s| s.is_real())
                            .map(|s| s.item.val)
                            .collect();
                        let mut rv: Vec<u64> = r.slots[b * r.z..(b + 1) * r.z]
                            .iter()
                            .filter(|s| s.is_real())
                            .map(|s| s.item.val)
                            .collect();
                        mv.sort_unstable();
                        rv.sort_unstable();
                        assert_eq!(mv, rv, "bin {b} differs (seed {seed})");
                    }
                }
                // The two schedules form different intermediate groups, so
                // their overflow verdicts may legitimately differ; only
                // successful runs are comparable.
                _ => continue,
            }
        }
    }

    #[test]
    fn non_uniform_gamma_levels() {
        // β = 32 bins with γ = 8: levels consume 3 + 2 bits.
        let c = SeqCtx::new();
        let p = OrbaParams {
            z: 16,
            gamma: 8,
            engine: Engine::BitonicRec,
        };
        let its = items(200);
        let sp = ScratchPool::new();
        let (layout, _) = with_retries(64, |a| meta_orba(&c, &sp, &its, p, 5 + a as u64));
        assert_eq!(layout.nbins, 32);
        let total: usize = layout.loads().iter().sum();
        assert_eq!(total, 200);
    }
}
