//! Scans: prefix sums, segmented propagation and aggregation (§F).
//!
//! The paper realizes oblivious *aggregation* and *propagation* in a sorted
//! array with segmented prefix/suffix scans: `O(n)` work, `O(n/B)` cache
//! complexity, and `O(log n)` span in the binary fork-join model — a
//! `log n`-factor span improvement over the prior best, which forked `n`
//! threads per PRAM step of the doubling algorithm (Table 2 rows "Aggr" and
//! "Prop"). Both schedules are implemented here:
//!
//! * [`Schedule::Tree`] — recursive reduce/distribute tree: each tree node
//!   is a constant-work fork, so the span is `O(log n)` (ours);
//! * [`Schedule::Levels`] — the Blelloch up/down sweeps evaluated level by
//!   level with a parallel loop (and its fork tree) per level:
//!   `Σ_d O(log(n/2^d)) = O(log² n)` span (prior best).
//!
//! Scans are trivially data-oblivious: the access pattern depends only on
//! `n`.

use crate::slot::Val;
use fj::{grain_for, par_for, Ctx};
use metrics::{ScratchPool, Tracked};
use sortnet::select_u64;

/// Which parallel schedule evaluates the scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Recursive tree, span `O(log n)` — the paper's construction.
    Tree,
    /// Level-by-level sweeps, span `O(log² n)` — the naive baseline.
    Levels,
}

/// Generic scan with an associative `combine` and two-sided identity `id`
/// (identity is only ever combined on the right of live data, so a
/// right-identity suffices — see [`seg_propagate`]).
///
/// * `inclusive` — include the element itself in its result;
/// * `reverse` — scan right-to-left (suffix scan).
///
/// Work `O(n)`, cache `O(n/B)`, span per [`Schedule`].
pub fn scan<C, S, OP>(
    c: &C,
    data: &mut Tracked<'_, S>,
    id: S,
    combine: &OP,
    inclusive: bool,
    reverse: bool,
    sched: Schedule,
) where
    C: Ctx,
    S: Val,
    OP: Fn(S, S) -> S + Sync,
{
    let scratch = ScratchPool::new();
    scan_in(c, &scratch, data, id, combine, inclusive, reverse, sched);
}

/// [`scan`] drawing its tree scratch from a [`ScratchPool`] lease instead
/// of a fresh allocation — the variant every hot path uses.
#[allow(clippy::too_many_arguments)]
pub fn scan_in<C, S, OP>(
    c: &C,
    scratch: &ScratchPool,
    data: &mut Tracked<'_, S>,
    id: S,
    combine: &OP,
    inclusive: bool,
    reverse: bool,
    sched: Schedule,
) where
    C: Ctx,
    S: Val,
    OP: Fn(S, S) -> S + Sync,
{
    let n = data.len();
    if n == 0 {
        return;
    }
    let m = n.next_power_of_two();

    // Gather leaves (logical order: reversed for suffix scans) into a
    // padded scratch tree of size 2m; leaves live at [m, 2m).
    let mut tree_store = scratch.lease(2 * m, id);
    let mut tree = Tracked::new(c, &mut tree_store);
    {
        let tr = tree.as_raw();
        let dr = data.as_raw();
        par_for(c, 0, n, grain_for(c), &|c, j| {
            let src = if reverse { n - 1 - j } else { j };
            // SAFETY: leaf m+j written once; data[src] only read.
            unsafe { tr.set(c, m + j, dr.get(c, src)) };
        });
    }

    match sched {
        Schedule::Tree => {
            let tr = tree.as_raw();
            // SAFETY: `up` writes each internal node once (its owner task);
            // `down` writes each data element once via the bijective
            // logical-index map.
            up(c, &tr, combine, 1, m);
            let dr = data.as_raw();
            down(c, &tr, &dr, combine, 1, m, n, id, inclusive, reverse);
        }
        Schedule::Levels => {
            levels_scan(
                c, scratch, &mut tree, data, id, combine, inclusive, reverse, m, n,
            );
        }
    }
}

fn up<C, S, OP>(c: &C, tree: &metrics::RawTracked<S>, combine: &OP, node: usize, m: usize)
where
    C: Ctx,
    S: Val,
    OP: Fn(S, S) -> S + Sync,
{
    if node >= m {
        return;
    }
    c.join(
        |c| up(c, tree, combine, 2 * node, m),
        |c| up(c, tree, combine, 2 * node + 1, m),
    );
    // SAFETY: children finished; this node written only here.
    unsafe {
        let l = tree.get(c, 2 * node);
        let r = tree.get(c, 2 * node + 1);
        c.work(1);
        tree.set(c, node, combine(l, r));
    }
}

#[allow(clippy::too_many_arguments)]
fn down<C, S, OP>(
    c: &C,
    tree: &metrics::RawTracked<S>,
    data: &metrics::RawTracked<S>,
    combine: &OP,
    node: usize,
    m: usize,
    n: usize,
    acc: S,
    inclusive: bool,
    reverse: bool,
) where
    C: Ctx,
    S: Val,
    OP: Fn(S, S) -> S + Sync,
{
    if node >= m {
        let j = node - m;
        if j < n {
            let dst = if reverse { n - 1 - j } else { j };
            // SAFETY: each logical leaf maps to a unique data slot.
            unsafe {
                let out = if inclusive {
                    let leaf = tree.get(c, node);
                    c.work(1);
                    combine(acc, leaf)
                } else {
                    acc
                };
                data.set(c, dst, out);
            }
        }
        return;
    }
    // Prune empty subtrees (all-padding) to keep work at O(n).
    let leaves_lo = node_first_leaf(node, m);
    if leaves_lo >= n {
        return;
    }
    // SAFETY: left child's subtotal was finalized during `up`.
    let left_total = unsafe { tree.get(c, 2 * node) };
    c.work(1);
    let right_acc = combine(acc, left_total);
    c.join(
        |c| {
            down(
                c,
                tree,
                data,
                combine,
                2 * node,
                m,
                n,
                acc,
                inclusive,
                reverse,
            )
        },
        |c| {
            down(
                c,
                tree,
                data,
                combine,
                2 * node + 1,
                m,
                n,
                right_acc,
                inclusive,
                reverse,
            )
        },
    );
}

/// Index of the first leaf (relative to the leaf row) under `node`.
fn node_first_leaf(mut node: usize, m: usize) -> usize {
    while node < m {
        node *= 2;
    }
    node - m
}

#[allow(clippy::too_many_arguments)]
fn levels_scan<C, S, OP>(
    c: &C,
    scratch: &ScratchPool,
    tree: &mut Tracked<'_, S>,
    data: &mut Tracked<'_, S>,
    id: S,
    combine: &OP,
    inclusive: bool,
    reverse: bool,
    m: usize,
    n: usize,
) where
    C: Ctx,
    S: Val,
    OP: Fn(S, S) -> S + Sync,
{
    // Work on the leaf row [m, 2m) of the scratch; keep original leaves for
    // the inclusive fix-up.
    let mut orig_store = scratch.lease(if inclusive { m } else { 0 }, id);
    let mut orig = Tracked::new(c, &mut orig_store);
    if inclusive {
        let or = orig.as_raw();
        let tr = tree.as_raw();
        par_for(c, 0, m, grain_for(c), &|c, j| unsafe {
            or.set(c, j, tr.get(c, m + j));
        });
    }

    let tr = tree.as_raw();
    // Up-sweep.
    let mut offset = 1;
    while offset < m {
        let step = offset * 2;
        par_for(c, 0, m / step, grain_for(c), &|c, i| {
            let idx = m + i * step;
            // SAFETY: disjoint `idx` ranges per i.
            unsafe {
                let a = tr.get(c, idx + offset - 1);
                let b = tr.get(c, idx + step - 1);
                c.work(1);
                tr.set(c, idx + step - 1, combine(a, b));
            }
        });
        offset = step;
    }
    // Down-sweep (exclusive).
    // SAFETY: single write to the root slot.
    unsafe { tr.set(c, 2 * m - 1, id) };
    let mut offset = m / 2;
    while offset >= 1 {
        let step = offset * 2;
        par_for(c, 0, m / step, grain_for(c), &|c, i| {
            let idx = m + i * step;
            // SAFETY: disjoint `idx` ranges per i.
            unsafe {
                let t = tr.get(c, idx + offset - 1);
                let top = tr.get(c, idx + step - 1);
                c.work(1);
                tr.set(c, idx + offset - 1, top);
                // `top` is the prefix arriving from the parent and `t` the
                // left subtotal: parent-prefix first (combine need not be
                // commutative — segmented scans are not).
                tr.set(c, idx + step - 1, combine(top, t));
            }
        });
        offset /= 2;
    }
    // Write back (with inclusive fix-up).
    let dr = data.as_raw();
    let or = orig.as_raw();
    par_for(c, 0, n, grain_for(c), &|c, j| {
        let dst = if reverse { n - 1 - j } else { j };
        // SAFETY: bijective logical-index map.
        unsafe {
            let ex = tr.get(c, m + j);
            let out = if inclusive {
                c.work(1);
                combine(ex, or.get(c, j))
            } else {
                ex
            };
            dr.set(c, dst, out);
        }
    });
}

// ---------------------------------------------------------------------------
// Concrete scans
// ---------------------------------------------------------------------------

/// In-place prefix sum over `u64` (wrapping).
pub fn prefix_sum<C: Ctx>(c: &C, t: &mut Tracked<'_, u64>, inclusive: bool, sched: Schedule) {
    let scratch = ScratchPool::new();
    prefix_sum_in(c, &scratch, t, inclusive, sched);
}

/// [`prefix_sum`] with pooled scratch.
pub fn prefix_sum_in<C: Ctx>(
    c: &C,
    scratch: &ScratchPool,
    t: &mut Tracked<'_, u64>,
    inclusive: bool,
    sched: Schedule,
) {
    scan_in(
        c,
        scratch,
        t,
        0u64,
        &|a, b| a.wrapping_add(b),
        inclusive,
        false,
        sched,
    );
}

// ---------------------------------------------------------------------------
// Segmented scans: propagation and aggregation (§F)
// ---------------------------------------------------------------------------

/// A segmented-scan element: `head` marks the first element of its segment
/// *in scan direction*.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Seg<V> {
    pub head: bool,
    pub v: V,
}

impl<V> Seg<V> {
    pub fn new(head: bool, v: V) -> Self {
        Seg { head, v }
    }
}

fn seg_combine<V: Val, OP: Fn(V, V) -> V + Sync>(
    op: &OP,
) -> impl Fn(Seg<V>, Seg<V>) -> Seg<V> + Sync + '_ {
    // The head flags are secret-dependent values living in tracked
    // memory; under Definition 1 only the *addresses* are observable, so
    // this branch leaks nothing — the concrete `u64` scans below still
    // route through word selects as best-effort hardening, matching the
    // branchless discipline of the `sortnet::vec` kernel layer. The
    // generic combine keeps the branch because `V` cannot be mask-selected
    // generically.
    move |a, b| {
        if b.head {
            b
        } else {
            Seg {
                head: a.head || b.head,
                v: op(a.v, b.v),
            }
        }
    }
}

/// Branchless segmented combine over `u64` values: the inner-loop gate of
/// the store's segmented LWW/aggregation scans. `head` composes with
/// boolean arithmetic and the value lane with a [`select_u64`] mask — no
/// secret-dependent branch, and the compiler lowers the select to a
/// conditional move / vector blend.
#[inline(always)]
pub fn seg_combine_u64(
    op: impl Fn(u64, u64) -> u64 + Sync,
) -> impl Fn(Seg<u64>, Seg<u64>) -> Seg<u64> + Sync {
    move |a, b| Seg {
        head: a.head | b.head,
        v: select_u64(b.head, op(a.v, b.v), b.v),
    }
}

/// Oblivious **propagation** (§F): every element learns the value held by
/// its segment's head (the group representative). Requires `t[0].head`
/// (the first element always starts a segment — true for every use in this
/// workspace).
///
/// `O(n)` work, `O(n/B)` cache, span `O(log n)` with [`Schedule::Tree`].
pub fn seg_propagate<C: Ctx, V: Val>(c: &C, t: &mut Tracked<'_, Seg<V>>, sched: Schedule) {
    let scratch = ScratchPool::new();
    seg_propagate_in(c, &scratch, t, sched);
}

/// [`seg_propagate`] with pooled scratch.
pub fn seg_propagate_in<C: Ctx, V: Val>(
    c: &C,
    scratch: &ScratchPool,
    t: &mut Tracked<'_, Seg<V>>,
    sched: Schedule,
) {
    debug_assert!(
        t.is_empty() || t.get(c, 0).head,
        "element 0 must head a segment"
    );
    // Left projection is associative and right-identity for any id value,
    // which is all `scan` requires (identity only pads on the right).
    scan_in(
        c,
        scratch,
        t,
        Seg::new(false, V::default()),
        &seg_combine(&|a, _b| a),
        true,
        false,
        sched,
    );
}

/// Oblivious **aggregation** (§F): every element learns the sum of the
/// values of its own group at its position and to its right. Heads must
/// mark each segment's *last* element (the first in right-to-left scan
/// order).
pub fn seg_sum_right<C: Ctx>(c: &C, t: &mut Tracked<'_, Seg<u64>>, sched: Schedule) {
    let scratch = ScratchPool::new();
    seg_sum_right_in(c, &scratch, t, sched);
}

/// [`seg_sum_right`] with pooled scratch.
pub fn seg_sum_right_in<C: Ctx>(
    c: &C,
    scratch: &ScratchPool,
    t: &mut Tracked<'_, Seg<u64>>,
    sched: Schedule,
) {
    scan_in(
        c,
        scratch,
        t,
        Seg::new(false, 0u64),
        &seg_combine_u64(|a, b| a.wrapping_add(b)),
        true,
        true,
        sched,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj::SeqCtx;
    use metrics::{measure, CacheConfig, TraceMode};
    use proptest::prelude::*;

    #[test]
    fn prefix_sum_inclusive_and_exclusive() {
        let c = SeqCtx::new();
        for sched in [Schedule::Tree, Schedule::Levels] {
            let mut v: Vec<u64> = (1..=10).collect();
            let mut t = Tracked::new(&c, &mut v);
            prefix_sum(&c, &mut t, true, sched);
            assert_eq!(v, vec![1, 3, 6, 10, 15, 21, 28, 36, 45, 55], "{sched:?}");

            let mut v: Vec<u64> = (1..=10).collect();
            let mut t = Tracked::new(&c, &mut v);
            prefix_sum(&c, &mut t, false, sched);
            assert_eq!(v, vec![0, 1, 3, 6, 10, 15, 21, 28, 36, 45], "{sched:?}");
        }
    }

    #[test]
    fn suffix_scan_reverses() {
        let c = SeqCtx::new();
        for sched in [Schedule::Tree, Schedule::Levels] {
            let mut v: Vec<u64> = vec![1, 2, 3, 4, 5];
            let mut t = Tracked::new(&c, &mut v);
            scan(&c, &mut t, 0u64, &|a, b| a + b, true, true, sched);
            assert_eq!(v, vec![15, 14, 12, 9, 5], "{sched:?}");
        }
    }

    #[test]
    fn propagate_carries_head_values() {
        let c = SeqCtx::new();
        for sched in [Schedule::Tree, Schedule::Levels] {
            // Segments: [10, _, _], [20, _], [30, _, _, _]
            let mut v = vec![
                Seg::new(true, 10u64),
                Seg::new(false, 0),
                Seg::new(false, 0),
                Seg::new(true, 20),
                Seg::new(false, 0),
                Seg::new(true, 30),
                Seg::new(false, 0),
                Seg::new(false, 0),
            ];
            let mut t = Tracked::new(&c, &mut v);
            seg_propagate(&c, &mut t, sched);
            let got: Vec<u64> = v.iter().map(|s| s.v).collect();
            assert_eq!(got, vec![10, 10, 10, 20, 20, 30, 30, 30], "{sched:?}");
        }
    }

    #[test]
    fn aggregate_sums_suffix_within_group() {
        let c = SeqCtx::new();
        for sched in [Schedule::Tree, Schedule::Levels] {
            // Two groups of values: [1,2,3 | 4,5]; heads mark group *ends*.
            let mut v = vec![
                Seg::new(false, 1u64),
                Seg::new(false, 2),
                Seg::new(true, 3),
                Seg::new(false, 4),
                Seg::new(true, 5),
            ];
            let mut t = Tracked::new(&c, &mut v);
            seg_sum_right(&c, &mut t, sched);
            let got: Vec<u64> = v.iter().map(|s| s.v).collect();
            assert_eq!(got, vec![6, 5, 3, 9, 5], "{sched:?}");
        }
    }

    #[test]
    fn tree_schedule_has_log_span_levels_has_log_squared() {
        let n = 1 << 14;
        let run = |sched| {
            let (_, rep) = measure(CacheConfig::default(), TraceMode::Off, |c| {
                let mut v = vec![1u64; n];
                let mut t = Tracked::new(c, &mut v);
                prefix_sum(c, &mut t, true, sched);
            });
            rep
        };
        let tree = run(Schedule::Tree);
        let levels = run(Schedule::Levels);
        let lg = (n as f64).log2();
        // Tree: O(log n) with small constants; Levels: Θ(log² n)-ish.
        assert!(
            (tree.span as f64) < 20.0 * lg,
            "tree span {} not O(log n) (log n = {lg})",
            tree.span
        );
        assert!(
            (levels.span as f64) > 2.0 * lg * lg / 2.0,
            "levels span {} unexpectedly small",
            levels.span
        );
        assert!(
            tree.span * 3 < levels.span,
            "tree {} vs levels {}",
            tree.span,
            levels.span
        );
        // Both schedules are work-efficient.
        assert!(tree.work < 30 * n as u64);
        assert!(levels.work < 30 * n as u64);
    }

    #[test]
    fn scan_trace_is_input_independent() {
        let run = |vals: Vec<u64>| {
            let (_, rep) = measure(CacheConfig::default(), TraceMode::Hash, |c| {
                let mut v = vals.clone();
                let mut t = Tracked::new(c, &mut v);
                prefix_sum(c, &mut t, true, Schedule::Tree);
            });
            (rep.trace_hash, rep.trace_len)
        };
        assert_eq!(run((0..1000).collect()), run(vec![7; 1000]));
    }

    fn prefix_reference(v: &[u64], inclusive: bool) -> Vec<u64> {
        let mut acc = 0u64;
        v.iter()
            .map(|&x| {
                if inclusive {
                    acc = acc.wrapping_add(x);
                    acc
                } else {
                    let before = acc;
                    acc = acc.wrapping_add(x);
                    before
                }
            })
            .collect()
    }

    #[test]
    fn prefix_sum_degenerate_sizes() {
        let c = SeqCtx::new();
        for sched in [Schedule::Tree, Schedule::Levels] {
            for n in [0usize, 1, 2] {
                for inclusive in [true, false] {
                    let mut v: Vec<u64> = (10..10 + n as u64).collect();
                    let expect = prefix_reference(&v, inclusive);
                    let mut t = Tracked::new(&c, &mut v);
                    prefix_sum(&c, &mut t, inclusive, sched);
                    assert_eq!(v, expect, "n = {n}, inclusive = {inclusive}, {sched:?}");
                }
            }
        }
    }

    #[test]
    fn prefix_sum_n_1000_non_power_of_two_matches_reference() {
        // 1000 forces a padded scratch tree (next_power_of_two = 1024) with
        // a partial last level — the shape both schedules must prune.
        let c = SeqCtx::new();
        let input: Vec<u64> = (0..1000u64)
            .map(|i| i.wrapping_mul(2654435761) % 997)
            .collect();
        for sched in [Schedule::Tree, Schedule::Levels] {
            for inclusive in [true, false] {
                let mut v = input.clone();
                let expect = prefix_reference(&v, inclusive);
                let mut t = Tracked::new(&c, &mut v);
                prefix_sum(&c, &mut t, inclusive, sched);
                assert_eq!(v, expect, "inclusive = {inclusive}, {sched:?}");
            }
        }
    }

    #[test]
    fn seg_propagate_degenerate_and_odd_sizes() {
        let c = SeqCtx::new();
        for sched in [Schedule::Tree, Schedule::Levels] {
            for n in [1usize, 2, 7, 1000] {
                // Segment heads every 3rd element (element 0 always heads).
                let mut v: Vec<Seg<u64>> = (0..n)
                    .map(|i| Seg::new(i % 3 == 0, (i * 7) as u64))
                    .collect();
                let mut expect = vec![0u64; n];
                let mut cur = 0;
                for i in 0..n {
                    if v[i].head {
                        cur = v[i].v;
                    }
                    expect[i] = cur;
                }
                let mut t = Tracked::new(&c, &mut v);
                seg_propagate(&c, &mut t, sched);
                let got: Vec<u64> = v.iter().map(|s| s.v).collect();
                assert_eq!(got, expect, "n = {n}, {sched:?}");
            }
        }
    }

    #[test]
    fn scan_preserves_total_sum_at_odd_sizes() {
        // Multiset-style invariant: the last inclusive prefix equals the
        // total, independent of the (non-power-of-two) length.
        let c = SeqCtx::new();
        for n in [3usize, 5, 100, 1000] {
            let input: Vec<u64> = (1..=n as u64).collect();
            let total: u64 = input.iter().sum();
            for sched in [Schedule::Tree, Schedule::Levels] {
                let mut v = input.clone();
                let mut t = Tracked::new(&c, &mut v);
                prefix_sum(&c, &mut t, true, sched);
                assert_eq!(v[n - 1], total, "n = {n}, {sched:?}");
                assert!(
                    v.windows(2).all(|w| w[0] <= w[1]),
                    "monotone prefix, n = {n}"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_prefix_sum_matches_reference(v in proptest::collection::vec(any::<u32>(), 1..200)) {
            let v: Vec<u64> = v.into_iter().map(u64::from).collect();
            let mut expect = Vec::with_capacity(v.len());
            let mut acc = 0u64;
            for &x in &v {
                acc += x;
                expect.push(acc);
            }
            for sched in [Schedule::Tree, Schedule::Levels] {
                let c = SeqCtx::new();
                let mut got = v.clone();
                let mut t = Tracked::new(&c, &mut got);
                prefix_sum(&c, &mut t, true, sched);
                prop_assert_eq!(&got, &expect);
            }
        }

        #[test]
        fn prop_propagate_matches_reference(
            heads in proptest::collection::vec(any::<bool>(), 1..150),
            vals in proptest::collection::vec(any::<u64>(), 150),
        ) {
            let n = heads.len();
            let mut segs: Vec<Seg<u64>> = (0..n).map(|i| Seg::new(heads[i] || i == 0, vals[i])).collect();
            let mut expect = vec![0u64; n];
            let mut cur = 0;
            for i in 0..n {
                if segs[i].head { cur = segs[i].v; }
                expect[i] = cur;
            }
            let c = SeqCtx::new();
            let mut t = Tracked::new(&c, &mut segs);
            seg_propagate(&c, &mut t, Schedule::Tree);
            let got: Vec<u64> = segs.iter().map(|s| s.v).collect();
            prop_assert_eq!(got, expect);
        }
    }
}
