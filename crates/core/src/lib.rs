//! # obliv-core — the paper's primary contribution
//!
//! Data-oblivious algorithms for the binary fork-join model
//! (Ramachandran & Shi, SPAA 2021), cache-agnostically:
//!
//! * [`binplace`] — oblivious bin placement (§C.1);
//! * [`meta_orba`](mod@meta_orba) / [`rec_orba`](mod@rec_orba) — oblivious random bin assignment, flat
//!   meta-algorithm (§C.2) and the recursive cache-agnostic schedule
//!   (§3.2, §D.1, Lemma 3.1);
//! * [`orp`](mod@orp) — oblivious random permutation (§C.3, §D.2);
//! * [`rec_sort`] — REC-SORT, the pivot-routed butterfly sorter for
//!   randomly permuted inputs (§E.2);
//! * [`osort`] — the full oblivious sorting pipelines, practical (§3.4)
//!   and theory (§3.3) variants (Theorem 3.2);
//! * [`scan`](mod@scan) — prefix scans plus oblivious aggregation and propagation
//!   (§F), with the paper's `O(log n)`-span schedule and the naive
//!   `O(log² n)` baseline (Table 2);
//! * [`sendrecv`] — oblivious send-receive / routing (§F);
//! * [`scatter`] — padded multi-way oblivious scatter (stable §F routing
//!   into fixed-capacity bins; the op→shard router of `dob-store`);
//! * [`compact`] — sorting-based oblivious tight compaction;
//! * [`tag_sort`] — the tag-sort fast path: stable KV sorting and tight
//!   compaction over packed 32-byte cells (the store's hot-path kernels);
//! * [`baseline`] — insecure parallel mergesort (SPMS substitute).
//!
//! See DESIGN.md at the workspace root for the substitution ledger
//! (AKS → bitonic/randomized Shellsort, SPMS → REC-SORT/mergesort).

pub mod baseline;
pub mod binplace;
pub mod compact;
pub mod engine;
pub mod error;
pub mod meta_orba;
pub mod orp;
pub mod osort;
pub mod rec_orba;
pub mod rec_sort;
pub mod scan;
pub mod scatter;
pub mod sendrecv;
pub mod slot;
pub mod tag_sort;

pub use baseline::par_merge_sort;
pub use binplace::{bin_place, set_keys};
pub use compact::oblivious_compact;
pub use engine::Engine;
pub use error::{with_retries, OblivError, Result};
pub use meta_orba::meta_orba;
pub use metrics::{ScratchGuard, ScratchPool};
pub use orp::{orp, orp_into, orp_once, orp_once_into};
pub use osort::{oblivious_sort, oblivious_sort_u64, FinalSorter, OSortParams, SortOutcome};
pub use rec_orba::{bins_for, rec_orba, rec_orba_into, BinLayout, OrbaParams};
pub use rec_sort::rec_sort_items;
pub use scan::{
    prefix_sum, prefix_sum_in, scan, scan_in, seg_combine_u64, seg_propagate, seg_propagate_in,
    seg_sum_right, seg_sum_right_in, Schedule, Seg,
};
pub use scatter::oblivious_scatter;
pub use sendrecv::{send_receive, send_receive_u64};
pub use slot::{composite_key, flags, Item, Slot, Val};
pub use sortnet::{select_cell, select_u128, select_u64, TagCell};
pub use tag_sort::{compact_cells, oblivious_sort_kv};
