//! REC-SORT (§E.2): a conceptually simple, cache-agnostic binary fork-join
//! sorter for *randomly permuted* inputs — the paper's practical
//! replacement for SPMS as the final phase of oblivious sorting.
//!
//! Structure: identical to REC-ORBA's recursive butterfly, but an element's
//! destination bin at each level is determined by a sorted array of
//! *pivots* (approximate `Θ(n/Z)`-quantiles drawn from a random sample)
//! instead of random label bits. Bins have a fixed capacity with constant
//! slack over the expected load; the §E.2 Chernoff argument shows overflow
//! is negligible when the input order is random and keys are distinct
//! (callers guarantee distinctness with composite tiebreak keys). Overflow
//! is detected and surfaces as [`OblivError::PivotOverflow`]; callers retry
//! with fresh sample coins.
//!
//! REC-SORT need not be data-oblivious (the input permutation already
//! decorrelates its trace from the data), which is why base cases may
//! binary-search and reveal loads.

use crate::engine::Engine;
use crate::error::{OblivError, Result};
use crate::slot::{Item, Slot, Val};
use fj::{grain_for, par_for, Ctx};
use metrics::{RawTracked, ScratchPool, Tracked};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sortnet::{par_rows2, transpose};
use std::sync::atomic::{AtomicBool, Ordering};

/// Inputs at or below this size skip the butterfly and use one padded
/// bitonic sort.
const SMALL: usize = 2048;

/// Filler slot that sorts after every real key.
fn filler_hi<V: Val>() -> Slot<V> {
    Slot {
        sk: u128::MAX,
        ..Slot::filler()
    }
}

/// A window into the global pivot array: the boundary between this
/// subproblem's bins `t-1` and `t` is `pivots[r0 + t·stride − 1]`.
#[derive(Clone, Copy)]
struct PivotView {
    r0: usize,
    stride: usize,
}

impl PivotView {
    /// Key of boundary `t` (1 ≤ t < nbins); out-of-range ⇒ +∞.
    fn boundary<C: Ctx>(&self, c: &C, pivots: &RawTracked<u128>, t: usize) -> u128 {
        let idx = self.r0 + t * self.stride - 1;
        if idx < pivots.len() {
            // SAFETY: pivots are read-only during the butterfly.
            unsafe { pivots.get(c, idx) }
        } else {
            u128::MAX
        }
    }
}

/// Sort `items` ascending by key. Keys should be distinct (use
/// [`crate::slot::composite_key`]); `items` should be in random order for
/// the performance (and overflow) guarantees, per §E.2.
///
/// On `Err` (pivot overflow) `items` is left **unmodified** — the butterfly
/// works entirely in leased scratch and only the final readout (which runs
/// after the overflow check) writes back — so callers retry in place with
/// fresh coins, no defensive clone needed.
pub fn rec_sort_items<C: Ctx, V: Val>(
    c: &C,
    scratch: &ScratchPool,
    items: &mut [Item<V>],
    engine: Engine,
    gamma: usize,
    seed: u64,
) -> Result<()> {
    let n = items.len();
    if n <= SMALL {
        return sort_small(c, scratch, items, engine);
    }
    let lg = (usize::BITS - n.leading_zeros()) as usize;

    // --- Pivot selection (§E.2): Bernoulli(1/log n) sample, sorted with
    // bitonic; every (log² n)-th sample becomes a pivot.
    let mut rng = StdRng::seed_from_u64(seed);
    let sample: Vec<Item<V>> = items
        .iter()
        .filter(|_| rng.gen_range(0..lg) == 0)
        .copied()
        .collect();
    let mut sorted_sample = sample;
    sort_small(c, scratch, &mut sorted_sample, engine)?;
    let stride = lg * lg;
    let pivot_keys: Vec<u128> = sorted_sample
        .iter()
        .skip(stride - 1)
        .step_by(stride)
        .map(|it| it.key)
        .collect();

    let regions = pivot_keys.len() + 1;
    let nbins = regions.next_power_of_two();
    let chunk = n.div_ceil(nbins);
    let cap = (4 * chunk).next_power_of_two().max(16);

    let mut pivots_store = scratch.lease((nbins - 1).max(1), u128::MAX);
    pivots_store[..pivot_keys.len()].copy_from_slice(&pivot_keys);

    // --- Build the bin layout: β bins of `cap`, input chunked across bins.
    let mut slots = scratch.lease(nbins * cap, filler_hi::<V>());
    {
        let mut t = Tracked::new(c, &mut slots);
        let tr = t.as_raw();
        par_for(c, 0, n, grain_for(c), &|c, i| {
            let (b, off) = (i / chunk, i % chunk);
            let mut s = Slot::real(items[i], 0);
            s.sk = items[i].key;
            // SAFETY: (b, off) pairs are distinct.
            unsafe { tr.set(c, b * cap + off, s) };
        });
    }

    // --- Butterfly.
    let overflow = AtomicBool::new(false);
    {
        let mut pivots_t = Tracked::new(c, &mut pivots_store);
        let pv = pivots_t.as_raw();
        let mut t = Tracked::new(c, &mut slots);
        let mut scratch_store = scratch.lease(t.len(), filler_hi::<V>());
        let mut tmp = Tracked::new(c, &mut scratch_store);
        rec(
            c,
            scratch,
            t.borrow_mut(),
            tmp.borrow_mut(),
            nbins,
            cap,
            PivotView { r0: 0, stride: 1 },
            &pv,
            engine,
            gamma,
            &overflow,
        );
    }
    if overflow.load(Ordering::Relaxed) {
        return Err(OblivError::PivotOverflow);
    }

    // --- Read out: bins are sorted with reals packed in front. Per-bin
    // loads + a prefix sum keep the span logarithmic.
    {
        let mut t = Tracked::new(c, &mut slots);
        let tr = t.as_raw();
        let mut loads = scratch.lease(nbins, 0u64);
        {
            let mut lt = Tracked::new(c, &mut loads);
            metrics::par_fill(c, &mut lt, &|c, b| {
                (0..cap)
                    .map(|i| {
                        // SAFETY: read-only phase.
                        u64::from(unsafe { tr.get(c, b * cap + i) }.is_real())
                    })
                    .sum()
            });
            crate::scan::prefix_sum_in(c, scratch, &mut lt, false, crate::scan::Schedule::Tree);
        }
        let offsets = &*loads;
        let mut out_t = Tracked::new(c, items);
        let or = out_t.as_raw();
        par_for(c, 0, nbins, grain_for(c), &|c, b| {
            let mut at = offsets[b] as usize;
            for i in 0..cap {
                // SAFETY: bins write disjoint output ranges.
                let s = unsafe { tr.get(c, b * cap + i) };
                if s.is_real() {
                    unsafe { or.set(c, at, s.item) };
                    at += 1;
                }
            }
        });
    }
    Ok(())
}

/// Padded bitonic sort for small instances (and the pivot sample).
fn sort_small<C: Ctx, V: Val>(
    c: &C,
    scratch: &ScratchPool,
    items: &mut [Item<V>],
    engine: Engine,
) -> Result<()> {
    let n = items.len();
    if n <= 1 {
        return Ok(());
    }
    let m = n.next_power_of_two();
    let mut slots = scratch.lease(m, filler_hi::<V>());
    {
        let mut t = Tracked::new(c, &mut slots);
        let tr = t.as_raw();
        let items_ref: &[Item<V>] = items;
        par_for(c, 0, n, grain_for(c), &|c, i| {
            // SAFETY: disjoint writes per i.
            unsafe {
                tr.set(
                    c,
                    i,
                    Slot {
                        sk: items_ref[i].key,
                        ..Slot::real(items_ref[i], 0)
                    },
                )
            };
        });
        engine.sort_slots(c, scratch, &mut t);
        let tr = t.as_raw();
        let mut out_t = Tracked::new(c, items);
        let or = out_t.as_raw();
        par_for(c, 0, n, grain_for(c), &|c, i| unsafe {
            // SAFETY: disjoint per-index slots.
            let s = tr.get(c, i);
            debug_assert!(s.is_real());
            or.set(c, i, s.item);
        });
    }
    Ok(())
}

/// Recursive butterfly over bins; see REC-ORBA for the schedule. `slots`
/// holds the result on return.
#[allow(clippy::too_many_arguments)]
fn rec<C: Ctx, V: Val>(
    c: &C,
    pool: &ScratchPool,
    mut slots: Tracked<'_, Slot<V>>,
    mut scratch: Tracked<'_, Slot<V>>,
    nbins: usize,
    cap: usize,
    view: PivotView,
    pivots: &RawTracked<u128>,
    engine: Engine,
    gamma: usize,
    overflow: &AtomicBool,
) {
    if nbins <= gamma {
        base_case(
            c,
            pool,
            &mut slots,
            &mut scratch,
            nbins,
            cap,
            view,
            pivots,
            engine,
            overflow,
        );
        return;
    }
    let k = nbins.trailing_zeros();
    let k1 = k.div_ceil(2);
    let b1 = 1usize << k1; // partitions (stage 1), fine bins per row (stage 2)
    let b2 = nbins >> k1; // bins per partition (stage 1 output), rows (stage 2)

    // Stage 1: route within each partition by the coarse boundaries
    // (every b1-th of this subproblem's pivots).
    par_rows2(
        c,
        slots.borrow_mut(),
        scratch.borrow_mut(),
        b1,
        b2 * cap,
        0,
        &|c, _, s, tmp| {
            rec(
                c,
                pool,
                s,
                tmp,
                b2,
                cap,
                PivotView {
                    r0: view.r0,
                    stride: view.stride * b1,
                },
                pivots,
                engine,
                gamma,
                overflow,
            );
        },
    );

    transpose(c, &mut slots, &mut scratch, b1, b2, cap);

    // Stage 2: row q covers this subproblem's regions
    // [q·b1·stride, (q+1)·b1·stride); refine by the fine boundaries.
    par_rows2(
        c,
        scratch.borrow_mut(),
        slots.borrow_mut(),
        b2,
        b1 * cap,
        0,
        &|c, q, s, tmp| {
            rec(
                c,
                pool,
                s,
                tmp,
                b1,
                cap,
                PivotView {
                    r0: view.r0 + q * b1 * view.stride,
                    stride: view.stride,
                },
                pivots,
                engine,
                gamma,
                overflow,
            );
        },
    );

    // Copy the result back into `slots`.
    let sr = scratch.as_raw();
    let dr = slots.as_raw();
    par_for(c, 0, nbins, grain_for(c), &|c, b| unsafe {
        // SAFETY: disjoint cap-slot chunks per b.
        dr.copy_from(c, &sr, b * cap, b * cap, cap);
    });
}

/// Base case: sort the whole group, then split the sorted run into bins at
/// the pivot boundaries (binary searches — the input permutation makes this
/// safe to do non-obliviously).
#[allow(clippy::too_many_arguments)]
fn base_case<C: Ctx, V: Val>(
    c: &C,
    pool: &ScratchPool,
    slots: &mut Tracked<'_, Slot<V>>,
    scratch: &mut Tracked<'_, Slot<V>>,
    nbins: usize,
    cap: usize,
    view: PivotView,
    pivots: &RawTracked<u128>,
    engine: Engine,
    overflow: &AtomicBool,
) {
    engine.sort_slots(c, pool, slots);
    // Count reals: first index whose slot is a filler (sk = MAX sorts last;
    // real keys are < MAX by construction).
    let total = {
        let mut lo = 0;
        let mut hi = slots.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if slots.get(c, mid).is_real() {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    };
    // Boundary positions via binary search (upper bound of each pivot key).
    let mut pos = pool.lease(nbins + 1, 0usize);
    pos[nbins] = total;
    for (t, p) in pos.iter_mut().enumerate().take(nbins).skip(1) {
        let key = view.boundary(c, pivots, t);
        let mut lo = 0;
        let mut hi = total;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if slots.get(c, mid).sk <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        *p = lo;
    }
    // Distribute the sorted segments into fixed-capacity bins in scratch.
    {
        let sr = slots.as_raw();
        let dr = scratch.as_raw();
        let pos = &*pos;
        par_for(c, 0, nbins, grain_for(c), &|c, b| {
            let (lo, hi) = (pos[b], pos[b + 1]);
            let load = hi - lo;
            if load > cap {
                overflow.store(true, Ordering::Relaxed);
            }
            let take = load.min(cap);
            // SAFETY: bins write disjoint cap-chunks of scratch.
            unsafe {
                dr.copy_from(c, &sr, lo, b * cap, take);
                for i in take..cap {
                    dr.set(c, b * cap + i, filler_hi::<V>());
                }
            }
        });
    }
    // Copy back.
    let sr = scratch.as_raw();
    let dr = slots.as_raw();
    par_for(c, 0, nbins, grain_for(c), &|c, b| unsafe {
        // SAFETY: disjoint chunks.
        dr.copy_from(c, &sr, b * cap, b * cap, cap);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::with_retries;
    use crate::slot::composite_key;
    use fj::{Pool, SeqCtx};
    use rand::seq::SliceRandom;

    fn shuffled_items(n: usize, seed: u64) -> Vec<Item<u64>> {
        let mut v: Vec<Item<u64>> = (0..n as u64)
            .map(|i| Item::new(composite_key(i.wrapping_mul(2654435761) % (n as u64), i), i))
            .collect();
        v.shuffle(&mut StdRng::seed_from_u64(seed));
        v
    }

    fn assert_sorted<V: Val>(items: &[Item<V>]) {
        assert!(items.windows(2).all(|w| w[0].key <= w[1].key), "not sorted");
    }

    #[test]
    fn sorts_small_inputs() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        for n in [0usize, 1, 2, 17, 100, 1000, 2048] {
            let mut items = shuffled_items(n, 3);
            rec_sort_items(&c, &sp, &mut items, Engine::BitonicRec, 16, 5).unwrap();
            assert_sorted(&items);
            assert_eq!(items.len(), n);
        }
    }

    #[test]
    fn sorts_large_input_through_butterfly() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let n = 40_000;
        let mut items = shuffled_items(n, 11);
        // Retries sort in place: a failed attempt leaves `items` untouched.
        let (_, attempts) = with_retries(16, |a| {
            rec_sort_items(&c, &sp, &mut items, Engine::BitonicRec, 16, 100 + a as u64)
        });
        assert!(attempts <= 3, "needed {attempts} attempts");
        assert_sorted(&items);
        let mut vals: Vec<u64> = items.iter().map(|i| i.val).collect();
        vals.sort_unstable();
        assert_eq!(vals, (0..n as u64).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_rec_sort() {
        let pool = Pool::new(4);
        let sp = ScratchPool::new();
        let n = 30_000;
        let mut items = shuffled_items(n, 23);
        pool.run(|c| {
            with_retries(16, |a| {
                rec_sort_items(c, &sp, &mut items, Engine::BitonicRec, 16, 7 + a as u64)
            })
        });
        assert_sorted(&items);
    }

    #[test]
    fn handles_duplicate_primary_keys_with_tiebreaks() {
        let c = SeqCtx::new();
        let n = 20_000usize;
        // Only 4 distinct primary keys; composite keys stay distinct.
        let mut items: Vec<Item<u64>> = (0..n as u64)
            .map(|i| Item::new(composite_key(i % 4, i), i))
            .collect();
        items.shuffle(&mut StdRng::seed_from_u64(9));
        let sp = ScratchPool::new();
        let (_, _) = with_retries(16, |a| {
            rec_sort_items(&c, &sp, &mut items, Engine::BitonicRec, 16, 55 + a as u64)
        });
        assert_sorted(&items);
    }
}
