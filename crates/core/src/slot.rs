//! Element representation shared by every oblivious routine.
//!
//! Public inputs are [`Item`]s — a 128-bit sort key plus a `Copy` payload.
//! Internally, algorithms work on [`Slot`]s, which extend items with the
//! bookkeeping the paper's constructions need: a routing *label* (the
//! random bin choice of ORBA, §C.2), a scratch *sort key* recomputed before
//! each oblivious sort, and status flags (`REAL` / `TEMP` / `EXCESS`;
//! a slot with no flags is a *filler*, the padding element `⊥`).

/// Payload bound for everything flowing through the oblivious algorithms.
pub trait Val: Copy + Default + Send + Sync + 'static {}
impl<T: Copy + Default + Send + Sync + 'static> Val for T {}

/// A keyed record. Keys are `u128` so callers can pack composite keys
/// (primary ‖ tiebreak) without loss; plain `u64` keys are widened.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Item<V> {
    pub key: u128,
    pub val: V,
}

impl<V: Val> Item<V> {
    pub fn new(key: u128, val: V) -> Self {
        Item { key, val }
    }
}

/// Slot status bits.
pub mod flags {
    /// Carries a real element.
    pub const REAL: u8 = 1;
    /// Temporary placeholder inserted by bin placement (§C.1 step 1).
    pub const TEMP: u8 = 2;
    /// Marked as beyond its bin's capacity (§C.1 step 3).
    pub const EXCESS: u8 = 4;
}

/// Internal working element.
#[derive(Clone, Copy, Debug, Default)]
pub struct Slot<V> {
    /// Scratch sort key for the current phase (recomputed before each
    /// oblivious sort).
    pub sk: u128,
    /// Routing label: the element's random bin choice (ORBA) or random
    /// permutation label (ORP); temp slots reuse it for their group id.
    pub label: u64,
    /// Status bits from [`flags`].
    pub flags: u8,
    /// The carried record (meaningless unless `REAL`).
    pub item: Item<V>,
}

impl<V: Val> Slot<V> {
    /// A filler (`⊥`) slot.
    #[inline]
    pub fn filler() -> Self {
        Slot::default()
    }

    /// A real slot carrying `item` with routing label `label`.
    #[inline]
    pub fn real(item: Item<V>, label: u64) -> Self {
        Slot {
            sk: 0,
            label,
            flags: flags::REAL,
            item,
        }
    }

    /// A temp placeholder for group `g` (§C.1 step 1).
    #[inline]
    pub fn temp(g: u64) -> Self {
        Slot {
            sk: 0,
            label: g,
            flags: flags::TEMP,
            item: Item::default(),
        }
    }

    #[inline]
    pub fn is_real(&self) -> bool {
        self.flags & flags::REAL != 0
    }

    #[inline]
    pub fn is_temp(&self) -> bool {
        self.flags & flags::TEMP != 0
    }

    #[inline]
    pub fn is_filler(&self) -> bool {
        self.flags & (flags::REAL | flags::TEMP) == 0
    }

    #[inline]
    pub fn is_excess(&self) -> bool {
        self.flags & flags::EXCESS != 0
    }
}

/// The sort-key extractor every network call in this crate uses.
#[inline]
pub fn sk_of<V>(s: &Slot<V>) -> u128 {
    s.sk
}

/// Pack a `u64` key and a 64-bit tiebreak into a composite `u128` key.
#[inline]
pub fn composite_key(key: u64, tiebreak: u64) -> u128 {
    ((key as u128) << 64) | tiebreak as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_predicates() {
        let f = Slot::<u64>::filler();
        assert!(f.is_filler() && !f.is_real() && !f.is_temp());
        let r = Slot::real(Item::new(1, 2u64), 3);
        assert!(r.is_real() && !r.is_filler());
        let t = Slot::<u64>::temp(5);
        assert!(t.is_temp() && !t.is_filler() && !t.is_real());
        assert_eq!(t.label, 5);
    }

    #[test]
    fn composite_key_orders_lexicographically() {
        assert!(composite_key(1, u64::MAX) < composite_key(2, 0));
        assert!(composite_key(7, 3) < composite_key(7, 4));
    }
}
