//! Tag-sort: oblivious sorting and routing of packed key–value cells.
//!
//! The store's hot paths (and any caller whose records are key–value
//! shaped) do not need the full ORP + REC-SORT pipeline of
//! [`crate::oblivious_sort`]: a comparator network is *unconditionally*
//! oblivious, and once the record is packed into a 32-byte [`TagCell`]
//! (16-byte `key ‖ tiebreak` tag, 16-byte payload lane) the network moves
//! 3× less data per compare-exchange than the `Slot`-wrapped
//! representation. This module is the public face of that fast path:
//!
//! * [`oblivious_sort_kv`] — stable oblivious sort of `(u64 key, u64 val)`
//!   records via one cell network. The tag packs the submission index as a
//!   tiebreak ([`composite_key`]), so equal keys keep their input order
//!   and every comparison is strict.
//! * [`compact_cells`] — stable oblivious tight compaction of a cell
//!   array: all non-filler cells move to the front, in order, through
//!   `log n` fixed-pattern shift levels (`O(n log n)` work, no
//!   comparators) — cheaper than the sort-based
//!   [`crate::oblivious_compact`] and the routing half of the tag-sort
//!   trick: sort the dense tags, then move each wide lane exactly once.
//!
//! Obliviousness: the cell networks touch a fixed comparator schedule, the
//! compaction reads/writes every position of every level, and the shift
//! amounts live in tracked scratch — for a fixed length the adversary
//! trace is bit-identical across inputs (no distributional argument
//! needed, unlike the post-ORP phases; see `obliv_check`'s tag-sort row).

use crate::engine::Engine;
use crate::scan::{prefix_sum_in, Schedule};
use crate::slot::composite_key;
use fj::{grain_for, par_for, Ctx};
use metrics::{ScratchPool, Tracked};
use sortnet::{select_cell, select_u64, TagCell};

/// Stable, data-oblivious sort of `(key, val)` records ascending by key:
/// one branchless cell network over `(key ‖ index, val)` tags.
///
/// With the comparator-network engines (`BitonicRec`/`BitonicFlat`/
/// `OddEven` — every store configuration) the access pattern is a fixed
/// function of `data.len()` alone: no coins, no retries, and sortedness
/// is guaranteed by the network. `Engine::Shellsort` is the exception it
/// inherits from [`Engine::sort_cells`]: randomized Shellsort draws
/// seeded public coins (trace fixed per `(seed, n)`) and sorts w.h.p.
/// without a retry wrapper — same contract as `Engine::sort_slots`, so
/// don't feed its output to anything that *requires* sorted input (e.g.
/// a bitonic merge) without checking.
///
/// This is the tag-sort fast path the store's merge pipeline is built on;
/// prefer it over [`crate::oblivious_sort`] whenever the payload fits the
/// 16-byte aux lane (the general pipeline remains the asymptotically
/// better choice for wide records and huge `n`).
pub fn oblivious_sort_kv<C: Ctx>(
    c: &C,
    scratch: &ScratchPool,
    data: &mut [(u64, u64)],
    engine: Engine,
) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let m = n.next_power_of_two();
    let mut cells = scratch.lease(m, TagCell::filler());
    let mut t = Tracked::new(c, &mut cells);
    {
        let tr = t.as_raw();
        let input: &[(u64, u64)] = data;
        par_for(c, 0, m, grain_for(c), &|c, i| {
            // `n` is public; every cell is written exactly once.
            let cell = if i < input.len() {
                let (k, v) = input[i];
                TagCell::new(composite_key(k, i as u64), v as u128)
            } else {
                TagCell::filler()
            };
            // SAFETY: disjoint writes per i.
            unsafe { tr.set(c, i, cell) };
        });
    }
    engine.sort_cells(c, scratch, &mut t);
    {
        let tr = t.as_raw();
        let mut out = Tracked::new(c, data);
        let or = out.as_raw();
        par_for(c, 0, n, grain_for(c), &|c, i| unsafe {
            // SAFETY: disjoint per-index reads/writes.
            let cell = tr.get(c, i);
            debug_assert!(!cell.is_filler());
            or.set(c, i, ((cell.tag >> 64) as u64, cell.aux as u64));
        });
    }
}

/// Stable oblivious tight compaction of a power-of-two cell array: every
/// non-filler cell moves to the front, preserving order; the suffix is
/// canonical fillers. Fixed access pattern (a prefix sum plus `log n`
/// full-array shift levels), `O(n log n)` work, `O(log n · log n)` span.
///
/// The routing is the classic order-preserving displacement network: cell
/// `i` with rank `r_i` (its index among the non-fillers) must move left by
/// `d_i = i − r_i`; processing the bits of `d` from least to most
/// significant, a level-`k` pass moves each cell left by `2^k` iff bit `k`
/// of its remaining displacement is set. Because `d` is non-decreasing
/// over the non-fillers, no two cells ever collide at any level (the
/// mod-`2^{k+1}` positions stay strictly increasing), so each output
/// position has at most one candidate and both lanes route with branchless
/// selects.
pub fn compact_cells<C: Ctx>(c: &C, scratch: &ScratchPool, t: &mut Tracked<'_, TagCell>) {
    let m = t.len();
    if m <= 1 {
        return;
    }
    assert!(
        m.is_power_of_two(),
        "cell compaction requires power-of-two length, got {m}"
    );

    // Displacements: exclusive prefix count of non-fillers, then d = i - r.
    let mut shift_store = scratch.lease(m, 0u64);
    {
        let mut st = Tracked::new(c, &mut shift_store);
        {
            let sr = st.as_raw();
            let tr = t.as_raw();
            par_for(c, 0, m, grain_for(c), &|c, i| unsafe {
                // SAFETY: disjoint writes; read-only cells.
                let real = !tr.get(c, i).is_filler();
                sr.set(c, i, real as u64);
            });
        }
        prefix_sum_in(c, scratch, &mut st, false, Schedule::Tree);
        {
            let sr = st.as_raw();
            par_for(c, 0, m, grain_for(c), &|c, i| unsafe {
                // SAFETY: each index rewritten once.
                let rank = sr.get(c, i);
                sr.set(c, i, i as u64 - rank);
            });
        }
    }

    // log m shift levels, ping-ponging between the caller's array and a
    // leased double buffer (both lanes ride together with their shifts).
    let mut cell_buf = scratch.lease(m, TagCell::filler());
    let mut shift_buf = scratch.lease(m, 0u64);
    let levels = m.trailing_zeros() as usize;
    {
        let mut cb = Tracked::new(c, &mut cell_buf);
        let mut st = Tracked::new(c, &mut shift_store);
        let mut sb = Tracked::new(c, &mut shift_buf);
        let a = (t.as_raw(), st.as_raw());
        let b = (cb.as_raw(), sb.as_raw());
        for k in 0..levels {
            let ((src, src_s), (dst, dst_s)) = if k % 2 == 0 { (a, b) } else { (b, a) };
            let step = 1usize << k;
            par_for(c, 0, m, grain_for(c), &|c, pos| unsafe {
                // SAFETY: level-synchronous: reads hit only `src`, writes
                // only `dst`, each position written once.
                let here = src.get(c, pos);
                let here_d = src_s.get(c, pos);
                let stays = !here.is_filler() && (here_d >> k) & 1 == 0;
                let (inc, inc_d) = if pos + step < m {
                    (src.get(c, pos + step), src_s.get(c, pos + step))
                } else {
                    (TagCell::filler(), 0)
                };
                c.work(1);
                let arrives = !inc.is_filler() && (inc_d >> k) & 1 == 1;
                debug_assert!(!(stays && arrives), "compaction collision at {pos}");
                // Branchless two-way select: arrival wins, else the stayer,
                // else a canonical filler. Whole cells route through the
                // vectorizable `select_cell`; the shift lane stays a word
                // select.
                let keep = select_cell(stays, TagCell::filler(), here);
                let keep_d = select_u64(stays, 0, here_d);
                dst.set(c, pos, select_cell(arrives, keep, inc));
                dst_s.set(c, pos, select_u64(arrives, keep_d, inc_d));
            });
        }
        // Odd level count: the result lives in the double buffer.
        if levels % 2 == 1 {
            let (src, dst) = (b.0, a.0);
            par_for(c, 0, m, grain_for(c), &|c, i| unsafe {
                // SAFETY: disjoint per-index copy.
                dst.set(c, i, src.get(c, i));
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osort::{oblivious_sort, OSortParams};
    use fj::{Pool, SeqCtx};
    use metrics::{measure, CacheConfig, TraceMode};
    use proptest::prelude::*;

    #[test]
    fn kv_sort_matches_std_stable_sort() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        for n in [0usize, 1, 2, 3, 100, 1000, 4096] {
            let mut data: Vec<(u64, u64)> = (0..n as u64)
                .map(|i| (i.wrapping_mul(0x9E3779B9) % 64, i))
                .collect();
            let mut expect = data.clone();
            expect.sort_by_key(|&(k, _)| k); // stable
            oblivious_sort_kv(&c, &sp, &mut data, Engine::BitonicRec);
            assert_eq!(data, expect, "n = {n}");
        }
    }

    #[test]
    fn kv_sort_under_every_engine() {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let input: Vec<(u64, u64)> = (0..500u64).map(|i| (i.wrapping_mul(31) % 97, i)).collect();
        let mut expect = input.clone();
        expect.sort_by_key(|&(k, _)| k);
        for engine in [
            Engine::BitonicRec,
            Engine::BitonicFlat,
            Engine::OddEven,
            Engine::Shellsort { seed: 5 },
        ] {
            let mut data = input.clone();
            oblivious_sort_kv(&c, &sp, &mut data, engine);
            assert_eq!(data, expect, "engine {engine:?}");
        }
    }

    #[test]
    fn kv_sort_trace_is_input_independent() {
        // Unconditional Definition-1 equality: unlike the post-ORP phases
        // of the general sort, the cell network needs no distributional
        // argument — duplicate keys included.
        let n = 1200usize;
        let run = |keys: Vec<u64>| {
            let (_, rep) = measure(CacheConfig::default(), TraceMode::Hash, |c| {
                let sp = ScratchPool::new();
                let mut data: Vec<(u64, u64)> = keys
                    .iter()
                    .enumerate()
                    .map(|(i, &k)| (k, i as u64))
                    .collect();
                oblivious_sort_kv(c, &sp, &mut data, Engine::BitonicRec);
            });
            (rep.trace_hash, rep.trace_len)
        };
        let a = run((0..n as u64).collect());
        let b = run((0..n as u64).rev().collect());
        let z = run(vec![7; n]);
        assert_eq!(a, b);
        assert_eq!(a, z);
    }

    #[test]
    fn kv_sort_parallel_matches() {
        let pool = Pool::new(4);
        let sp = ScratchPool::new();
        let mut data: Vec<(u64, u64)> = (0..20_000u64)
            .map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15) >> 20, i))
            .collect();
        let mut expect = data.clone();
        expect.sort_by_key(|&(k, _)| k);
        pool.run(|c| oblivious_sort_kv(c, &sp, &mut data, Engine::BitonicRec));
        assert_eq!(data, expect);
    }

    fn compact_oracle(cells: &[TagCell]) -> Vec<TagCell> {
        let mut out: Vec<TagCell> = cells.iter().copied().filter(|x| !x.is_filler()).collect();
        out.resize(cells.len(), TagCell::filler());
        out
    }

    fn run_compact(cells: &mut Vec<TagCell>) {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let mut t = Tracked::new(&c, cells.as_mut_slice());
        compact_cells(&c, &sp, &mut t);
    }

    #[test]
    fn compact_exhaustive_small_patterns() {
        // Every flag pattern at m = 8: the no-collision displacement
        // argument exercised on all 256 cases.
        for mask in 0u32..256 {
            let mut cells: Vec<TagCell> = (0..8u128)
                .map(|i| {
                    if (mask >> i) & 1 == 1 {
                        TagCell::new(i * 10, i + 100)
                    } else {
                        TagCell::filler()
                    }
                })
                .collect();
            let expect = compact_oracle(&cells);
            run_compact(&mut cells);
            assert_eq!(cells, expect, "mask {mask:08b}");
        }
    }

    #[test]
    fn compact_preserves_order_and_lanes() {
        let mut cells: Vec<TagCell> = (0..1024u128)
            .map(|i| {
                if i % 3 == 0 {
                    TagCell::new(i.wrapping_mul(0x9E37) & (u128::MAX >> 1), i)
                } else {
                    TagCell::filler()
                }
            })
            .collect();
        let expect = compact_oracle(&cells);
        run_compact(&mut cells);
        assert_eq!(cells, expect);
    }

    #[test]
    fn compact_trace_independent_of_flag_positions() {
        let m = 256usize;
        let run = |flags: Vec<bool>| {
            let (_, rep) = measure(CacheConfig::default(), TraceMode::Hash, |c| {
                let sp = ScratchPool::new();
                let mut cells: Vec<TagCell> = flags
                    .iter()
                    .enumerate()
                    .map(|(i, &f)| {
                        if f {
                            TagCell::new(i as u128, 1)
                        } else {
                            TagCell::filler()
                        }
                    })
                    .collect();
                let mut t = Tracked::new(c, &mut cells);
                compact_cells(c, &sp, &mut t);
            });
            (rep.trace_hash, rep.trace_len)
        };
        let a = run((0..m).map(|i| i % 2 == 0).collect());
        let b = run((0..m).map(|i| i >= m / 2).collect());
        let z = run(vec![false; m]);
        assert_eq!(a, b, "flag positions leaked into the compaction trace");
        assert_eq!(a, z, "flag count leaked into the compaction trace");
    }

    #[test]
    fn compact_parallel_matches() {
        let pool = Pool::new(4);
        let sp = ScratchPool::new();
        let mut cells: Vec<TagCell> = (0..4096u128)
            .map(|i| {
                if i % 7 < 3 {
                    TagCell::new(i, i * 2)
                } else {
                    TagCell::filler()
                }
            })
            .collect();
        let expect = compact_oracle(&cells);
        pool.run(|c| {
            let mut t = Tracked::new(c, &mut cells);
            compact_cells(c, &sp, &mut t);
        });
        assert_eq!(cells, expect);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The tag-sort fast path and the full §3.3/§3.4 pipeline agree on
        /// arbitrary wide records (both are stable sorts by key).
        #[test]
        fn prop_kv_sort_matches_oblivious_sort(
            pairs in proptest::collection::vec((any::<u64>(), 0u64..u64::MAX), 0..400),
        ) {
            let c = SeqCtx::new();
            let sp = ScratchPool::new();
            let mut tag_path = pairs.clone();
            oblivious_sort_kv(&c, &sp, &mut tag_path, Engine::BitonicRec);
            let mut record_path = pairs;
            let params = OSortParams::practical(record_path.len());
            oblivious_sort(&c, &sp, &mut record_path, params, 17);
            prop_assert_eq!(tag_path, record_path);
        }

        #[test]
        fn prop_compact_matches_filter(flags in proptest::collection::vec(any::<bool>(), 1..300)) {
            let m = flags.len().next_power_of_two();
            let mut cells: Vec<TagCell> = flags
                .iter()
                .enumerate()
                .map(|(i, &f)| {
                    if f { TagCell::new(i as u128, i as u128 ^ 0x55) } else { TagCell::filler() }
                })
                .collect();
            cells.resize(m, TagCell::filler());
            let expect = compact_oracle(&cells);
            run_compact(&mut cells);
            prop_assert_eq!(cells, expect);
        }
    }
}
