//! REC-ORBA: recursive, cache-agnostic oblivious random bin assignment
//! (§3.2, §D.1).
//!
//! META-ORBA's γ-way butterfly is evaluated recursively: a problem over `β`
//! bins splits into `β₁ = 2^⌈k/2⌉` partitions of `β₂ = 2^⌊k/2⌋` consecutive
//! bins routed by the *high* half of the unconsumed label window, a matrix
//! transposition of the `β₁ × β₂` bin matrix, and `β₂` subproblems of `β₁`
//! bins routed by the *low* half. Base-case subproblems (≤ γ bins) are one
//! oblivious bin placement each. Costs (Lemma 3.1, at `Z = Θ(log² n)`,
//! `γ = Θ(log n)`):
//!
//! * work `O(n log n)` (with the bitonic engine: `O(n log n log log n)`),
//! * span `O(log n · log log n)` (practical engine: one extra `log log`),
//! * cache complexity `O((n/B) · log_M n)`, cache-agnostically.
//!
//! Obliviousness: every step is a bin placement (oblivious), a transpose,
//! or a bulk copy — the access pattern depends only on `(n, Z, γ)`, never
//! on data or labels. Bin overflow is detected inside bin placement, the
//! pass always runs to completion, and the caller retries with fresh
//! labels ([`crate::error::with_retries`]).

use crate::binplace::bin_place;
use crate::engine::Engine;
use crate::error::{OblivError, Result};
use crate::slot::{Item, Slot, Val};
use fj::{grain_for, par_for, Ctx};
use metrics::{ScratchPool, Tracked};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sortnet::{par_rows2, transpose};
use std::sync::atomic::{AtomicBool, Ordering};

/// Tuning parameters for ORBA and the sorting pipelines built on it.
#[derive(Clone, Copy, Debug)]
pub struct OrbaParams {
    /// Bin capacity `Z` (power of two). The paper uses `Θ(log² n)`.
    pub z: usize,
    /// Butterfly branching factor `γ` (power of two). The paper uses
    /// `Θ(log n)`.
    pub gamma: usize,
    /// Oblivious network for the poly-log-sized sorts.
    pub engine: Engine,
}

impl OrbaParams {
    /// The paper's parameter regime for input size `n`:
    /// `Z = next_pow2(log² n)`, `γ = next_pow2(log n)`.
    pub fn for_n(n: usize) -> Self {
        let lg = (usize::BITS - n.max(2).leading_zeros()) as usize; // ⌈log2⌉
        OrbaParams {
            z: (lg * lg).next_power_of_two().max(16),
            gamma: lg.next_power_of_two().max(4),
            engine: Engine::default(),
        }
    }

    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }
}

/// Output of ORBA: `nbins` bins of exactly `z` slots each, concatenated.
/// Every real element sits in the bin named by its label.
pub struct BinLayout<V> {
    pub slots: Vec<Slot<V>>,
    pub nbins: usize,
    pub z: usize,
}

impl<V: Val> BinLayout<V> {
    /// Real-element loads per bin (public after ORP's final reveal; used by
    /// tests and the overflow experiments).
    pub fn loads(&self) -> Vec<usize> {
        self.slots
            .chunks(self.z)
            .map(|bin| bin.iter().filter(|s| s.is_real()).count())
            .collect()
    }
}

/// Number of bins for `n` elements at bin capacity `z`: the smallest power
/// of two with `β · z/2 ≥ n`.
pub fn bins_for(n: usize, z: usize) -> usize {
    (2 * n).div_ceil(z).next_power_of_two().max(1)
}

/// One attempt of REC-ORBA: assign each of `items` to a uniformly random
/// bin, obliviously. Fails with [`OblivError::BinOverflow`] with negligible
/// probability (at the paper's parameters).
pub fn rec_orba<C: Ctx, V: Val>(
    c: &C,
    scratch: &ScratchPool,
    items: &[Item<V>],
    p: OrbaParams,
    seed: u64,
) -> Result<BinLayout<V>> {
    let nbins = bins_for(items.len(), p.z);
    let mut slots = vec![Slot::<V>::filler(); nbins * p.z];
    rec_orba_into(c, scratch, items, p, seed, &mut slots)?;
    Ok(BinLayout {
        slots,
        nbins,
        z: p.z,
    })
}

/// [`rec_orba`] writing the bin layout into caller-provided storage of
/// `bins_for(n, z) · z` slots (typically a [`ScratchPool`] lease), so the
/// hot pipelines allocate nothing per attempt. `slots` must arrive filled
/// with fillers — both `vec![Slot::filler(); _]` and a filler-filled lease
/// satisfy this.
pub fn rec_orba_into<C: Ctx, V: Val>(
    c: &C,
    scratch: &ScratchPool,
    items: &[Item<V>],
    p: OrbaParams,
    seed: u64,
    slots: &mut [Slot<V>],
) -> Result<()> {
    let n = items.len();
    let nbins = bins_for(n, p.z);
    assert_eq!(slots.len(), nbins * p.z, "ORBA layout shape mismatch");
    let mut rng = StdRng::seed_from_u64(seed);
    // Label draw order is fixed (sequential), so the RNG stream — and with
    // it the whole execution — depends only on (n, seed).
    let mut labels = scratch.lease(n, 0u64);
    for l in labels.iter_mut() {
        *l = rng.gen_range(0..nbins as u64);
    }

    build_layout(c, items, &labels, nbins, p.z, slots);
    let mut t = Tracked::new(c, slots);
    let mut scratch_store = scratch.lease(t.len(), Slot::<V>::filler());
    let mut tmp = Tracked::new(c, &mut scratch_store);
    let overflow = AtomicBool::new(false);
    rec(
        c,
        scratch,
        t.borrow_mut(),
        tmp.borrow_mut(),
        nbins,
        p.z,
        0,
        &p,
        &overflow,
    );
    if overflow.load(Ordering::Relaxed) {
        return Err(OblivError::BinOverflow);
    }
    Ok(())
}

/// Initial layout: β bins of Z slots, each bin holding Z/2 input positions
/// (real or filler) and Z/2 fillers (§C.2). `slots` arrives filler-filled;
/// only the first half of each bin is (re)written.
fn build_layout<C: Ctx, V: Val>(
    c: &C,
    items: &[Item<V>],
    labels: &[u64],
    nbins: usize,
    z: usize,
    slots: &mut [Slot<V>],
) {
    let half = z / 2;
    let mut t = Tracked::new(c, slots);
    let tr = t.as_raw();
    par_for(c, 0, nbins * half, grain_for(c), &|c, idx| {
        let (b, i) = (idx / half, idx % half);
        let slot = if idx < items.len() {
            Slot::real(items[idx], labels[idx])
        } else {
            Slot::filler()
        };
        // SAFETY: each (b, i) writes a distinct slot.
        unsafe { tr.set(c, b * z + i, slot) };
    });
}

/// Recursive butterfly: route every real element in `slots` (β bins × Z) to
/// the local bin named by label bits `[shift, shift + log₂ β)`.
#[allow(clippy::too_many_arguments)]
fn rec<C: Ctx, V: Val>(
    c: &C,
    pool: &ScratchPool,
    mut slots: Tracked<'_, Slot<V>>,
    mut scratch: Tracked<'_, Slot<V>>,
    nbins: usize,
    z: usize,
    shift: u32,
    p: &OrbaParams,
    overflow: &AtomicBool,
) {
    if nbins <= p.gamma {
        if bin_place(c, pool, &mut slots, nbins, z, shift, p.engine).is_err() {
            overflow.store(true, Ordering::Relaxed);
        }
        return;
    }
    let k = nbins.trailing_zeros();
    let k1 = k.div_ceil(2); // low-bit window (stage 2): β₁ = 2^k1 partitions
    let k2 = k - k1; // high-bit window (stage 1): β₂ = 2^k2 bins each
    let b1 = 1usize << k1;
    let b2 = 1usize << k2;

    // Stage 1: each of the β₁ partitions (β₂ consecutive bins) routes its
    // elements by the high window bits.
    par_rows2(
        c,
        slots.borrow_mut(),
        scratch.borrow_mut(),
        b1,
        b2 * z,
        0,
        &|c, _, s, tmp| {
            rec(c, pool, s, tmp, b2, z, shift + k1, p, overflow);
        },
    );

    // Transpose the β₁ × β₂ matrix of bins so the β₂ bins that agree on the
    // high window become contiguous.
    transpose(c, &mut slots, &mut scratch, b1, b2, z);

    // Stage 2: each of the β₂ rows (β₁ bins) routes by the low window bits.
    par_rows2(
        c,
        scratch.borrow_mut(),
        slots.borrow_mut(),
        b2,
        b1 * z,
        0,
        &|c, _, s, tmp| {
            rec(c, pool, s, tmp, b1, z, shift, p, overflow);
        },
    );

    // Result currently lives in `scratch`; copy back (scan-bound).
    {
        let sr = scratch.as_raw();
        let dr = slots.as_raw();
        par_for(c, 0, nbins, grain_for(c), &|c, b| unsafe {
            // SAFETY: disjoint z-slot chunks per b.
            dr.copy_from(c, &sr, b * z, b * z, z);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::with_retries;
    use fj::{Pool, SeqCtx};
    use metrics::{measure, CacheConfig, TraceMode};

    fn items(n: usize) -> Vec<Item<u64>> {
        (0..n as u64).map(|i| Item::new(i as u128, i * 7)).collect()
    }

    fn small_params() -> OrbaParams {
        OrbaParams {
            z: 16,
            gamma: 4,
            engine: Engine::BitonicRec,
        }
    }

    fn orba_retrying(n: usize, p: OrbaParams, seed: u64) -> BinLayout<u64> {
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let its = items(n);
        let (layout, _) = with_retries(64, |a| rec_orba(&c, &sp, &its, p, seed + 1000 * a as u64));
        layout
    }

    #[test]
    fn every_element_lands_in_its_label_bin() {
        let p = small_params();
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let its = items(100);
        let (layout, _) = with_retries(64, |a| rec_orba(&c, &sp, &its, p, 42 + a as u64));
        // Rebuild the label assignment from the same seed logic is not
        // possible here (labels are internal), so check the defining
        // property instead: each bin holds ≤ Z reals, all reals present.
        let mut seen: Vec<u64> = layout
            .slots
            .iter()
            .filter(|s| s.is_real())
            .map(|s| s.item.val)
            .collect();
        seen.sort_unstable();
        let expect: Vec<u64> = (0..100u64).map(|i| i * 7).collect();
        assert_eq!(seen, expect, "no element lost or duplicated");
        for (b, bin) in layout.slots.chunks(layout.z).enumerate() {
            assert_eq!(bin.len(), layout.z);
            // All reals in a bin share the same label (= bin index).
            for s in bin.iter().filter(|s| s.is_real()) {
                assert_eq!(s.label as usize, b, "element in wrong bin");
            }
        }
    }

    #[test]
    fn larger_instance_with_paper_params() {
        let n = 4096;
        let p = OrbaParams::for_n(n);
        let layout = orba_retrying(n, p, 7);
        assert_eq!(layout.nbins, bins_for(n, p.z));
        let total: usize = layout.loads().iter().sum();
        assert_eq!(total, n);
    }

    #[test]
    fn loads_concentrate_around_mean() {
        let n = 8192;
        let p = OrbaParams::for_n(n);
        let layout = orba_retrying(n, p, 3);
        let mean = n as f64 / layout.nbins as f64;
        let max = *layout.loads().iter().max().unwrap() as f64;
        assert!(max <= 3.0 * mean + 8.0, "max load {max} vs mean {mean}");
    }

    #[test]
    fn parallel_matches_functionality() {
        let pool = Pool::new(4);
        let p = small_params();
        let its = items(200);
        let sp = ScratchPool::new();
        let layout = pool.run(|c| {
            let (l, _) = with_retries(64, |a| rec_orba(c, &sp, &its, p, 99 + a as u64));
            l
        });
        let total: usize = layout.loads().iter().sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn trace_depends_only_on_length_and_seed() {
        let p = small_params();
        let run = |vals: Vec<u64>| {
            let (_, rep) = measure(CacheConfig::default(), TraceMode::Hash, |c| {
                let sp = ScratchPool::new();
                let its: Vec<Item<u64>> = vals.iter().map(|&v| Item::new(v as u128, v)).collect();
                let _ = rec_orba(c, &sp, &its, p, 1234);
            });
            (rep.trace_hash, rep.trace_len)
        };
        let a = run((0..150).collect());
        let b = run(vec![9; 150]);
        assert_eq!(a, b, "ORBA trace must not depend on element values");
    }

    #[test]
    fn deterministic_given_seed() {
        let p = small_params();
        let c = SeqCtx::new();
        let sp = ScratchPool::new();
        let its = items(64);
        let l1 = rec_orba(&c, &sp, &its, p, 5).map(|l| l.loads());
        let l2 = rec_orba(&c, &sp, &its, p, 5).map(|l| l.loads());
        assert_eq!(l1.ok(), l2.ok());
    }
}
